//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses: `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size` / `throughput` / `bench_function` / `bench_with_input`,
//! and `Bencher::iter`.
//!
//! Timing is wall-clock: each benchmark runs one warm-up iteration, then
//! `sample_size` timed iterations, and reports min / mean per-iteration
//! time (plus throughput when declared). Passing `--test` (as `cargo test`
//! does for harness-less bench targets) runs every benchmark exactly once
//! for a smoke check.

use std::time::{Duration, Instant};

/// Re-export target for benchmark code that wants to defeat constant
/// folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{}", function.into(), parameter) }
    }
}

/// Conversion into the rendered benchmark name.
pub trait IntoBenchmarkName {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

/// Runs closures under timing.
pub struct Bencher {
    samples: usize,
    smoke: bool,
    /// Recorded per-iteration durations of the last `iter` call.
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, recording one duration per sample iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.durations.clear();
        if self.smoke {
            black_box(f());
            self.durations.push(Duration::ZERO);
            return;
        }
        black_box(f()); // warm-up
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.durations.push(t0.elapsed());
        }
    }
}

/// Top-level benchmark driver (one per `criterion_group!` run).
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion { smoke }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, smoke: self.smoke }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkName,
        f: F,
    ) -> &mut Criterion {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing sample-count and throughput settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    smoke: bool,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkName,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, smoke: self.smoke, durations: Vec::new() };
        f(&mut b);
        self.report(&id.into_name(), &b.durations);
        self
    }

    /// Runs one benchmark with an auxiliary input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkName,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, smoke: self.smoke, durations: Vec::new() };
        f(&mut b, input);
        self.report(&id.into_name(), &b.durations);
        self
    }

    /// Ends the group (reporting happens per-benchmark).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, durations: &[Duration]) {
        let label =
            if self.name.is_empty() { id.to_string() } else { format!("{}/{id}", self.name) };
        if self.smoke {
            println!("bench {label:<50} ok (smoke)");
            return;
        }
        if durations.is_empty() {
            println!("bench {label:<50} (no samples)");
            return;
        }
        let total: Duration = durations.iter().sum();
        let mean = total / durations.len() as u32;
        let min = durations.iter().min().copied().unwrap_or_default();
        let mut line = format!(
            "bench {label:<50} mean {:>12} min {:>12} ({} samples)",
            fmt_duration(mean),
            fmt_duration(min),
            durations.len()
        );
        if let Some(tp) = self.throughput {
            let per_sec = |units: u64| units as f64 / mean.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Elements(n) => {
                    line += &format!("  {:.3} Melem/s", per_sec(n) / 1e6);
                }
                Throughput::Bytes(n) => {
                    line += &format!("  {:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0));
                }
            }
        }
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { smoke: true };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).throughput(Throughput::Elements(10));
            g.bench_function("a", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("b", 7), &(), |b, _| b.iter(|| ()));
            g.finish();
        }
        assert_eq!(ran, 1, "smoke mode runs exactly once");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(500)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(50)).ends_with(" s"));
    }
}
