//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro, range and `Just` strategies, `prop_map`,
//! `collection::vec`, `prop_oneof!`, `prop_assert*` / `prop_assume!`, and
//! `ProptestConfig::with_cases`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the deterministic per-test seed, which suffices for regression hunting
//! in this workspace.

use rand::rngs::StdRng;
use rand::Rng;

#[doc(hidden)]
pub use rand as __rand;

/// Why a single generated test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError::Fail(message)
    }

    /// Whether this is an input rejection rather than a failure.
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
        }
    }
}

/// Harness settings for one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of generated cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by `prop_oneof!` to unify arm types).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Wraps the arm list.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// A fixed-length `Vec` strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates vectors of exactly `len` elements of `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test seed derived from the test's name.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a; stable across runs and platforms
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts inside a `proptest!` body, returning a [`TestCaseError`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                l, r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                l, r
            )));
        }
    }};
}

/// Rejects uninteresting generated inputs; the case is retried.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform random choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($arm)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(100);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest {}: too many rejected cases ({} attempts for {} cases)",
                    stringify!($name),
                    attempts,
                    config.cases
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(e) if e.is_reject() => continue,
                    ::core::result::Result::Err(e) => panic!(
                        "proptest {} failed after {} cases: {}",
                        stringify!($name),
                        passed,
                        e
                    ),
                }
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 0usize..10, y in -1.0f32..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y = {}", y);
        }

        /// Vec + prop_map compose.
        #[test]
        fn vec_and_map(v in collection::vec(0u64..5, 7).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 7);
        }

        /// prop_assume retries instead of failing.
        #[test]
        fn assume_filters(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        /// prop_oneof picks only the given arms.
        #[test]
        fn oneof_arms(x in prop_oneof![Just(1usize), Just(3), Just(5)]) {
            prop_assert!(x == 1 || x == 3 || x == 5);
        }

        /// `?` propagates helper TestCaseErrors out of the body.
        #[test]
        fn question_mark_propagates(_x in 0usize..4) {
            helper(true)?;
        }
    }

    fn helper(ok: bool) -> Result<(), TestCaseError> {
        prop_assert!(ok, "helper saw false");
        Ok(())
    }
}
