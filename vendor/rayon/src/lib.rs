//! Offline stand-in for the subset of the `rayon` API this workspace uses.
//!
//! Provides `par_chunks_mut` on slices and `into_par_iter` on vectors,
//! with `enumerate` / `map` / `for_each` / `collect` adapters. Work is
//! executed on scoped `std::thread`s, one contiguous batch per thread
//! (order-preserving), falling back to the calling thread when the host
//! has a single core or the item count is 1.

use std::sync::OnceLock;

/// Number of worker threads the pool fans out to (the host parallelism).
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Runs `f` over `items`, preserving order, on up to
/// [`current_num_threads`] scoped threads.
fn parallel_map<I, O, F>(items: Vec<I>, f: &F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    let nt = current_num_threads().min(n);
    if nt <= 1 {
        return items.into_iter().map(f).collect();
    }
    // split into nt contiguous batches so outputs concatenate in order
    let mut batches: Vec<Vec<I>> = Vec::with_capacity(nt);
    let mut items = items;
    let base = n / nt;
    let rem = n % nt;
    for t in (0..nt).rev() {
        let take = base + usize::from(t < rem);
        batches.push(items.split_off(items.len() - take));
    }
    batches.reverse();
    std::thread::scope(|s| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| s.spawn(move || batch.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("parallel worker panicked")).collect()
    })
}

/// An eagerly-materialized parallel iterator: adapters either restructure
/// the item list cheaply (`enumerate`) or execute the parallel fan-out
/// (`map`, `for_each`).
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<O: Send, F: Fn(I) -> O + Sync>(self, f: F) -> ParIter<O> {
        ParIter { items: parallel_map(self.items, &f) }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        parallel_map(self.items, &|item| f(item));
    }

    /// Collects the (already computed) items.
    pub fn collect<C: FromParIter<I>>(self) -> C {
        C::from_par_items(self.items)
    }
}

/// Collection targets for [`ParIter::collect`].
pub trait FromParIter<I> {
    /// Builds the collection from ordered items.
    fn from_par_items(items: Vec<I>) -> Self;
}

impl<I> FromParIter<I> for Vec<I> {
    fn from_par_items(items: Vec<I>) -> Vec<I> {
        items
    }
}

impl<T, E, C: FromParIter<T>> FromParIter<Result<T, E>> for Result<C, E> {
    fn from_par_items(items: Vec<Result<T, E>>) -> Result<C, E> {
        let mut ok = Vec::with_capacity(items.len());
        for item in items {
            ok.push(item?);
        }
        Ok(C::from_par_items(ok))
    }
}

/// `into_par_iter()` for owned collections.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_chunks_mut` for mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter { items: self.chunks_mut(chunk_size).collect() }
    }
}

pub mod prelude {
    pub use crate::{FromParIter, IntoParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_covers_all_chunks_in_order() {
        let mut v = vec![0u64; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as u64 + 1;
            }
        });
        for (t, &x) in v.iter().enumerate() {
            assert_eq!(x, (t / 10) as u64 + 1);
        }
    }

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..97).collect::<Vec<_>>().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..97).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn result_collect_short_circuits() {
        let ok: Result<Vec<usize>, String> = vec![1usize, 2, 3].into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap(), vec![1, 2, 3]);
        let err: Result<Vec<usize>, String> = vec![1usize, 2, 3]
            .into_par_iter()
            .map(|x| if x == 2 { Err("boom".to_string()) } else { Ok(x) })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }
}
