//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`] (a xoshiro256++ generator seeded via SplitMix64),
//! the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits with `gen_range` /
//! `gen_bool`, [`distributions::Distribution`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no crates.io access, so this crate provides a
//! deterministic, dependency-free replacement. Streams are deterministic
//! per seed but do *not* match upstream `rand` bit-for-bit.

/// Low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over an interval. The single blanket
/// [`SampleRange`] impl below keys type inference off this trait, so
/// untyped float/int literals in `gen_range(a..b)` unify with the use
/// site exactly like upstream `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = if inclusive {
                    assert!(lo <= hi, "empty integer range");
                    (hi as i128 - lo as i128) as u128 + 1
                } else {
                    assert!(lo < hi, "empty integer range");
                    (hi as i128 - lo as i128) as u128
                };
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty float range");
                    let u = ((rng.next_u64() >> 11) as f64)
                        * (1.0 / ((1u64 << 53) - 1) as f64);
                    let v = (lo as f64 + u * (hi as f64 - lo as f64)) as $t;
                    v.clamp(lo, hi)
                } else {
                    assert!(lo < hi, "empty float range");
                    // 53 uniform bits in [0, 1); lo + u*(hi-lo) < hi.
                    let u = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                    let v = (lo as f64 + u * (hi as f64 - lo as f64)) as $t;
                    // guard the half-open bound against f64 -> $t rounding
                    if v < lo || v >= hi {
                        lo
                    } else {
                        v
                    }
                }
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Fast, tiny state, excellent statistical quality for
    /// simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::Rng;

    /// A distribution that can be sampled with any [`Rng`].
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.gen_range(0.25f32..=0.5);
            assert!((0.25..=0.5).contains(&g));
            let i = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
