//! Benchmark harness regenerating every table and figure of the MVQ paper.
//!
//! The `paper` binary dispatches to one function per experiment; each
//! returns a rendered text table so the experiments are also callable (and
//! testable) as a library. Hardware experiments are exact re-runs of the
//! `mvq-accel` simulator; algorithm experiments train the scaled-down
//! model zoo of `mvq-nn` on synthetic data (see DESIGN.md for the
//! substitution argument) and run the real compression pipeline.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod cli;
pub mod ext;
pub mod fmt;
pub mod hw;
pub mod net_cli;
pub mod report;
pub mod tables;

/// Everything the algorithm experiments share: the synthetic dataset and
/// deterministic seeds.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Training-set size.
    pub n_train: usize,
    /// Test-set size.
    pub n_test: usize,
    /// Classes in the synthetic task.
    pub classes: usize,
    /// Image side length.
    pub image_size: usize,
    /// Dense-training epochs.
    pub train_epochs: usize,
    /// Codebook fine-tuning epochs.
    pub finetune_epochs: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Full-quality settings (used by `paper` without `--quick`).
    pub fn full() -> ExperimentConfig {
        ExperimentConfig {
            n_train: 1536,
            n_test: 512,
            classes: 8,
            image_size: 16,
            train_epochs: 8,
            finetune_epochs: 3,
            seed: 20250330,
        }
    }

    /// Reduced settings for smoke runs (`--quick`).
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            n_train: 256,
            n_test: 128,
            classes: 4,
            image_size: 16,
            train_epochs: 3,
            finetune_epochs: 1,
            seed: 20250330,
        }
    }
}
