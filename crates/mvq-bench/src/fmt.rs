//! Plain-text table rendering for the experiment reports.

/// Renders a table with a header row, separator and aligned columns.
///
/// ```
/// let t = mvq_bench::fmt::render_table(
///     &["model", "acc"],
///     &[vec!["ResNet-18".into(), "68.8".into()]],
/// );
/// assert!(t.contains("ResNet-18"));
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line += &format!(" {cell:<w$} |");
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out += &fmt_row(&header_cells, &widths);
    out.push('\n');
    out += "|";
    for w in &widths {
        out += &format!("{}-|", "-".repeat(w + 2 - 1));
    }
    out.push('\n');
    for row in rows {
        let mut cells = row.clone();
        cells.resize(cols, String::new());
        out += &fmt_row(&cells, &widths);
        out.push('\n');
    }
    out
}

/// Formats a float with `digits` decimals.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats giga-scale values ("1.81G"), falling back to mega units for
/// small models ("45.2M").
pub fn giga(v: f64) -> String {
    if v < 1e8 {
        format!("{:.1}M", v / 1e6)
    } else {
        format!("{:.2}G", v / 1e9)
    }
}

/// Formats a ratio like "22.3x".
pub fn ratio(v: f64) -> String {
    format!("{v:.1}x")
}

/// Formats a percentage like "75%".
pub fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["x".into(), "1".into()], vec!["yyyy".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines same width
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("long-header"));
    }

    #[test]
    fn numeric_formats() {
        assert_eq!(f(1.2345, 2), "1.23");
        assert_eq!(giga(1.81e9), "1.81G");
        assert_eq!(giga(45.2e6), "45.2M");
        assert_eq!(ratio(22.34), "22.3x");
        assert_eq!(pct(0.75), "75%");
    }

    #[test]
    fn short_rows_padded() {
        let t = render_table(&["a", "b"], &[vec!["only".into()]]);
        assert!(t.lines().count() == 3);
    }
}
