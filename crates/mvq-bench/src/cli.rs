//! `paper compress` — a registry-driven CLI front for the compression
//! service.
//!
//! ```text
//! paper compress [--algo <name>[,<name>...]] [--kernel <strategy>]
//!                [--arch tiny|resnet18] [--k <K>] [--seed <SEED>]
//!                [--workers <N>] [--cache-dir <DIR>]
//!                [--memory-budget <BYTES>] [--disk-budget <BYTES>]
//!                [--stream]
//! ```
//!
//! Builds the requested lite model, submits one [`CompressionRequest`]
//! per compressible conv × algorithm through a [`CompressionService`]
//! (with `--cache-dir` the cache is durable, so a re-run serves hits;
//! the budget flags exercise the byte-budgeted LRU eviction), waits on
//! the tickets, and prints a per-layer outcome table plus cache stats.
//! Job failures are printed per job and do not stop the run — the exit
//! code reports whether every job succeeded.
//!
//! With `--stream` the whole model is submitted as **one job per
//! algorithm** ([`ModelCompressionRequest`]): the convs stream through
//! the bounded-memory pipeline, each finished layer spilling to the
//! service's cache as its own blob, with live per-layer progress printed
//! from [`Ticket::progress`] while the job runs. The streamed result is
//! bit-identical to the per-conv in-memory path.

use std::process::ExitCode;

use mvq_core::pipeline::{canonical_name, PipelineSpec};
use mvq_core::KernelStrategy;
use mvq_nn::models::Arch;
use mvq_serve::{
    CachePolicy, CompressionRequest, CompressionService, ModelCompressionRequest, Ticket,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const USAGE: &str = "usage: paper compress [--algo <name>[,<name>...]] [--kernel <strategy>] \
                     [--arch tiny|resnet18] [--k <K>] [--seed <SEED>] [--workers <N>] \
                     [--cache-dir <DIR>] [--memory-budget <BYTES>] [--disk-budget <BYTES>] \
                     [--stream]";

#[derive(Debug)]
struct CompressArgs {
    algos: Vec<String>,
    kernel: Option<KernelStrategy>,
    arch: String,
    k: Option<usize>,
    seed: Option<u64>,
    workers: Option<usize>,
    cache_dir: Option<String>,
    memory_budget: Option<u64>,
    disk_budget: Option<u64>,
    stream: bool,
}

fn parse_args(args: &[String]) -> Result<CompressArgs, String> {
    let mut parsed = CompressArgs {
        algos: vec!["mvq".to_string()],
        kernel: None,
        arch: "tiny".to_string(),
        k: None,
        seed: None,
        workers: None,
        cache_dir: None,
        memory_budget: None,
        disk_budget: None,
        stream: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--algo" => {
                parsed.algos = value("--algo")?.split(',').map(str::to_string).collect();
            }
            "--kernel" => {
                // the one strategy parser everything shares: KernelStrategy::from_str
                parsed.kernel =
                    Some(value("--kernel")?.parse::<KernelStrategy>().map_err(|e| e.to_string())?);
            }
            "--arch" => parsed.arch = value("--arch")?.to_string(),
            "--k" => {
                parsed.k = Some(value("--k")?.parse().map_err(|e| format!("--k: {e}\n{USAGE}"))?);
            }
            "--seed" => {
                parsed.seed =
                    Some(value("--seed")?.parse().map_err(|e| format!("--seed: {e}\n{USAGE}"))?);
            }
            "--workers" => {
                parsed.workers = Some(
                    value("--workers")?.parse().map_err(|e| format!("--workers: {e}\n{USAGE}"))?,
                );
            }
            "--cache-dir" => parsed.cache_dir = Some(value("--cache-dir")?.to_string()),
            "--stream" => parsed.stream = true,
            "--memory-budget" => {
                parsed.memory_budget = Some(
                    value("--memory-budget")?
                        .parse()
                        .map_err(|e| format!("--memory-budget: {e}\n{USAGE}"))?,
                );
            }
            "--disk-budget" => {
                parsed.disk_budget = Some(
                    value("--disk-budget")?
                        .parse()
                        .map_err(|e| format!("--disk-budget: {e}\n{USAGE}"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    for algo in &parsed.algos {
        if canonical_name(algo).is_none() {
            return Err(format!(
                "unknown algorithm `{algo}` (known: {})",
                mvq_core::pipeline::ALGORITHM_NAMES.join(", ")
            ));
        }
    }
    if parsed.disk_budget.is_some() && parsed.cache_dir.is_none() {
        return Err(format!(
            "--disk-budget needs --cache-dir (an in-memory cache has no disk to budget)\n{USAGE}"
        ));
    }
    Ok(parsed)
}

/// Entry point for the `compress` subcommand; `args` excludes the
/// subcommand name itself.
pub fn run_compress(args: &[String]) -> ExitCode {
    let parsed = match parse_args(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // the lite workload: conv weights of the requested architecture
    let mut rng = StdRng::seed_from_u64(parsed.seed.unwrap_or(0));
    let model = match parsed.arch.as_str() {
        "tiny" => mvq_nn::models::tiny_cnn(8, 16, &mut rng),
        "resnet18" => Arch::ResNet18.build(8, &mut rng),
        other => {
            eprintln!("unknown arch `{other}` (known: tiny, resnet18)");
            return ExitCode::FAILURE;
        }
    };
    let mut weights = Vec::new();
    model.visit_convs(&mut |conv| weights.push(conv.weight.value.clone()));

    let mut spec = PipelineSpec::default();
    if let Some(k) = parsed.k {
        spec.k = k;
    } else if parsed.arch == "tiny" {
        spec.k = 8; // the tiny convs have few subvectors; default k=64 cannot fit
    }
    if let Some(kernel) = parsed.kernel {
        spec = spec.with_kernel(kernel);
    }

    let mut policy = CachePolicy::UNBOUNDED;
    if let Some(bytes) = parsed.memory_budget {
        policy = policy.with_memory_budget(bytes);
    }
    if let Some(bytes) = parsed.disk_budget {
        policy = policy.with_disk_budget(bytes);
    }
    let mut builder = CompressionService::builder().cache_policy(policy);
    if let Some(dir) = &parsed.cache_dir {
        builder = builder.cache_dir(dir);
    }
    if let Some(workers) = parsed.workers {
        builder = builder.workers(workers.max(1));
    }
    let service = match builder.build() {
        Ok(service) => service,
        Err(e) => {
            eprintln!("cannot start service: {e}");
            return ExitCode::FAILURE;
        }
    };

    if parsed.stream {
        let failures = run_stream_jobs(&service, &parsed.algos, &model, &spec, parsed.seed);
        print_cache_stats(&service);
        if failures > 0 {
            eprintln!("{failures} model job(s) failed");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    // one request per compressible conv × algorithm, all in flight at
    // once; per-job errors are reported without aborting the rest
    let mut tickets: Vec<Ticket> = Vec::new();
    let mut skipped = 0usize;
    for algo in &parsed.algos {
        for (i, w) in weights.iter().enumerate() {
            if w.dims()[0] % spec.d != 0 {
                skipped += 1;
                continue; // not groupable at this operating point
            }
            let mut request =
                CompressionRequest::builder(format!("conv{i}/{algo}"), w.clone(), algo)
                    .spec(spec.clone());
            if let Some(seed) = parsed.seed {
                request = request.seed(seed);
            }
            match request.build() {
                Ok(request) => tickets.push(service.submit_one(request)),
                Err(e) => {
                    eprintln!("invalid request conv{i}/{algo}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    println!("{:<18} {:>8} {:>9} {:>7}", "job", "ratio", "source", "status");
    let mut failures = 0usize;
    for ticket in tickets {
        match ticket.wait() {
            Ok(outcome) => {
                let source = if outcome.deduped {
                    "dedup"
                } else if outcome.from_cache {
                    "cache"
                } else {
                    "fresh"
                };
                let ratio = match outcome.artifact() {
                    Ok(artifact) => format!("{:>7.1}x", artifact.compression_ratio()),
                    Err(_) => format!("{:>8}", "-"),
                };
                println!("{:<18} {ratio} {:>9} {:>7}", outcome.name, source, "ok");
            }
            Err(e) => {
                failures += 1;
                println!("{:<18} {:>8} {:>9} {:>7}", e.name(), "-", "-", "failed");
                eprintln!("  {e}");
            }
        }
    }
    print_cache_stats(&service);
    if skipped > 0 {
        println!("skipped {skipped} conv(s) not groupable at d={}", spec.d);
    }
    if failures > 0 {
        eprintln!("{failures} job(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Submits the whole model as one streaming job per algorithm, printing
/// live per-layer progress from the ticket while each job runs. Returns
/// the failure count.
fn run_stream_jobs(
    service: &CompressionService,
    algos: &[String],
    model: &mvq_nn::Sequential,
    spec: &PipelineSpec,
    seed: Option<u64>,
) -> usize {
    println!(
        "{:<18} {:>7} {:>8} {:>9} {:>7}",
        "model job", "layers", "skipped", "source", "status"
    );
    let mut failures = 0usize;
    for algo in algos {
        let name = format!("model/{algo}");
        let mut request = ModelCompressionRequest::builder(&name, model.clone(), algo.as_str())
            .spec(spec.clone());
        if let Some(seed) = seed {
            request = request.seed(seed);
        }
        let request = match request.build() {
            Ok(request) => request,
            Err(e) => {
                eprintln!("invalid model request {name}: {e}");
                failures += 1;
                continue;
            }
        };
        let mut ticket = service.submit_model(request);
        // live progress on stderr; the final table row goes to stdout
        let mut last_done = 0usize;
        loop {
            if ticket.try_poll().is_some() {
                break;
            }
            if let Some(p) = ticket.progress() {
                if p.layers_total > 0 && p.layers_done > last_done {
                    last_done = p.layers_done;
                    eprintln!("  {name}: {}/{} layers", p.layers_done, p.layers_total);
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        match ticket.wait() {
            Ok(outcome) => {
                let source = if outcome.from_cache { "cache" } else { "fresh" };
                match outcome.model_artifacts() {
                    Ok(arts) => println!(
                        "{:<18} {:>7} {:>8} {:>9} {:>7}",
                        outcome.name,
                        arts.layers.len(),
                        arts.skipped.len(),
                        source,
                        "ok"
                    ),
                    Err(e) => {
                        failures += 1;
                        println!(
                            "{:<18} {:>7} {:>8} {:>9} {:>7}",
                            outcome.name, "-", "-", source, "failed"
                        );
                        eprintln!("  {e}");
                    }
                }
            }
            Err(e) => {
                failures += 1;
                println!("{:<18} {:>7} {:>8} {:>9} {:>7}", e.name(), "-", "-", "-", "failed");
                eprintln!("  {e}");
            }
        }
    }
    failures
}

fn print_cache_stats(service: &CompressionService) {
    let stats = service.cache_stats();
    println!(
        "\ncache: {} hits, {} misses, {} insertions, {} mem blobs ({} B), {} disk blobs ({} B), \
         {} mem evictions, {} disk evictions",
        stats.hits,
        stats.misses,
        stats.insertions,
        stats.memory_len,
        stats.memory_bytes,
        stats.disk_len,
        stats.disk_bytes,
        stats.memory_evictions,
        stats.disk_evictions,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_full_flag_set() {
        let parsed = parse_args(&strs(&[
            "--algo",
            "mvq,pqf,vq",
            "--kernel",
            "SIMD",
            "--arch",
            "resnet18",
            "--k",
            "16",
            "--seed",
            "9",
            "--workers",
            "3",
            "--cache-dir",
            "/tmp/x",
            "--memory-budget",
            "1048576",
            "--disk-budget",
            "2097152",
        ]))
        .unwrap();
        assert_eq!(parsed.algos, vec!["mvq", "pqf", "vq"]);
        assert_eq!(parsed.kernel, Some(KernelStrategy::Simd));
        assert_eq!(parsed.arch, "resnet18");
        assert_eq!(parsed.k, Some(16));
        assert_eq!(parsed.seed, Some(9));
        assert_eq!(parsed.workers, Some(3));
        assert_eq!(parsed.cache_dir.as_deref(), Some("/tmp/x"));
        assert_eq!(parsed.memory_budget, Some(1_048_576));
        assert_eq!(parsed.disk_budget, Some(2_097_152));
    }

    #[test]
    fn rejects_unknown_flags_kernels_and_algorithms() {
        assert!(parse_args(&strs(&["--frobnicate"])).is_err());
        let err = parse_args(&strs(&["--kernel", "avx512-dreams"])).unwrap_err();
        assert!(err.contains("avx512-dreams"), "{err}");
        let err = parse_args(&strs(&["--algo", "vqgan"])).unwrap_err();
        assert!(err.contains("vqgan"), "{err}");
        assert!(parse_args(&strs(&["--k"])).is_err(), "missing value must error");
        // a disk budget without a disk would silently be a no-op; refuse it
        let err = parse_args(&strs(&["--disk-budget", "1000"])).unwrap_err();
        assert!(err.contains("--cache-dir"), "{err}");
        assert!(parse_args(&strs(&["--disk-budget", "1000", "--cache-dir", "/tmp/x"])).is_ok());
    }

    #[test]
    fn defaults_are_sane() {
        let parsed = parse_args(&[]).unwrap();
        assert_eq!(parsed.algos, vec!["mvq"]);
        assert_eq!(parsed.arch, "tiny");
        assert!(parsed.kernel.is_none());
        assert!(parsed.cache_dir.is_none());
        assert!(!parsed.stream, "streaming is opt-in");
    }

    #[test]
    fn stream_flag_parses_and_composes() {
        let parsed = parse_args(&strs(&["--stream", "--algo", "mvq,pvq", "--seed", "7"])).unwrap();
        assert!(parsed.stream);
        assert_eq!(parsed.algos, vec!["mvq", "pvq"]);
        assert_eq!(parsed.seed, Some(7));
    }
}
