//! `paper serve` / `paper client` / `paper stats` — the compression
//! service on the wire, from the command line.
//!
//! ```text
//! paper serve  [--addr <HOST:PORT>] [--workers <N>] [--queue <N>]
//!              [--cache-dir <DIR>]
//! paper client [--addr <HOST:PORT>] [--algo <name>[,<name>...]]
//!              [--arch tiny|resnet18] [--k <K>] [--seed <SEED>]
//!              [--deadline-ms <MS>] [--repeat <N>]
//! paper stats  [--addr <HOST:PORT>] [--traces <N>]
//! ```
//!
//! `serve` binds an [`NetServer`] over a [`CompressionService`] and runs
//! until stdin closes (or a `quit` line arrives), then drains
//! gracefully — every accepted in-flight job completes and flushes
//! before the process exits — and prints the server's counters plus a
//! final `mvq_obs` registry snapshot. A `stats` line on stdin prints
//! the same snapshot live without disturbing the server.
//!
//! `stats` probes a *running* server over TCP for its live registry
//! snapshot — every store/serve/net/stream metric plus the most
//! recently completed job-lifecycle traces with per-stage µs offsets.
//!
//! `client` builds the same lite conv workload as `paper compress`,
//! submits every job over one sustained connection, and prints the
//! per-job outcome table plus round-trip timings. `--repeat` resubmits
//! the whole job set (a second pass answers from the server's cache);
//! `--deadline-ms` attaches a queue deadline to every request, so a
//! saturated server answers `CancelledDeadline` instead of making the
//! client wait.

use std::io::BufRead;
use std::process::ExitCode;
use std::time::Instant;

use mvq_core::pipeline::{canonical_name, PipelineSpec};
use mvq_net::{
    NetClient, NetError, NetRequest, NetServer, WireMetric, WireMetricValue, WireStatsReply,
};
use mvq_nn::models::Arch;
use mvq_obs::{Registry, TraceSnapshot};
use mvq_serve::CompressionService;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The default loopback endpoint both subcommands assume.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7341";

const SERVE_USAGE: &str = "usage: paper serve [--addr <HOST:PORT>] [--workers <N>] [--queue <N>] \
                           [--cache-dir <DIR>]";
const CLIENT_USAGE: &str = "usage: paper client [--addr <HOST:PORT>] [--algo <name>[,<name>...]] \
                            [--arch tiny|resnet18] [--k <K>] [--seed <SEED>] \
                            [--deadline-ms <MS>] [--repeat <N>]";

#[derive(Debug)]
struct ServeArgs {
    addr: String,
    workers: Option<usize>,
    queue: Option<usize>,
    cache_dir: Option<String>,
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut parsed =
        ServeArgs { addr: DEFAULT_ADDR.to_string(), workers: None, queue: None, cache_dir: None };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value\n{SERVE_USAGE}"))
        };
        match flag.as_str() {
            "--addr" => parsed.addr = value("--addr")?.to_string(),
            "--workers" => {
                parsed.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}\n{SERVE_USAGE}"))?,
                );
            }
            "--queue" => {
                parsed.queue = Some(
                    value("--queue")?
                        .parse()
                        .map_err(|e| format!("--queue: {e}\n{SERVE_USAGE}"))?,
                );
            }
            "--cache-dir" => parsed.cache_dir = Some(value("--cache-dir")?.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{SERVE_USAGE}")),
        }
    }
    Ok(parsed)
}

/// Entry point for the `serve` subcommand; `args` excludes the
/// subcommand name itself.
pub fn run_serve(args: &[String]) -> ExitCode {
    let parsed = match parse_serve_args(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut builder = CompressionService::builder();
    if let Some(workers) = parsed.workers {
        builder = builder.workers(workers.max(1));
    }
    if let Some(queue) = parsed.queue {
        builder = builder.queue_capacity(queue);
    }
    if let Some(dir) = &parsed.cache_dir {
        builder = builder.cache_dir(dir);
    }
    let service = match builder.build() {
        Ok(service) => service,
        Err(e) => {
            eprintln!("cannot start service: {e}");
            return ExitCode::FAILURE;
        }
    };
    let workers = service.workers();
    let mut server = match NetServer::bind(parsed.addr.as_str(), service) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", parsed.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serving on {} ({workers} worker{}); close stdin or type `quit` to drain",
        server.local_addr(),
        if workers == 1 { "" } else { "s" },
    );
    for line in std::io::stdin().lock().lines() {
        match line {
            Ok(line) if line.trim() == "quit" => break,
            Ok(line) if line.trim() == "stats" => {
                render_registry(server.registry(), 8);
            }
            Ok(_) => {}
            Err(_) => break,
        }
    }
    println!("draining…");
    server.shutdown();
    let stats = server.stats();
    println!(
        "served {} connection(s): {} request(s), {} ok, {} failed, {} cancelled by disconnect, \
         {} expired in queue, {} protocol error(s)",
        stats.connections,
        stats.requests,
        stats.responses_ok,
        stats.responses_err,
        stats.cancelled_disconnect,
        stats.cancelled_deadline,
        stats.protocol_errors,
    );
    // the final registry snapshot: every store/serve/net/stream metric
    // the stack recorded, plus the tail of completed job traces
    println!("final registry snapshot:");
    render_registry(server.registry(), 8);
    ExitCode::SUCCESS
}

/// Renders a local registry through the same path as `paper stats`
/// (one snapshot type, one renderer — the wire reply is the common
/// form).
fn render_registry(registry: &Registry, max_traces: usize) {
    let traces = registry.traces().recent(max_traces);
    let reply = WireStatsReply::from_registry(0, &registry.snapshot(), traces);
    render_stats(&reply.metrics, &reply.traces);
}

/// Pretty-prints one stats snapshot: counters and gauges as name/value
/// lines, histograms with count and the p50/p90/p99/max summary, then
/// the recent completed traces with per-stage µs offsets.
fn render_stats(metrics: &[WireMetric], traces: &[TraceSnapshot]) {
    for m in metrics {
        match m.value {
            WireMetricValue::Counter(v) | WireMetricValue::Gauge(v) => {
                println!("  {:<32} {v:>12}", m.name);
            }
            WireMetricValue::Histogram(h) => {
                println!(
                    "  {:<32} {:>12}  p50 {:>8}µs  p90 {:>8}µs  p99 {:>8}µs  max {:>8}µs",
                    m.name, h.count, h.p50, h.p90, h.p99, h.max,
                );
            }
        }
    }
    if traces.is_empty() {
        println!("  (no completed traces)");
        return;
    }
    println!("  recent traces (newest first):");
    for t in traces {
        let stages: Vec<String> =
            t.stages.iter().map(|(s, us)| format!("{} +{us}µs", s.name())).collect();
        let dedup = if t.deduped { " [dedup]" } else { "" };
        println!("    {} {}{dedup}: {}", t.name, t.outcome.name(), stages.join(" → "));
    }
}

const STATS_USAGE: &str = "usage: paper stats [--addr <HOST:PORT>] [--traces <N>]";

#[derive(Debug)]
struct StatsArgs {
    addr: String,
    traces: usize,
}

fn parse_stats_args(args: &[String]) -> Result<StatsArgs, String> {
    let mut parsed = StatsArgs { addr: DEFAULT_ADDR.to_string(), traces: 16 };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value\n{STATS_USAGE}"))
        };
        match flag.as_str() {
            "--addr" => parsed.addr = value("--addr")?.to_string(),
            "--traces" => {
                parsed.traces = value("--traces")?
                    .parse()
                    .map_err(|e| format!("--traces: {e}\n{STATS_USAGE}"))?;
            }
            other => return Err(format!("unknown flag `{other}`\n{STATS_USAGE}")),
        }
    }
    Ok(parsed)
}

/// Entry point for the `stats` subcommand: probes a running `paper
/// serve` for its live registry snapshot and recent completed traces,
/// over the same wire protocol jobs use. `args` excludes the
/// subcommand name itself.
pub fn run_stats(args: &[String]) -> ExitCode {
    let parsed = match parse_stats_args(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match NetClient::connect(parsed.addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot connect to {}: {e}", parsed.addr);
            return ExitCode::FAILURE;
        }
    };
    match client.stats(parsed.traces) {
        Ok(reply) => {
            println!("stats from {}:", parsed.addr);
            render_stats(&reply.metrics, &reply.traces);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stats probe failed: {e}");
            ExitCode::FAILURE
        }
    }
}

#[derive(Debug)]
struct ClientArgs {
    addr: String,
    algos: Vec<String>,
    arch: String,
    k: Option<usize>,
    seed: Option<u64>,
    deadline_ms: Option<u64>,
    repeat: usize,
}

fn parse_client_args(args: &[String]) -> Result<ClientArgs, String> {
    let mut parsed = ClientArgs {
        addr: DEFAULT_ADDR.to_string(),
        algos: vec!["mvq".to_string()],
        arch: "tiny".to_string(),
        k: None,
        seed: None,
        deadline_ms: None,
        repeat: 1,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value\n{CLIENT_USAGE}"))
        };
        match flag.as_str() {
            "--addr" => parsed.addr = value("--addr")?.to_string(),
            "--algo" => {
                parsed.algos = value("--algo")?.split(',').map(str::to_string).collect();
            }
            "--arch" => parsed.arch = value("--arch")?.to_string(),
            "--k" => {
                parsed.k =
                    Some(value("--k")?.parse().map_err(|e| format!("--k: {e}\n{CLIENT_USAGE}"))?);
            }
            "--seed" => {
                parsed.seed = Some(
                    value("--seed")?.parse().map_err(|e| format!("--seed: {e}\n{CLIENT_USAGE}"))?,
                );
            }
            "--deadline-ms" => {
                parsed.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}\n{CLIENT_USAGE}"))?,
                );
            }
            "--repeat" => {
                parsed.repeat = value("--repeat")?
                    .parse()
                    .map_err(|e| format!("--repeat: {e}\n{CLIENT_USAGE}"))?;
                if parsed.repeat == 0 {
                    return Err(format!("--repeat must be at least 1\n{CLIENT_USAGE}"));
                }
            }
            other => return Err(format!("unknown flag `{other}`\n{CLIENT_USAGE}")),
        }
    }
    for algo in &parsed.algos {
        if canonical_name(algo).is_none() {
            return Err(format!(
                "unknown algorithm `{algo}` (known: {})",
                mvq_core::pipeline::ALGORITHM_NAMES.join(", ")
            ));
        }
    }
    Ok(parsed)
}

/// Entry point for the `client` subcommand; `args` excludes the
/// subcommand name itself.
pub fn run_client(args: &[String]) -> ExitCode {
    let parsed = match parse_client_args(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // the same lite workload as `paper compress`
    let mut rng = StdRng::seed_from_u64(parsed.seed.unwrap_or(0));
    let model = match parsed.arch.as_str() {
        "tiny" => mvq_nn::models::tiny_cnn(8, 16, &mut rng),
        "resnet18" => Arch::ResNet18.build(8, &mut rng),
        other => {
            eprintln!("unknown arch `{other}` (known: tiny, resnet18)");
            return ExitCode::FAILURE;
        }
    };
    let mut weights = Vec::new();
    model.visit_convs(&mut |conv| weights.push(conv.weight.value.clone()));

    let mut spec = PipelineSpec::default();
    if let Some(k) = parsed.k {
        spec.k = k;
    } else if parsed.arch == "tiny" {
        spec.k = 8; // the tiny convs have few subvectors; default k=64 cannot fit
    }

    let mut client = match NetClient::connect(parsed.addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot connect to {}: {e}", parsed.addr);
            return ExitCode::FAILURE;
        }
    };

    println!("{:<18} {:>8} {:>9} {:>9} {:>10}", "job", "ratio", "source", "status", "rtt");
    let mut failures = 0usize;
    let mut skipped = 0usize;
    for pass in 0..parsed.repeat {
        for algo in &parsed.algos {
            for (i, w) in weights.iter().enumerate() {
                if w.dims()[0] % spec.d != 0 {
                    if pass == 0 {
                        skipped += 1;
                    }
                    continue; // not groupable at this operating point
                }
                let mut request =
                    NetRequest::new(format!("conv{i}/{algo}"), w.clone(), algo.as_str());
                request.spec = spec.clone();
                request.seed = parsed.seed;
                request.deadline = parsed.deadline_ms.map(std::time::Duration::from_millis);
                let t0 = Instant::now();
                match client.submit(&request) {
                    Ok(outcome) => {
                        let rtt = t0.elapsed();
                        let source = if outcome.deduped {
                            "dedup"
                        } else if outcome.from_cache {
                            "cache"
                        } else {
                            "fresh"
                        };
                        let ratio = match outcome.artifact() {
                            Ok(artifact) => format!("{:>7.1}x", artifact.compression_ratio()),
                            Err(_) => format!("{:>8}", "-"),
                        };
                        println!(
                            "{:<18} {ratio} {source:>9} {:>9} {:>9.1}ms",
                            outcome.name,
                            "ok",
                            rtt.as_secs_f64() * 1e3,
                        );
                    }
                    Err(NetError::Io(e)) => {
                        // the transport is gone; nothing further can succeed
                        eprintln!("connection lost: {e}");
                        return ExitCode::FAILURE;
                    }
                    Err(e) => {
                        failures += 1;
                        println!(
                            "{:<18} {:>8} {:>9} {:>9} {:>9.1}ms",
                            format!("conv{i}/{algo}"),
                            "-",
                            "-",
                            "failed",
                            t0.elapsed().as_secs_f64() * 1e3,
                        );
                        eprintln!("  {e}");
                    }
                }
            }
        }
    }
    if skipped > 0 {
        println!("skipped {skipped} conv(s) not groupable at d={}", spec.d);
    }
    if failures > 0 {
        eprintln!("{failures} job(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_parses_the_full_flag_set_and_rejects_garbage() {
        let parsed = parse_serve_args(&strs(&[
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "2",
            "--queue",
            "16",
            "--cache-dir",
            "/tmp/blobs",
        ]))
        .unwrap();
        assert_eq!(parsed.addr, "0.0.0.0:9000");
        assert_eq!(parsed.workers, Some(2));
        assert_eq!(parsed.queue, Some(16));
        assert_eq!(parsed.cache_dir.as_deref(), Some("/tmp/blobs"));
        assert!(parse_serve_args(&strs(&["--frobnicate"])).is_err());
        assert!(parse_serve_args(&strs(&["--workers"])).is_err(), "missing value must error");
        assert_eq!(parse_serve_args(&[]).unwrap().addr, DEFAULT_ADDR);
    }

    #[test]
    fn client_parses_the_full_flag_set_and_rejects_garbage() {
        let parsed = parse_client_args(&strs(&[
            "--addr",
            "10.0.0.1:7341",
            "--algo",
            "mvq,pqf",
            "--arch",
            "resnet18",
            "--k",
            "16",
            "--seed",
            "9",
            "--deadline-ms",
            "250",
            "--repeat",
            "2",
        ]))
        .unwrap();
        assert_eq!(parsed.addr, "10.0.0.1:7341");
        assert_eq!(parsed.algos, vec!["mvq", "pqf"]);
        assert_eq!(parsed.arch, "resnet18");
        assert_eq!(parsed.k, Some(16));
        assert_eq!(parsed.seed, Some(9));
        assert_eq!(parsed.deadline_ms, Some(250));
        assert_eq!(parsed.repeat, 2);
        assert!(parse_client_args(&strs(&["--algo", "vqgan"])).is_err());
        assert!(parse_client_args(&strs(&["--repeat", "0"])).is_err(), "zero passes is nonsense");
        let defaults = parse_client_args(&[]).unwrap();
        assert_eq!(defaults.addr, DEFAULT_ADDR);
        assert_eq!(defaults.algos, vec!["mvq"]);
        assert_eq!(defaults.repeat, 1);
    }

    #[test]
    fn stats_parses_flags_and_rejects_garbage() {
        let parsed =
            parse_stats_args(&strs(&["--addr", "10.0.0.1:7341", "--traces", "3"])).unwrap();
        assert_eq!(parsed.addr, "10.0.0.1:7341");
        assert_eq!(parsed.traces, 3);
        let defaults = parse_stats_args(&[]).unwrap();
        assert_eq!(defaults.addr, DEFAULT_ADDR);
        assert_eq!(defaults.traces, 16);
        assert!(parse_stats_args(&strs(&["--traces", "many"])).is_err());
        assert!(parse_stats_args(&strs(&["--traces"])).is_err(), "missing value must error");
        assert!(parse_stats_args(&strs(&["--frobnicate"])).is_err());
    }
}
