//! Extension experiments beyond the paper's evaluation — the ablations
//! DESIGN.md calls out:
//!
//! * `ext1` — **mixed layerwise N:M** (DominoSearch-style, the paper's
//!   reference \[34\]) vs uniform N:M at matched overall sparsity;
//! * `ext2` — **clustering-algorithm shootout** on pruned weights: plain
//!   k-means, DKM (soft/attention k-means), and masked k-means, all
//!   measured on the masked SSE that governs accuracy (paper Tab. 3/5).

use mvq_core::baselines::{dkm_cluster, DkmConfig};
use mvq_core::{
    kmeans, masked_kmeans, masked_sse, prune_matrix_nm, search_mixed_nm, GroupingStrategy,
    KmeansConfig,
};
use mvq_nn::models::Arch;
use mvq_nn::train::evaluate_classifier;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fmt::{f, render_table};
use crate::tables::{bn_recalibrate, train_arch};
use crate::ExperimentConfig;

/// Extension 1: mixed layerwise N:M vs uniform pruning at matched
/// sparsity (pruning only — isolates the pattern-selection idea from
/// clustering effects).
pub fn ext1(cfg: &ExperimentConfig) -> String {
    let trained = train_arch(Arch::ResNet18, cfg);
    let grouping = GroupingStrategy::OutputChannelWise;
    let mut rows = Vec::new();
    for target in [0.5f64, 0.7, 0.8] {
        // uniform arm: prune everything at the nearest single pattern
        let keep_uniform = (((1.0 - target) * 16.0).round() as usize).max(1);
        let uniform_acc = {
            let mut model = trained.model.clone();
            mvq_core::prune_model(&mut model, grouping, 16, keep_uniform, 16).expect("groupable");
            bn_recalibrate(&mut model, &trained.data, 8);
            evaluate_classifier(&mut model, &trained.data).expect("eval")
        };
        // mixed arm: per-layer patterns chosen by retained-energy search
        let (mixed_acc, plan) = {
            let mut model = trained.model.clone();
            let plan = search_mixed_nm(&model, grouping, 16, 16, &[12, 8, 6, 4, 3, 2], target)
                .expect("searchable");
            plan.apply(&mut model, grouping, 16).expect("appliable");
            bn_recalibrate(&mut model, &trained.data, 8);
            (evaluate_classifier(&mut model, &trained.data).expect("eval"), plan)
        };
        let mut spread: Vec<usize> = plan.layers.iter().map(|l| l.keep_n).collect();
        spread.sort_unstable();
        spread.dedup();
        let spread_s: Vec<String> = spread.iter().map(|k| format!("{k}:16")).collect();
        rows.push(vec![
            format!("{:.0}%", target * 100.0),
            format!("{keep_uniform}:16 everywhere"),
            f(uniform_acc as f64 * 100.0, 1),
            format!("mixed {{{}}} @ {:.0}%", spread_s.join(", "), plan.achieved_sparsity * 100.0),
            f(mixed_acc as f64 * 100.0, 1),
        ]);
    }
    let mut out = format!(
        "Extension 1 — mixed layerwise N:M (DominoSearch-style, paper ref [34]) vs\n\
         uniform pruning on ResNet-18-lite (dense {:.1}%), accuracy directly after\n\
         pruning (no fine-tuning, BN recalibrated):\n",
        trained.dense_acc * 100.0
    );
    out += &render_table(&["Sparsity", "Uniform", "Acc %", "Mixed plan", "Acc %"], &rows);
    out
}

/// Extension 2: clustering-algorithm shootout on pruned weights.
pub fn ext2(cfg: &ExperimentConfig) -> String {
    let trained = train_arch(Arch::ResNet18, cfg);
    let grouping = GroupingStrategy::OutputChannelWise;
    let (d, keep_n, m, k) = (16usize, 4usize, 16usize, 64usize);
    let mut weights = Vec::new();
    trained.model.visit_convs(&mut |c| weights.push(c.weight.value.clone()));
    let mut sse_plain = 0.0f64;
    let mut sse_dkm = 0.0f64;
    let mut sse_masked = 0.0f64;
    let mut layers = 0usize;
    for w in &weights {
        let Ok(grouped) = grouping.group(w, d) else { continue };
        let (pruned, mask) = prune_matrix_nm(&grouped, keep_n, m).expect("valid dims");
        layers += 1;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 31);
        let plain = kmeans(&pruned, &KmeansConfig::new(k), None, &mut rng).expect("clusterable");
        sse_plain += masked_sse(&pruned, &mask, &plain.codebook, &plain.assignments)
            .expect("consistent") as f64;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 31);
        let dkm = dkm_cluster(&pruned, &DkmConfig::new(k), &mut rng).expect("clusterable");
        sse_dkm +=
            masked_sse(&pruned, &mask, &dkm.codebook, &dkm.assignments).expect("consistent") as f64;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 31);
        let masked =
            masked_kmeans(&pruned, &mask, &KmeansConfig::new(k), &mut rng).expect("clusterable");
        sse_masked += masked.sse as f64;
    }
    let rows = vec![
        vec!["plain k-means (case C)".into(), f(sse_plain, 1), f(1.0, 2)],
        vec!["DKM (soft k-means)".into(), f(sse_dkm, 1), f(sse_plain / sse_dkm.max(1e-9), 2)],
        vec![
            "masked k-means (ours)".into(),
            f(sse_masked, 1),
            f(sse_plain / sse_masked.max(1e-9), 2),
        ],
    ];
    let mut out = format!(
        "Extension 2 — clustering algorithms on 4:16-pruned ResNet-18-lite weights\n\
         ({layers} layers, k = {k}, d = {d}); masked SSE governs accuracy (Tab. 3):\n"
    );
    out += &render_table(&["Algorithm", "Masked SSE", "Improvement vs plain"], &rows);
    out += "\n(The paper's insight in one number: masking the clustering beats even a\n\
            stronger unmasked clusterer, because the structural zeros — not optimizer\n\
            quality — are what drags codewords away from important weights.)\n";
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "trains a model; run in release via the paper binary"]
    fn ext2_smoke() {
        let out = ext2(&ExperimentConfig::quick());
        assert!(out.contains("masked k-means"));
    }
}
