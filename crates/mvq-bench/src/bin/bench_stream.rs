//! Measures the bounded-memory streaming model-compression pipeline on a
//! model-scale synthetic workload and records the result in
//! `BENCH_stream.json`.
//!
//! The workload is 10× the conv layers of ResNet-18-lite, synthesized
//! one layer at a time through a [`LayerStream`] — the weights never
//! exist in memory all at once, which is the point: the pipeline's
//! in-flight working set is capped by a window of 3 layers / 2× the
//! largest layer's bytes, far below the whole model. Layers stream
//! through `mvq` and spill to a disk-backed [`ArtifactCache`] as
//! per-layer blobs.
//!
//! Before reporting any number the binary proves correctness: a small
//! in-memory model is streamed and its assembled
//! [`ModelArtifacts`](mvq_core::ModelArtifacts) fingerprint must equal
//! the in-memory oracle's (`compress_model_artifacts`) — a pipeline that
//! streamed wrong bytes fast would be measuring the wrong thing.
//!
//! Reported: layers/s, the window's configured and observed peaks, total
//! synthesized weight bytes versus the window cap, and the process's
//! peak RSS (`VmHWM`, Linux; `0` elsewhere) — the headline claim is that
//! peak memory tracks the window, not the model.
//!
//! Usage: `cargo run --release -p mvq-bench --bin bench_stream`

use std::time::Instant;

use mvq_bench::report::BenchReport;
use mvq_core::pipeline::{by_name, PipelineSpec};
use mvq_core::store::{ArtifactCache, CacheKey};
use mvq_core::{
    load_streamed_model, model_cache_key, stream_compress, stream_compress_model, LayerMeta,
    LayerStream, MvqError, ProgressHandle, StreamConfig,
};
use mvq_nn::models::Arch;
use mvq_tensor::{kaiming_normal, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Copies of the ResNet-18-lite conv stack in the synthetic workload.
const REPS: usize = 10;
/// Window cap in layers.
const WINDOW_LAYERS: usize = 3;

/// Synthesizes each conv weight on demand — deterministic per conv, and
/// never more than the window's worth resident at once.
struct SyntheticStream {
    dims: Vec<Vec<usize>>,
    seed: u64,
}

impl LayerStream for SyntheticStream {
    fn layer_meta(&self) -> Vec<LayerMeta> {
        self.dims
            .iter()
            .map(|d| LayerMeta {
                depthwise: false,
                bytes: (d.iter().product::<usize>() * 4) as u64,
            })
            .collect()
    }

    fn materialize(&mut self, conv_index: usize) -> Result<Tensor, MvqError> {
        let dims = self.dims[conv_index].clone();
        let fan_in: usize = dims[1..].iter().product();
        let mut rng = StdRng::seed_from_u64(self.seed ^ conv_index as u64);
        Ok(kaiming_normal(dims, fan_in, &mut rng))
    }
}

fn main() {
    let spec = PipelineSpec { k: 8, d: 8, keep_n: 2, m: 8, ..PipelineSpec::default() };
    let comp = by_name("mvq", &spec).expect("registry algorithm");

    // correctness gate: streamed ≡ in-memory oracle on a small model
    {
        let mut rng = StdRng::seed_from_u64(5);
        let model = mvq_nn::models::tiny_cnn(4, 8, &mut rng);
        let mut oracle_rng = StdRng::seed_from_u64(9);
        let oracle = comp.compress_model_artifacts(&model, &mut oracle_rng).expect("oracle");
        let cache = ArtifactCache::in_memory();
        let key = model_cache_key("mvq", &model, &spec, 9).expect("model key");
        stream_compress_model(comp.as_ref(), &model, &cache, &key, &StreamConfig::default(), None)
            .expect("stream small model");
        let streamed = load_streamed_model(&cache, &key).expect("load").expect("stored");
        assert_eq!(
            streamed.fingerprint().expect("fingerprint"),
            oracle.fingerprint().expect("fingerprint"),
            "streamed result diverges from the in-memory oracle"
        );
    }

    // the model-scale workload: REPS × ResNet-18-lite conv dims
    let mut rng = StdRng::seed_from_u64(0);
    let proto = Arch::ResNet18.build(8, &mut rng);
    let mut proto_dims: Vec<Vec<usize>> = Vec::new();
    proto.visit_convs(&mut |conv| proto_dims.push(conv.weight.value.dims().to_vec()));
    let dims: Vec<Vec<usize>> = (0..REPS).flat_map(|_| proto_dims.iter().cloned()).collect();
    let num_layers = dims.len();
    let layer_bytes = |d: &Vec<usize>| (d.iter().product::<usize>() * 4) as u64;
    let total_bytes: u64 = dims.iter().map(layer_bytes).sum();
    let largest: u64 = dims.iter().map(layer_bytes).max().expect("nonempty workload");
    let window_bytes = 2 * largest;
    assert!(window_bytes * 4 < total_bytes, "window is not a meaningful bound");

    let cache_dir = std::env::temp_dir().join("mvq-bench-stream-cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cache = ArtifactCache::with_dir(&cache_dir).expect("cache dir");
    let key = CacheKey {
        algo: "mvq",
        weight_hash: 0x57ea,
        spec_fingerprint: spec.fingerprint(),
        kernel: spec.kernel,
        seed: 13,
    };
    let config = StreamConfig::default().with_window(WINDOW_LAYERS, window_bytes);
    let mut source = SyntheticStream { dims, seed: 47 };
    let progress = ProgressHandle::new();

    let t0 = Instant::now();
    let report =
        stream_compress(comp.as_ref(), &mut source, &cache, &key, &config, Some(&progress))
            .expect("stream model-scale workload");
    let secs = t0.elapsed().as_secs_f64();

    assert!(report.peak_window_bytes <= window_bytes, "window bound violated");
    assert!(report.peak_window_layers <= WINDOW_LAYERS, "layer bound violated");
    let snap = progress.snapshot();
    assert_eq!(snap.layers_done, num_layers, "every conv must reach a terminal state");

    let mut bench = BenchReport::new("stream");
    bench
        .field_str("workload", &format!("{REPS}x-resnet18-lite-synthetic"))
        .field_str("algorithm", "mvq")
        .field_u64("layers", num_layers as u64)
        .field_u64("layers_compressed", report.index.layers.len() as u64)
        .field_u64("layers_skipped", report.index.skipped.len() as u64)
        .field_f64("stream_s", secs, 3)
        .field_f64("layers_per_s", num_layers as f64 / secs, 2)
        .field_u64("weight_bytes_total", total_bytes)
        .field_u64("window_max_layers", WINDOW_LAYERS as u64)
        .field_u64("window_max_bytes", window_bytes)
        .field_u64("peak_window_layers", report.peak_window_layers as u64)
        .field_u64("peak_window_bytes", report.peak_window_bytes)
        .field_u64("workers", config.workers.max(1) as u64)
        .field_u64("cache_disk_bytes", cache.disk_bytes())
        .field_u64("peak_rss_bytes", peak_rss_bytes());
    bench.write();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// The process's peak resident set in bytes, from Linux's `VmHWM`
/// (kilobytes in `/proc/self/status`); `0` where that is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| {
            let rest = line.strip_prefix("VmHWM:")?;
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            Some(kb * 1024)
        })
        .unwrap_or(0)
}
