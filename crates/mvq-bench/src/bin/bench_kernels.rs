//! Measures the masked-distance kernel strategies (naive oracle vs
//! blocked vs simd vs minibatch) on the ResNet-18-lite workload and
//! records the result in `BENCH_kernels.json`.
//!
//! Two measurements per strategy, summed over every compressible conv of
//! the model at the paper's ResNet operating point (d = 16, 4:16, k = 64):
//!
//! * one masked assignment pass (the kernel in isolation);
//! * a full `masked_kmeans` run to convergence (the kernel inside the
//!   loop; minibatch swaps the loop itself).
//!
//! The binary also asserts the kernel contracts on every layer before
//! timing anything — blocked bit-identical to the naive oracle, simd
//! assignment-identical with SSE inside the pinned ULP bound — a bench
//! that drifted from the oracle would be measuring the wrong thing.
//!
//! Usage: `cargo run --release -p mvq-bench --bin bench_kernels
//! [strategy ...]` — optional strategy names (case-insensitive, parsed by
//! `KernelStrategy::from_str`) restrict the run; default is all of them.

use std::time::Instant;

use mvq_bench::report::BenchReport;
use mvq_core::differential::ulp_distance;
use mvq_core::{
    masked_assign_naive, masked_assign_with, masked_kmeans, masked_sse_with, prune_matrix_nm,
    GroupingStrategy, KernelStrategy, KmeansConfig, NmMask, REASSOC_SSE_ULP_BOUND,
};
use mvq_nn::models::Arch;
use mvq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const D: usize = 16;
const K: usize = 64;
const KEEP_N: usize = 4;
const M: usize = 16;
const REPS: usize = 5;

fn main() {
    // optional CLI filter: strategy names through the one shared parser
    let mut strategies: Vec<KernelStrategy> =
        std::env::args().skip(1).map(|arg| arg.parse().unwrap_or_else(|e| panic!("{e}"))).collect();
    if strategies.is_empty() {
        strategies = KernelStrategy::ALL.to_vec();
    }
    if !strategies.contains(&KernelStrategy::Naive) {
        // the oracle anchors every speedup and contract check
        strategies.insert(0, KernelStrategy::Naive);
    }

    let mut rng = StdRng::seed_from_u64(0);
    let model = Arch::ResNet18.build(8, &mut rng);
    let mut weights = Vec::new();
    model.visit_convs(&mut |conv| weights.push(conv.weight.value.clone()));
    let grouping = GroupingStrategy::OutputChannelWise;
    let mut layers: Vec<(Tensor, NmMask)> = Vec::new();
    for w in &weights {
        let Ok(grouped) = grouping.group(w, D) else { continue };
        let (pruned, mask) = prune_matrix_nm(&grouped, KEEP_N, M).expect("valid N:M");
        layers.push((pruned, mask));
    }
    let total_ng: usize = layers.iter().map(|(p, _)| p.dims()[0]).sum();
    let centers: Vec<Tensor> =
        layers.iter().map(|_| mvq_tensor::kaiming_normal(vec![K, D], D, &mut rng)).collect();

    // contract sanity on this exact workload before any timing: blocked
    // must be bit-identical to the oracle, simd assignment-identical with
    // ULP-bounded SSE
    let mut simd_sse_ulp_max = 0u32;
    for ((pruned, mask), c) in layers.iter().zip(&centers) {
        let naive = masked_assign_naive(pruned, mask, c);
        for &strategy in &strategies {
            if strategy == KernelStrategy::Naive {
                continue;
            }
            let got = masked_assign_with(strategy, pruned, mask, c).expect("valid workload");
            assert_eq!(naive, got, "{} kernel diverged from the naive oracle", strategy.name());
        }
        if strategies.contains(&KernelStrategy::Simd) {
            let sse_naive =
                masked_sse_with(KernelStrategy::Naive, pruned, mask, c, &naive).unwrap();
            let sse_simd = masked_sse_with(KernelStrategy::Simd, pruned, mask, c, &naive).unwrap();
            let ulp = ulp_distance(sse_naive, sse_simd);
            assert!(
                ulp <= REASSOC_SSE_ULP_BOUND,
                "simd SSE diverged by {ulp} ULPs (bound {REASSOC_SSE_ULP_BOUND})"
            );
            simd_sse_ulp_max = simd_sse_ulp_max.max(ulp);
        }
    }

    // one assignment pass per strategy (minibatch's assignment kernel is
    // the blocked one, so it is skipped here — its loop is what differs)
    let assign_secs = |strategy: KernelStrategy| {
        time_min(|| {
            for ((pruned, mask), c) in layers.iter().zip(&centers) {
                std::hint::black_box(
                    masked_assign_with(strategy, pruned, mask, c).expect("valid workload"),
                );
            }
        })
    };
    let mut assign: Vec<(KernelStrategy, f64)> = Vec::new();
    for &strategy in &strategies {
        if strategy == KernelStrategy::Minibatch {
            continue;
        }
        assign.push((strategy, assign_secs(strategy)));
    }

    // full clustering runs
    let kmeans_with = |kernel: KernelStrategy| {
        let mut sse = 0.0f64;
        let secs = time_min(|| {
            sse = 0.0;
            for (i, (pruned, mask)) in layers.iter().enumerate() {
                let cfg = KmeansConfig::new(K).with_kernel(kernel);
                let res = masked_kmeans(pruned, mask, &cfg, &mut StdRng::seed_from_u64(i as u64))
                    .expect("clusterable");
                sse += res.sse as f64;
            }
        });
        (secs, sse)
    };
    let mut kmeans: Vec<(KernelStrategy, f64, f64)> = Vec::new();
    for &strategy in &strategies {
        let (secs, sse) = kmeans_with(strategy);
        kmeans.push((strategy, secs, sse));
    }
    let km_of = |s: KernelStrategy| kmeans.iter().find(|(k, _, _)| *k == s);
    if let (Some((_, _, sse_naive)), Some((_, _, sse_blocked))) =
        (km_of(KernelStrategy::Naive), km_of(KernelStrategy::Blocked))
    {
        assert_eq!(
            sse_naive.to_bits(),
            sse_blocked.to_bits(),
            "full naive and blocked clustering runs must be bit-identical"
        );
    }

    let assign_naive = assign
        .iter()
        .find(|(s, _)| *s == KernelStrategy::Naive)
        .map(|&(_, secs)| secs)
        .expect("naive always runs");
    let km_naive =
        km_of(KernelStrategy::Naive).map(|&(_, secs, _)| secs).expect("naive always runs");

    let ms = |s: f64| s * 1e3;
    let mut report = BenchReport::new("kernels");
    report
        .field_str("workload", "resnet18-lite")
        .field_u64("layers", layers.len() as u64)
        .field_u64("subvectors_total", total_ng as u64)
        .field_u64("d", D as u64)
        .field_u64("k", K as u64)
        .field_str("nm", &format!("{KEEP_N}:{M}"))
        .field_u64("reps", REPS as u64)
        .field_str("simd_backend", simd_backend());
    for &(strategy, secs) in &assign {
        report.field_f64(&format!("assign_{}_ms", strategy.name()), ms(secs), 3);
        report.field_f64(&format!("assign_{}_speedup", strategy.name()), assign_naive / secs, 2);
    }
    if let (Some(&(_, simd_secs)), Some(&(_, blocked_secs))) = (
        assign.iter().find(|(s, _)| *s == KernelStrategy::Simd),
        assign.iter().find(|(s, _)| *s == KernelStrategy::Blocked),
    ) {
        report.field_f64("assign_simd_vs_blocked_speedup", blocked_secs / simd_secs, 2);
    }
    for &(strategy, secs, sse) in &kmeans {
        report.field_f64(&format!("kmeans_{}_ms", strategy.name()), ms(secs), 3);
        report.field_f64(
            &format!("kmeans_{}_speedup_vs_naive", strategy.name()),
            km_naive / secs,
            2,
        );
        report.field_f64(&format!("sse_{}", strategy.name()), sse, 4);
    }
    if strategies.contains(&KernelStrategy::Simd) {
        report.field_u64("simd_sse_ulp_max", u64::from(simd_sse_ulp_max));
        report.field_u64("simd_sse_ulp_bound", u64::from(REASSOC_SSE_ULP_BOUND));
    }
    report.write();
}

/// Which backend `KernelStrategy::Simd` dispatched to in this build.
fn simd_backend() -> &'static str {
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx") {
            return "avx";
        }
    }
    "portable-chunked"
}

/// Minimum wall time over `REPS` runs, after one warm-up run.
fn time_min(mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}
