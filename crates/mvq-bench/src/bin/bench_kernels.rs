//! Measures the masked-distance kernel strategies (naive oracle vs
//! blocked vs minibatch) on the ResNet-18-lite workload and records the
//! result in `BENCH_kernels.json`.
//!
//! Two measurements per strategy, summed over every compressible conv of
//! the model at the paper's ResNet operating point (d = 16, 4:16, k = 64):
//!
//! * one masked assignment pass (the kernel in isolation);
//! * a full `masked_kmeans` run to convergence (the kernel inside the
//!   loop; minibatch swaps the loop itself).
//!
//! The binary also asserts that the blocked kernel's assignments equal
//! the naive oracle's on every layer — a bench that drifted from the
//! oracle would be measuring the wrong thing.
//!
//! Usage: `cargo run --release -p mvq-bench --bin bench_kernels`

use std::time::Instant;

use mvq_core::{
    masked_assign_naive, masked_assign_with, masked_kmeans, prune_matrix_nm, GroupingStrategy,
    KernelStrategy, KmeansConfig, NmMask,
};
use mvq_nn::models::Arch;
use mvq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const D: usize = 16;
const K: usize = 64;
const KEEP_N: usize = 4;
const M: usize = 16;
const REPS: usize = 5;

fn main() {
    let mut rng = StdRng::seed_from_u64(0);
    let model = Arch::ResNet18.build(8, &mut rng);
    let mut weights = Vec::new();
    model.visit_convs(&mut |conv| weights.push(conv.weight.value.clone()));
    let grouping = GroupingStrategy::OutputChannelWise;
    let mut layers: Vec<(Tensor, NmMask)> = Vec::new();
    for w in &weights {
        let Ok(grouped) = grouping.group(w, D) else { continue };
        let (pruned, mask) = prune_matrix_nm(&grouped, KEEP_N, M).expect("valid N:M");
        layers.push((pruned, mask));
    }
    let total_ng: usize = layers.iter().map(|(p, _)| p.dims()[0]).sum();
    let centers: Vec<Tensor> =
        layers.iter().map(|_| mvq_tensor::kaiming_normal(vec![K, D], D, &mut rng)).collect();

    // sanity: the blocked kernel must agree with the oracle on this exact
    // workload before its timing means anything
    for ((pruned, mask), c) in layers.iter().zip(&centers) {
        let naive = masked_assign_naive(pruned, mask, c);
        let blocked =
            masked_assign_with(KernelStrategy::Blocked, pruned, mask, c).expect("valid workload");
        assert_eq!(naive, blocked, "blocked kernel diverged from the naive oracle");
    }

    let assign_naive = time_min(|| {
        for ((pruned, mask), c) in layers.iter().zip(&centers) {
            std::hint::black_box(masked_assign_naive(pruned, mask, c));
        }
    });
    let assign_blocked = time_min(|| {
        for ((pruned, mask), c) in layers.iter().zip(&centers) {
            std::hint::black_box(
                masked_assign_with(KernelStrategy::Blocked, pruned, mask, c).unwrap(),
            );
        }
    });

    let kmeans_with = |kernel: KernelStrategy| {
        let mut sse = 0.0f64;
        let secs = time_min(|| {
            sse = 0.0;
            for (i, (pruned, mask)) in layers.iter().enumerate() {
                let cfg = KmeansConfig::new(K).with_kernel(kernel);
                let res = masked_kmeans(pruned, mask, &cfg, &mut StdRng::seed_from_u64(i as u64))
                    .expect("clusterable");
                sse += res.sse as f64;
            }
        });
        (secs, sse)
    };
    let (km_naive, sse_naive) = kmeans_with(KernelStrategy::Naive);
    let (km_blocked, sse_blocked) = kmeans_with(KernelStrategy::Blocked);
    assert_eq!(
        sse_naive.to_bits(),
        sse_blocked.to_bits(),
        "full naive and blocked clustering runs must be bit-identical"
    );

    // minibatch goes through the dispatch path (it clamps k on layers
    // smaller than K, exactly like the pipeline does)
    let (km_minibatch, sse_minibatch) = kmeans_with(KernelStrategy::Minibatch);

    let ms = |s: f64| s * 1e3;
    let json = format!(
        "{{\n  \"workload\": \"resnet18-lite\",\n  \"layers\": {},\n  \"subvectors_total\": {},\n  \"d\": {D},\n  \"k\": {K},\n  \"nm\": \"{KEEP_N}:{M}\",\n  \"reps\": {REPS},\n  \"assign_naive_ms\": {:.3},\n  \"assign_blocked_ms\": {:.3},\n  \"assign_blocked_speedup\": {:.2},\n  \"kmeans_naive_ms\": {:.3},\n  \"kmeans_blocked_ms\": {:.3},\n  \"kmeans_blocked_speedup\": {:.2},\n  \"kmeans_minibatch_ms\": {:.3},\n  \"kmeans_minibatch_speedup_vs_naive\": {:.2},\n  \"sse_naive\": {:.4},\n  \"sse_blocked\": {:.4},\n  \"sse_minibatch\": {:.4}\n}}\n",
        layers.len(),
        total_ng,
        ms(assign_naive),
        ms(assign_blocked),
        assign_naive / assign_blocked,
        ms(km_naive),
        ms(km_blocked),
        km_naive / km_blocked,
        ms(km_minibatch),
        km_naive / km_minibatch,
        sse_naive,
        sse_blocked,
        sse_minibatch,
    );
    print!("{json}");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    eprintln!("wrote BENCH_kernels.json");
}

/// Minimum wall time over `REPS` runs, after one warm-up run.
fn time_min(mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}
