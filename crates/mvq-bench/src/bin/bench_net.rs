//! Measures the TCP serving front over loopback and records the result
//! in `BENCH_net.json`.
//!
//! Three passes against an in-process [`NetServer`] on `127.0.0.1:0`,
//! all through real sockets (connect, length-prefixed frames, checksum
//! validation on both sides — nothing is short-circuited in process):
//!
//! * **sustained** — one connection submits warm cache hits
//!   back-to-back and times every round trip; `sustained_p50_us` /
//!   `sustained_p99_us` is the wire + service hot-path latency (the
//!   response body is the cache's own blob, served zero-copy);
//! * **saturation** — [`SATURATION_CONNECTIONS`] concurrent connections
//!   hammer warm hits; the aggregate rate is the front's loopback
//!   throughput ceiling, `saturation_jobs_per_s`;
//! * **cold** — distinct never-cached jobs over one connection measure
//!   the compression-bound path (`cold_jobs_per_s`), confirming the
//!   wire adds overhead only in the microseconds.
//!
//! Every pass asserts the served artifact reconstructs to the submitted
//! shape before any number is reported, and the pass accounting is
//! cross-checked against the server's own counters at the end.
//!
//! The sustained p50/p99 are regression-gated against the pinned PR 8/9
//! numbers ([`PIN_P50_US`]/[`PIN_P99_US`]): a generous absolute p99
//! ceiling always holds, and the strict 5%-over-pin assert arms when
//! `MVQ_NET_ASSERT_PINS=1` (set on the CI hardware the pins came from —
//! dev boxes print the comparison instead of failing on alien hardware).
//! Alongside `BENCH_net.json` the bench lands `BENCH_net_registry.json`,
//! the serving stack's full `mvq_obs` registry snapshot for the run.
//!
//! Usage: `cargo run --release -p mvq-bench --bin bench_net`

use std::time::Instant;

use mvq_bench::report::BenchReport;
use mvq_core::pipeline::PipelineSpec;
use mvq_net::{NetClient, NetRequest, NetServer};
use mvq_obs::MetricValue;
use mvq_serve::CompressionService;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Warm round trips timed on the sustained connection, after priming.
const SUSTAINED_ROUNDS: usize = 400;
/// Concurrent connections in the saturation pass.
const SATURATION_CONNECTIONS: usize = 8;
/// Warm round trips each saturation connection drives.
const SATURATION_ROUNDS: usize = 100;
/// Distinct compressions in the cold pass.
const COLD_JOBS: usize = 24;

/// Pinned sustained warm-hit p50 from the PR 8/9 runs this bench
/// regresses against (µs).
const PIN_P50_US: f64 = 244.0;
/// Pinned sustained warm-hit p99 (µs).
const PIN_P99_US: f64 = 293.0;
/// How far over a pin the measured latency may drift before the
/// env-gated regression assert fires.
const PIN_TOLERANCE: f64 = 1.05;
/// Absolute ceiling (µs) the sustained p99 must stay under on any box,
/// gated or not — generous enough for noisy shared hardware, tight
/// enough to catch a hot path falling off a cliff (e.g. a lock or an
/// extra decode landing on the warm-hit path).
const ABSOLUTE_P99_CEILING_US: f64 = 20_000.0;

/// The benchmark weight: a mid-sized conv-shaped matrix (512 subvectors
/// of length 16 → a ~32 KiB request payload and a few-KiB artifact).
fn weight(seed: u64) -> mvq_tensor::Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    mvq_tensor::kaiming_normal(vec![512, 16], 16, &mut rng)
}

fn spec() -> PipelineSpec {
    PipelineSpec { k: 16, swap_trials: 100, ..PipelineSpec::default() }
}

fn request(name: String, seed: u64) -> NetRequest {
    let mut request = NetRequest::new(name, weight(seed), "mvq");
    request.spec = spec();
    request.seed = Some(seed);
    request
}

fn submit_checked(client: &mut NetClient, request: &NetRequest) -> mvq_net::NetOutcome {
    let outcome = client.submit(request).unwrap_or_else(|e| panic!("bench job failed: {e}"));
    let artifact = outcome.artifact().expect("decode served artifact");
    assert_eq!(
        artifact.reconstruct().expect("reconstruct").dims(),
        request.weight.dims(),
        "served artifact diverges from the submitted shape"
    );
    outcome
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    sorted_us[((sorted_us.len() - 1) as f64 * p).round() as usize] as f64
}

fn main() {
    let service = CompressionService::builder().build().expect("in-memory service");
    let workers = service.workers();
    let mut server = NetServer::bind("127.0.0.1:0", service).expect("bind loopback server");
    let addr = server.local_addr();

    // -- sustained: one connection, warm hits, per-round-trip latency --
    let mut sustained = NetClient::connect(addr).expect("connect sustained client");
    let warm = request("warm".into(), 1);
    let primed = submit_checked(&mut sustained, &warm);
    assert!(!primed.from_cache, "the priming submission must compress fresh");
    // the on-wire request size (length prefix + frame), for context
    let request_bytes = 4 + mvq_net::WireRequest {
        id: 0,
        name: warm.name.clone(),
        algo: warm.algo.clone(),
        spec: warm.spec.clone(),
        seed: warm.seed,
        priority: warm.priority,
        cache_mode: warm.cache_mode,
        deadline_ms: None,
        weight: warm.weight.clone(),
    }
    .encode()
    .expect("encode request")
    .len();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(SUSTAINED_ROUNDS);
    let sustained_t0 = Instant::now();
    for _ in 0..SUSTAINED_ROUNDS {
        let t = Instant::now();
        let outcome = submit_checked(&mut sustained, &warm);
        latencies_us.push(t.elapsed().as_micros() as u64);
        assert!(outcome.from_cache, "the sustained pass must never recompress");
    }
    let sustained_secs = sustained_t0.elapsed().as_secs_f64();
    let artifact_bytes = primed.bytes.len();
    drop(sustained);
    latencies_us.sort_unstable();

    // -- saturation: concurrent connections, aggregate throughput --
    let saturation_t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..SATURATION_CONNECTIONS {
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect saturation client");
                let warm = request(format!("sat-{c}"), 1);
                for _ in 0..SATURATION_ROUNDS {
                    let outcome = submit_checked(&mut client, &warm);
                    assert!(outcome.from_cache, "the saturation pass must never recompress");
                }
            });
        }
    });
    let saturation_secs = saturation_t0.elapsed().as_secs_f64();

    // -- cold: distinct keys, the compression-bound path over the wire --
    let mut cold_client = NetClient::connect(addr).expect("connect cold client");
    let cold_t0 = Instant::now();
    for j in 0..COLD_JOBS {
        let seed = 1000 + j as u64;
        let outcome = submit_checked(&mut cold_client, &request(format!("cold-{j}"), seed));
        assert!(!outcome.from_cache && !outcome.deduped, "cold jobs must compress fresh");
    }
    let cold_secs = cold_t0.elapsed().as_secs_f64();
    drop(cold_client);

    // snapshot the registry before shutdown counters settle — this is
    // the observability artifact CI uploads next to the latency numbers
    let registry_snapshot = server.registry().snapshot();

    server.shutdown();
    let stats = server.stats();
    let expected_ok =
        (1 + SUSTAINED_ROUNDS + SATURATION_CONNECTIONS * SATURATION_ROUNDS + COLD_JOBS) as u64;
    assert_eq!(stats.responses_ok, expected_ok, "the server's accounting disagrees with the bench");
    assert_eq!(stats.responses_err, 0, "no bench job may fail");
    assert_eq!(stats.protocol_errors, 0, "the bench speaks the protocol");

    let p50 = percentile(&latencies_us, 0.50);
    let p99 = percentile(&latencies_us, 0.99);

    let mut report = BenchReport::new("net");
    report
        .field_str("workload", "mvq 512x16 k=16 over loopback TCP")
        .field_u64("workers", workers as u64)
        .field_u64("request_bytes", request_bytes as u64)
        .field_u64("artifact_bytes", artifact_bytes as u64)
        .field_u64("sustained_rounds", SUSTAINED_ROUNDS as u64)
        .field_f64("sustained_p50_us", p50, 1)
        .field_f64("sustained_p99_us", p99, 1)
        .field_f64("sustained_jobs_per_s", SUSTAINED_ROUNDS as f64 / sustained_secs, 2)
        .field_f64("pin_p50_us", PIN_P50_US, 1)
        .field_f64("pin_p99_us", PIN_P99_US, 1)
        .field_u64("saturation_connections", SATURATION_CONNECTIONS as u64)
        .field_u64("saturation_rounds_per_conn", SATURATION_ROUNDS as u64)
        .field_f64(
            "saturation_jobs_per_s",
            (SATURATION_CONNECTIONS * SATURATION_ROUNDS) as f64 / saturation_secs,
            2,
        )
        .field_u64("cold_jobs", COLD_JOBS as u64)
        .field_f64("cold_jobs_per_s", COLD_JOBS as f64 / cold_secs, 2)
        .field_u64("server_connections", stats.connections)
        .field_u64("server_requests", stats.requests)
        .field_u64("server_responses_ok", stats.responses_ok);
    report.write();

    write_registry_snapshot(&registry_snapshot);

    // the warm hit path must never fall off a cliff, on any box
    assert!(
        p99 <= ABSOLUTE_P99_CEILING_US,
        "sustained p99 {p99:.1}µs blows the absolute ceiling {ABSOLUTE_P99_CEILING_US:.0}µs"
    );
    // the strict 5%-over-pin regression gate runs where the pins were
    // measured (dedicated CI hardware); dev boxes opt in via env
    if std::env::var("MVQ_NET_ASSERT_PINS").as_deref() == Ok("1") {
        assert!(
            p50 <= PIN_P50_US * PIN_TOLERANCE,
            "sustained p50 {p50:.1}µs regressed more than 5% over the {PIN_P50_US:.0}µs pin"
        );
        assert!(
            p99 <= PIN_P99_US * PIN_TOLERANCE,
            "sustained p99 {p99:.1}µs regressed more than 5% over the {PIN_P99_US:.0}µs pin"
        );
        eprintln!("pin gate passed: p50 {p50:.1}µs / p99 {p99:.1}µs within 5% of pins");
    } else {
        eprintln!(
            "pin gate skipped (set MVQ_NET_ASSERT_PINS=1 to enforce): \
             p50 {p50:.1}µs vs pin {PIN_P50_US:.0}µs, p99 {p99:.1}µs vs pin {PIN_P99_US:.0}µs"
        );
    }
}

/// Lands the serving stack's full metric registry next to the latency
/// numbers as `BENCH_net_registry.json` — every store/serve/net/stream
/// counter, gauge, and histogram the bench run produced.
fn write_registry_snapshot(snapshot: &mvq_obs::RegistrySnapshot) {
    let mut report = BenchReport::new("net_registry");
    for metric in &snapshot.metrics {
        match metric.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                report.field_u64(metric.name, v);
            }
            MetricValue::Histogram(h) => {
                report
                    .field_u64(&format!("{}.count", metric.name), h.count)
                    .field_u64(&format!("{}.p50", metric.name), h.p50)
                    .field_u64(&format!("{}.p90", metric.name), h.p90)
                    .field_u64(&format!("{}.p99", metric.name), h.p99)
                    .field_u64(&format!("{}.max", metric.name), h.max);
            }
        }
    }
    report.write();
}
