//! Measures the TCP serving front over loopback and records the result
//! in `BENCH_net.json`.
//!
//! Three passes against an in-process [`NetServer`] on `127.0.0.1:0`,
//! all through real sockets (connect, length-prefixed frames, checksum
//! validation on both sides — nothing is short-circuited in process):
//!
//! * **sustained** — one connection submits warm cache hits
//!   back-to-back and times every round trip; `sustained_p50_us` /
//!   `sustained_p99_us` is the wire + service hot-path latency (the
//!   response body is the cache's own blob, served zero-copy);
//! * **saturation** — [`SATURATION_CONNECTIONS`] concurrent connections
//!   hammer warm hits; the aggregate rate is the front's loopback
//!   throughput ceiling, `saturation_jobs_per_s`;
//! * **cold** — distinct never-cached jobs over one connection measure
//!   the compression-bound path (`cold_jobs_per_s`), confirming the
//!   wire adds overhead only in the microseconds.
//!
//! Every pass asserts the served artifact reconstructs to the submitted
//! shape before any number is reported, and the pass accounting is
//! cross-checked against the server's own counters at the end.
//!
//! Usage: `cargo run --release -p mvq-bench --bin bench_net`

use std::time::Instant;

use mvq_core::pipeline::PipelineSpec;
use mvq_net::{NetClient, NetRequest, NetServer};
use mvq_serve::CompressionService;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Warm round trips timed on the sustained connection, after priming.
const SUSTAINED_ROUNDS: usize = 400;
/// Concurrent connections in the saturation pass.
const SATURATION_CONNECTIONS: usize = 8;
/// Warm round trips each saturation connection drives.
const SATURATION_ROUNDS: usize = 100;
/// Distinct compressions in the cold pass.
const COLD_JOBS: usize = 24;

/// The benchmark weight: a mid-sized conv-shaped matrix (512 subvectors
/// of length 16 → a ~32 KiB request payload and a few-KiB artifact).
fn weight(seed: u64) -> mvq_tensor::Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    mvq_tensor::kaiming_normal(vec![512, 16], 16, &mut rng)
}

fn spec() -> PipelineSpec {
    PipelineSpec { k: 16, swap_trials: 100, ..PipelineSpec::default() }
}

fn request(name: String, seed: u64) -> NetRequest {
    let mut request = NetRequest::new(name, weight(seed), "mvq");
    request.spec = spec();
    request.seed = Some(seed);
    request
}

fn submit_checked(client: &mut NetClient, request: &NetRequest) -> mvq_net::NetOutcome {
    let outcome = client.submit(request).unwrap_or_else(|e| panic!("bench job failed: {e}"));
    let artifact = outcome.artifact().expect("decode served artifact");
    assert_eq!(
        artifact.reconstruct().expect("reconstruct").dims(),
        request.weight.dims(),
        "served artifact diverges from the submitted shape"
    );
    outcome
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    sorted_us[((sorted_us.len() - 1) as f64 * p).round() as usize] as f64
}

fn main() {
    let service = CompressionService::builder().build().expect("in-memory service");
    let workers = service.workers();
    let mut server = NetServer::bind("127.0.0.1:0", service).expect("bind loopback server");
    let addr = server.local_addr();

    // -- sustained: one connection, warm hits, per-round-trip latency --
    let mut sustained = NetClient::connect(addr).expect("connect sustained client");
    let warm = request("warm".into(), 1);
    let primed = submit_checked(&mut sustained, &warm);
    assert!(!primed.from_cache, "the priming submission must compress fresh");
    // the on-wire request size (length prefix + frame), for context
    let request_bytes = 4 + mvq_net::WireRequest {
        id: 0,
        name: warm.name.clone(),
        algo: warm.algo.clone(),
        spec: warm.spec.clone(),
        seed: warm.seed,
        priority: warm.priority,
        cache_mode: warm.cache_mode,
        deadline_ms: None,
        weight: warm.weight.clone(),
    }
    .encode()
    .expect("encode request")
    .len();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(SUSTAINED_ROUNDS);
    let sustained_t0 = Instant::now();
    for _ in 0..SUSTAINED_ROUNDS {
        let t = Instant::now();
        let outcome = submit_checked(&mut sustained, &warm);
        latencies_us.push(t.elapsed().as_micros() as u64);
        assert!(outcome.from_cache, "the sustained pass must never recompress");
    }
    let sustained_secs = sustained_t0.elapsed().as_secs_f64();
    let artifact_bytes = primed.bytes.len();
    drop(sustained);
    latencies_us.sort_unstable();

    // -- saturation: concurrent connections, aggregate throughput --
    let saturation_t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..SATURATION_CONNECTIONS {
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect saturation client");
                let warm = request(format!("sat-{c}"), 1);
                for _ in 0..SATURATION_ROUNDS {
                    let outcome = submit_checked(&mut client, &warm);
                    assert!(outcome.from_cache, "the saturation pass must never recompress");
                }
            });
        }
    });
    let saturation_secs = saturation_t0.elapsed().as_secs_f64();

    // -- cold: distinct keys, the compression-bound path over the wire --
    let mut cold_client = NetClient::connect(addr).expect("connect cold client");
    let cold_t0 = Instant::now();
    for j in 0..COLD_JOBS {
        let seed = 1000 + j as u64;
        let outcome = submit_checked(&mut cold_client, &request(format!("cold-{j}"), seed));
        assert!(!outcome.from_cache && !outcome.deduped, "cold jobs must compress fresh");
    }
    let cold_secs = cold_t0.elapsed().as_secs_f64();
    drop(cold_client);

    server.shutdown();
    let stats = server.stats();
    let expected_ok =
        (1 + SUSTAINED_ROUNDS + SATURATION_CONNECTIONS * SATURATION_ROUNDS + COLD_JOBS) as u64;
    assert_eq!(stats.responses_ok, expected_ok, "the server's accounting disagrees with the bench");
    assert_eq!(stats.responses_err, 0, "no bench job may fail");
    assert_eq!(stats.protocol_errors, 0, "the bench speaks the protocol");

    let json = format!(
        "{{\n  \"workload\": \"mvq 512x16 k=16 over loopback TCP\",\n  \"workers\": {workers},\n  \"request_bytes\": {request_bytes},\n  \"artifact_bytes\": {artifact_bytes},\n  \"sustained_rounds\": {SUSTAINED_ROUNDS},\n  \"sustained_p50_us\": {:.1},\n  \"sustained_p99_us\": {:.1},\n  \"sustained_jobs_per_s\": {:.2},\n  \"saturation_connections\": {SATURATION_CONNECTIONS},\n  \"saturation_rounds_per_conn\": {SATURATION_ROUNDS},\n  \"saturation_jobs_per_s\": {:.2},\n  \"cold_jobs\": {COLD_JOBS},\n  \"cold_jobs_per_s\": {:.2},\n  \"server_connections\": {},\n  \"server_requests\": {},\n  \"server_responses_ok\": {}\n}}\n",
        percentile(&latencies_us, 0.50),
        percentile(&latencies_us, 0.99),
        SUSTAINED_ROUNDS as f64 / sustained_secs,
        (SATURATION_CONNECTIONS * SATURATION_ROUNDS) as f64 / saturation_secs,
        COLD_JOBS as f64 / cold_secs,
        stats.connections,
        stats.requests,
        stats.responses_ok,
    );
    print!("{json}");
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    eprintln!("wrote BENCH_net.json");
}
