//! Measures the batch compression service on the ResNet-18-lite workload
//! and records the result in `BENCH_service.json`.
//!
//! Three passes over the same job set (every compressible conv × the
//! `mvq` / `vq-a` / `bgd` registry algorithms, with duplicate jobs mixed
//! in to exercise in-flight dedup):
//!
//! * **cold** — empty cache, every unique job compresses fresh;
//! * **warm** — same batch again, every unique job answers from cache;
//! * **disk** — a brand-new service over the blob directory the cold run
//!   persisted, measuring decode-from-disk serving.
//!
//! The binary asserts warm and disk artifacts are bit-identical to the
//! cold ones before reporting any number — a service that served wrong
//! bytes fast would be measuring the wrong thing.
//!
//! Usage: `cargo run --release -p mvq-bench --bin bench_service`

use std::time::Instant;

use mvq_core::pipeline::PipelineSpec;
use mvq_core::CompressedArtifact;
use mvq_nn::models::Arch;
use mvq_serve::{BatchCompressionService, BatchReport, CompressionJob};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ALGOS: [&str; 3] = ["mvq", "vq-a", "bgd"];
const DUPLICATES: usize = 2;

fn main() {
    let mut rng = StdRng::seed_from_u64(0);
    let model = Arch::ResNet18.build(8, &mut rng);
    let mut weights = Vec::new();
    model.visit_convs(&mut |conv| weights.push(conv.weight.value.clone()));
    let spec = PipelineSpec::default();

    // every compressible conv × algorithm, plus DUPLICATES copies of each
    // job so the in-flight dedup path is on the measured path
    let jobs = || -> Vec<CompressionJob> {
        let mut jobs = Vec::new();
        for algo in ALGOS {
            for (i, w) in weights.iter().enumerate() {
                if w.dims()[0] % spec.d != 0 {
                    continue; // not groupable at the paper's operating point
                }
                for copy in 0..=DUPLICATES {
                    jobs.push(CompressionJob::new(
                        format!("conv{i}-{algo}-{copy}"),
                        w.clone(),
                        algo,
                        spec.clone(),
                    ));
                }
            }
        }
        jobs
    };

    let cache_dir = std::env::temp_dir().join("mvq-bench-service-cache");
    let _ = std::fs::remove_dir_all(&cache_dir);

    let cold_service = BatchCompressionService::with_cache_dir(&cache_dir).expect("cache dir");
    let (cold_secs, cold) = timed(|| cold_service.submit(jobs()).expect("cold batch"));
    let (warm_secs, warm) = timed(|| cold_service.submit(jobs()).expect("warm batch"));

    // a fresh process over the same blob directory: serving = disk decode
    let disk_service = BatchCompressionService::with_cache_dir(&cache_dir).expect("cache dir");
    let (disk_secs, disk) = timed(|| disk_service.submit(jobs()).expect("disk batch"));

    assert_eq!(cold.cache_hits, 0, "cold run must start empty");
    assert_eq!(warm.compressed, 0, "warm run must be all hits");
    assert_eq!(disk.compressed, 0, "disk run must be all hits");
    for (label, rerun) in [("warm", &warm), ("disk", &disk)] {
        for (a, b) in cold.outcomes.iter().zip(&rerun.outcomes) {
            assert_eq!(
                bits(&a.artifact),
                bits(&b.artifact),
                "{label} serve of {} diverges from cold compression",
                a.name
            );
        }
    }

    let n_jobs = cold.outcomes.len();
    let jps = |secs: f64| n_jobs as f64 / secs;
    let algo_list = ALGOS.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(", ");
    let json = format!(
        "{{\n  \"workload\": \"resnet18-lite\",\n  \"algorithms\": [{algo_list}],\n  \"jobs\": {n_jobs},\n  \"unique_jobs\": {},\n  \"deduped_jobs\": {},\n  \"cold_s\": {:.3},\n  \"cold_jobs_per_s\": {:.2},\n  \"warm_s\": {:.3},\n  \"warm_jobs_per_s\": {:.2},\n  \"warm_speedup\": {:.1},\n  \"warm_hit_rate\": {:.4},\n  \"disk_s\": {:.3},\n  \"disk_jobs_per_s\": {:.2},\n  \"disk_hit_rate\": {:.4}\n}}\n",
        cold.unique_jobs,
        cold.deduped_jobs,
        cold_secs,
        jps(cold_secs),
        warm_secs,
        jps(warm_secs),
        cold_secs / warm_secs,
        hit_rate(&warm),
        disk_secs,
        jps(disk_secs),
        hit_rate(&disk),
    );
    print!("{json}");
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    eprintln!("wrote BENCH_service.json");
    let _ = std::fs::remove_dir_all(&cache_dir);
}

fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}

fn bits(a: &CompressedArtifact) -> Vec<u32> {
    a.reconstruct().expect("reconstruct").data().iter().map(|v| v.to_bits()).collect()
}

fn hit_rate(report: &BatchReport) -> f64 {
    report.cache_hits as f64 / report.unique_jobs.max(1) as f64
}
