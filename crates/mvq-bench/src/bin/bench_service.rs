//! Measures the ticket-based compression service on the ResNet-18-lite
//! workload and records the result in `BENCH_service.json`.
//!
//! Four passes over the same job set (every compressible conv × the
//! `mvq` / `vq-a` / `bgd` registry algorithms, with duplicate jobs mixed
//! in to exercise in-flight dedup), all through
//! `CompressionService::submit_one` + `Ticket::wait` over the worker
//! pool:
//!
//! * **cold** — empty cache, every distinct key compresses fresh;
//! * **warm** — same jobs again, every ticket answers from cache; this
//!   pass doubles as the queue-throughput measurement (`queue_jobs_per_s`
//!   is pure submit→pool→ticket overhead, no compression on the path);
//! * **disk** — a brand-new service over the blob directory the cold run
//!   persisted, measuring decode-from-disk serving;
//! * **evicted** — a brand-new service over the same directory under a
//!   disk byte budget of ~half the blob bytes: the restart scan prunes
//!   LRU-first, then the pass measures the warm-vs-evicted hit-rate
//!   split (evicted keys recompress, surviving keys hit).
//!
//! Two further **hit-path latency** passes measure warm submit→wait
//! round trips under 16 concurrent submitter threads against in-memory
//! services: a single-shard baseline that decodes every outcome (the
//! cost profile of the old single-lock cache) versus the default sharded
//! cache served zero-copy (`hit_baseline_*` / `hit_sharded_*` p50/p99).
//!
//! The binary asserts every pass is bit-identical to the cold artifacts
//! before reporting any number — a service that served wrong bytes fast
//! would be measuring the wrong thing.
//!
//! Usage: `cargo run --release -p mvq-bench --bin bench_service`

use std::collections::HashSet;
use std::time::Instant;

use mvq_bench::report::BenchReport;
use mvq_core::pipeline::PipelineSpec;
use mvq_core::CompressedArtifact;
use mvq_nn::models::Arch;
use mvq_serve::{CachePolicy, CompressionRequest, CompressionService, JobOutcome, Ticket};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ALGOS: [&str; 3] = ["mvq", "vq-a", "bgd"];
const DUPLICATES: usize = 2;
/// Concurrent submitter threads in the warm hit-path latency passes.
const HIT_SUBMITTERS: usize = 16;
/// Warm submissions each submitter thread times, after priming.
const HIT_ROUNDS: usize = 40;

fn main() {
    let mut rng = StdRng::seed_from_u64(0);
    let model = Arch::ResNet18.build(8, &mut rng);
    let mut weights = Vec::new();
    model.visit_convs(&mut |conv| weights.push(conv.weight.value.clone()));
    let spec = PipelineSpec::default();

    // every compressible conv × algorithm, plus DUPLICATES copies of each
    // job so the in-flight dedup path is on the measured path
    let requests = || -> Vec<CompressionRequest> {
        let mut requests = Vec::new();
        for algo in ALGOS {
            for (i, w) in weights.iter().enumerate() {
                if w.dims()[0] % spec.d != 0 {
                    continue; // not groupable at the paper's operating point
                }
                for copy in 0..=DUPLICATES {
                    requests.push(
                        CompressionRequest::builder(
                            format!("conv{i}-{algo}-{copy}"),
                            w.clone(),
                            algo,
                        )
                        .spec(spec.clone())
                        .build()
                        .expect("bench request is valid"),
                    );
                }
            }
        }
        requests
    };
    let cache_dir = std::env::temp_dir().join("mvq-bench-service-cache");
    let _ = std::fs::remove_dir_all(&cache_dir);

    let cold_service = CompressionService::with_cache_dir(&cache_dir).expect("cache dir");
    let workers = cold_service.workers();
    let (cold_secs, cold) = run_pass(&cold_service, requests());
    let distinct = {
        let mut keys = HashSet::new();
        for outcome in &cold.outcomes {
            keys.insert(outcome.key.clone());
        }
        keys.len()
    };
    assert_eq!(cold.fresh, distinct, "cold run must compress every distinct key exactly once");
    let (warm_secs, warm) = run_pass(&cold_service, requests());
    assert_eq!(warm.fresh, 0, "warm run must be all hits");
    let disk_bytes_unbounded = cold_service.cache().disk_bytes();
    let disk_len_unbounded = cold_service.cache().disk_len();
    let memory_bytes = cold_service.cache().memory_bytes();
    drop(cold_service);

    // a fresh process over the same blob directory: serving = disk decode
    let disk_service = CompressionService::with_cache_dir(&cache_dir).expect("cache dir");
    let (disk_secs, disk) = run_pass(&disk_service, requests());
    assert_eq!(disk.fresh, 0, "disk run must be all hits");
    drop(disk_service);

    // the eviction pass: a disk budget of ~half the blob bytes prunes the
    // stalest blobs at startup; evicted keys recompress, survivors hit
    let disk_budget = disk_bytes_unbounded / 2;
    let evicted_service = CompressionService::builder()
        .cache_dir(&cache_dir)
        .cache_policy(CachePolicy::UNBOUNDED.with_disk_budget(disk_budget))
        .build()
        .expect("cache dir");
    let evicted_at_start = evicted_service.cache_stats().disk_evictions;
    assert!(evicted_at_start > 0, "the budget must have evicted something");
    // serve the surviving (most recently written) blobs first: replaying
    // the original write order into an LRU cache at half capacity is the
    // classic thrashing worst case (every recompression evicts the next
    // survivor just before its job arrives, hit rate 0), which would
    // measure the pathology instead of the warm-vs-evicted split
    let mut evicted_requests = requests();
    evicted_requests.reverse();
    let (evicted_secs, evicted) = run_pass(&evicted_service, evicted_requests);
    assert!(evicted.fresh > 0, "some keys must have recompressed after eviction");
    assert!(
        evicted_service.cache().disk_bytes() <= disk_budget,
        "disk budget exceeded: {} > {disk_budget}",
        evicted_service.cache().disk_bytes()
    );
    let evicted_stats = evicted_service.cache_stats();
    drop(evicted_service);

    let cold_bits: std::collections::HashMap<&str, Vec<u32>> = cold
        .outcomes
        .iter()
        .map(|o| (o.name.as_str(), bits(&o.artifact().expect("decode cold artifact"))))
        .collect();
    for (label, rerun) in [("warm", &warm), ("disk", &disk), ("evicted", &evicted)] {
        for outcome in &rerun.outcomes {
            assert_eq!(
                cold_bits[outcome.name.as_str()],
                bits(&outcome.artifact().expect("decode served artifact")),
                "{label} serve of {} diverges from cold compression",
                outcome.name
            );
        }
    }

    // warm hit-path latency under contention: HIT_SUBMITTERS threads
    // hammering submit+wait over a pre-primed in-memory cache. The
    // baseline pins the cache to one shard and decodes every outcome
    // (the old single-lock, decode-per-hit serving); the sharded pass
    // uses the default shard count and the zero-copy bytes accessor.
    let hit_weights: Vec<_> =
        weights.iter().filter(|w| w.dims()[0] % spec.d == 0).cloned().collect();
    let baseline = hit_pass(&hit_weights, &spec, 1, true);
    let sharded = hit_pass(&hit_weights, &spec, mvq_core::store::DEFAULT_SHARDS, false);

    let n_jobs = cold.outcomes.len();
    let jps = |secs: f64| n_jobs as f64 / secs;
    let hit_rate = |pass: &Pass| 1.0 - pass.fresh as f64 / distinct.max(1) as f64;
    let mut report = BenchReport::new("service");
    report
        .field_str("workload", "resnet18-lite")
        .field_str_list("algorithms", &ALGOS)
        .field_u64("jobs", n_jobs as u64)
        .field_u64("unique_jobs", distinct as u64)
        .field_u64("deduped_jobs", cold.deduped as u64)
        .field_u64("workers", workers as u64)
        .field_f64("cold_s", cold_secs, 3)
        .field_f64("cold_jobs_per_s", jps(cold_secs), 2)
        .field_f64("warm_s", warm_secs, 3)
        .field_f64("warm_jobs_per_s", jps(warm_secs), 2)
        .field_f64("warm_speedup", cold_secs / warm_secs, 1)
        .field_f64("warm_hit_rate", hit_rate(&warm), 4)
        .field_f64("queue_jobs_per_s", jps(warm_secs), 2)
        .field_f64("disk_s", disk_secs, 3)
        .field_f64("disk_jobs_per_s", jps(disk_secs), 2)
        .field_f64("disk_hit_rate", hit_rate(&disk), 4)
        .field_f64("evicted_s", evicted_secs, 3)
        .field_f64("evicted_jobs_per_s", jps(evicted_secs), 2)
        .field_f64("evicted_hit_rate", hit_rate(&evicted), 4)
        .field_u64("disk_budget_bytes", disk_budget)
        .field_u64("disk_evictions", evicted_stats.disk_evictions)
        .field_u64("cache_memory_bytes", memory_bytes)
        .field_u64("cache_disk_bytes", disk_bytes_unbounded)
        .field_u64("cache_disk_len", disk_len_unbounded as u64)
        .field_u64("hit_submitters", HIT_SUBMITTERS as u64)
        .field_u64("hit_rounds", HIT_ROUNDS as u64)
        .field_u64("hit_baseline_shards", 1)
        .field_f64("hit_baseline_p50_us", baseline.p50_us, 1)
        .field_f64("hit_baseline_p99_us", baseline.p99_us, 1)
        .field_f64("hit_baseline_jobs_per_s", baseline.jobs_per_s, 2)
        .field_u64("hit_sharded_shards", mvq_core::store::DEFAULT_SHARDS as u64)
        .field_f64("hit_sharded_p50_us", sharded.p50_us, 1)
        .field_f64("hit_sharded_p99_us", sharded.p99_us, 1)
        .field_f64("hit_sharded_jobs_per_s", sharded.jobs_per_s, 2);
    report.write();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// What one submit-all/wait-all pass observed.
struct Pass {
    outcomes: Vec<JobOutcome>,
    /// Outcomes that ran a fresh compression (neither cache hit nor
    /// dedup rider) — exactly the recompression count.
    fresh: usize,
    /// Outcomes that shared an in-flight job's compression.
    deduped: usize,
}

fn run_pass(service: &CompressionService, requests: Vec<CompressionRequest>) -> (f64, Pass) {
    let t0 = Instant::now();
    let tickets: Vec<Ticket> = requests.into_iter().map(|r| service.submit_one(r)).collect();
    let outcomes: Vec<JobOutcome> = tickets
        .into_iter()
        .map(|t| t.wait().unwrap_or_else(|e| panic!("bench job failed: {e}")))
        .collect();
    let secs = t0.elapsed().as_secs_f64();
    let fresh = outcomes.iter().filter(|o| !o.from_cache && !o.deduped).count();
    let deduped = outcomes.iter().filter(|o| o.deduped).count();
    (secs, Pass { outcomes, fresh, deduped })
}

fn bits(a: &CompressedArtifact) -> Vec<u32> {
    a.reconstruct().expect("reconstruct").data().iter().map(|v| v.to_bits()).collect()
}

/// Percentile latencies of one warm hit-path configuration.
struct HitStats {
    p50_us: f64,
    p99_us: f64,
    jobs_per_s: f64,
}

/// Times warm hits under contention: primes an in-memory service split
/// into `shards` lock domains with every key, then [`HIT_SUBMITTERS`]
/// threads each time [`HIT_ROUNDS`] submit→wait round trips. With
/// `decode` every outcome is decoded in the timed window (the cost the
/// old single-lock cache paid inside every hit); without it the timed
/// window touches only the shared-bytes accessor.
fn hit_pass(
    weights: &[mvq_tensor::Tensor],
    spec: &PipelineSpec,
    shards: usize,
    decode: bool,
) -> HitStats {
    let service = CompressionService::builder()
        .workers(HIT_SUBMITTERS)
        .cache_policy(CachePolicy::UNBOUNDED.with_shards(shards))
        .build()
        .expect("in-memory hit service");
    let request = |label: String, idx: usize| {
        CompressionRequest::builder(label, weights[idx].clone(), "mvq")
            .spec(spec.clone())
            .build()
            .expect("bench request is valid")
    };
    let prime: Vec<Ticket> =
        (0..weights.len()).map(|i| service.submit_one(request(format!("prime-{i}"), i))).collect();
    for ticket in prime {
        ticket.wait().expect("prime job");
    }

    let t0 = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..HIT_SUBMITTERS)
            .map(|tid| {
                let (service, request) = (&service, &request);
                scope.spawn(move || {
                    let mut samples = Vec::with_capacity(HIT_ROUNDS);
                    for round in 0..HIT_ROUNDS {
                        // stagger start keys so threads mostly touch
                        // different shards (and rarely dedup-collide)
                        let idx = (tid + round) % weights.len();
                        let t = Instant::now();
                        let outcome = service
                            .submit_one(request(format!("hit-{tid}-{round}"), idx))
                            .wait()
                            .expect("warm hit job");
                        if decode {
                            assert!(
                                outcome.artifact().expect("decode").compression_ratio() > 1.0,
                                "warm hit decoded to a degenerate artifact"
                            );
                        } else {
                            assert!(outcome.raw_bytes().is_some(), "warm hit must carry bytes");
                        }
                        samples.push(t.elapsed().as_micros() as u64);
                        assert!(outcome.from_cache, "the hit pass must never recompress");
                    }
                    samples
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("submitter thread")).collect()
    });
    let secs = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let percentile = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize] as f64;
    HitStats {
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        jobs_per_s: latencies.len() as f64 / secs,
    }
}
