//! `paper` — regenerate any table or figure of the MVQ paper, or drive
//! the compression service from the command line.
//!
//! ```text
//! paper <experiment>... [--quick]
//! paper compress [--algo <name>,...] [--kernel <strategy>] [--cache-dir <dir>]
//!                [--stream] ...
//! paper serve    [--addr <host:port>] [--workers <n>] [--cache-dir <dir>] ...
//! paper client   [--addr <host:port>] [--algo <name>,...] [--deadline-ms <ms>] ...
//! paper stats    [--addr <host:port>] [--traces <n>]
//!
//! experiments: table1 table2 table3 table4 table5 table6 table7 table8
//!              table9 fig10 fig11 fig13 fig14 fig15 fig16 fig17 fig18
//!              fig19 fig20 | hw | alg | all
//! ```
//!
//! Hardware experiments (tables 2/7/8/9, figs 14-20) run in seconds.
//! Algorithm experiments train the lite model zoo on synthetic data;
//! run them with `--release` (and optionally `--quick` for a smoke pass).
//! `paper compress` rides the ticket-based `CompressionService` — see
//! `mvq_bench::cli` for the flag reference (`--stream` submits the whole
//! model as one bounded-memory streaming job per algorithm). `paper
//! serve` puts that service on a TCP listener (graceful drain on stdin
//! close) and `paper client` drives one over a sustained connection —
//! see `mvq_bench::net_cli`.

use std::process::ExitCode;

use mvq_bench::{hw, tables, ExperimentConfig};

const HW_EXPERIMENTS: [&str; 10] =
    ["table2", "table7", "table8", "table9", "fig14", "fig15", "fig16", "fig17", "fig18", "fig20"];
const ALG_EXPERIMENTS: [&str; 8] =
    ["table1", "table3", "table4", "table5", "table6", "fig10", "fig11", "fig13"];
const EXT_EXPERIMENTS: [&str; 2] = ["ext1", "ext2"];

fn run_one(name: &str, cfg: &ExperimentConfig) -> Option<String> {
    let out = match name {
        "table1" => tables::table1(cfg),
        "table2" => hw::table2(),
        "table3" => tables::table3(cfg),
        "table4" => tables::table4(cfg),
        "table5" => tables::table5(cfg),
        "table6" => tables::table6(cfg),
        "table7" => hw::table7(),
        "table8" => hw::table8(),
        "table9" => hw::table9(),
        "fig10" => tables::fig10(cfg),
        "fig11" => tables::fig11(cfg),
        "fig13" => tables::fig13(cfg),
        "fig14" => hw::fig14(),
        "fig15" => hw::fig15(),
        "fig16" => hw::fig16(),
        "fig17" => hw::fig17(),
        "fig18" => hw::fig18(),
        "fig19" => hw::fig19(),
        "fig20" => hw::fig20(),
        "ext1" => mvq_bench::ext::ext1(cfg),
        "ext2" => mvq_bench::ext::ext2(cfg),
        _ => return None,
    };
    Some(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compress") => return mvq_bench::cli::run_compress(&args[1..]),
        Some("serve") => return mvq_bench::net_cli::run_serve(&args[1..]),
        Some("client") => return mvq_bench::net_cli::run_client(&args[1..]),
        Some("stats") => return mvq_bench::net_cli::run_stats(&args[1..]),
        _ => {}
    }
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::full() };
    let mut requested: Vec<String> = args.into_iter().filter(|a| a != "--quick").collect();
    if requested.is_empty() {
        eprintln!(
            "usage: paper <experiment>... [--quick]\n\
             \x20      paper compress [--algo <name>,...] [--kernel <strategy>] \
             [--cache-dir <dir>] [--stream] ...\n\
             \x20      paper serve [--addr <host:port>] [--workers <n>] [--cache-dir <dir>] ...\n\
             \x20      paper client [--addr <host:port>] [--algo <name>,...] \
             [--deadline-ms <ms>] ...\n\
             \x20      paper stats [--addr <host:port>] [--traces <n>]\n\
             experiments: {} {} fig19 ext1 ext2 | hw | alg | ext | all",
            HW_EXPERIMENTS.join(" "),
            ALG_EXPERIMENTS.join(" ")
        );
        return ExitCode::FAILURE;
    }
    // expand group names
    let mut expanded = Vec::new();
    for r in requested.drain(..) {
        match r.as_str() {
            "hw" => {
                expanded.extend(HW_EXPERIMENTS.iter().map(|s| s.to_string()));
                expanded.push("fig19".into());
            }
            "alg" => expanded.extend(ALG_EXPERIMENTS.iter().map(|s| s.to_string())),
            "ext" => expanded.extend(EXT_EXPERIMENTS.iter().map(|s| s.to_string())),
            "all" => {
                expanded.extend(ALG_EXPERIMENTS.iter().map(|s| s.to_string()));
                expanded.extend(HW_EXPERIMENTS.iter().map(|s| s.to_string()));
                expanded.push("fig19".into());
                expanded.extend(EXT_EXPERIMENTS.iter().map(|s| s.to_string()));
            }
            other => expanded.push(other.to_string()),
        }
    }
    expanded.dedup();
    for name in &expanded {
        match run_one(name, &cfg) {
            Some(out) => {
                println!("{out}");
            }
            None => {
                eprintln!("unknown experiment `{name}`");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
