//! Hardware experiments: Tables 2/7/8/9 and Figures 14-20, all driven by
//! the `mvq-accel` simulator.

use mvq_accel::{
    area_report, comparison_table, roofline_point, simulate_network, tile_resources, workloads,
    EnergyModel, HwConfig, HwSetting,
};

use crate::fmt::{f, render_table};

const SIZES: [usize; 3] = [16, 32, 64];

/// Table 2: resource comparison for an H×d tile, EWS vs EWS-Sparse.
pub fn table2() -> String {
    let h = 16;
    let d = 16;
    let q = 4; // 4:16
    let dense = tile_resources(h, d, None);
    let sparse = tile_resources(h, d, Some(q));
    let rows = vec![
        vec![
            "Multiplier".into(),
            format!("{}", dense.multipliers),
            format!("{}", sparse.multipliers),
        ],
        vec!["Adder".into(), format!("{}", dense.adders), format!("{}", sparse.adders)],
        vec!["RF bits".into(), format!("{}", dense.rf_bits), format!("{}", sparse.rf_bits)],
        vec!["LZC".into(), "NA".into(), format!("{}", sparse.lzc)],
        vec!["DEMUX".into(), "NA".into(), format!("{}", sparse.demux)],
        vec!["MUX".into(), "NA".into(), format!("{}", sparse.mux)],
        vec![
            "Parallelism".into(),
            format!("{}", dense.parallelism),
            format!("{}", sparse.parallelism),
        ],
    ];
    let mut out = format!("Table 2 — resources of a {h}x{d} tile (Q = {q}):\n");
    out += &render_table(&["Resource", "EWS", "EWS-Sparse"], &rows);
    out
}

/// Table 7: area comparison on three array scales.
pub fn table7() -> String {
    let paper: &[(&str, [f64; 3])] = &[
        ("WS", [0.188, 0.734, 2.812]),
        ("EWS", [0.36, 1.14, 4.236]),
        ("EWS-C/CM", [0.650, 1.505, 4.776]),
        ("EWS-CMS", [0.469, 0.828, 2.129]),
    ];
    let settings = [HwSetting::Ws, HwSetting::Ews, HwSetting::EwsCm, HwSetting::EwsCms];
    let mut rows = Vec::new();
    for ((label, paper_vals), setting) in paper.iter().zip(settings) {
        let mut row = vec![label.to_string()];
        for (i, &size) in SIZES.iter().enumerate() {
            let a = area_report(&HwConfig::new(setting, size).expect("valid size"))
                .expect("valid config");
            row.push(format!("{:.3} (paper {:.3})", a.array_with_crf_mm2(), paper_vals[i]));
        }
        rows.push(row);
    }
    // memory rows
    let a16 = area_report(&HwConfig::new(HwSetting::Ews, 16).unwrap()).unwrap();
    let a32 = area_report(&HwConfig::new(HwSetting::Ews, 32).unwrap()).unwrap();
    let a64 = area_report(&HwConfig::new(HwSetting::Ews, 64).unwrap()).unwrap();
    rows.push(vec![
        "L1".into(),
        format!("{:.3} (paper 0.484)", a16.l1_mm2),
        format!("{:.3} (paper 0.968)", a32.l1_mm2),
        format!("{:.3} (paper 0.968)", a64.l1_mm2),
    ]);
    rows.push(vec![
        "L2".into(),
        format!("{:.3}", a16.l2_mm2),
        format!("{:.3}", a32.l2_mm2),
        format!("{:.3}", a64.l2_mm2),
    ]);
    rows.push(vec![
        "Others".into(),
        format!("{:.3} (paper 0.787)", a16.others_mm2),
        format!("{:.3} (paper 1.303)", a32.others_mm2),
        format!("{:.3} (paper 1.659)", a64.others_mm2),
    ]);
    let mut out = String::from("Table 7 — area (mm^2) on 3 array scales, modeled vs paper:\n");
    out += &render_table(&["Component", "Size-16", "Size-32", "Size-64"], &rows);
    out
}

/// Table 8: normalized data-access energy costs.
pub fn table8() -> String {
    let em = EnergyModel::paper();
    let rows = vec![vec![
        f(em.dram, 0),
        f(em.l2, 0),
        f(em.l1, 0),
        f(em.prf, 2),
        f(em.arf, 2),
        f(em.wrf, 2),
        f(em.crf, 2),
    ]];
    let mut out = String::from("Table 8 — normalized data-access energy (unit = one 8-bit MAC):\n");
    out += &render_table(&["DRAM", "L2", "L1", "PRF", "ARF", "WRF", "CRF"], &rows);
    out
}

/// Table 9: comparison with other sparse accelerators, 40 nm-normalized.
pub fn table9() -> String {
    let table = comparison_table().expect("simulation configs valid");
    let rows: Vec<Vec<String>> = table
        .iter()
        .map(|r| {
            vec![
                r.name.into(),
                r.venue.into(),
                f(r.process_nm, 0),
                format!("{}", r.macs),
                r.granularity.into(),
                if r.sparsity.is_nan() {
                    "NA".into()
                } else {
                    format!("{:.0}%", r.sparsity * 100.0)
                },
                if r.compression_ratio.is_nan() {
                    "NA".into()
                } else {
                    format!("{:.1}x", r.compression_ratio)
                },
                r.workload.into(),
                f(r.peak_tops, 2),
                f(r.area_mm2, 2),
                f(r.tops_per_watt, 2),
                f(r.normalized_tops_per_watt, 2),
            ]
        })
        .collect();
    let mut out = String::from(
        "Table 9 — comparison with prior sparse accelerators (N-Eff = 40nm-normalized TOPS/W;\n\
         prior-work rows as reported by the paper, MVQ rows simulated):\n",
    );
    out += &render_table(
        &[
            "Design",
            "Venue",
            "nm",
            "MACs",
            "Granularity",
            "Sparsity",
            "CR",
            "Workload",
            "Peak TOPS",
            "Area mm2",
            "TOPS/W",
            "N-Eff",
        ],
        &rows,
    );
    let best_prior = table
        .iter()
        .filter(|r| r.venue != "ours")
        .map(|r| r.normalized_tops_per_watt)
        .fold(0.0f64, f64::max);
    let mvq64 = table.iter().find(|r| r.name == "MVQ-64").expect("row exists");
    out += &format!(
        "\nMVQ-64 vs best prior normalized efficiency: {:.2}x (paper: 1.73x vs S2TA raw best)\n",
        mvq64.normalized_tops_per_watt / best_prior
    );
    out
}

/// Fig. 14: data-access cost ratio per memory level.
pub fn fig14() -> String {
    let mut rows = Vec::new();
    for net in workloads::all_networks() {
        let r = simulate_network(&HwConfig::new(HwSetting::Ews, 32).expect("valid"), &net);
        let [dram, l2, l1, rf] = r.data_access_levels();
        let total = dram + l2 + l1 + rf;
        rows.push(vec![
            net.name.into(),
            format!("{:.1}%", dram / total * 100.0),
            format!("{:.1}%", l2 / total * 100.0),
            format!("{:.1}%", l1 / total * 100.0),
            format!("{:.1}%", rf / total * 100.0),
        ]);
    }
    let mut out = String::from(
        "Fig. 14 — data-access cost ratio by memory level (EWS 32x32; paper: DRAM dominates):\n",
    );
    out += &render_table(&["Model", "DRAM", "L2", "L1", "RF"], &rows);
    out
}

/// Fig. 15: data-access cost reduction from MVQ compression.
pub fn fig15() -> String {
    let paper: &[(&str, [f64; 3])] = &[
        ("ResNet18", [2.9, 3.6, 4.1]),
        ("ResNet50", [2.7, 3.2, 3.4]),
        ("VGG16", [1.7, 2.4, 1.9]),
        ("MobileNet", [1.9, 2.0, 1.9]),
        ("AlexNet", [1.9, 2.3, 3.0]),
    ];
    let mut rows = Vec::new();
    for net in workloads::all_networks() {
        let mut row = vec![net.name.to_string()];
        let paper_vals = paper.iter().find(|(n, _)| *n == net.name).map(|(_, v)| v);
        for (i, &size) in SIZES.iter().enumerate() {
            let base = simulate_network(&HwConfig::new(HwSetting::Ews, size).expect("valid"), &net)
                .data_access_cost();
            let cms =
                simulate_network(&HwConfig::new(HwSetting::EwsCms, size).expect("valid"), &net)
                    .data_access_cost();
            let p = paper_vals.map(|v| format!(" (paper {:.1})", v[i])).unwrap_or_default();
            row.push(format!("{:.1}x{p}", base / cms));
        }
        rows.push(row);
    }
    let mut out =
        String::from("Fig. 15 — data-access cost reduction, EWS vs EWS-CMS (modeled vs paper):\n");
    out += &render_table(&["Model", "16x16", "32x32", "64x64"], &rows);
    out
}

/// Fig. 16: power breakdown for ResNet-18/50 across settings and sizes.
pub fn fig16() -> String {
    let mut out = String::from("Fig. 16 — power breakdown (mW) per setting:\n");
    for net in [workloads::resnet18(), workloads::resnet50()] {
        for &size in SIZES.iter().rev() {
            let mut rows = Vec::new();
            for setting in HwSetting::ALL {
                let r = simulate_network(&HwConfig::new(setting, size).expect("valid"), &net);
                let (accel, l1, l2, other) = r.power_breakdown_mw(size);
                rows.push(vec![
                    setting.name().into(),
                    f(accel, 1),
                    f(l1, 1),
                    f(l2, 1),
                    f(other, 1),
                    f(accel + l1 + l2 + other, 1),
                ]);
            }
            out += &format!("\n{} {size}x{size}:\n", net.name);
            out += &render_table(&["Setting", "Accel", "L1", "L2", "Other", "Total"], &rows);
        }
    }
    out
}

/// Fig. 17: speedup over the WS baseline at 64×64.
pub fn fig17() -> String {
    let paper: &[(&str, [f64; 3])] = &[
        ("ResNet18", [1.4, 1.2, 2.2]),
        ("ResNet50", [1.2, 1.3, 1.9]),
        ("VGG16", [1.2, 1.3, 1.9]),
        ("MobileNet", [1.1, 1.3, 1.5]),
        ("AlexNet", [1.1, 1.4, 1.7]),
    ];
    let mut rows = Vec::new();
    for net in workloads::all_networks() {
        let ws = simulate_network(&HwConfig::new(HwSetting::Ws, 64).expect("valid"), &net).cycles;
        let mut row = vec![net.name.to_string()];
        let paper_vals = paper.iter().find(|(n, _)| *n == net.name).map(|(_, v)| v);
        for (i, s) in [HwSetting::WsCms, HwSetting::Ews, HwSetting::EwsCms].iter().enumerate() {
            let c = simulate_network(&HwConfig::new(*s, 64).expect("valid"), &net).cycles;
            let p = paper_vals.map(|v| format!(" (paper {:.1})", v[i])).unwrap_or_default();
            row.push(format!("{:.2}x{p}", ws / c));
        }
        rows.push(row);
    }
    let mut out = String::from("Fig. 17 — speedup over WS baseline at 64x64 (modeled vs paper):\n");
    out += &render_table(&["Model", "WS-CMS", "EWS", "EWS-CMS"], &rows);
    out
}

/// Fig. 18: roofline points for EWS vs EWS-CMS at the three sizes.
pub fn fig18() -> String {
    let mut rows = Vec::new();
    for net in [workloads::resnet18(), workloads::resnet50()] {
        for setting in [HwSetting::Ews, HwSetting::EwsCms] {
            for &size in &SIZES {
                let p = roofline_point(&HwConfig::new(setting, size).expect("valid"), &net);
                rows.push(vec![
                    net.name.into(),
                    p.label.clone(),
                    f(p.ops_per_byte, 0),
                    f(p.gops, 0),
                    f(p.peak_gops, 0),
                    if p.is_bandwidth_bound() { "weight-load".into() } else { "compute".into() },
                ]);
            }
        }
    }
    let mut out = String::from(
        "Fig. 18 — roofline (OI = effective ops per weight-load byte; paper: arrays >= 32x32\n\
         are weight-load bound until MVQ lifts the intensity):\n",
    );
    out +=
        &render_table(&["Model", "Config", "OI (ops/B)", "GOPS", "Peak GOPS", "Bound by"], &rows);
    out
}

/// Fig. 19: energy efficiency for ResNet-18/50 across settings and sizes.
pub fn fig19() -> String {
    let paper_rn18: &[(&str, [f64; 3])] = &[
        ("WS", [0.7, 1.5, 2.1]),
        ("WS-CMS", [0.9, 2.1, 4.5]),
        ("EWS", [1.5, 2.2, 2.9]),
        ("EWS-C", [1.8, 2.6, 3.8]),
        ("EWS-CM", [1.9, 3.0, 4.3]),
        ("EWS-CMS", [2.3, 4.1, 6.9]),
    ];
    let paper_rn50: &[(&str, [f64; 3])] = &[
        ("WS", [0.9, 1.4, 1.9]),
        ("WS-CMS", [1.1, 2.1, 3.2]),
        ("EWS", [1.8, 2.3, 2.6]),
        ("EWS-C", [1.8, 2.7, 3.4]),
        ("EWS-CM", [1.9, 3.1, 4.0]),
        ("EWS-CMS", [2.4, 4.1, 5.7]),
    ];
    let mut out = String::from("Fig. 19 — energy efficiency in TOPS/W (modeled vs paper):\n");
    for (net, paper) in [(workloads::resnet18(), paper_rn18), (workloads::resnet50(), paper_rn50)] {
        let mut rows = Vec::new();
        for setting in HwSetting::ALL {
            let paper_vals = paper.iter().find(|(n, _)| *n == setting.name()).map(|(_, v)| v);
            let mut row = vec![setting.name().to_string()];
            for (i, &size) in SIZES.iter().enumerate() {
                let r = simulate_network(&HwConfig::new(setting, size).expect("valid"), &net);
                let p = paper_vals.map(|v| format!(" (paper {:.1})", v[i])).unwrap_or_default();
                row.push(format!("{:.2}{p}", r.tops_per_watt()));
            }
            rows.push(row);
        }
        out += &format!("\n{}:\n", net.name);
        out += &render_table(&["Setting", "16x16", "32x32", "64x64"], &rows);
    }
    out
}

/// Fig. 20: efficiency gain over the WS baseline for VGG-16, AlexNet and
/// MobileNet (pointwise convolutions only).
pub fn fig20() -> String {
    let nets = [
        ("VGG16", workloads::vgg16()),
        ("AlexNet", workloads::alexnet()),
        ("MobileNet*", workloads::mobilenet_v1().pointwise_only()),
    ];
    let mut out = String::from(
        "Fig. 20 — efficiency gain vs WS baseline (* = pointwise convs only, as the paper):\n",
    );
    for (label, net) in nets {
        let mut rows = Vec::new();
        for setting in [HwSetting::WsCms, HwSetting::Ews, HwSetting::EwsCms] {
            let mut row = vec![setting.name().to_string()];
            for &size in &SIZES {
                let ws =
                    simulate_network(&HwConfig::new(HwSetting::Ws, size).expect("valid"), &net)
                        .tops_per_watt();
                let r = simulate_network(&HwConfig::new(setting, size).expect("valid"), &net)
                    .tops_per_watt();
                row.push(format!("{:.2}x", r / ws));
            }
            rows.push(row);
        }
        out += &format!("\n{label}:\n");
        out += &render_table(&["Setting", "16x16", "32x32", "64x64"], &rows);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_mentions_lzc() {
        let t = table2();
        assert!(t.contains("LZC"));
        assert!(t.contains("64"));
    }

    #[test]
    fn table7_has_all_settings() {
        let t = table7();
        for s in ["WS", "EWS", "EWS-CMS", "L1", "L2", "Others"] {
            assert!(t.contains(s), "missing {s}");
        }
    }

    #[test]
    fn table8_matches_energy_model() {
        let t = table8();
        assert!(t.contains("200"));
        assert!(t.contains("0.02"));
    }

    #[test]
    fn table9_contains_all_designs() {
        let t = table9();
        for d in ["SparTen", "CGNet", "SPOTS", "S2TA-16", "MVQ-16", "MVQ-64"] {
            assert!(t.contains(d), "missing {d}");
        }
    }

    #[test]
    fn fig14_rows_for_five_nets() {
        let t = fig14();
        for n in ["ResNet18", "ResNet50", "VGG16", "MobileNet", "AlexNet"] {
            assert!(t.contains(n), "missing {n}");
        }
    }

    #[test]
    fn fig17_and_19_render() {
        assert!(fig17().contains("EWS-CMS"));
        assert!(fig19().contains("paper"));
    }

    #[test]
    fn fig18_shows_bandwidth_bound_dense_64() {
        let t = fig18();
        assert!(t.contains("EWS-64"));
        assert!(t.contains("weight-load"));
    }

    #[test]
    fn fig20_has_pointwise_note() {
        assert!(fig20().contains("pointwise"));
    }
}
