//! The one writer every `BENCH_*.json` artifact goes through.
//!
//! Each `bench_*` binary used to hand-format its own JSON blob; the
//! files drifted (no version stamp, no build provenance, ad-hoc field
//! ordering). [`BenchReport`] normalizes them: every report leads with
//! the same header — `schema_version`, the bench's name, and the build
//! flags that make a number comparable or not (`target_arch`,
//! `debug_assertions`, the SIMD cfg) — followed by the bench's own
//! fields in insertion order. [`BenchReport::write`] prints the blob to
//! stdout and lands it at `BENCH_<name>.json`, exactly like the old
//! emitters did by hand.
//!
//! Values are rendered at append time with the precision the caller
//! chose, so migrating a bench is a mechanical swap of `format!` pieces
//! for `field_*` calls — byte-identical numbers, shared envelope.

/// The report envelope's schema version. Bump when the header fields
/// change meaning; consumers (CI trend scripts) key on it.
pub const SCHEMA_VERSION: u64 = 1;

/// An ordered JSON object under the standard bench envelope.
#[derive(Debug)]
pub struct BenchReport {
    name: String,
    fields: Vec<(String, String)>,
}

impl BenchReport {
    /// Starts a report for bench `name` (the `<name>` in
    /// `BENCH_<name>.json`), stamping the envelope header.
    pub fn new(name: impl Into<String>) -> BenchReport {
        let name = name.into();
        let mut report = BenchReport { name: String::new(), fields: Vec::new() };
        report.field_u64("schema_version", SCHEMA_VERSION);
        report.field_str("bench", &name);
        report.field_str("target_arch", std::env::consts::ARCH);
        report.field_bool("debug_assertions", cfg!(debug_assertions));
        report.field_bool("simd_intrinsics", cfg!(feature = "simd-intrinsics"));
        report.name = name;
        report
    }

    /// Appends a string field (JSON-escaped).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut BenchReport {
        self.push(key, format!("\"{}\"", escape(value)));
        self
    }

    /// Appends an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut BenchReport {
        self.push(key, value.to_string());
        self
    }

    /// Appends a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut BenchReport {
        self.push(key, value.to_string());
        self
    }

    /// Appends a float field rendered with `decimals` fractional digits
    /// (the precision the old hand-rolled emitters chose per field).
    pub fn field_f64(&mut self, key: &str, value: f64, decimals: usize) -> &mut BenchReport {
        self.push(key, format!("{value:.decimals$}"));
        self
    }

    /// Appends a list-of-strings field (each element JSON-escaped).
    pub fn field_str_list(&mut self, key: &str, values: &[&str]) -> &mut BenchReport {
        let items: Vec<String> = values.iter().map(|v| format!("\"{}\"", escape(v))).collect();
        self.push(key, format!("[{}]", items.join(", ")));
        self
    }

    fn push(&mut self, key: &str, rendered: String) {
        self.fields.push((key.to_string(), rendered));
    }

    /// Renders the report as pretty-printed JSON (one field per line,
    /// insertion order, trailing newline — the shape the old emitters
    /// produced).
    pub fn json(&self) -> String {
        let lines: Vec<String> =
            self.fields.iter().map(|(k, v)| format!("  \"{k}\": {v}")).collect();
        format!("{{\n{}\n}}\n", lines.join(",\n"))
    }

    /// Prints the report to stdout and writes `BENCH_<name>.json` in the
    /// working directory, panicking on I/O failure (a bench that cannot
    /// land its artifact has failed).
    pub fn write(&self) {
        let json = self.json();
        print!("{json}");
        let path = format!("BENCH_{}.json", self.name);
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

/// Minimal JSON string escaping: the bench vocabulary is ASCII names
/// and workload labels, but quotes/backslashes/control bytes must
/// never produce an invalid artifact.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_leads_with_the_envelope_and_keeps_insertion_order() {
        let mut report = BenchReport::new("unit");
        report.field_str("workload", "toy").field_u64("jobs", 7).field_f64("p50_us", 244.05, 1);
        report.field_str_list("algorithms", &["mvq", "pqf"]);
        let json = report.json();
        let keys: Vec<&str> = json
            .lines()
            .filter_map(|l| l.trim().strip_prefix('"').and_then(|l| l.split('"').next()))
            .collect();
        assert_eq!(
            keys,
            [
                "schema_version",
                "bench",
                "target_arch",
                "debug_assertions",
                "simd_intrinsics",
                "workload",
                "jobs",
                "p50_us",
                "algorithms"
            ]
        );
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"bench\": \"unit\""));
        assert!(json.contains("\"p50_us\": 244.1"), "precision is the caller's: {json}");
        assert!(json.contains("\"algorithms\": [\"mvq\", \"pqf\"]"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn strings_are_json_escaped() {
        let mut report = BenchReport::new("unit");
        report.field_str("label", "a\"b\\c\nd");
        assert!(report.json().contains(r#""label": "a\"b\\c\nd""#));
    }
}
