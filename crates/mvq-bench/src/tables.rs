//! Algorithm experiments: Tables 1, 3, 4, 5, 6 and Figures 10, 11, 13.
//!
//! Each experiment trains the relevant "-lite" model(s) on the synthetic
//! dataset, then runs the real compression code paths from `mvq-core`.
//! Absolute accuracies are synthetic-task accuracies, not ImageNet; what
//! reproduces is the *comparisons* — who wins, how orderings move with the
//! knobs — per DESIGN.md.

use mvq_core::pipeline::{by_name, PipelineSpec};
use mvq_core::{
    finetune_codebooks, prune_model, sparse_finetune, ClusterScope, CodebookFinetuneConfig,
    GroupingStrategy, ModelArtifacts, ModelCompressor, MvqConfig, PruneMethod,
    SparseFinetuneConfig,
};
use mvq_nn::data::{SyntheticClassification, SyntheticSegmentation};
use mvq_nn::flops::count_flops;
use mvq_nn::layers::Sequential;
use mvq_nn::models::{deeplab_lite, Arch, INPUT_CHANNELS, INPUT_SIZE};
use mvq_nn::optim::{Optimizer, OptimizerKind};
use mvq_nn::train::{
    evaluate_classifier, evaluate_miou, train_classifier, train_segmenter, TrainConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fmt::{f, giga, pct, ratio, render_table};
use crate::ExperimentConfig;

/// A trained dense model plus the data it was trained on.
pub struct Trained {
    /// The dense model.
    pub model: Sequential,
    /// Its training/evaluation data.
    pub data: SyntheticClassification,
    /// Dense top-1 accuracy.
    pub dense_acc: f32,
}

/// Trains one architecture to convergence on the synthetic task.
pub fn train_arch(arch: Arch, cfg: &ExperimentConfig) -> Trained {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ arch.name().len() as u64);
    let data = SyntheticClassification::generate(
        cfg.classes,
        cfg.n_train,
        cfg.n_test,
        cfg.image_size,
        &mut rng,
    );
    let mut model = arch.build(cfg.classes, &mut rng);
    let tc =
        TrainConfig { epochs: cfg.train_epochs, batch_size: 32, lr_decay: 0.85, verbose: false };
    let mut opt = Optimizer::new(OptimizerKind::sgd(0.04, 0.9, 1e-4));
    train_classifier(&mut model, &data, &tc, &mut opt, &mut rng).expect("training succeeds");
    let dense_acc = evaluate_classifier(&mut model, &data).expect("evaluation succeeds");
    Trained { model, data, dense_acc }
}

/// Compresses a clone of `model` with the named registry algorithm and
/// returns the reconstructed model plus its artifacts. This is the one
/// compression dispatch the tables share — no per-algorithm arms.
pub fn compress_clone(
    model: &Sequential,
    algorithm: &str,
    spec: &PipelineSpec,
    seed: u64,
) -> (Sequential, ModelArtifacts) {
    let comp = by_name(algorithm, spec).expect("registered algorithm");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut compressed = model.clone();
    let artifacts = comp.compress_model(&mut compressed, &mut rng).expect("compressible model");
    (compressed, artifacts)
}

/// Refreshes batch-norm running statistics after weight surgery (a few
/// training-mode forward passes, no parameter updates). Applied equally to
/// every compression method before evaluation.
pub fn bn_recalibrate(model: &mut Sequential, data: &SyntheticClassification, batches: usize) {
    let bs = 32usize.min(data.n_train());
    for b in 0..batches {
        let from = (b * bs) % (data.n_train() - bs + 1);
        let (xb, _) =
            mvq_nn::data::batch_of(&data.train_images, &data.train_labels, from, from + bs);
        let _ = model.forward(&xb, true);
    }
}

/// One MVQ pipeline run on a clone of a trained model.
pub struct MvqRun {
    /// Accuracy without codebook fine-tuning (BN recalibrated).
    pub acc_noft: f32,
    /// Accuracy with masked-gradient codebook fine-tuning.
    pub acc_ft: f32,
    /// Compression ratio (Eq. 7, whole model).
    pub cr: f64,
    /// Masked clustering SSE before fine-tuning.
    pub sse: f32,
    /// Weight sparsity.
    pub sparsity: f32,
    /// Effective FLOPs after sparsity.
    pub flops: u64,
    /// Dense FLOPs.
    pub flops_dense: u64,
}

/// Runs prune → sparse-finetune → masked k-means → int8 → (optional)
/// codebook fine-tune on a clone of `trained`.
#[allow(clippy::too_many_arguments)]
pub fn run_mvq(
    trained: &Trained,
    k: usize,
    d: usize,
    keep_n: usize,
    m: usize,
    scope: ClusterScope,
    cfg: &ExperimentConfig,
    sparse_ft_epochs: usize,
) -> MvqRun {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBEEF);
    let mut model = trained.model.clone();
    let grouping = GroupingStrategy::OutputChannelWise;
    // step 1: prune and sparse-finetune
    let masks = prune_model(&mut model, grouping, d, keep_n, m).expect("groupable model");
    if sparse_ft_epochs > 0 {
        let sf = SparseFinetuneConfig {
            method: PruneMethod::SrSte { lambda: 2e-4 },
            epochs: sparse_ft_epochs,
            batch_size: 32,
            grouping,
            d,
            keep_n,
            m,
        };
        let mut opt = Optimizer::new(OptimizerKind::sgd(0.01, 0.9, 0.0));
        sparse_finetune(&mut model, masks, &trained.data, &sf, &mut opt, &mut rng)
            .expect("sparse finetune succeeds");
    }
    let reference = model.clone();
    // steps 2-3: masked k-means + int8 codebook
    let mvq_cfg = MvqConfig::new(k, d, keep_n, m).expect("validated dims");
    let mut compressed = ModelCompressor::new(mvq_cfg)
        .with_scope(scope)
        .compress(&mut model, &mut rng)
        .expect("compressible model");
    let sse = compressed.total_masked_sse(&reference).expect("same layout");
    let cr = compressed.compression_ratio();
    bn_recalibrate(&mut model, &trained.data, 8);
    let acc_noft = evaluate_classifier(&mut model, &trained.data).expect("eval");
    // step 4: masked-gradient codebook fine-tuning
    let ft = CodebookFinetuneConfig {
        epochs: cfg.finetune_epochs,
        batch_size: 32,
        optimizer: OptimizerKind::adam(2e-3),
    };
    finetune_codebooks(&mut model, &mut compressed, &trained.data, &ft, &mut rng)
        .expect("codebook finetune succeeds");
    bn_recalibrate(&mut model, &trained.data, 8);
    let acc_ft = evaluate_classifier(&mut model, &trained.data).expect("eval");
    let sparsity = 1.0 - keep_n as f32 / m as f32;
    let mut probe = trained.model.clone();
    let report = count_flops(&mut probe, INPUT_CHANNELS, INPUT_SIZE).expect("probe runs");
    let flops_dense = report.dense_total();
    let flops = report.with_conv_sparsity(sparsity).effective_total();
    MvqRun { acc_noft, acc_ft, cr, sse, sparsity, flops, flops_dense }
}

/// Table 1: the importance case study (Case 1 vs Case 2).
pub fn table1(cfg: &ExperimentConfig) -> String {
    let mut rows = Vec::new();
    for arch in [Arch::ResNet18, Arch::ResNet50] {
        let trained = train_arch(arch, cfg);
        let mut model = trained.model.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 1);
        let study = mvq_core::experiments::importance_case_study(
            &mut model,
            &trained.data,
            64,
            8,
            2,
            8,
            GroupingStrategy::OutputChannelWise,
            &mut rng,
        )
        .expect("case study runs");
        rows.push(vec![
            format!("{arch} (dense {:.1}%)", study.dense_accuracy * 100.0),
            "Case 1 (quantize important)".into(),
            f(study.case1.sse as f64, 1),
            f(study.case1.accuracy as f64 * 100.0, 1),
        ]);
        rows.push(vec![
            String::new(),
            "Case 2 (quantize unimportant)".into(),
            f(study.case2.sse as f64, 1),
            f(study.case2.accuracy as f64 * 100.0, 1),
        ]);
    }
    let mut out = String::from(
        "Table 1 — partly vector-quantized accuracy, no fine-tuning\n\
         (paper: Case 2 keeps far higher accuracy despite comparable/higher SSE):\n",
    );
    out += &render_table(&["Model", "Case", "SSE", "Acc %"], &rows);
    out
}

/// Table 3: the A/B/C/D ablation at matched compression ratio.
pub fn table3(cfg: &ExperimentConfig) -> String {
    let trained = train_arch(Arch::ResNet18, cfg);
    let grouping = GroupingStrategy::OutputChannelWise;
    let (keep_n, m) = (4usize, 16usize);
    let (k_ab, d_ab) = (128usize, 8usize); // cases A/B (paper: 1024, 8)
    let (k_cd, d_cd) = (64usize, 16usize); // cases C/D (paper: 512, 16)
    let mut rows = Vec::new();

    // collect per-conv weights of the reference model
    let mut dense_w = Vec::new();
    trained.model.visit_convs(&mut |c| dense_w.push(c.weight.value.clone()));
    let probe_flops = {
        let mut probe = trained.model.clone();
        count_flops(&mut probe, INPUT_CHANNELS, INPUT_SIZE).expect("probe")
    };
    let dense_flops = probe_flops.dense_total();
    let sparse_flops = probe_flops.with_conv_sparsity(0.75).effective_total();

    // helper: total + masked SSE of a per-conv reconstruction set
    let sse_of = |recons: &[Option<mvq_tensor::Tensor>]| -> (f64, f64) {
        let mut total = 0.0f64;
        let mut masked = 0.0f64;
        for (w, r) in dense_w.iter().zip(recons) {
            if let Some(r) = r {
                total += w.sse(r).expect("same dims") as f64;
                let grouped = grouping.group(w, d_cd).expect("groupable");
                let (pruned, mask) =
                    mvq_core::prune_matrix_nm(&grouped, keep_n, m).expect("prunable");
                let rg = grouping.group(r, d_cd).expect("groupable");
                let rm = mask.apply(&rg).expect("same dims");
                masked += pruned.sse(&rm).expect("same dims") as f64;
            }
        }
        (total, masked)
    };
    // Cases A/B/C all dispatch through the registry: A and B cluster at
    // d=8 (B with its 4:16 pruning living on the d=16 grid — the paper's
    // two-grid setup), C clusters and stores the mask at d=16.
    let ab_spec = PipelineSpec::default().with_k(k_ab).with_d(d_ab).with_nm(keep_n, m);
    let arms: [(&str, &str, PipelineSpec); 3] = [
        ("A: DW+CK+DR", "vq-a", ab_spec.clone()),
        ("B: SW+CK+DR", "vq-b", ab_spec.with_prune_d(d_cd)),
        (
            "C: SW+CK+SR",
            "vq-c",
            PipelineSpec::default().with_k(k_cd).with_d(d_cd).with_nm(keep_n, m),
        ),
    ];
    for (label, algorithm, spec) in arms {
        let (mut model, artifacts) = compress_clone(&trained.model, algorithm, &spec, cfg.seed ^ 3);
        let recons = artifacts.reconstructions(trained.model.num_convs()).expect("reconstructible");
        let (total, masked) = sse_of(&recons);
        // FLOPs follow from the representation: a stored mask means the
        // hardware skips pruned lanes
        let masked_repr = artifacts.layers.iter().all(|l| l.artifact.mask().is_some());
        let flops = if masked_repr { sparse_flops } else { dense_flops };
        bn_recalibrate(&mut model, &trained.data, 8);
        let acc = evaluate_classifier(&mut model, &trained.data).expect("eval");
        rows.push(vec![
            label.into(),
            format!("{:.0}/{:.0}", total, masked),
            giga(flops as f64),
            f(acc as f64 * 100.0, 1),
        ]);
    }

    // Case D (ours): masked k-means, sparse reconstruct, with the
    // pipeline's sparse fine-tuning step (the paper fine-tunes the sparse
    // model before clustering)
    let run = run_mvq(&trained, k_cd, d_cd, keep_n, m, ClusterScope::LayerWise, cfg, 1);
    rows.push(vec![
        "D: SW+MK+SR (ours)".into(),
        format!("{:.0}/{:.0}", run.sse, run.sse),
        format!(
            "{} (-{:.0}%)",
            giga(run.flops as f64),
            100.0 * (1.0 - run.flops as f64 / dense_flops as f64)
        ),
        format!("{:.1} (ft {:.1})", run.acc_noft as f64 * 100.0, run.acc_ft as f64 * 100.0),
    ]);

    let mut out = format!(
        "Table 3 — ablation on ResNet-18-lite at matched CR (dense acc {:.1}%)\n\
         (paper ordering: D best accuracy and lowest masked SSE; C worst):\n",
        trained.dense_acc * 100.0
    );
    out += &render_table(&["Case", "Total/Mask SSE", "FLOPs", "Acc %"], &rows);
    out
}

/// Table 4: MVQ vs baselines across the model zoo.
pub fn table4(cfg: &ExperimentConfig) -> String {
    let mut rows = Vec::new();
    let specs: [(Arch, usize, usize, usize, usize); 6] = [
        // arch, k, d, keep_n, m — parameter-efficient nets get 1:2
        (Arch::ResNet50, 64, 16, 4, 16),
        (Arch::MobileNetV1, 64, 16, 8, 16),
        (Arch::MobileNetV2, 64, 16, 8, 16),
        (Arch::EfficientNet, 64, 16, 8, 16),
        (Arch::AlexNet, 64, 16, 4, 16),
        (Arch::Vgg16, 48, 16, 4, 16),
    ];
    for (arch, k, d, keep_n, m) in specs {
        let trained = train_arch(arch, cfg);
        let run = run_mvq(&trained, k, d, keep_n, m, ClusterScope::LayerWise, cfg, 1);
        rows.push(vec![
            format!("{arch} (dense {:.1}%)", trained.dense_acc * 100.0),
            "MVQ (ours)".into(),
            ratio(run.cr),
            f(run.acc_ft as f64 * 100.0, 1),
            pct(run.sparsity as f64),
            giga(run.flops as f64),
        ]);
        if arch.is_parameter_efficient() {
            // PvQ 2-bit baseline, through the same registry dispatch
            let spec = PipelineSpec::default().with_scalar_bits(2);
            let (mut model, artifacts) = compress_clone(&trained.model, "pvq", &spec, cfg.seed ^ 4);
            bn_recalibrate(&mut model, &trained.data, 8);
            let acc = evaluate_classifier(&mut model, &trained.data).expect("eval");
            rows.push(vec![
                String::new(),
                "PvQ 2-bit".into(),
                ratio(artifacts.compression_ratio()),
                f(acc as f64 * 100.0, 1),
                "0%".into(),
                giga(run.flops_dense as f64),
            ]);
        }
    }
    let mut out = String::from(
        "Table 4 — MVQ across the model zoo vs uniform 2-bit quantization\n\
         (paper: MVQ beats PvQ decisively on parameter-efficient nets and cuts FLOPs):\n",
    );
    out += &render_table(&["Model", "Method", "CR", "Acc %", "Sparsity", "FLOPs"], &rows);
    out
}

/// Table 5: clustering SSE, MVQ vs PQF, before fine-tuning.
pub fn table5(cfg: &ExperimentConfig) -> String {
    let mut rows = Vec::new();
    for arch in [Arch::ResNet18, Arch::ResNet50] {
        let trained = train_arch(arch, cfg);
        let run = run_mvq(&trained, 64, 16, 4, 16, ClusterScope::LayerWise, cfg, 0);
        // PQF at comparable CR: d=8, k doubled (maskless). Only the SSE is
        // needed, so compress without writing reconstructions back.
        let spec = PipelineSpec::default().with_k(128).with_d(8).with_swap_trials(5_000);
        let comp = by_name("pqf", &spec).expect("registered algorithm");
        let artifacts = comp
            .compress_model_artifacts(&trained.model, &mut StdRng::seed_from_u64(cfg.seed ^ 5))
            .expect("compressible model");
        let pqf_sse = artifacts.total_sse().expect("pqf records clustering SSE");
        rows.push(vec![
            arch.name().into(),
            f(pqf_sse, 1),
            f(run.sse as f64, 1),
            f(pqf_sse / run.sse as f64, 1),
        ]);
    }
    let mut out = String::from(
        "Table 5 — clustering SSE before fine-tuning at matched CR\n\
         (paper: MVQ SSE is 2.4-3.4x lower than PQF's):\n",
    );
    out += &render_table(&["Model", "PQF SSE", "MVQ SSE (ours)", "PQF/MVQ"], &rows);
    out
}

/// Table 6: dense prediction (DeepLab-lite on synthetic segmentation).
pub fn table6(cfg: &ExperimentConfig) -> String {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 6);
    let classes = 4usize;
    let data =
        SyntheticSegmentation::generate(classes, cfg.n_train / 4, cfg.n_test / 4, 16, &mut rng);
    let mut model = deeplab_lite(classes, &mut rng);
    let tc = TrainConfig { epochs: cfg.train_epochs, batch_size: 8, lr_decay: 0.9, verbose: false };
    let mut opt = Optimizer::new(OptimizerKind::adam(2e-3));
    train_segmenter(&mut model, &data, &tc, &mut opt, &mut rng).expect("training succeeds");
    let base_miou = evaluate_miou(&mut model, &data).expect("eval");
    let probe_flops = {
        let mut probe = model.clone();
        count_flops(&mut probe, 3, 16).expect("probe")
    };

    // MVQ at 1:2 pruning (CR ~ paper's 19x table row)
    let mut mvq_model = model.clone();
    let mvq_cfg = MvqConfig::new(64, 16, 8, 16).expect("valid");
    let mut compressed =
        ModelCompressor::new(mvq_cfg).compress(&mut mvq_model, &mut rng).expect("compressible");
    let cr = compressed.compression_ratio();
    let _ = &mut compressed;
    let mvq_miou = evaluate_miou(&mut mvq_model, &data).expect("eval");

    // PvQ 2-bit
    let (mut pvq_model, pvq_artifacts) =
        compress_clone(&model, "pvq", &PipelineSpec::default().with_scalar_bits(2), cfg.seed ^ 6);
    let pvq_miou = evaluate_miou(&mut pvq_model, &data).expect("eval");

    let dense_flops = probe_flops.dense_total();
    let sparse_flops = probe_flops.with_conv_sparsity(0.5).effective_total();
    let rows = vec![
        vec![
            "Baseline".into(),
            "-".into(),
            "0%".into(),
            giga(dense_flops as f64),
            f(base_miou as f64 * 100.0, 1),
        ],
        vec![
            "PvQ 2-bit".into(),
            ratio(pvq_artifacts.compression_ratio()),
            "0%".into(),
            giga(dense_flops as f64),
            f(pvq_miou as f64 * 100.0, 1),
        ],
        vec![
            "MVQ (ours)".into(),
            ratio(cr),
            "50%".into(),
            giga(sparse_flops as f64),
            f(mvq_miou as f64 * 100.0, 1),
        ],
    ];
    let mut out = String::from(
        "Table 6 — dense prediction: DeepLab-lite on synthetic segmentation\n\
         (stands in for DeepLab-v3/VOC and MaskRCNN/COCO; paper: MVQ keeps mIoU\n\
         near baseline at high CR while 2-bit uniform quantization collapses):\n",
    );
    out += &render_table(&["Method", "CR", "Sparsity", "FLOPs", "mIoU %"], &rows);
    out
}

/// Fig. 10: pruning-rate sweep on ResNet-18-lite.
pub fn fig10(cfg: &ExperimentConfig) -> String {
    let trained = train_arch(Arch::ResNet18, cfg);
    let mut rows = Vec::new();
    for keep in [6usize, 5, 4, 3] {
        // pruning accuracy: prune + sparse finetune, no clustering
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 10);
        let mut model = trained.model.clone();
        let masks = prune_model(&mut model, GroupingStrategy::OutputChannelWise, 16, keep, 16)
            .expect("groupable");
        let sf = SparseFinetuneConfig {
            method: PruneMethod::SrSte { lambda: 2e-4 },
            epochs: 1,
            batch_size: 32,
            grouping: GroupingStrategy::OutputChannelWise,
            d: 16,
            keep_n: keep,
            m: 16,
        };
        let mut opt = Optimizer::new(OptimizerKind::sgd(0.01, 0.9, 0.0));
        sparse_finetune(&mut model, masks, &trained.data, &sf, &mut opt, &mut rng)
            .expect("finetune");
        bn_recalibrate(&mut model, &trained.data, 8);
        let prune_acc = evaluate_classifier(&mut model, &trained.data).expect("eval");
        // clustering accuracy: full pipeline
        let run = run_mvq(&trained, 64, 16, keep, 16, ClusterScope::LayerWise, cfg, 1);
        rows.push(vec![
            format!("{keep}:16"),
            pct(1.0 - keep as f64 / 16.0),
            f(prune_acc as f64 * 100.0, 1),
            f(run.acc_ft as f64 * 100.0, 1),
        ]);
    }
    let mut out = format!(
        "Fig. 10 — pruning strategy on ResNet-18-lite (dense {:.1}%)\n\
         (paper: pruning acc falls past 75% sparsity; 4:16 best clustering acc):\n",
        trained.dense_acc * 100.0
    );
    out += &render_table(&["N:M", "Sparsity", "Pruning acc %", "Clustering acc %"], &rows);
    out
}

/// Fig. 11: 1:2 vs 2:4, layerwise vs crosslayer on MobileNet-v2-lite.
pub fn fig11(cfg: &ExperimentConfig) -> String {
    let trained = train_arch(Arch::MobileNetV2, cfg);
    let mut rows = Vec::new();
    // (label, keep_n, m, scope); d=16 throughout; 1:2 and 2:4 both give
    // 50% sparsity but different mask storage (0.5 vs 0.75 bit/w)
    let arms: [(&str, usize, usize, ClusterScope); 3] = [
        ("layerwise-1:2", 8, 16, ClusterScope::LayerWise),
        ("crosslayer-1:2", 8, 16, ClusterScope::CrossLayer),
        ("layerwise-2:4", 8, 16, ClusterScope::LayerWise),
    ];
    for (i, (label, keep_n, m, scope)) in arms.into_iter().enumerate() {
        // emulate the mask-cost difference of 2:4 by re-deriving CR with
        // the 2:4 LUT (same 50% sparsity pattern constraintwise)
        let run = run_mvq(&trained, 48, 16, keep_n, m, scope, cfg, 1);
        let cr = if i == 2 {
            // 2:4 mask costs 0.75 b/w instead of 1:2-within-16 equivalent
            let bits_per_w = 32.0 / run.cr;
            32.0 / (bits_per_w + 0.25)
        } else {
            run.cr
        };
        rows.push(vec![label.into(), ratio(cr), f(run.acc_ft as f64 * 100.0, 1)]);
    }
    let mut out = format!(
        "Fig. 11 — pruning/clustering strategy on MobileNet-v2-lite (dense {:.1}%)\n\
         (paper: layerwise-1:2 gives the best storage/accuracy balance):\n",
        trained.dense_acc * 100.0
    );
    out += &render_table(&["Strategy", "CR", "Acc %"], &rows);
    out
}

/// Fig. 13: compression-ratio / accuracy frontier vs PQF and BGD.
pub fn fig13(cfg: &ExperimentConfig) -> String {
    let mut out = String::from(
        "Fig. 13 — CR-accuracy frontier (acc in %, all methods BN-recalibrated;\n\
         MVQ additionally reports codebook-fine-tuned accuracy):\n",
    );
    for arch in [Arch::ResNet18, Arch::ResNet50] {
        let trained = train_arch(arch, cfg);
        let mut rows = Vec::new();
        for k in [16usize, 32, 64, 128] {
            // the full pipeline includes sparse fine-tuning (step 1)
            let lw = run_mvq(&trained, k, 16, 4, 16, ClusterScope::LayerWise, cfg, 1);
            let cl = run_mvq(&trained, k, 16, 4, 16, ClusterScope::CrossLayer, cfg, 1);
            // PQF and BGD at matched assignment rate: d=8, 2k codewords —
            // one loop over registry names, no per-algorithm arms
            let baseline_spec =
                PipelineSpec::default().with_k(2 * k).with_d(8).with_swap_trials(3_000);
            let baseline_accs: Vec<f32> = ["pqf", "bgd"]
                .iter()
                .map(|name| {
                    let (mut model, _) =
                        compress_clone(&trained.model, name, &baseline_spec, cfg.seed ^ 13);
                    bn_recalibrate(&mut model, &trained.data, 8);
                    evaluate_classifier(&mut model, &trained.data).expect("eval")
                })
                .collect();
            rows.push(vec![
                format!("{k}"),
                ratio(lw.cr),
                format!("{:.1} (ft {:.1})", lw.acc_noft as f64 * 100.0, lw.acc_ft as f64 * 100.0),
                f(cl.acc_noft as f64 * 100.0, 1),
                f(baseline_accs[0] as f64 * 100.0, 1),
                f(baseline_accs[1] as f64 * 100.0, 1),
            ]);
        }
        out += &format!("\n{} (dense {:.1}%):\n", arch.name(), trained.dense_acc * 100.0);
        out += &render_table(&["k", "CR", "layerwise-MVQ", "crosslayer-MVQ", "PQF", "BGD"], &rows);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-test the cheapest experiment end to end on quick settings.
    /// (The full experiments are exercised by the `paper` binary; they are
    /// too slow for debug-mode unit tests.)
    #[test]
    #[ignore = "several minutes in debug mode; run via `paper` in release"]
    fn table1_smoke() {
        let t = table1(&ExperimentConfig::quick());
        assert!(t.contains("Case 1"));
    }

    #[test]
    fn train_arch_produces_learner() {
        let cfg = ExperimentConfig {
            train_epochs: 1,
            n_train: 64,
            n_test: 32,
            ..ExperimentConfig::quick()
        };
        let trained = train_arch(Arch::ResNet18, &cfg);
        assert!(trained.dense_acc >= 0.0 && trained.dense_acc <= 1.0);
        assert!(trained.model.num_convs() > 10);
    }

    #[test]
    fn bn_recalibration_runs() {
        let cfg = ExperimentConfig {
            train_epochs: 1,
            n_train: 64,
            n_test: 32,
            ..ExperimentConfig::quick()
        };
        let mut trained = train_arch(Arch::ResNet18, &cfg);
        bn_recalibrate(&mut trained.model, &trained.data, 2);
    }
}
