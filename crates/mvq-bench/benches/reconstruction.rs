//! Criterion bench: weight decode (codebook lookup + mask bit-select) —
//! the software model of the accelerator's assignment-aware weight loader.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvq_core::{MvqCompressor, MvqConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_reconstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconstruct");
    for &ng in &[1024usize, 8192] {
        let d = 16;
        let mut rng = StdRng::seed_from_u64(0);
        let w = mvq_tensor::kaiming_normal(vec![ng, d], d, &mut rng);
        let cfg = MvqConfig::new(128.min(ng / 4), d, 4, 16).unwrap();
        let compressed = MvqCompressor::new(cfg).compress_matrix(&w, &mut rng).unwrap();
        group.throughput(Throughput::Elements((ng * d) as u64));
        group.bench_with_input(BenchmarkId::new("grouped", ng), &(), |b, _| {
            b.iter(|| compressed.reconstruct_grouped().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("to_original_dims", ng), &(), |b, _| {
            b.iter(|| compressed.reconstruct().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reconstruct);
criterion_main!(benches);
