//! Criterion bench: N:M magnitude pruning and mask-LUT encode/decode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvq_core::{prune_matrix_nm, MaskLut};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("prune_nm");
    for &ng in &[1024usize, 16384] {
        let d = 16;
        let mut rng = StdRng::seed_from_u64(0);
        let w = mvq_tensor::kaiming_normal(vec![ng, d], d, &mut rng);
        group.throughput(Throughput::Elements((ng * d) as u64));
        group.bench_with_input(BenchmarkId::new("4:16", ng), &(), |b, _| {
            b.iter(|| prune_matrix_nm(&w, 4, 16).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("2:4", ng), &(), |b, _| {
            b.iter(|| prune_matrix_nm(&w, 2, 4).unwrap())
        });
    }
    group.finish();
}

fn bench_mask_lut(c: &mut Criterion) {
    let mut group = c.benchmark_group("mask_lut");
    let lut = MaskLut::new(4, 16).unwrap();
    let masks: Vec<Vec<bool>> =
        (0..lut.len() as u32).map(|i| lut.decode(i).unwrap().to_vec()).collect();
    group.bench_function("encode_all_1820", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for m in &masks {
                acc += lut.encode(m).unwrap() as u64;
            }
            acc
        })
    });
    group.bench_function("build_4of16", |b| b.iter(|| MaskLut::new(4, 16).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_prune, bench_mask_lut);
criterion_main!(benches);
