//! Criterion bench: accelerator-simulation throughput — a full six-setting,
//! three-size sweep of all five networks (the workload behind every
//! hardware table/figure).

use criterion::{criterion_group, criterion_main, Criterion};
use mvq_accel::{simulate_network, workloads, HwConfig, HwSetting};

fn bench_single(c: &mut Criterion) {
    let net = workloads::resnet50();
    let cfg = HwConfig::new(HwSetting::EwsCms, 64).unwrap();
    c.bench_function("simulate_resnet50_ews_cms_64", |b| b.iter(|| simulate_network(&cfg, &net)));
}

fn bench_full_sweep(c: &mut Criterion) {
    let nets = workloads::all_networks();
    c.bench_function("simulate_full_paper_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for net in &nets {
                for setting in HwSetting::ALL {
                    for size in [16usize, 32, 64] {
                        let cfg = HwConfig::new(setting, size).unwrap();
                        acc += simulate_network(&cfg, net).tops_per_watt();
                    }
                }
            }
            acc
        })
    });
}

criterion_group!(benches, bench_single, bench_full_sweep);
criterion_main!(benches);
