//! Criterion bench: whole-model compression on ResNet-18-lite — the
//! model-level pipeline path behind Tables 3-6. Compares serial vs
//! rayon-parallel execution, and the naive / blocked / minibatch kernel
//! strategies behind `PipelineSpec::kernel`.

use criterion::{criterion_group, criterion_main, Criterion};
use mvq_core::{KernelStrategy, ModelCompressor, MvqConfig, Parallelism};
use mvq_nn::models::Arch;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_model_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress_model_resnet18_lite");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(0);
    let model = Arch::ResNet18.build(8, &mut rng);
    let cfg = MvqConfig::new(64, 16, 4, 16).unwrap();
    group.bench_function("serial", |b| {
        b.iter(|| {
            let mut m = model.clone();
            ModelCompressor::new(cfg.clone())
                .with_parallelism(Parallelism::Serial)
                .compress(&mut m, &mut StdRng::seed_from_u64(1))
                .unwrap()
        })
    });
    group.bench_function("rayon", |b| {
        b.iter(|| {
            let mut m = model.clone();
            ModelCompressor::new(cfg.clone())
                .with_parallelism(Parallelism::Rayon)
                .compress(&mut m, &mut StdRng::seed_from_u64(1))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_kernel_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress_model_kernel_strategy");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(4);
    let model = Arch::ResNet18.build(8, &mut rng);
    let cfg = MvqConfig::new(64, 16, 4, 16).unwrap();
    for kernel in [KernelStrategy::Naive, KernelStrategy::Blocked, KernelStrategy::Minibatch] {
        group.bench_function(kernel.name(), |b| {
            b.iter(|| {
                let mut m = model.clone();
                ModelCompressor::new(cfg.clone())
                    .with_kernel(kernel)
                    .compress(&mut m, &mut StdRng::seed_from_u64(5))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_compress, bench_kernel_strategies);
criterion_main!(benches);
