//! Criterion bench: masked-distance kernels — the naive per-row oracle vs
//! the cache-blocked LUT-masked kernel vs minibatch clustering.
//!
//! The blocked kernel must win on time while staying bit-identical to the
//! oracle (`tests/properties.rs` enforces the equality); minibatch trades
//! bit-identity for per-iteration cost independent of NG. The same
//! comparison on the ResNet-18-lite workload is recorded by the
//! `bench_kernels` binary into `BENCH_kernels.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvq_core::{
    default_minibatch_size, masked_assign_naive, masked_assign_with, masked_kmeans,
    masked_kmeans_minibatch, prune_matrix_nm, KernelStrategy, KmeansConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("masked_assignment");
    for &(ng, k) in &[(1024usize, 64usize), (4096, 128)] {
        let d = 16;
        let mut rng = StdRng::seed_from_u64(0);
        let w = mvq_tensor::kaiming_normal(vec![ng, d], d, &mut rng);
        let (pruned, mask) = prune_matrix_nm(&w, 4, 16).unwrap();
        let centers = mvq_tensor::kaiming_normal(vec![k, d], d, &mut rng);
        group.bench_with_input(BenchmarkId::new("naive", format!("ng{ng}_k{k}")), &(), |b, _| {
            b.iter(|| masked_assign_naive(&pruned, &mask, &centers))
        });
        group.bench_with_input(BenchmarkId::new("blocked", format!("ng{ng}_k{k}")), &(), |b, _| {
            b.iter(|| {
                // includes the LUT plan build, so the comparison is
                // end-to-end fair
                masked_assign_with(KernelStrategy::Blocked, &pruned, &mask, &centers).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("masked_kmeans_converged");
    group.sample_size(10);
    let d = 16;
    let mut rng = StdRng::seed_from_u64(2);
    let w = mvq_tensor::kaiming_normal(vec![4096, d], d, &mut rng);
    let (pruned, mask) = prune_matrix_nm(&w, 4, 16).unwrap();
    for kernel in [KernelStrategy::Naive, KernelStrategy::Blocked] {
        group.bench_function(format!("ng4096_k64/{}", kernel.name()), |b| {
            b.iter(|| {
                let cfg = KmeansConfig::new(64).with_kernel(kernel);
                masked_kmeans(&pruned, &mask, &cfg, &mut StdRng::seed_from_u64(3)).unwrap()
            })
        });
    }
    group.bench_function("ng4096_k64/minibatch", |b| {
        b.iter(|| {
            let cfg = KmeansConfig::new(64);
            let batch = default_minibatch_size(4096, 64);
            masked_kmeans_minibatch(&pruned, &mask, &cfg, batch, &mut StdRng::seed_from_u64(3))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_assignment, bench_convergence);
criterion_main!(benches);
