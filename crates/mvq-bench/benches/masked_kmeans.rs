//! Criterion bench: masked k-means — factored vs naive assignment.
//!
//! The ablation behind the implementation note in
//! `mvq_core::masked_kmeans`: grouping subvectors by mask pattern turns the
//! per-row masked distance into one GEMM plus per-pattern codeword norms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvq_core::{masked_assign_naive, masked_kmeans, prune_matrix_nm, KmeansConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("masked_assignment");
    for &(ng, k) in &[(1024usize, 64usize), (4096, 128)] {
        let d = 16;
        let mut rng = StdRng::seed_from_u64(0);
        let w = mvq_tensor::kaiming_normal(vec![ng, d], d, &mut rng);
        let (pruned, mask) = prune_matrix_nm(&w, 4, 16).unwrap();
        let centers = mvq_tensor::kaiming_normal(vec![k, d], d, &mut rng);
        group.bench_with_input(BenchmarkId::new("naive", format!("ng{ng}_k{k}")), &(), |b, _| {
            b.iter(|| masked_assign_naive(&pruned, &mask, &centers))
        });
        group.bench_with_input(
            BenchmarkId::new("full_clustering_factored", format!("ng{ng}_k{k}")),
            &(),
            |b, _| {
                b.iter(|| {
                    // one factored iteration (init + assign + update)
                    let cfg = KmeansConfig { k, max_iters: 1, tol_frac: 1.0 };
                    masked_kmeans(&pruned, &mask, &cfg, &mut StdRng::seed_from_u64(1)).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("masked_kmeans_converged");
    group.sample_size(10);
    let d = 16;
    let mut rng = StdRng::seed_from_u64(2);
    let w = mvq_tensor::kaiming_normal(vec![4096, d], d, &mut rng);
    let (pruned, mask) = prune_matrix_nm(&w, 4, 16).unwrap();
    group.bench_function("ng4096_k64_tol0.1pct", |b| {
        b.iter(|| {
            masked_kmeans(&pruned, &mask, &KmeansConfig::new(64), &mut StdRng::seed_from_u64(3))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_assignment, bench_convergence);
criterion_main!(benches);
