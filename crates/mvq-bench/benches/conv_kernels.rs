//! Criterion bench: the CNN substrate's hot kernels (GEMM, im2col conv
//! forward/backward) that bound experiment wall-clock time.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mvq_nn::layers::Conv2d;
use mvq_tensor::{gemm, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let mut rng = StdRng::seed_from_u64(0);
    for &n in &[64usize, 256] {
        let a = mvq_tensor::kaiming_normal(vec![n, n], n, &mut rng);
        let b = mvq_tensor::kaiming_normal(vec![n, n], n, &mut rng);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_function(format!("{n}x{n}x{n}"), |bch| bch.iter(|| gemm(&a, &b).unwrap()));
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    let mut conv = Conv2d::new(32, 64, 3, 1, 1, 1, false, &mut rng);
    let x = mvq_tensor::uniform(vec![8, 32, 16, 16], -1.0, 1.0, &mut rng);
    group.bench_function("fwd_8x32x16x16_to_64", |b| b.iter(|| conv.forward(&x, false).unwrap()));
    group.bench_function("fwd_bwd_8x32x16x16_to_64", |b| {
        b.iter(|| {
            let y = conv.forward(&x, true).unwrap();
            conv.backward(&Tensor::ones(y.dims().to_vec())).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_conv);
criterion_main!(benches);
