//! The pinned metric-name registry.
//!
//! Every metric the workspace records is declared here as a `const`
//! numeric ID plus one row in [`TABLE`] giving its dotted hierarchical
//! name and [`MetricKind`]. The IDs are **append-only and pinned in
//! `lint.toml`** (the tag-drift rule): renaming or renumbering an
//! existing metric fails the lint, adding a metric means appending a
//! new ID here *and* appending its pin in the same change. IDs are
//! dense (`0..METRIC_COUNT`) so the registry can index them without
//! hashing on the hot path.
//!
//! ## Name scheme
//!
//! `"<layer>.<object>.<measure>[_<unit>]"` — the layer is one of
//! `store` / `serve` / `net` / `stream`, the object names the component
//! (`cache`, `shard`, `queue`, `conn`, `window`, …), and latency
//! histograms carry their unit suffix (`_us`). Examples:
//! `serve.queue.wait_us`, `store.shard.evictions_memory`,
//! `net.conn.frames_rx`, `stream.window.bytes_peak`.

use crate::metrics::MetricKind;

/// `store.cache.hits` — blobs served from memory or disk (counter).
pub const STORE_CACHE_HITS: u16 = 0;
/// `store.cache.misses` — probes that found nothing (counter).
pub const STORE_CACHE_MISSES: u16 = 1;
/// `store.cache.insertions` — blobs admitted into memory (counter).
pub const STORE_CACHE_INSERTIONS: u16 = 2;
/// `store.cache.corrupt_rejections` — blobs expelled on checksum
/// failure (counter).
pub const STORE_CACHE_CORRUPT_REJECTIONS: u16 = 3;
/// `store.shard.evictions_memory` — LRU victims evicted from the
/// memory tier (counter).
pub const STORE_SHARD_EVICTIONS_MEMORY: u16 = 4;
/// `store.shard.evictions_disk` — LRU victims evicted from the disk
/// tier (counter).
pub const STORE_SHARD_EVICTIONS_DISK: u16 = 5;
/// `store.cache.negative_hits` — probes answered by the per-shard
/// known-failing-key cache (counter).
pub const STORE_CACHE_NEGATIVE_HITS: u16 = 6;
/// `store.cache.mtime_fallbacks` — restart-scan entries whose mtime
/// was untrustworthy (counter).
pub const STORE_CACHE_MTIME_FALLBACKS: u16 = 7;
/// `serve.queue.wait_us` — µs a job spent queued before a worker took
/// it (histogram).
pub const SERVE_QUEUE_WAIT_US: u16 = 8;
/// `serve.hit.latency_us` — submit→reply µs for jobs answered from the
/// cache (histogram).
pub const SERVE_HIT_LATENCY_US: u16 = 9;
/// `serve.job.run_us` — submit→reply µs for every completed job
/// (histogram).
pub const SERVE_JOB_RUN_US: u16 = 10;
/// `serve.jobs.submitted` — accepted submissions, riders included
/// (counter).
pub const SERVE_JOBS_SUBMITTED: u16 = 11;
/// `serve.jobs.completed` — jobs that ran to a result (counter).
pub const SERVE_JOBS_COMPLETED: u16 = 12;
/// `serve.jobs.cancelled` — waiters dropped by explicit cancellation
/// or deadline expiry (counter).
pub const SERVE_JOBS_CANCELLED: u16 = 13;
/// `serve.jobs.deduped` — submissions that attached to an in-flight
/// job instead of queueing their own (counter).
pub const SERVE_JOBS_DEDUPED: u16 = 14;
/// `net.conn.accepted` — TCP connections accepted (counter).
pub const NET_CONN_ACCEPTED: u16 = 15;
/// `net.conn.frames_rx` — well-formed compression requests received
/// (counter).
pub const NET_CONN_FRAMES_RX: u16 = 16;
/// `net.conn.responses_ok` — successful responses written (counter).
pub const NET_CONN_RESPONSES_OK: u16 = 17;
/// `net.conn.responses_err` — error responses written (counter).
pub const NET_CONN_RESPONSES_ERR: u16 = 18;
/// `net.conn.cancelled_disconnect` — jobs cancelled because their
/// client disconnected (counter).
pub const NET_CONN_CANCELLED_DISCONNECT: u16 = 19;
/// `net.conn.cancelled_deadline` — jobs whose queue deadline expired
/// (counter).
pub const NET_CONN_CANCELLED_DEADLINE: u16 = 20;
/// `net.conn.protocol_errors` — malformed frames that closed a
/// connection (counter).
pub const NET_CONN_PROTOCOL_ERRORS: u16 = 21;
/// `net.conn.stats_requests` — observability snapshot requests served
/// (counter).
pub const NET_CONN_STATS_REQUESTS: u16 = 22;
/// `stream.window.bytes_peak` — high-water byte occupancy of the
/// streaming admission window (gauge).
pub const STREAM_WINDOW_BYTES_PEAK: u16 = 23;
/// `stream.window.layers_peak` — high-water layer occupancy of the
/// streaming admission window (gauge).
pub const STREAM_WINDOW_LAYERS_PEAK: u16 = 24;

/// Number of registered metrics; IDs are dense in `0..METRIC_COUNT`.
pub const METRIC_COUNT: usize = 25;

/// The full metric table: `(id, dotted name, kind)` per metric, in ID
/// order. [`crate::Registry::new`] builds its slots from this.
pub const TABLE: &[(u16, &str, MetricKind)] = &[
    (STORE_CACHE_HITS, "store.cache.hits", MetricKind::Counter),
    (STORE_CACHE_MISSES, "store.cache.misses", MetricKind::Counter),
    (STORE_CACHE_INSERTIONS, "store.cache.insertions", MetricKind::Counter),
    (STORE_CACHE_CORRUPT_REJECTIONS, "store.cache.corrupt_rejections", MetricKind::Counter),
    (STORE_SHARD_EVICTIONS_MEMORY, "store.shard.evictions_memory", MetricKind::Counter),
    (STORE_SHARD_EVICTIONS_DISK, "store.shard.evictions_disk", MetricKind::Counter),
    (STORE_CACHE_NEGATIVE_HITS, "store.cache.negative_hits", MetricKind::Counter),
    (STORE_CACHE_MTIME_FALLBACKS, "store.cache.mtime_fallbacks", MetricKind::Counter),
    (SERVE_QUEUE_WAIT_US, "serve.queue.wait_us", MetricKind::Histogram),
    (SERVE_HIT_LATENCY_US, "serve.hit.latency_us", MetricKind::Histogram),
    (SERVE_JOB_RUN_US, "serve.job.run_us", MetricKind::Histogram),
    (SERVE_JOBS_SUBMITTED, "serve.jobs.submitted", MetricKind::Counter),
    (SERVE_JOBS_COMPLETED, "serve.jobs.completed", MetricKind::Counter),
    (SERVE_JOBS_CANCELLED, "serve.jobs.cancelled", MetricKind::Counter),
    (SERVE_JOBS_DEDUPED, "serve.jobs.deduped", MetricKind::Counter),
    (NET_CONN_ACCEPTED, "net.conn.accepted", MetricKind::Counter),
    (NET_CONN_FRAMES_RX, "net.conn.frames_rx", MetricKind::Counter),
    (NET_CONN_RESPONSES_OK, "net.conn.responses_ok", MetricKind::Counter),
    (NET_CONN_RESPONSES_ERR, "net.conn.responses_err", MetricKind::Counter),
    (NET_CONN_CANCELLED_DISCONNECT, "net.conn.cancelled_disconnect", MetricKind::Counter),
    (NET_CONN_CANCELLED_DEADLINE, "net.conn.cancelled_deadline", MetricKind::Counter),
    (NET_CONN_PROTOCOL_ERRORS, "net.conn.protocol_errors", MetricKind::Counter),
    (NET_CONN_STATS_REQUESTS, "net.conn.stats_requests", MetricKind::Counter),
    (STREAM_WINDOW_BYTES_PEAK, "stream.window.bytes_peak", MetricKind::Gauge),
    (STREAM_WINDOW_LAYERS_PEAK, "stream.window.layers_peak", MetricKind::Gauge),
];

/// The dotted name of a metric ID, or `None` for an unknown ID (a
/// snapshot from a newer build).
pub fn metric_name(id: u16) -> Option<&'static str> {
    TABLE.get(id as usize).map(|&(_, name, _)| name)
}

/// The kind of a metric ID, or `None` for an unknown ID.
pub fn metric_kind(id: u16) -> Option<MetricKind> {
    TABLE.get(id as usize).map(|&(_, _, kind)| kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_dense_and_in_id_order() {
        assert_eq!(TABLE.len(), METRIC_COUNT);
        for (i, &(id, name, _)) in TABLE.iter().enumerate() {
            assert_eq!(id as usize, i, "table row {i} carries id {id}");
            assert!(name.contains('.'), "{name} is not hierarchical");
            let layer = name.split('.').next().unwrap();
            assert!(
                ["store", "serve", "net", "stream"].contains(&layer),
                "{name} has unknown layer {layer}"
            );
        }
    }

    #[test]
    fn names_are_unique() {
        for (i, &(_, a, _)) in TABLE.iter().enumerate() {
            for &(_, b, _) in &TABLE[i + 1..] {
                assert_ne!(a, b, "duplicate metric name");
            }
        }
    }

    #[test]
    fn lookups_agree_with_the_table() {
        assert_eq!(metric_name(SERVE_QUEUE_WAIT_US), Some("serve.queue.wait_us"));
        assert_eq!(metric_kind(SERVE_QUEUE_WAIT_US), Some(MetricKind::Histogram));
        assert_eq!(metric_name(METRIC_COUNT as u16), None);
        assert_eq!(metric_kind(u16::MAX), None);
    }
}
