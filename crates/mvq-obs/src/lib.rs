//! # mvq-obs — unified observability for the MVQ serving stack
//!
//! A dependency-free metrics + tracing layer shared by every tier of
//! the stack (store → serve → net → stream), re-exported as
//! `mvq::obs`. One [`Registry`] is created per [`ArtifactCache`] and
//! flows upward: the `CompressionService` adopts its cache's registry,
//! the `NetServer` adopts its service's, so a serving stack has exactly
//! one registry and `paper stats` (or `NetClient::stats`) reads the
//! whole pipeline from one snapshot.
//!
//! [`ArtifactCache`]: https://docs.rs/mvq-core
//!
//! ## The pinned name scheme
//!
//! Metrics are identified by dense numeric IDs declared in [`names`]
//! and rendered under dotted hierarchical names:
//! `"<layer>.<object>.<measure>[_<unit>]"`, e.g. `serve.queue.wait_us`,
//! `store.shard.evictions_memory`, `net.conn.frames_rx`,
//! `stream.window.bytes_peak`. The ID registry is **append-only and
//! pinned in `lint.toml`** — renaming or renumbering an existing
//! metric fails `mvq-lint`, exactly like a serialization-tag change.
//!
//! ## How to add a metric
//!
//! 1. Append a `const` ID (value = current [`names::METRIC_COUNT`]) and
//!    a [`names::TABLE`] row in `names.rs`, bump `METRIC_COUNT`.
//! 2. Append the matching pin under `[pins."crates/mvq-obs/src/names.rs"]`
//!    in `lint.toml` (the lint fails until you do).
//! 3. Record at the call site: `registry.counter(ID).inc()`,
//!    `registry.gauge(ID).record_peak(v)`, or
//!    `registry.histogram(ID).record(us)`.
//!
//! ## Overhead contract
//!
//! Recording must be cheap enough for the warm hit path (whose p50 is
//! a few hundred µs over loopback):
//!
//! * counters/gauges: one relaxed atomic RMW — no locks ever;
//! * histograms: four relaxed atomic RMWs, fixed 252-bucket log-scale
//!   array, **no allocation**; p50/p90/p99/max extraction walks the
//!   buckets without allocating (quantiles within ~12.5% of exact,
//!   max is exact);
//! * trace stamps: one monotonic clock read + one atomic CAS per
//!   stage, ~8 stages per job; a short mutex hold + one allocation per
//!   *completed* job when its snapshot enters the [`TraceRing`].
//!
//! The end-to-end cost is asserted by `bench_net`: sustained warm-hit
//! p50/p99 over loopback with full instrumentation must stay within
//! 5% of the pinned pre-observability numbers.
//!
//! ## Job-lifecycle traces
//!
//! A [`Trace`] records monotonic stage timestamps
//! (submitted → queued → dequeued → cache-probe → kernel → encode →
//! cached → replied) as µs offsets from submission. Stages a job never
//! reaches are *absent*, not zero — a deadline-expired job's trace
//! jumps from `queued` straight to `replied` (the cancellation
//! notice), with every execution stage missing. Dedup riders get their
//! own trace, marked
//! [`Trace::deduped`]. Completed traces land in the registry's
//! [`TraceRing`] (last [`Registry::TRACE_RING_CAP`] kept) and are
//! queryable locally or over the wire.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod metrics;
pub mod names;
mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, MetricKind, MetricSnapshot, MetricValue, Registry,
    RegistrySnapshot, HISTOGRAM_BUCKETS,
};
pub use trace::{Stage, Trace, TraceOutcome, TraceRing, TraceSnapshot, STAGE_COUNT};
