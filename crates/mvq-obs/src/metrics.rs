//! Lock-cheap metric primitives and the registry that owns them.
//!
//! Counters and gauges are single `AtomicU64`s; histograms are a fixed
//! array of log-scale buckets (see [`Histogram`]). Recording is a
//! handful of relaxed atomic ops — no locks, no allocation — and
//! quantile extraction walks the bucket array without allocating.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::names;
use crate::trace::TraceRing;

/// What a metric measures. The discriminants are serialization tags
/// (append-only, pinned in `lint.toml`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MetricKind {
    /// A monotonically increasing event count.
    Counter = 0,
    /// A last-written (or high-water) level.
    Gauge = 1,
    /// A log-scale latency/size distribution.
    Histogram = 2,
}

impl MetricKind {
    /// The serialization tag of this kind.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Decodes a serialization tag; `None` for an unknown tag.
    pub fn from_tag(tag: u8) -> Option<MetricKind> {
        match tag {
            0 => Some(MetricKind::Counter),
            1 => Some(MetricKind::Gauge),
            2 => Some(MetricKind::Histogram),
            _ => None,
        }
    }
}

/// A monotonically increasing counter. `inc`/`add` are single relaxed
/// `fetch_add`s — safe to call from any thread, exactly-once per event.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A level gauge. `set` overwrites; `record_peak` keeps the high-water
/// mark via `fetch_max`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh zero gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level to `v` if `v` is higher (high-water mark).
    pub fn record_peak(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Buckets in a [`Histogram`]: values 0–3 get exact buckets, every
/// larger octave `[2^o, 2^(o+1))` is split into 4 linear sub-buckets,
/// up to `o = 62` — so a bucket's bounds are within 25% of each other
/// and a quantile read from bucket midpoints is within ~12.5% of the
/// true value.
pub const HISTOGRAM_BUCKETS: usize = 252;

/// A fixed-bucket log-scale histogram for latencies (µs) or sizes.
///
/// [`Histogram::record`] is 4 relaxed atomic ops (bucket, count, sum,
/// `fetch_max`), no locks, no allocation. [`Histogram::summary`]
/// extracts p50/p90/p99/max by walking the bucket array — also
/// allocation-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Which bucket a value lands in.
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 2
    let sub = ((v >> (msb - 2)) & 3) as usize;
    (msb - 1) * 4 + sub
}

/// The midpoint of a bucket, clamped to `u64::MAX` for the top octave.
fn bucket_midpoint(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64;
    }
    let octave = idx / 4 + 1;
    let sub = (idx % 4) as u128;
    let width = 1u128 << (octave - 2);
    let lo = (1u128 << octave) + sub * width;
    u64::try_from(lo + width / 2).unwrap_or(u64::MAX)
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free, allocation-free.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The approximate value at quantile `p` (`0.0..=1.0`): the
    /// midpoint of the bucket holding the `ceil(p·count)`-th
    /// observation, clamped to the exact max. Returns 0 when empty.
    /// Allocation-free: one walk over the bucket array.
    pub fn quantile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_midpoint(idx).min(self.max());
            }
        }
        // racing recorders can make count lag the buckets; the max is
        // the right answer for "the highest rank we know about"
        self.max()
    }

    /// A point-in-time p50/p90/p99/max summary.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Largest observation (exact).
    pub max: u64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

/// One registered metric's storage.
#[derive(Debug)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    // boxed: the 252-bucket array would otherwise balloon every slot
    Histogram(Box<Histogram>),
}

/// The value of one metric in a [`RegistrySnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's current count.
    Counter(u64),
    /// A gauge's current level.
    Gauge(u64),
    /// A histogram's summary.
    Histogram(HistogramSummary),
}

/// One metric in a [`RegistrySnapshot`].
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// The metric's pinned ID (see [`names`]).
    pub id: u16,
    /// The metric's dotted name, or `"?"` for an ID this build does
    /// not know (a snapshot from a newer peer).
    pub name: &'static str,
    /// The captured value.
    pub value: MetricValue,
}

/// A point-in-time capture of every metric in a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// All metrics, in ID order.
    pub metrics: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// The metric with ID `id`, if present.
    pub fn get(&self, id: u16) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| m.id == id)
    }

    /// A counter/gauge value by ID; 0 when absent or a histogram.
    pub fn value(&self, id: u16) -> u64 {
        match self.get(id).map(|m| m.value) {
            Some(MetricValue::Counter(v)) | Some(MetricValue::Gauge(v)) => v,
            _ => 0,
        }
    }

    /// A histogram summary by ID; empty when absent or not a histogram.
    pub fn histogram(&self, id: u16) -> HistogramSummary {
        match self.get(id).map(|m| m.value) {
            Some(MetricValue::Histogram(h)) => h,
            _ => HistogramSummary::default(),
        }
    }
}

/// The process-side metric registry: one slot per pinned metric ID
/// (see [`names::TABLE`]), plus the ring of recently completed job
/// traces. Shared as an `Arc` across the cache, service, and network
/// front of one serving stack; hot-path access is a direct index — no
/// hashing, no locks.
#[derive(Debug)]
pub struct Registry {
    slots: Vec<Slot>,
    traces: TraceRing,
}

/// Sink for accesses with a wrong-kind ID: recording into it is
/// harmless and reads return 0, so misuse shows up as a blank metric
/// instead of a panic on the serving path.
fn noop_counter() -> &'static Counter {
    static NOOP: Counter = Counter::new();
    &NOOP
}

fn noop_gauge() -> &'static Gauge {
    static NOOP: Gauge = Gauge::new();
    &NOOP
}

fn noop_histogram() -> &'static Histogram {
    static NOOP: OnceLock<Histogram> = OnceLock::new();
    NOOP.get_or_init(Histogram::new)
}

impl Registry {
    /// Builds a registry with every metric in [`names::TABLE`]
    /// registered, wrapped in the `Arc` the stack shares.
    pub fn new() -> Arc<Registry> {
        let slots = names::TABLE
            .iter()
            .map(|&(_, _, kind)| match kind {
                MetricKind::Counter => Slot::Counter(Counter::new()),
                MetricKind::Gauge => Slot::Gauge(Gauge::new()),
                MetricKind::Histogram => Slot::Histogram(Box::default()),
            })
            .collect();
        Arc::new(Registry { slots, traces: TraceRing::new(Registry::TRACE_RING_CAP) })
    }

    /// Completed traces kept per registry.
    pub const TRACE_RING_CAP: usize = 64;

    /// The counter with ID `id`. A wrong-kind or unknown ID returns a
    /// no-op counter rather than panicking.
    pub fn counter(&self, id: u16) -> &Counter {
        match self.slots.get(id as usize) {
            Some(Slot::Counter(c)) => c,
            _ => noop_counter(),
        }
    }

    /// The gauge with ID `id` (no-op on a wrong-kind or unknown ID).
    pub fn gauge(&self, id: u16) -> &Gauge {
        match self.slots.get(id as usize) {
            Some(Slot::Gauge(g)) => g,
            _ => noop_gauge(),
        }
    }

    /// The histogram with ID `id` (no-op on a wrong-kind or unknown ID).
    pub fn histogram(&self, id: u16) -> &Histogram {
        match self.slots.get(id as usize) {
            Some(Slot::Histogram(h)) => h,
            _ => noop_histogram(),
        }
    }

    /// The ring of recently completed job traces.
    pub fn traces(&self) -> &TraceRing {
        &self.traces
    }

    /// Captures every metric. Values are read relaxed; the snapshot is
    /// coherent per metric, not across metrics.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = names::TABLE
            .iter()
            .map(|&(id, name, _)| {
                let value = match &self.slots[id as usize] {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram(h.summary()),
                };
                MetricSnapshot { id, name, value }
            })
            .collect();
        RegistrySnapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_in_range() {
        let mut values: Vec<u64> = (0..=4096).collect();
        for shift in 12..64 {
            let base = 1u64 << shift;
            values.extend([base, base + base / 4, base + base / 2, u64::MAX - (64 - shift) as u64]);
        }
        values.sort_unstable();
        let mut last = 0;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx < HISTOGRAM_BUCKETS, "v={v} idx={idx}");
            assert!(idx >= last, "bucket index regressed at v={v}");
            last = idx;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(3), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_midpoint_lands_in_its_own_bucket() {
        for v in [0u64, 1, 3, 4, 7, 100, 1000, 123_456, 1 << 40] {
            let idx = bucket_index(v);
            let mid = bucket_midpoint(idx);
            assert_eq!(bucket_index(mid), idx, "midpoint of bucket {idx} (v={v}) escapes it");
        }
    }

    #[test]
    fn histogram_quantiles_track_a_known_distribution() {
        let h = Histogram::new();
        // 1..=1000 µs uniformly: p50 ≈ 500, p99 ≈ 990, max = 1000
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p50 = h.quantile(0.50) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.15, "p50={p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.15, "p99={p99}");
        assert!(h.quantile(1.0) <= 1000);
    }

    #[test]
    fn histogram_empty_and_single_value() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
        h.record(42);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.max, 42);
        assert_eq!(s.p50, s.p99, "one observation has one quantile");
        assert!(s.p50 >= 40 && s.p50 <= 42, "p50={} should approximate 42", s.p50);
    }

    #[test]
    fn registry_round_trips_counters_gauges_histograms() {
        let r = Registry::new();
        r.counter(names::STORE_CACHE_HITS).inc();
        r.counter(names::STORE_CACHE_HITS).add(2);
        r.gauge(names::STREAM_WINDOW_BYTES_PEAK).record_peak(100);
        r.gauge(names::STREAM_WINDOW_BYTES_PEAK).record_peak(50); // lower: ignored
        r.histogram(names::SERVE_QUEUE_WAIT_US).record(7);
        let snap = r.snapshot();
        assert_eq!(snap.value(names::STORE_CACHE_HITS), 3);
        assert_eq!(snap.value(names::STREAM_WINDOW_BYTES_PEAK), 100);
        assert_eq!(snap.histogram(names::SERVE_QUEUE_WAIT_US).count, 1);
        assert_eq!(snap.metrics.len(), names::METRIC_COUNT);
    }

    #[test]
    fn wrong_kind_access_is_a_noop_not_a_panic() {
        let r = Registry::new();
        // STORE_CACHE_HITS is a counter: gauge/histogram views are inert
        r.gauge(names::STORE_CACHE_HITS).set(9);
        r.histogram(names::STORE_CACHE_HITS).record(9);
        r.counter(u16::MAX).inc();
        assert_eq!(r.snapshot().value(names::STORE_CACHE_HITS), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..1000 {
                        r.counter(names::SERVE_JOBS_SUBMITTED).inc();
                        r.histogram(names::SERVE_JOB_RUN_US).record(i);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.value(names::SERVE_JOBS_SUBMITTED), 8000);
        assert_eq!(snap.histogram(names::SERVE_JOB_RUN_US).count, 8000);
    }
}
