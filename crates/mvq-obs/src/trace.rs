//! Job-lifecycle span tracing.
//!
//! A [`Trace`] is a cheap cloneable handle threaded alongside a job
//! through the serving stack. Each pipeline stage stamps its
//! monotonic timestamp (µs offset from submission) exactly once via a
//! lock-free atomic slot; stages a job never reaches are simply never
//! stamped, so an incomplete lifecycle reads as *absent* stages, not
//! zeros. When the job resolves, [`Trace::finish`] freezes it into a
//! [`TraceSnapshot`] (first caller wins — a job cancelled at dequeue
//! cannot later be double-reported as completed) which the owning
//! service pushes into its [`TraceRing`] of recently completed traces.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A job-lifecycle stage. The discriminants are serialization tags
/// (append-only, pinned in `lint.toml`); their numeric order is also
/// the pipeline order, so a trace's present stages sorted by tag are
/// sorted by time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    /// The request entered `submit`.
    Submitted = 0,
    /// The job was placed in the priority queue.
    Queued = 1,
    /// A worker took the job off the queue.
    Dequeued = 2,
    /// The artifact cache was probed for the job's key.
    CacheProbe = 3,
    /// The compression kernel finished.
    Kernel = 4,
    /// The artifact was encoded to its wire/cache bytes.
    Encode = 5,
    /// The encoded blob was admitted into the cache.
    Cached = 6,
    /// The result was handed to the waiter / written to the wire.
    Replied = 7,
}

/// Number of stages; tags are dense in `0..STAGE_COUNT`.
pub const STAGE_COUNT: usize = 8;

impl Stage {
    /// All stages, in pipeline (= tag) order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Submitted,
        Stage::Queued,
        Stage::Dequeued,
        Stage::CacheProbe,
        Stage::Kernel,
        Stage::Encode,
        Stage::Cached,
        Stage::Replied,
    ];

    /// The serialization tag of this stage.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Decodes a serialization tag; `None` for an unknown tag.
    pub fn from_tag(tag: u8) -> Option<Stage> {
        match tag {
            0 => Some(Stage::Submitted),
            1 => Some(Stage::Queued),
            2 => Some(Stage::Dequeued),
            3 => Some(Stage::CacheProbe),
            4 => Some(Stage::Kernel),
            5 => Some(Stage::Encode),
            6 => Some(Stage::Cached),
            7 => Some(Stage::Replied),
            _ => None,
        }
    }

    /// A short human-readable name (`"cache-probe"` style).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Submitted => "submitted",
            Stage::Queued => "queued",
            Stage::Dequeued => "dequeued",
            Stage::CacheProbe => "cache-probe",
            Stage::Kernel => "kernel",
            Stage::Encode => "encode",
            Stage::Cached => "cached",
            Stage::Replied => "replied",
        }
    }
}

/// How a traced job resolved. The discriminants are serialization
/// tags (append-only, pinned in `lint.toml`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceOutcome {
    /// Still in flight (only seen on unfinished traces).
    Pending = 0,
    /// Resolved with a result.
    Ok = 1,
    /// Resolved with an error.
    Error = 2,
    /// Cancelled explicitly (client disconnect / token).
    CancelledExplicit = 3,
    /// Discarded because its queue deadline expired.
    CancelledDeadline = 4,
}

impl TraceOutcome {
    /// The serialization tag of this outcome.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Decodes a serialization tag; `None` for an unknown tag.
    pub fn from_tag(tag: u8) -> Option<TraceOutcome> {
        match tag {
            0 => Some(TraceOutcome::Pending),
            1 => Some(TraceOutcome::Ok),
            2 => Some(TraceOutcome::Error),
            3 => Some(TraceOutcome::CancelledExplicit),
            4 => Some(TraceOutcome::CancelledDeadline),
            _ => None,
        }
    }

    /// A short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TraceOutcome::Pending => "pending",
            TraceOutcome::Ok => "ok",
            TraceOutcome::Error => "error",
            TraceOutcome::CancelledExplicit => "cancelled",
            TraceOutcome::CancelledDeadline => "deadline-expired",
        }
    }
}

#[derive(Debug)]
struct TraceInner {
    name: String,
    start: Instant,
    /// Per-stage µs offset from `start`, encoded `offset + 1` so 0
    /// means "never stamped". First stamp wins.
    stages: [AtomicU64; STAGE_COUNT],
    deduped: AtomicBool,
    finished: AtomicBool,
    outcome: AtomicU8,
}

/// A cloneable handle recording one job's lifecycle. Stamping is a
/// saturating clock read plus one atomic store — cheap enough for the
/// warm hit path.
#[derive(Debug, Clone)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

impl Trace {
    /// Starts a trace for job `name`, stamping [`Stage::Submitted`] at
    /// offset 0.
    pub fn begin(name: &str) -> Trace {
        let trace = Trace {
            inner: Arc::new(TraceInner {
                name: name.to_string(),
                start: Instant::now(),
                stages: std::array::from_fn(|_| AtomicU64::new(0)),
                deduped: AtomicBool::new(false),
                finished: AtomicBool::new(false),
                outcome: AtomicU8::new(TraceOutcome::Pending.tag()),
            }),
        };
        trace.stamp(Stage::Submitted);
        trace
    }

    /// The job name this trace belongs to.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Stamps `stage` at the current µs offset from submission. The
    /// first stamp of a stage wins; re-stamps are ignored.
    pub fn stamp(&self, stage: Stage) {
        let offset = u64::try_from(self.inner.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let encoded = offset.saturating_add(1);
        let _ = self.inner.stages[stage.tag() as usize].compare_exchange(
            0,
            encoded,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// The µs offset at which `stage` was stamped, or `None` if the
    /// job never reached it.
    pub fn stage_us(&self, stage: Stage) -> Option<u64> {
        match self.inner.stages[stage.tag() as usize].load(Ordering::Relaxed) {
            0 => None,
            encoded => Some(encoded - 1),
        }
    }

    /// Marks this submission as a dedup rider on another in-flight job.
    pub fn mark_deduped(&self) {
        self.inner.deduped.store(true, Ordering::Relaxed);
    }

    /// Whether this submission rode an in-flight job.
    pub fn deduped(&self) -> bool {
        self.inner.deduped.load(Ordering::Relaxed)
    }

    /// µs elapsed since submission.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.inner.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Freezes the trace with `outcome`. The first caller gets the
    /// snapshot (push it into a [`TraceRing`]); later calls return
    /// `None` — a trace resolves exactly once.
    pub fn finish(&self, outcome: TraceOutcome) -> Option<TraceSnapshot> {
        if self.inner.finished.swap(true, Ordering::AcqRel) {
            return None;
        }
        self.inner.outcome.store(outcome.tag(), Ordering::Relaxed);
        Some(self.snapshot_with(outcome))
    }

    /// A point-in-time copy of the trace (regardless of whether it has
    /// finished), reporting `outcome` as recorded so far.
    pub fn snapshot(&self) -> TraceSnapshot {
        let outcome = TraceOutcome::from_tag(self.inner.outcome.load(Ordering::Relaxed))
            .unwrap_or(TraceOutcome::Pending);
        self.snapshot_with(outcome)
    }

    fn snapshot_with(&self, outcome: TraceOutcome) -> TraceSnapshot {
        let stages = Stage::ALL
            .iter()
            .filter_map(|&stage| self.stage_us(stage).map(|us| (stage, us)))
            .collect();
        TraceSnapshot { name: self.inner.name.clone(), deduped: self.deduped(), outcome, stages }
    }
}

/// A frozen copy of one job's lifecycle trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// The job name.
    pub name: String,
    /// Whether this submission rode an in-flight job (dedup rider).
    pub deduped: bool,
    /// How the job resolved.
    pub outcome: TraceOutcome,
    /// `(stage, µs offset from submission)` for every stage the job
    /// reached, in pipeline order. Stages that never ran are absent.
    pub stages: Vec<(Stage, u64)>,
}

impl TraceSnapshot {
    /// The µs offset of `stage`, or `None` if the job never reached it.
    pub fn stage_us(&self, stage: Stage) -> Option<u64> {
        self.stages.iter().find(|&&(s, _)| s == stage).map(|&(_, us)| us)
    }

    /// Whether the recorded offsets are nondecreasing in pipeline
    /// order — the monotonicity every real trace must satisfy.
    pub fn is_monotonic(&self) -> bool {
        self.stages.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0)
    }
}

/// A bounded ring of the most recently completed [`TraceSnapshot`]s.
/// Pushes take one short mutex hold; the ring never grows past its
/// capacity.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    ring: Mutex<std::collections::VecDeque<TraceSnapshot>>,
}

impl TraceRing {
    /// A ring keeping the last `cap` completed traces (`cap` ≥ 1).
    pub fn new(cap: usize) -> TraceRing {
        let cap = cap.max(1);
        TraceRing { cap, ring: Mutex::new(std::collections::VecDeque::with_capacity(cap)) }
    }

    /// Adds a completed trace, evicting the oldest past capacity.
    pub fn push(&self, trace: TraceSnapshot) {
        let mut ring = self.ring.lock().expect("trace ring lock");
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The most recently completed traces, newest first, at most `max`.
    pub fn recent(&self, max: usize) -> Vec<TraceSnapshot> {
        let ring = self.ring.lock().expect("trace ring lock");
        ring.iter().rev().take(max).cloned().collect()
    }

    /// Completed traces currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring lock").len()
    }

    /// Whether no trace has completed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_tags_round_trip_and_order_matches_pipeline() {
        for (i, &stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.tag() as usize, i);
            assert_eq!(Stage::from_tag(stage.tag()), Some(stage));
        }
        assert_eq!(Stage::from_tag(8), None);
        for (i, &outcome) in [
            TraceOutcome::Pending,
            TraceOutcome::Ok,
            TraceOutcome::Error,
            TraceOutcome::CancelledExplicit,
            TraceOutcome::CancelledDeadline,
        ]
        .iter()
        .enumerate()
        {
            assert_eq!(outcome.tag() as usize, i);
            assert_eq!(TraceOutcome::from_tag(outcome.tag()), Some(outcome));
        }
        assert_eq!(TraceOutcome::from_tag(5), None);
    }

    #[test]
    fn stamped_stages_are_present_unstamped_absent() {
        let trace = Trace::begin("job");
        trace.stamp(Stage::Queued);
        trace.stamp(Stage::Dequeued);
        let snap = trace.finish(TraceOutcome::CancelledExplicit).expect("first finish");
        assert_eq!(snap.stages.len(), 3, "{snap:?}"); // Submitted + 2
        assert!(snap.stage_us(Stage::Submitted).is_some());
        assert!(snap.stage_us(Stage::Kernel).is_none(), "unreached stage must be absent");
        assert!(snap.stage_us(Stage::Replied).is_none());
        assert!(snap.is_monotonic());
        assert_eq!(snap.outcome, TraceOutcome::CancelledExplicit);
    }

    #[test]
    fn first_stamp_wins_and_finish_is_once() {
        let trace = Trace::begin("job");
        trace.stamp(Stage::Queued);
        let first = trace.stage_us(Stage::Queued);
        std::thread::sleep(std::time::Duration::from_millis(2));
        trace.stamp(Stage::Queued);
        assert_eq!(trace.stage_us(Stage::Queued), first, "re-stamp must be ignored");
        assert!(trace.finish(TraceOutcome::Ok).is_some());
        assert!(trace.finish(TraceOutcome::Error).is_none(), "second finish must be refused");
        assert_eq!(trace.snapshot().outcome, TraceOutcome::Ok);
    }

    #[test]
    fn clones_share_the_same_record() {
        let trace = Trace::begin("job");
        let clone = trace.clone();
        clone.stamp(Stage::Replied);
        clone.mark_deduped();
        assert!(trace.stage_us(Stage::Replied).is_some());
        assert!(trace.deduped());
    }

    #[test]
    fn ring_keeps_the_last_n_newest_first() {
        let ring = TraceRing::new(3);
        for i in 0..5 {
            let trace = Trace::begin(&format!("job-{i}"));
            ring.push(trace.finish(TraceOutcome::Ok).expect("finish"));
        }
        assert_eq!(ring.len(), 3);
        let recent = ring.recent(10);
        let names: Vec<&str> = recent.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["job-4", "job-3", "job-2"]);
        assert_eq!(ring.recent(1).len(), 1);
    }

    #[test]
    fn monotonicity_check_rejects_reordered_offsets() {
        let good = TraceSnapshot {
            name: "g".into(),
            deduped: false,
            outcome: TraceOutcome::Ok,
            stages: vec![(Stage::Submitted, 0), (Stage::Queued, 5), (Stage::Replied, 5)],
        };
        assert!(good.is_monotonic());
        let bad = TraceSnapshot {
            stages: vec![(Stage::Submitted, 9), (Stage::Queued, 5)],
            ..good.clone()
        };
        assert!(!bad.is_monotonic());
    }
}
