//! Area model: the tile resource inventory of Table 2 priced with 40 nm
//! unit areas calibrated against the paper's synthesis results (Table 7).
//!
//! Calibration: unit areas were fitted so the modeled EWS accelerator
//! matches Table 7's 0.36 / 1.14 / 4.24 mm² at sizes 16/32/64 within a few
//! percent, then held fixed for every other setting — so the EWS-C/CM/CMS
//! rows are *predictions* of the model, compared against the paper in the
//! Table 7 bench.

#[cfg(test)]
use crate::config::HwSetting;
use crate::config::{CompressionMode, HwConfig};
use crate::error::AccelError;
use crate::loader::ceil_log2;

/// 40 nm unit areas in mm².
mod unit {
    /// 8-bit multiplier.
    pub const MULT8: f64 = 4.0e-4;
    /// 24-bit adder (psum accumulation).
    pub const ADDER: f64 = 1.1e-4;
    /// One register-file bit.
    pub const RF_BIT: f64 = 2.4e-6;
    /// One codebook-RF bit (multi-read-ported, hence larger than RF_BIT).
    pub const CRF_BIT: f64 = 4.0e-6;
    /// One leading-zero counter stage.
    pub const LZC: f64 = 6.0e-5;
    /// DEMUX, per psum bit.
    pub const DEMUX_BIT: f64 = 1.6e-6;
    /// MUX, per weight bit.
    pub const MUX_BIT: f64 = 1.6e-6;
    /// Per-row control/pipeline overhead of the array (per H).
    pub const ROW_CTRL: f64 = 9.0e-3;
    /// Partial-sum bit width.
    pub const PSUM_BITS: f64 = 24.0;
    /// Weight bit width.
    pub const W_BITS: f64 = 8.0;
    /// WRF depth per PE (Table 2: 16 entries).
    pub const WRF_DEPTH: f64 = 16.0;
    /// L1 SRAM, mm² per KiB (fitted to Table 7's 0.484 mm² / 128 KiB).
    pub const L1_PER_KIB: f64 = 0.48 / 128.0;
    /// L2 SRAM total (fixed 2 MiB in every configuration).
    pub const L2_TOTAL: f64 = 6.924;
}

/// Resource counts of one `H×d` tile column group (Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileResources {
    /// Multipliers.
    pub multipliers: usize,
    /// Adders.
    pub adders: usize,
    /// Register-file bits (WRF + MRF).
    pub rf_bits: usize,
    /// Leading-zero counters.
    pub lzc: usize,
    /// DEMUX count (sparse tile only).
    pub demux: usize,
    /// MUX count (sparse tile only).
    pub mux: usize,
    /// Dense-equivalent MAC parallelism (always `2·H·d`).
    pub parallelism: usize,
}

/// Table 2's resource inventory for an `H×d` tile, dense (`EWS`) or sparse
/// (`EWS-Sparse` with `Q = N/M·d` kept lanes).
pub fn tile_resources(h: usize, d: usize, sparse_q: Option<usize>) -> TileResources {
    match sparse_q {
        None => TileResources {
            multipliers: h * d,
            adders: h * d,
            rf_bits: h * d * 16 * 8,
            lzc: 0,
            demux: 0,
            mux: 0,
            parallelism: 2 * h * d,
        },
        Some(q) => TileResources {
            multipliers: h * q,
            adders: h * d,
            rf_bits: h * q * 16 * 8 + h * q * 16 * ceil_log2(d) as usize,
            lzc: h * q,
            demux: h * q,
            mux: h * q,
            parallelism: 2 * h * d,
        },
    }
}

/// Area of one hardware configuration, broken down like Table 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// The systolic array + controllers + register files ("Accelerator").
    pub accelerator_mm2: f64,
    /// Codebook register file (VQ settings only).
    pub crf_mm2: f64,
    /// L1 global buffer.
    pub l1_mm2: f64,
    /// L2 SRAM.
    pub l2_mm2: f64,
    /// CPU, DMA, interconnect, IO ("Others"); taken from the paper's
    /// per-size values since they are independent of the array design.
    pub others_mm2: f64,
}

impl AreaReport {
    /// Total die area.
    pub fn total_mm2(&self) -> f64 {
        self.accelerator_mm2 + self.crf_mm2 + self.l1_mm2 + self.l2_mm2 + self.others_mm2
    }

    /// Accelerator + CRF (the quantity Table 7 rows EWS-C/CM/CMS report).
    pub fn array_with_crf_mm2(&self) -> f64 {
        self.accelerator_mm2 + self.crf_mm2
    }
}

/// Models the area of `cfg` following Table 2's inventory.
///
/// # Errors
///
/// Returns [`AccelError::InvalidConfig`] when `L` is not a multiple of `d`
/// for VQ settings (the CRF needs `L/d` read ports).
pub fn area_report(cfg: &HwConfig) -> Result<AreaReport, AccelError> {
    let (h, l, d) = (cfg.array_h, cfg.array_l, cfg.d);
    let mode = cfg.setting.compression();
    if mode != CompressionMode::Dense && l % d != 0 {
        return Err(AccelError::InvalidConfig(format!(
            "array width {l} must be a multiple of d = {d}"
        )));
    }
    let sparse_q = match mode {
        CompressionMode::MaskedVqSparse => Some(cfg.keep_n * d / cfg.m),
        _ => None,
    };
    // the array is L/d tile column groups of H×d
    let groups = l / d.min(l);
    let tile = tile_resources(h, d.min(l), sparse_q);
    let tile_mm2 = tile.multipliers as f64 * unit::MULT8
        + tile.adders as f64 * unit::ADDER
        + tile.rf_bits as f64 * unit::RF_BIT
        + tile.lzc as f64 * unit::LZC
        + tile.demux as f64 * unit::DEMUX_BIT * unit::PSUM_BITS
        + tile.mux as f64 * unit::MUX_BIT * unit::W_BITS;
    // ARF + PRF (EWS only): one activation + one psum register per PE row
    // position, Table 2 folds them into the PE; approximate with RF bits
    let ews = cfg.setting.dataflow() == crate::config::Dataflow::Ews;
    let arf_prf = if ews { (h * l) as f64 * (8.0 + unit::PSUM_BITS) * unit::RF_BIT } else { 0.0 };
    let _ = unit::WRF_DEPTH;
    let accelerator_mm2 = groups as f64 * tile_mm2 + arf_prf + h as f64 * unit::ROW_CTRL;
    // CRF: k·d·8 bits with L/d read ports (port overhead fitted to the
    // EWS-C minus EWS deltas of Table 7)
    let crf_mm2 = if mode == CompressionMode::Dense {
        0.0
    } else {
        let bits = (cfg.k * d) as f64 * 8.0;
        let ports = (l / d) as f64;
        bits * unit::CRF_BIT * (0.85 + 0.15 * ports)
    };
    let l1_mm2 = cfg.l1_kib as f64 * unit::L1_PER_KIB;
    let others_mm2 = match h {
        0..=16 => 0.787,
        17..=32 => 1.303,
        _ => 1.659,
    };
    Ok(AreaReport { accelerator_mm2, crf_mm2, l1_mm2, l2_mm2: unit::L2_TOTAL, others_mm2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accel_area(setting: HwSetting, size: usize) -> f64 {
        area_report(&HwConfig::new(setting, size).unwrap()).unwrap().array_with_crf_mm2()
    }

    #[test]
    fn table2_dense_vs_sparse_inventory() {
        let dense = tile_resources(16, 16, None);
        let sparse = tile_resources(16, 16, Some(4));
        assert_eq!(dense.multipliers, 256);
        assert_eq!(sparse.multipliers, 64);
        assert_eq!(dense.adders, sparse.adders);
        assert_eq!(dense.parallelism, sparse.parallelism);
        assert_eq!(sparse.lzc, 64);
        // sparse RF: Q·16·8 weight bits + Q·16·log2(16) mask bits per row
        assert_eq!(sparse.rf_bits, 16 * 4 * 16 * 8 + 16 * 4 * 16 * 4);
        assert!(sparse.rf_bits < dense.rf_bits);
    }

    #[test]
    fn ews_base_calibrates_to_table7() {
        // Table 7: EWS accelerator 0.36 / 1.14 / 4.236 mm²
        for (size, paper) in [(16usize, 0.36), (32, 1.14), (64, 4.236)] {
            let a = accel_area(HwSetting::Ews, size);
            let err = (a - paper).abs() / paper;
            assert!(err < 0.25, "EWS-{size}: modeled {a:.3} vs paper {paper} ({err:.2})");
        }
    }

    #[test]
    fn ews_cms_cuts_array_area_by_about_half() {
        // Table 7: EWS-CMS / EWS = 0.469/0.36 (16), 0.828/1.14 (32),
        // 2.129/4.236 (64): the CRF overhead dominates at 16x16 (ratio
        // above 1) and the sparse-tile saving dominates at 64x64.
        let expected = [(16usize, 0.9..1.6), (32, 0.5..1.05), (64, 0.4..0.8)];
        for (size, band) in expected {
            let base = accel_area(HwSetting::Ews, size);
            let cms = accel_area(HwSetting::EwsCms, size);
            let ratio = cms / base;
            assert!(
                band.contains(&ratio),
                "EWS-CMS/{size} ratio {ratio:.2} outside {band:?} (cms {cms:.3}, base {base:.3})"
            );
        }
    }

    #[test]
    fn crf_area_grows_with_ports() {
        let c16 = area_report(&HwConfig::new(HwSetting::EwsC, 16).unwrap()).unwrap().crf_mm2;
        let c64 = area_report(&HwConfig::new(HwSetting::EwsC, 64).unwrap()).unwrap().crf_mm2;
        assert!(c64 > c16);
        // Table 7 deltas: EWS-C − EWS ≈ 0.29 (16) and 0.54 (64)
        assert!((0.15..0.45).contains(&c16), "CRF-16 {c16:.3}");
        assert!((0.35..0.75).contains(&c64), "CRF-64 {c64:.3}");
    }

    #[test]
    fn vq_settings_have_crf_dense_do_not() {
        let dense = area_report(&HwConfig::new(HwSetting::Ews, 32).unwrap()).unwrap();
        assert_eq!(dense.crf_mm2, 0.0);
        let vq = area_report(&HwConfig::new(HwSetting::EwsCm, 32).unwrap()).unwrap();
        assert!(vq.crf_mm2 > 0.0);
    }

    #[test]
    fn l1_l2_and_totals() {
        let r = area_report(&HwConfig::new(HwSetting::Ews, 16).unwrap()).unwrap();
        assert!((r.l1_mm2 - 0.48).abs() < 0.05);
        assert_eq!(r.l2_mm2, 6.924);
        assert!(r.total_mm2() > r.accelerator_mm2);
        // paper Table 9: MVQ-16 total ≈ 8.66 mm²
        let cms16 = area_report(&HwConfig::new(HwSetting::EwsCms, 16).unwrap()).unwrap();
        assert!((7.5..10.0).contains(&cms16.total_mm2()), "MVQ-16 total {:.2}", cms16.total_mm2());
    }
}
