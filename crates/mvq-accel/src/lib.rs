//! # mvq-accel — EWS systolic-array accelerator simulator
//!
//! An analytical + event-level model of the paper's hardware (§5, §7): an
//! Enhanced-Weight-Stationary (EWS) CNN accelerator with an
//! assignment-aware weight loader and a sparsity-aware systolic array.
//!
//! The model counts the events the paper's evaluation derives its numbers
//! from — MACs, per-level memory accesses (DRAM/L2/L1/PRF/ARF/WRF/CRF),
//! weight-load bits — and multiplies them by the paper's own normalized
//! access costs (Table 8) and by unit areas calibrated to its synthesis
//! results (Table 7). Six hardware settings are modeled: `WS`, `WS-CMS`,
//! `EWS`, `EWS-C`, `EWS-CM` and `EWS-CMS` (§7.1).
//!
//! ```
//! use mvq_accel::{HwConfig, HwSetting, simulate_network, workloads};
//!
//! let cfg = HwConfig::new(HwSetting::EwsCms, 64)?;
//! let report = simulate_network(&cfg, &workloads::resnet18());
//! assert!(report.tops_per_watt() > 0.0);
//! # Ok::<(), mvq_accel::AccelError>(())
//! ```

// Indexed loops are the clearer idiom for the numeric kernels here.
#![allow(clippy::needless_range_loop)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod area;
mod compare;
mod config;
mod energy;
mod error;
mod functional;
mod loader;
mod lzc;
mod roofline;
mod sim;
pub mod workloads;

pub use area::{area_report, tile_resources, AreaReport, TileResources};
pub use compare::{comparison_table, stillmaker_energy_scale, ComparatorRow};
pub use config::{CompressionMode, Dataflow, HwConfig, HwSetting};
pub use energy::{AccessCounts, EnergyModel};
pub use error::AccelError;
pub use functional::{FunctionalEws, FunctionalRun};
pub use loader::{weight_load_bits, WeightLoader};
pub use lzc::{lzc_encode_mask, SparseTile};
pub use roofline::{roofline_point, RooflinePoint};
pub use sim::{simulate_layer, simulate_network, LayerReport, NetworkReport};
