//! The energy model: the paper's normalized per-access costs (Table 8),
//! with one MAC operation as the unit.

/// Normalized energy cost per access for each storage level (Table 8) and
/// per MAC. Units: one 8-bit MAC operation = 1.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Off-chip DRAM, per 8-bit element.
    pub dram: f64,
    /// On-chip L2 SRAM, per element.
    pub l2: f64,
    /// On-chip multi-bank L1, per element.
    pub l1: f64,
    /// Partial-sum register file, per access.
    pub prf: f64,
    /// Activation register file, per access.
    pub arf: f64,
    /// Weight register file, per access.
    pub wrf: f64,
    /// Codebook register file, per access.
    pub crf: f64,
    /// One multiply-accumulate.
    pub mac: f64,
    /// Absolute energy of one MAC in picojoules (8-bit, 40 nm) — converts
    /// normalized units into watts for the power/efficiency figures.
    /// Calibrated so the EWS baseline lands at the paper's ~2.9 TOPS/W at
    /// 64×64 on ResNet-18.
    pub mac_pj: f64,
}

impl EnergyModel {
    /// The paper's Table 8 values.
    pub fn paper() -> EnergyModel {
        EnergyModel {
            dram: 200.0,
            l2: 15.0,
            l1: 6.0,
            prf: 0.22,
            arf: 0.11,
            wrf: 0.02,
            crf: 0.02,
            mac: 1.0,
            mac_pj: 0.5,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::paper()
    }
}

/// Event counts produced by the dataflow model for one layer or network.
/// All memory counts are in 8-bit elements; RF counts are accesses.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccessCounts {
    /// DRAM elements transferred (weights + spilled activations).
    pub dram: f64,
    /// L2 elements transferred.
    pub l2: f64,
    /// L1 elements transferred.
    pub l1: f64,
    /// PRF accesses.
    pub prf: f64,
    /// ARF accesses.
    pub arf: f64,
    /// WRF accesses.
    pub wrf: f64,
    /// CRF accesses (weight decode).
    pub crf: f64,
    /// Physical MAC operations executed.
    pub macs: f64,
}

impl AccessCounts {
    /// Adds another count set (layer accumulation).
    pub fn add(&mut self, other: &AccessCounts) {
        self.dram += other.dram;
        self.l2 += other.l2;
        self.l1 += other.l1;
        self.prf += other.prf;
        self.arf += other.arf;
        self.wrf += other.wrf;
        self.crf += other.crf;
        self.macs += other.macs;
    }

    /// Scales every count (repeat handling).
    pub fn scaled(&self, f: f64) -> AccessCounts {
        AccessCounts {
            dram: self.dram * f,
            l2: self.l2 * f,
            l1: self.l1 * f,
            prf: self.prf * f,
            arf: self.arf * f,
            wrf: self.wrf * f,
            crf: self.crf * f,
            macs: self.macs * f,
        }
    }

    /// Total data-access energy (memory + RF, no compute) in MAC units —
    /// the quantity of Figs. 14/15.
    pub fn data_access_energy(&self, em: &EnergyModel) -> f64 {
        self.dram * em.dram
            + self.l2 * em.l2
            + self.l1 * em.l1
            + self.prf * em.prf
            + self.arf * em.arf
            + self.wrf * em.wrf
            + self.crf * em.crf
    }

    /// On-chip-only data-access energy (paper's Fig. 19 excludes main
    /// memory).
    pub fn on_chip_energy(&self, em: &EnergyModel, mac_gate_factor: f64) -> f64 {
        self.l2 * em.l2
            + self.l1 * em.l1
            + self.prf * em.prf
            + self.arf * em.arf
            + self.wrf * em.wrf
            + self.crf * em.crf
            + self.macs * em.mac * mac_gate_factor
    }

    /// Per-level energy shares `[DRAM, L2, L1, RF]` in MAC units
    /// (Fig. 14's stacked ratios).
    pub fn level_energies(&self, em: &EnergyModel) -> [f64; 4] {
        [
            self.dram * em.dram,
            self.l2 * em.l2,
            self.l1 * em.l1,
            self.prf * em.prf + self.arf * em.arf + self.wrf * em.wrf + self.crf * em.crf,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_match_table8() {
        let em = EnergyModel::paper();
        assert_eq!(em.dram, 200.0);
        assert_eq!(em.l2, 15.0);
        assert_eq!(em.l1, 6.0);
        assert_eq!(em.prf, 0.22);
        assert_eq!(em.arf, 0.11);
        assert_eq!(em.wrf, 0.02);
        assert_eq!(em.crf, 0.02);
        assert_eq!(em.mac, 1.0);
    }

    #[test]
    fn accumulation_and_scaling() {
        let mut a = AccessCounts { dram: 1.0, l1: 2.0, macs: 4.0, ..Default::default() };
        let b = AccessCounts { dram: 3.0, l2: 5.0, ..Default::default() };
        a.add(&b);
        assert_eq!(a.dram, 4.0);
        assert_eq!(a.l2, 5.0);
        let s = a.scaled(2.0);
        assert_eq!(s.dram, 8.0);
        assert_eq!(s.macs, 8.0);
    }

    #[test]
    fn energy_composition() {
        let em = EnergyModel::paper();
        let c = AccessCounts { dram: 1.0, l2: 1.0, l1: 1.0, macs: 10.0, ..Default::default() };
        assert_eq!(c.data_access_energy(&em), 200.0 + 15.0 + 6.0);
        assert_eq!(c.on_chip_energy(&em, 1.0), 15.0 + 6.0 + 10.0);
        // gating halves MAC energy only
        assert_eq!(c.on_chip_energy(&em, 0.5), 15.0 + 6.0 + 5.0);
        let lv = c.level_energies(&em);
        assert_eq!(lv, [200.0, 15.0, 6.0, 0.0]);
    }
}
