//! Hardware configurations: the six settings of the paper's §7.1.

use crate::error::AccelError;

/// Which base dataflow the systolic array runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Conventional weight-stationary with C|K unfolding (TPU-style).
    Ws,
    /// Enhanced weight stationary (EWS): WS plus the (A, B, D) loop
    /// extensions that keep activations in ARFs for `A` cycles, partial
    /// sums in PRFs for `B` weight switches, and `D` kernel-plane
    /// coordinates in the WRFs (paper Fig. 7).
    Ews,
}

/// How weights are stored and fed to the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompressionMode {
    /// Dense 8-bit weights (the `-base` settings).
    Dense,
    /// Conventional VQ (`-C`): codebook + assignments, dense decode,
    /// dense array.
    VqDense,
    /// Masked VQ (`-CM`): codebook + assignments + masks, sparse decode,
    /// dense array (zeros are still multiplied).
    MaskedVq,
    /// Masked VQ with the sparse tile (`-CMS`): sparse decode *and* the
    /// sparsity-aware array that instantiates only `Q = N/M × d`
    /// multipliers per `d` output channels.
    MaskedVqSparse,
}

/// The six named hardware settings evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwSetting {
    /// (a) WS baseline, dense 8-bit weights.
    Ws,
    /// (b) WS with full MVQ (masks + sparse tile).
    WsCms,
    /// (c) EWS baseline, dense 8-bit weights.
    Ews,
    /// (d) EWS with conventional VQ (k=1024, d=8 for CR parity).
    EwsC,
    /// (e) EWS with masked VQ (k=512, d=16).
    EwsCm,
    /// (f) EWS with masked VQ and the sparse tile — the full design.
    EwsCms,
}

impl HwSetting {
    /// All six settings in the paper's order.
    pub const ALL: [HwSetting; 6] = [
        HwSetting::Ws,
        HwSetting::WsCms,
        HwSetting::Ews,
        HwSetting::EwsC,
        HwSetting::EwsCm,
        HwSetting::EwsCms,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            HwSetting::Ws => "WS",
            HwSetting::WsCms => "WS-CMS",
            HwSetting::Ews => "EWS",
            HwSetting::EwsC => "EWS-C",
            HwSetting::EwsCm => "EWS-CM",
            HwSetting::EwsCms => "EWS-CMS",
        }
    }

    /// The base dataflow.
    pub fn dataflow(&self) -> Dataflow {
        match self {
            HwSetting::Ws | HwSetting::WsCms => Dataflow::Ws,
            _ => Dataflow::Ews,
        }
    }

    /// The weight path.
    pub fn compression(&self) -> CompressionMode {
        match self {
            HwSetting::Ws | HwSetting::Ews => CompressionMode::Dense,
            HwSetting::EwsC => CompressionMode::VqDense,
            HwSetting::EwsCm => CompressionMode::MaskedVq,
            HwSetting::WsCms | HwSetting::EwsCms => CompressionMode::MaskedVqSparse,
        }
    }
}

impl std::fmt::Display for HwSetting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully specified accelerator instance.
///
/// Defaults follow §7.1: for VQ settings the codebook/subvector sizes are
/// chosen for equal compression ratio — `k=1024, d=8` for EWS-C and
/// `k=512, d=16` with 4:16 pruning for EWS-CM/CMS; 64-bit DMA; 0.3 GHz;
/// 2 MB L2; 128 KB L1 for 16×16 arrays and 256 KB for larger (§7.2).
#[derive(Debug, Clone, PartialEq)]
pub struct HwConfig {
    /// Which named setting this instance implements.
    pub setting: HwSetting,
    /// Array height H (rows, input-channel parallelism).
    pub array_h: usize,
    /// Array width L (columns, output-channel parallelism).
    pub array_l: usize,
    /// EWS extension A (activation residency, cycles).
    pub ext_a: usize,
    /// EWS extension B (partial-sum residency, weight switches).
    pub ext_b: usize,
    /// EWS extension D (kernel-plane coordinates resident in WRF).
    pub ext_d: usize,
    /// Codewords in the codebook (VQ settings).
    pub k: usize,
    /// Subvector length d (VQ settings).
    pub d: usize,
    /// Kept weights per group (N of N:M).
    pub keep_n: usize,
    /// Pruning group size (M of N:M).
    pub m: usize,
    /// DMA datawidth between L2 and the loader, bits per cycle.
    pub dma_bits: usize,
    /// L1 size in KiB.
    pub l1_kib: usize,
    /// L2 size in KiB.
    pub l2_kib: usize,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// L1 bandwidth in 8-bit words per cycle (multi-bank aggregate).
    pub l1_words_per_cycle: f64,
    /// Fraction of activations that are zero post-ReLU (drives the
    /// zero-value-gated PE saving, §5.3/Fig. 9).
    pub activation_zero_frac: f64,
}

impl HwConfig {
    /// Builds the paper's configuration of `setting` at `size`×`size`
    /// (16, 32 or 64 in the evaluation; any power of two ≥ 8 is allowed).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] for non-power-of-two or
    /// too-small sizes.
    pub fn new(setting: HwSetting, size: usize) -> Result<HwConfig, AccelError> {
        if size < 8 || !size.is_power_of_two() {
            return Err(AccelError::InvalidConfig(format!(
                "array size must be a power of two >= 8, got {size}"
            )));
        }
        let (k, d) = match setting.compression() {
            CompressionMode::VqDense => (1024, 8),
            CompressionMode::MaskedVq | CompressionMode::MaskedVqSparse => (512, 16),
            CompressionMode::Dense => (0, 16),
        };
        let ews = setting.dataflow() == Dataflow::Ews;
        Ok(HwConfig {
            setting,
            array_h: size,
            array_l: size,
            ext_a: if ews { 4 } else { 1 },
            ext_b: if ews { 4 } else { 1 },
            ext_d: if ews { 4 } else { 1 },
            k,
            d,
            keep_n: 4,
            m: 16,
            // the 64-bit DDR weight interface (§5.1) transfers on both
            // edges relative to the 0.3 GHz array clock: 128 bits/cycle
            dma_bits: 128,
            l1_kib: if size <= 16 { 128 } else { 256 },
            l2_kib: 2048,
            freq_ghz: 0.3,
            l1_words_per_cycle: 2.5 * size as f64,
            activation_zero_frac: 0.35,
        })
    }

    /// Dense-equivalent MAC parallelism per cycle (`2·H·L` ops). The
    /// sparse tile keeps this parallelism with `N/M` of the multipliers
    /// (paper Table 2: "Parallelism 2×H×d" for both tiles).
    pub fn effective_macs_per_cycle(&self) -> f64 {
        (self.array_h * self.array_l) as f64
    }

    /// Physical multiplier count.
    pub fn physical_macs(&self) -> usize {
        match self.setting.compression() {
            CompressionMode::MaskedVqSparse => self.array_h * self.array_l * self.keep_n / self.m,
            _ => self.array_h * self.array_l,
        }
    }

    /// Peak effective performance in TOPS (2 ops per dense-equivalent
    /// MAC).
    pub fn peak_tops(&self) -> f64 {
        2.0 * self.effective_macs_per_cycle() * self.freq_ghz / 1000.0
    }

    /// Weight sparsity exploited by the array (0 for dense settings).
    pub fn weight_sparsity(&self) -> f64 {
        match self.setting.compression() {
            CompressionMode::MaskedVq | CompressionMode::MaskedVqSparse => {
                1.0 - self.keep_n as f64 / self.m as f64
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_map_to_dataflow_and_compression() {
        assert_eq!(HwSetting::Ws.dataflow(), Dataflow::Ws);
        assert_eq!(HwSetting::WsCms.dataflow(), Dataflow::Ws);
        assert_eq!(HwSetting::EwsCms.dataflow(), Dataflow::Ews);
        assert_eq!(HwSetting::Ews.compression(), CompressionMode::Dense);
        assert_eq!(HwSetting::EwsC.compression(), CompressionMode::VqDense);
        assert_eq!(HwSetting::EwsCm.compression(), CompressionMode::MaskedVq);
        assert_eq!(HwSetting::EwsCms.compression(), CompressionMode::MaskedVqSparse);
        assert_eq!(HwSetting::ALL.len(), 6);
    }

    #[test]
    fn config_matches_paper_defaults() {
        let c = HwConfig::new(HwSetting::EwsCms, 64).unwrap();
        assert_eq!((c.k, c.d), (512, 16));
        assert_eq!((c.keep_n, c.m), (4, 16));
        assert_eq!(c.l1_kib, 256);
        let c16 = HwConfig::new(HwSetting::EwsCms, 16).unwrap();
        assert_eq!(c16.l1_kib, 128);
        let cc = HwConfig::new(HwSetting::EwsC, 32).unwrap();
        assert_eq!((cc.k, cc.d), (1024, 8));
    }

    #[test]
    fn peak_performance_matches_table9() {
        // MVQ-64: 1024 physical MACs, 2.4 effective TOPS at 0.3 GHz
        let c = HwConfig::new(HwSetting::EwsCms, 64).unwrap();
        assert_eq!(c.physical_macs(), 1024);
        assert!((c.peak_tops() - 2.4576).abs() < 0.01, "{}", c.peak_tops());
        // MVQ-16: 64 physical MACs, ~0.15 TOPS
        let c = HwConfig::new(HwSetting::EwsCms, 16).unwrap();
        assert_eq!(c.physical_macs(), 64);
        assert!((c.peak_tops() - 0.1536).abs() < 0.01);
        // dense EWS-64 has 4096 physical MACs at the same peak
        let c = HwConfig::new(HwSetting::Ews, 64).unwrap();
        assert_eq!(c.physical_macs(), 4096);
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(HwConfig::new(HwSetting::Ews, 0).is_err());
        assert!(HwConfig::new(HwSetting::Ews, 48).is_err());
        assert!(HwConfig::new(HwSetting::Ews, 4).is_err());
    }

    #[test]
    fn sparsity_only_for_masked_modes() {
        assert_eq!(HwConfig::new(HwSetting::Ews, 16).unwrap().weight_sparsity(), 0.0);
        assert_eq!(HwConfig::new(HwSetting::EwsC, 16).unwrap().weight_sparsity(), 0.0);
        assert_eq!(HwConfig::new(HwSetting::EwsCm, 16).unwrap().weight_sparsity(), 0.75);
        assert_eq!(HwConfig::new(HwSetting::EwsCms, 16).unwrap().weight_sparsity(), 0.75);
    }
}
