//! Workload definitions: the convolution layer shapes of the five networks
//! the paper evaluates (§7.1), at their real ImageNet input sizes.
//!
//! The simulator only needs layer *shapes* (no weights), so these are the
//! actual architectures, not the scaled-down training models of `mvq-nn`.

/// One convolution layer's shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Input feature-map side (square).
    pub in_size: usize,
    /// How many times this shape repeats in the network.
    pub repeats: usize,
    /// Depthwise convolution (maps to the array diagonal; excluded from
    /// MVQ per §7.5).
    pub depthwise: bool,
}

impl ConvShape {
    /// A dense conv layer.
    pub const fn new(
        cin: usize,
        cout: usize,
        kernel: usize,
        stride: usize,
        in_size: usize,
        repeats: usize,
    ) -> ConvShape {
        ConvShape { cin, cout, kernel, stride, in_size, repeats, depthwise: false }
    }

    /// A depthwise conv layer.
    pub const fn dw(ch: usize, kernel: usize, stride: usize, in_size: usize) -> ConvShape {
        ConvShape { cin: ch, cout: ch, kernel, stride, in_size, repeats: 1, depthwise: true }
    }

    /// Output feature-map side, assuming "same" padding.
    pub fn out_size(&self) -> usize {
        self.in_size.div_ceil(self.stride)
    }

    /// Multiply-accumulates for one instance of this layer.
    pub fn macs(&self) -> u64 {
        let e2 = (self.out_size() * self.out_size()) as u64;
        let cpg = if self.depthwise { 1 } else { self.cin } as u64;
        self.cout as u64 * cpg * (self.kernel * self.kernel) as u64 * e2
    }

    /// Weight element count for one instance.
    pub fn weight_elems(&self) -> u64 {
        let cpg = if self.depthwise { 1 } else { self.cin } as u64;
        self.cout as u64 * cpg * (self.kernel * self.kernel) as u64
    }

    /// Input feature-map elements.
    pub fn ifmap_elems(&self) -> u64 {
        (self.cin * self.in_size * self.in_size) as u64
    }

    /// Output feature-map elements.
    pub fn ofmap_elems(&self) -> u64 {
        (self.cout * self.out_size() * self.out_size()) as u64
    }
}

/// A network workload: a name plus its conv layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    /// Display name.
    pub name: &'static str,
    /// Layers in execution order.
    pub layers: Vec<ConvShape>,
}

impl Network {
    /// Total MACs including repeats.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs() * l.repeats as u64).sum()
    }

    /// Total weight elements including repeats.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_elems() * l.repeats as u64).sum()
    }

    /// Only the pointwise (1×1) layers — used for the MobileNet rows of
    /// Fig. 20, which the paper restricts to pointwise convolutions.
    pub fn pointwise_only(&self) -> Network {
        Network {
            name: self.name,
            layers: self.layers.iter().filter(|l| l.kernel == 1 && !l.depthwise).copied().collect(),
        }
    }
}

/// ResNet-18 at 224×224 (ImageNet).
pub fn resnet18() -> Network {
    Network {
        name: "ResNet18",
        layers: vec![
            ConvShape::new(3, 64, 7, 2, 224, 1),
            ConvShape::new(64, 64, 3, 1, 56, 4),
            ConvShape::new(64, 128, 3, 2, 56, 1),
            ConvShape::new(128, 128, 3, 1, 28, 3),
            ConvShape::new(64, 128, 1, 2, 56, 1), // projection
            ConvShape::new(128, 256, 3, 2, 28, 1),
            ConvShape::new(256, 256, 3, 1, 14, 3),
            ConvShape::new(128, 256, 1, 2, 28, 1),
            ConvShape::new(256, 512, 3, 2, 14, 1),
            ConvShape::new(512, 512, 3, 1, 7, 3),
            ConvShape::new(256, 512, 1, 2, 14, 1),
        ],
    }
}

/// ResNet-50 at 224×224.
pub fn resnet50() -> Network {
    let mut layers = vec![ConvShape::new(3, 64, 7, 2, 224, 1)];
    // bottleneck stages: (in, mid, out, size, blocks, stride)
    let stages = [
        (64usize, 64usize, 256usize, 56usize, 3usize, 1usize),
        (256, 128, 512, 56, 4, 2),
        (512, 256, 1024, 28, 6, 2),
        (1024, 512, 2048, 14, 3, 2),
    ];
    for &(inc, mid, out, size, blocks, stride) in &stages {
        // first block (with projection)
        layers.push(ConvShape::new(inc, mid, 1, 1, size, 1));
        layers.push(ConvShape::new(mid, mid, 3, stride, size, 1));
        layers.push(ConvShape::new(mid, out, 1, 1, size / stride, 1));
        layers.push(ConvShape::new(inc, out, 1, stride, size, 1));
        // remaining blocks
        let s2 = size / stride;
        layers.push(ConvShape::new(out, mid, 1, 1, s2, blocks - 1));
        layers.push(ConvShape::new(mid, mid, 3, 1, s2, blocks - 1));
        layers.push(ConvShape::new(mid, out, 1, 1, s2, blocks - 1));
    }
    Network { name: "ResNet50", layers }
}

/// VGG-16 at 224×224.
pub fn vgg16() -> Network {
    Network {
        name: "VGG16",
        layers: vec![
            ConvShape::new(3, 64, 3, 1, 224, 1),
            ConvShape::new(64, 64, 3, 1, 224, 1),
            ConvShape::new(64, 128, 3, 1, 112, 1),
            ConvShape::new(128, 128, 3, 1, 112, 1),
            ConvShape::new(128, 256, 3, 1, 56, 1),
            ConvShape::new(256, 256, 3, 1, 56, 2),
            ConvShape::new(256, 512, 3, 1, 28, 1),
            ConvShape::new(512, 512, 3, 1, 28, 2),
            ConvShape::new(512, 512, 3, 1, 14, 3),
        ],
    }
}

/// AlexNet at 227×227.
pub fn alexnet() -> Network {
    Network {
        name: "AlexNet",
        layers: vec![
            ConvShape::new(3, 64, 11, 4, 227, 1),
            ConvShape::new(64, 192, 5, 1, 27, 1),
            ConvShape::new(192, 384, 3, 1, 13, 1),
            ConvShape::new(384, 256, 3, 1, 13, 1),
            ConvShape::new(256, 256, 3, 1, 13, 1),
        ],
    }
}

/// MobileNet-v1 at 224×224 (depthwise-separable stacks).
pub fn mobilenet_v1() -> Network {
    let mut layers = vec![ConvShape::new(3, 32, 3, 2, 224, 1)];
    // (channels-in, channels-out, stride, size) of the separable blocks
    let blocks = [
        (32usize, 64usize, 1usize, 112usize),
        (64, 128, 2, 112),
        (128, 128, 1, 56),
        (128, 256, 2, 56),
        (256, 256, 1, 28),
        (256, 512, 2, 28),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 1024, 2, 14),
        (1024, 1024, 1, 7),
    ];
    for &(cin, cout, stride, size) in &blocks {
        layers.push(ConvShape::dw(cin, 3, stride, size));
        layers.push(ConvShape::new(cin, cout, 1, 1, size / stride, 1));
    }
    Network { name: "MobileNet", layers }
}

/// The five evaluation networks of §7.1.
pub fn all_networks() -> Vec<Network> {
    vec![resnet18(), resnet50(), vgg16(), mobilenet_v1(), alexnet()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_macs_near_published() {
        // published: ~1.8 GMACs for 224x224 ResNet-18 convs
        let g = resnet18().total_macs() as f64 / 1e9;
        assert!((1.5..2.1).contains(&g), "ResNet-18 GMACs {g}");
    }

    #[test]
    fn resnet50_macs_near_published() {
        // published: ~4.1 GMACs
        let g = resnet50().total_macs() as f64 / 1e9;
        assert!((3.4..4.6).contains(&g), "ResNet-50 GMACs {g}");
    }

    #[test]
    fn vgg16_macs_near_published() {
        // published: ~15.3 GMACs for the conv layers
        let g = vgg16().total_macs() as f64 / 1e9;
        assert!((13.0..17.0).contains(&g), "VGG-16 GMACs {g}");
    }

    #[test]
    fn mobilenet_macs_near_published() {
        // published: ~0.57 GMACs
        let g = mobilenet_v1().total_macs() as f64 / 1e9;
        assert!((0.4..0.75).contains(&g), "MobileNet GMACs {g}");
    }

    #[test]
    fn alexnet_macs_near_published() {
        // published: ~0.7 GMACs for conv layers
        let g = alexnet().total_macs() as f64 / 1e9;
        assert!((0.5..0.9).contains(&g), "AlexNet GMACs {g}");
    }

    #[test]
    fn weight_counts_sane() {
        // ResNet-18 convs hold ~11M params; VGG-16 convs ~14.7M
        let w18 = resnet18().total_weights() as f64 / 1e6;
        assert!((9.0..12.5).contains(&w18), "ResNet-18 Mparams {w18}");
        let wv = vgg16().total_weights() as f64 / 1e6;
        assert!((13.0..16.0).contains(&wv), "VGG-16 Mparams {wv}");
    }

    #[test]
    fn out_size_math() {
        let l = ConvShape::new(3, 64, 7, 2, 224, 1);
        assert_eq!(l.out_size(), 112);
        assert_eq!(ConvShape::new(64, 64, 3, 1, 56, 1).out_size(), 56);
    }

    #[test]
    fn depthwise_macs_use_single_channel() {
        let dw = ConvShape::dw(128, 3, 1, 28);
        assert_eq!(dw.macs(), 128 * 9 * 28 * 28);
        assert!(dw.depthwise);
    }

    #[test]
    fn pointwise_filter_works() {
        let pw = mobilenet_v1().pointwise_only();
        assert!(pw.layers.iter().all(|l| l.kernel == 1 && !l.depthwise));
        assert!(!pw.layers.is_empty());
    }

    #[test]
    fn all_networks_has_five() {
        assert_eq!(all_networks().len(), 5);
    }
}
