//! Table 9: comparison with prior sparse CNN accelerators, with
//! Stillmaker-Baas process normalization to 40 nm.
//!
//! The comparator rows carry the numbers *reported by the paper* (which
//! itself cites each accelerator's publication); the MVQ rows are computed
//! live by this crate's simulator. Energy normalization follows the
//! paper's method: scale energy/op across process nodes with the
//! Stillmaker-Baas equations (energy ∝ (node ratio)^α with α ≈ 3 in the
//! 45→40 nm range and voltage scaling ∝ V²).

use crate::config::{HwConfig, HwSetting};
use crate::error::AccelError;
use crate::sim::simulate_network;
use crate::workloads;

/// One row of Table 9.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparatorRow {
    /// Design name.
    pub name: &'static str,
    /// Publication venue.
    pub venue: &'static str,
    /// Process node in nm.
    pub process_nm: f64,
    /// Supply voltage in volts (where reported).
    pub voltage: f64,
    /// MAC count.
    pub macs: usize,
    /// Sparsity granularity.
    pub granularity: &'static str,
    /// Exploited sparsity (fraction; NaN when unreported).
    pub sparsity: f64,
    /// Compression ratio (NaN when unreported).
    pub compression_ratio: f64,
    /// Evaluation workload.
    pub workload: &'static str,
    /// Peak performance in TOPS.
    pub peak_tops: f64,
    /// Die area in mm².
    pub area_mm2: f64,
    /// Reported energy efficiency in TOPS/W at the native node.
    pub tops_per_watt: f64,
    /// 40 nm-normalized efficiency (the paper's N-Efficiency row).
    pub normalized_tops_per_watt: f64,
}

/// Stillmaker-Baas energy scaling factor from `from_nm`/`from_v` to
/// `to_nm`/`to_v`: energy per op scales roughly with the cube of the
/// feature-size ratio in the planar regime (and quadratically with
/// voltage), so efficiency (ops/J) scales by the inverse.
pub fn stillmaker_energy_scale(from_nm: f64, from_v: f64, to_nm: f64, to_v: f64) -> f64 {
    let alpha = if from_nm.min(to_nm) < 22.0 { 2.0 } else { 3.0 };
    (from_nm / to_nm).powf(alpha) * (from_v / to_v).powi(2)
}

/// The prior-work rows of Table 9 with the paper's reported and normalized
/// efficiencies.
pub fn prior_work_rows() -> Vec<ComparatorRow> {
    vec![
        ComparatorRow {
            name: "SparTen",
            venue: "MICRO19",
            process_nm: 45.0,
            voltage: 1.0,
            macs: 32,
            granularity: "Random",
            sparsity: f64::NAN,
            compression_ratio: f64::NAN,
            workload: "AlexNet",
            peak_tops: 0.2,
            area_mm2: 0.766,
            tops_per_watt: 0.68,
            normalized_tops_per_watt: 0.97,
        },
        ComparatorRow {
            name: "CGNet",
            venue: "MICRO19",
            process_nm: 28.0,
            voltage: 0.9,
            macs: 576,
            granularity: "Channel-wise",
            sparsity: 0.60,
            compression_ratio: 10.0,
            workload: "ResNet18",
            peak_tops: 2.4,
            area_mm2: 5.574,
            tops_per_watt: 4.5,
            normalized_tops_per_watt: 2.43,
        },
        ComparatorRow {
            name: "SPOTS",
            venue: "TACO22",
            process_nm: 45.0,
            voltage: 1.0,
            macs: 512,
            granularity: "Group-wise",
            sparsity: 0.27,
            compression_ratio: 3.0,
            workload: "VGG16",
            peak_tops: 0.5,
            area_mm2: 8.61,
            tops_per_watt: 0.47,
            normalized_tops_per_watt: 0.67,
        },
        ComparatorRow {
            name: "S2TA-16",
            venue: "HPCA22",
            process_nm: 16.0,
            voltage: 0.8,
            macs: 2048,
            granularity: "N:M",
            sparsity: 0.50,
            compression_ratio: 6.4,
            workload: "AlexNet",
            peak_tops: 8.0,
            area_mm2: 3.8,
            tops_per_watt: 14.0,
            normalized_tops_per_watt: 1.64,
        },
        ComparatorRow {
            name: "S2TA-65",
            venue: "HPCA22",
            process_nm: 65.0,
            voltage: 1.0,
            macs: 2048,
            granularity: "N:M",
            sparsity: 0.50,
            compression_ratio: 6.4,
            workload: "AlexNet",
            peak_tops: 4.0,
            area_mm2: 24.0,
            tops_per_watt: 1.1,
            normalized_tops_per_watt: 2.19,
        },
    ]
}

/// Builds the full Table 9: prior work plus the simulated MVQ-16/32/64
/// rows (ResNet-18 workload, as the paper reports).
///
/// # Errors
///
/// Propagates configuration errors.
pub fn comparison_table() -> Result<Vec<ComparatorRow>, AccelError> {
    let mut rows = prior_work_rows();
    let net = workloads::resnet18();
    for size in [16usize, 32, 64] {
        let cfg = HwConfig::new(HwSetting::EwsCms, size)?;
        let report = simulate_network(&cfg, &net);
        let area = crate::area::area_report(&cfg)?;
        let eff = report.tops_per_watt();
        rows.push(ComparatorRow {
            name: match size {
                16 => "MVQ-16",
                32 => "MVQ-32",
                _ => "MVQ-64",
            },
            venue: "ours",
            process_nm: 40.0,
            voltage: 0.99,
            macs: cfg.physical_macs(),
            granularity: "N:M",
            sparsity: cfg.weight_sparsity(),
            compression_ratio: 22.0,
            workload: "ResNet18",
            peak_tops: cfg.peak_tops(),
            area_mm2: area.total_mm2(),
            tops_per_watt: eff,
            // already at 40 nm
            normalized_tops_per_watt: eff,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_matches_papers_sparten_normalization() {
        // SparTen 45nm/1.0V -> 40nm: paper scales 0.68 -> 0.97 (×1.43);
        // (45/40)^3 = 1.424
        let f = stillmaker_energy_scale(45.0, 1.0, 40.0, 1.0);
        assert!((f - 1.424).abs() < 0.01, "{f}");
        let normalized = 0.68 * f;
        assert!((normalized - 0.97).abs() < 0.03, "{normalized}");
    }

    #[test]
    fn finfet_regime_uses_smaller_alpha() {
        let f = stillmaker_energy_scale(16.0, 0.8, 40.0, 0.99);
        // efficiency must *drop* when normalizing a 16nm design to 40nm
        assert!(f < 0.2, "{f}");
    }

    #[test]
    fn table_contains_prior_work_and_mvq() {
        let rows = comparison_table().unwrap();
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().any(|r| r.name == "SparTen"));
        assert!(rows.iter().any(|r| r.name == "MVQ-64"));
    }

    #[test]
    fn mvq64_beats_all_normalized_comparators() {
        // the paper's headline: 1.73x over the best prior normalized
        // efficiency (S2TA-65's 2.19 -> MVQ-64 at 6.9 is 3.2x; over
        // CGNet's 2.43 it is 2.8x). We require MVQ-64 to lead by >= 1.5x.
        let rows = comparison_table().unwrap();
        let best_prior = rows
            .iter()
            .filter(|r| r.venue != "ours")
            .map(|r| r.normalized_tops_per_watt)
            .fold(0.0f64, f64::max);
        let mvq64 = rows.iter().find(|r| r.name == "MVQ-64").unwrap();
        assert!(
            mvq64.normalized_tops_per_watt > best_prior * 1.5,
            "MVQ-64 {} vs best prior {best_prior}",
            mvq64.normalized_tops_per_watt
        );
    }

    #[test]
    fn mvq_rows_scale_with_array_size() {
        let rows = comparison_table().unwrap();
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        let (m16, m32, m64) = (get("MVQ-16"), get("MVQ-32"), get("MVQ-64"));
        assert!(m16.peak_tops < m32.peak_tops && m32.peak_tops < m64.peak_tops);
        assert!(m16.area_mm2 < m64.area_mm2);
        assert_eq!(m16.macs, 64);
        assert_eq!(m64.macs, 1024);
        // efficiency improves with size (paper: 2.3 -> 4.1 -> 6.9)
        assert!(m16.tops_per_watt < m32.tops_per_watt);
        assert!(m32.tops_per_watt < m64.tops_per_watt);
    }
}
