//! Roofline model (paper Fig. 18): attainable performance against
//! operational intensity, with the weight-loading datawidth as the slanted
//! ceiling that MVQ compression lifts.

use crate::config::HwConfig;
use crate::sim::simulate_network;
use crate::workloads::Network;

/// One point of Fig. 18.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Configuration label (e.g. "EWS-CMS-64").
    pub label: String,
    /// Operational intensity in effective ops per byte moved across the
    /// weight-load interface.
    pub ops_per_byte: f64,
    /// Achieved performance in GOPS.
    pub gops: f64,
    /// Peak compute roof in GOPS.
    pub peak_gops: f64,
    /// Bandwidth roof at this intensity in GOPS.
    pub bandwidth_roof_gops: f64,
}

impl RooflinePoint {
    /// Whether this point is limited by the weight-load bandwidth rather
    /// than compute.
    pub fn is_bandwidth_bound(&self) -> bool {
        self.bandwidth_roof_gops < self.peak_gops
    }
}

/// Computes the roofline point for `net` on `cfg`.
pub fn roofline_point(cfg: &HwConfig, net: &Network) -> RooflinePoint {
    let report = simulate_network(cfg, net);
    let ops = 2.0 * report.effective_macs;
    // bytes across the weight-loading interface (the constrained resource
    // in Fig. 18)
    let wl_bytes: f64 = report
        .layers
        .iter()
        .zip(&net.layers)
        .map(|(rep, shape)| {
            rep.weight_load_cycles * cfg.dma_bits as f64 / 8.0 * shape.repeats as f64
        })
        .sum();
    let ops_per_byte = ops / wl_bytes;
    let bw_bytes_per_s = cfg.dma_bits as f64 / 8.0 * cfg.freq_ghz * 1e9;
    let bandwidth_roof_gops = (ops_per_byte * bw_bytes_per_s / 1e9).min(cfg.peak_tops() * 1000.0);
    RooflinePoint {
        label: format!("{}-{}", cfg.setting.name(), cfg.array_h),
        ops_per_byte,
        gops: report.tops() * 1000.0,
        peak_gops: cfg.peak_tops() * 1000.0,
        bandwidth_roof_gops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HwSetting;
    use crate::workloads;

    #[test]
    fn compression_raises_operational_intensity() {
        let net = workloads::resnet18();
        let base = roofline_point(&HwConfig::new(HwSetting::Ews, 64).unwrap(), &net);
        let cms = roofline_point(&HwConfig::new(HwSetting::EwsCms, 64).unwrap(), &net);
        // loading indices instead of weights multiplies ops/byte by ~CR
        assert!(
            cms.ops_per_byte > base.ops_per_byte * 4.0,
            "cms {} vs base {}",
            cms.ops_per_byte,
            base.ops_per_byte
        );
    }

    #[test]
    fn large_dense_arrays_are_bandwidth_bound() {
        let net = workloads::resnet18();
        let p64 = roofline_point(&HwConfig::new(HwSetting::Ews, 64).unwrap(), &net);
        assert!(p64.is_bandwidth_bound(), "{p64:?}");
        let p16 = roofline_point(&HwConfig::new(HwSetting::Ews, 16).unwrap(), &net);
        // a 16x16 array has a 16x lower compute roof: not bandwidth bound
        assert!(!p16.is_bandwidth_bound(), "{p16:?}");
    }

    #[test]
    fn achieved_below_roofs() {
        let net = workloads::resnet50();
        for setting in [HwSetting::Ews, HwSetting::EwsCms] {
            for size in [16usize, 32, 64] {
                let p = roofline_point(&HwConfig::new(setting, size).unwrap(), &net);
                assert!(p.gops <= p.peak_gops * 1.001, "{p:?}");
                assert!(p.gops <= p.bandwidth_roof_gops * 1.6, "{p:?}");
            }
        }
    }

    #[test]
    fn labels_are_informative() {
        let p =
            roofline_point(&HwConfig::new(HwSetting::EwsCms, 32).unwrap(), &workloads::resnet18());
        assert_eq!(p.label, "EWS-CMS-32");
    }
}
