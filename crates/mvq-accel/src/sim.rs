//! The per-layer dataflow model and network-level simulation.
//!
//! For every conv layer the model counts (a) dense-equivalent and physical
//! MACs, (b) weight-load bits across the L2→array interface, (c) L1/L2/
//! DRAM element traffic under the WS or EWS loop nest (Fig. 7: EWS divides
//! ifmap L1 traffic by `A·D` and psum L1 traffic by `B·D`), and (d)
//! register-file accesses. Cycles per layer are
//! `max(compute, weight-load, L1-bandwidth)` — weight loading is
//! double-buffered behind compute (§5.3's 1W2R WRFs), so only the excess
//! is exposed, which is what makes compression a *speedup* once the array
//! outgrows the weight-load datawidth (Fig. 18).

use crate::config::{CompressionMode, Dataflow, HwConfig};
use crate::energy::{AccessCounts, EnergyModel};
use crate::loader::{weight_load_bits, WeightLoader};
use crate::workloads::{ConvShape, Network};

/// Simulation result for one layer (one repeat).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// The layer shape.
    pub shape: ConvShape,
    /// Event counts.
    pub counts: AccessCounts,
    /// Dense-equivalent MACs.
    pub effective_macs: f64,
    /// Pure compute cycles at full array utilization.
    pub compute_cycles: f64,
    /// Cycles to stream the (possibly compressed) weights.
    pub weight_load_cycles: f64,
    /// Cycles implied by L1 bandwidth.
    pub l1_cycles: f64,
    /// Final layer latency: `max` of the three.
    pub cycles: f64,
}

/// Simulation result for a whole network on one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkReport {
    /// Network name.
    pub network: &'static str,
    /// Setting name.
    pub setting: &'static str,
    /// Per-layer reports (repeats already folded into counts/cycles).
    pub layers: Vec<LayerReport>,
    /// Accumulated event counts.
    pub counts: AccessCounts,
    /// Total cycles.
    pub cycles: f64,
    /// Total dense-equivalent MACs.
    pub effective_macs: f64,
    /// Clock in GHz.
    pub freq_ghz: f64,
    /// MAC energy gating factor applied to the multiplier share of the
    /// compute energy.
    pub mac_gate_factor: f64,
    /// Compute energy in MAC units: gated multiplies plus the always-on
    /// adder tree (the sparse tile keeps all `d` adders — Table 2 — so
    /// only the multiplier share of a MAC scales with sparsity).
    pub compute_units: f64,
    /// Leakage/clock-tree energy accrued per cycle, in MAC units —
    /// proportional to the instantiated logic, so the sparse tile leaks
    /// less and slower dataflows (WS) pay more static energy per op.
    pub static_units_per_cycle: f64,
    /// Fixed SoC overhead per cycle (CPU, DMA engines, interconnect, IO)
    /// in MAC units. Constant across array sizes, which is why efficiency
    /// *grows* with array size in Fig. 19: a 64×64 array amortizes it over
    /// 16× more ops per cycle than a 16×16 one.
    pub fixed_units_per_cycle: f64,
    /// Energy model used.
    pub energy_model: EnergyModel,
}

impl NetworkReport {
    /// Inference latency in seconds.
    pub fn runtime_s(&self) -> f64 {
        self.cycles / (self.freq_ghz * 1e9)
    }

    /// Achieved effective performance in TOPS (2 ops per dense-equivalent
    /// MAC).
    pub fn tops(&self) -> f64 {
        2.0 * self.effective_macs / self.runtime_s() / 1e12
    }

    /// On-chip energy in MAC units (Fig. 19's basis: excludes DRAM),
    /// including compute and static energy over the run.
    pub fn on_chip_energy_units(&self) -> f64 {
        let em = &self.energy_model;
        self.counts.l2 * em.l2
            + self.counts.l1 * em.l1
            + self.counts.prf * em.prf
            + self.counts.arf * em.arf
            + self.counts.wrf * em.wrf
            + self.counts.crf * em.crf
            + self.compute_units * em.mac
            + self.cycles * (self.static_units_per_cycle + self.fixed_units_per_cycle)
    }

    /// On-chip energy in joules.
    pub fn on_chip_energy_j(&self) -> f64 {
        self.on_chip_energy_units() * self.energy_model.mac_pj * 1e-12
    }

    /// Energy efficiency in TOPS/W, excluding main memory (as the paper's
    /// Fig. 19 does).
    pub fn tops_per_watt(&self) -> f64 {
        2.0 * self.effective_macs / self.on_chip_energy_j() / 1e12
    }

    /// Total data-access cost (DRAM + on-chip, no compute) in MAC units —
    /// Fig. 14/15's quantity.
    pub fn data_access_cost(&self) -> f64 {
        self.counts.data_access_energy(&self.energy_model)
    }

    /// Per-level data-access energies `[DRAM, L2, L1, RF]`.
    pub fn data_access_levels(&self) -> [f64; 4] {
        self.counts.level_energies(&self.energy_model)
    }

    /// Average power in milliwatts split as (accelerator, L1, L2, others)
    /// — Fig. 16's breakdown. "Others" covers CPU/DMA/interfaces and is
    /// modeled as a size-dependent constant plus DMA energy proportional
    /// to DRAM traffic.
    pub fn power_breakdown_mw(&self, array_size: usize) -> (f64, f64, f64, f64) {
        let em = &self.energy_model;
        let t = self.runtime_s();
        let to_mw = |units: f64| units * em.mac_pj * 1e-12 / t * 1e3;
        let accel = to_mw(
            self.compute_units * em.mac
                + self.counts.prf * em.prf
                + self.counts.arf * em.arf
                + self.counts.wrf * em.wrf
                + self.counts.crf * em.crf
                + self.cycles * self.static_units_per_cycle,
        );
        let l1 = to_mw(self.counts.l1 * em.l1);
        let l2 = to_mw(self.counts.l2 * em.l2);
        let _ = array_size;
        let others = to_mw(self.cycles * self.fixed_units_per_cycle + self.counts.dram * 2.0);
        (accel, l1, l2, others)
    }
}

/// MAC-energy gating factor of a setting: the zero-value-gated PE (Fig. 9)
/// suppresses multiplier toggling when the weight or activation of the
/// next cycle is zero.
fn mac_gate_factor(cfg: &HwConfig) -> f64 {
    let az = cfg.activation_zero_frac;
    let sparsity = 1.0 - cfg.keep_n as f64 / cfg.m as f64;
    match cfg.setting.compression() {
        // baselines: no gated PE
        CompressionMode::Dense | CompressionMode::VqDense => 1.0,
        // dense array computing masked weights: zero-weight MACs gated to
        // ~10 % of full cost, the rest partially gated on zero activations
        CompressionMode::MaskedVq => sparsity * 0.1 + (1.0 - sparsity) * (1.0 - 0.5 * az),
        // sparse array: only kept weights are computed (counts.macs is
        // already physical), activation gating still applies
        CompressionMode::MaskedVqSparse => 1.0 - 0.5 * az,
    }
}

/// Simulates one layer instance on `cfg`.
pub fn simulate_layer(cfg: &HwConfig, shape: &ConvShape) -> LayerReport {
    let (h, l) = (cfg.array_h as f64, cfg.array_l as f64);
    let ews = cfg.setting.dataflow() == Dataflow::Ews;
    let (a, b, dd) =
        if ews { (cfg.ext_a as f64, cfg.ext_b as f64, cfg.ext_d as f64) } else { (1.0, 1.0, 1.0) };
    let eff_macs = shape.macs() as f64;
    let sparsity = if shape.depthwise { 0.0 } else { cfg.weight_sparsity() };
    let phys_macs = match cfg.setting.compression() {
        CompressionMode::MaskedVqSparse => eff_macs * (1.0 - sparsity),
        _ => eff_macs,
    };
    // depthwise layers map to the array diagonal: only min(H, L) PEs work
    let parallel = if shape.depthwise { h.min(l) } else { h * l };
    let compute_cycles = eff_macs / parallel;
    // weight loading across the 64-bit L2 interface
    let wl_bits = weight_load_bits(cfg, shape.weight_elems(), shape.depthwise);
    let weight_load_cycles = wl_bits / cfg.dma_bits as f64;
    // L1 traffic: ifmap reads (one per row per cycle) and psum RW
    let ifmap_l1 = eff_macs / l / (a * dd);
    let psum_l1 = 2.0 * eff_macs / h / (b * dd);
    let ofmap_l1 = shape.ofmap_elems() as f64;
    let l1_elems = ifmap_l1 + psum_l1 + ofmap_l1;
    let l1_cycles = compute_cycles * ((h / (a * dd) + 2.0 * l / (b * dd)) / cfg.l1_words_per_cycle);
    // L2 traffic: weights in+out once, ifmap re-read per output-channel
    // tile group, ofmap written once
    let wl_elems = wl_bits / 8.0;
    let k_tiles = ((shape.cout as f64) / (l * a)).ceil().max(1.0);
    let ifmap_l2 = shape.ifmap_elems() as f64 * k_tiles;
    let l2_elems = 2.0 * wl_elems + ifmap_l2 + shape.ofmap_elems() as f64;
    // DRAM: weights stream once per inference; activations spill when the
    // layer's working set exceeds the L2 activation budget (25 % of L2 is
    // reserved for weight double-buffering)
    let act_budget = cfg.l2_kib as f64 * 1024.0 * 0.75;
    let act_bytes = (shape.ifmap_elems() + shape.ofmap_elems()) as f64;
    let act_dram = if act_bytes > act_budget { act_bytes } else { 0.0 };
    let dram_elems = wl_elems + act_dram;
    // register files: one ifmap read per row per cycle (ARF), one psum
    // read+write per column per cycle (PRF; accumulation along the row is
    // spatial through the combinational adder tree), one weight read per
    // physical PE per cycle (WRF)
    let loader = WeightLoader::events(cfg, shape.weight_elems(), shape.depthwise);
    let (arf, prf) = if ews { (eff_macs / l, 2.0 * eff_macs / h) } else { (0.0, 0.0) };
    let counts = AccessCounts {
        dram: dram_elems,
        l2: l2_elems,
        l1: l1_elems,
        prf,
        arf,
        wrf: phys_macs,
        crf: loader.crf_reads * cfg.d as f64 + loader.codebook_init_elems,
        macs: phys_macs,
    };
    // EWS's 1W2R WRFs preload the next weight tile behind compute, so the
    // layer takes the max of the three budgets; base WS has single-ported
    // weight registers and exposes most (~75 %) of its load time.
    let cycles = if ews {
        compute_cycles.max(weight_load_cycles).max(l1_cycles)
    } else {
        compute_cycles.max(l1_cycles) + 0.75 * weight_load_cycles
    };
    LayerReport {
        shape: *shape,
        counts,
        effective_macs: eff_macs,
        compute_cycles,
        weight_load_cycles,
        l1_cycles,
        cycles,
    }
}

/// Simulates a whole network on `cfg`.
pub fn simulate_network(cfg: &HwConfig, net: &Network) -> NetworkReport {
    let mut layers = Vec::with_capacity(net.layers.len());
    let mut counts = AccessCounts::default();
    let mut cycles = 0.0;
    let mut eff = 0.0;
    for shape in &net.layers {
        let rep = simulate_layer(cfg, shape);
        let r = shape.repeats as f64;
        counts.add(&rep.counts.scaled(r));
        cycles += rep.cycles * r;
        eff += rep.effective_macs * r;
        layers.push(rep);
    }
    // leakage/clock tree: proportional to array fabric plus the
    // instantiated multipliers (the sparse tile removes 3/4 of them)
    let static_units_per_cycle =
        0.03 * (cfg.array_h * cfg.array_l) as f64 + 0.05 * cfg.physical_macs() as f64;
    // compute energy: a MAC is ~60 % multiplier + ~40 % adder; the gated
    // multiplier share tracks physical multiplies, the adder tree always
    // runs at dense-equivalent rate (Table 2: adders H×d in both tiles)
    let gate = mac_gate_factor(cfg);
    let compute_units = MULT_ENERGY_SHARE * counts.macs * gate + ADD_ENERGY_SHARE * eff;
    NetworkReport {
        network: net.name,
        setting: cfg.setting.name(),
        layers,
        counts,
        cycles,
        effective_macs: eff,
        freq_ghz: cfg.freq_ghz,
        mac_gate_factor: gate,
        compute_units,
        static_units_per_cycle,
        fixed_units_per_cycle: FIXED_SOC_UNITS_PER_CYCLE,
        energy_model: EnergyModel::paper(),
    }
}

/// Fixed SoC power (CPU core, DMA engines, peripherals) in MAC-energy
/// units per cycle, independent of array size.
const FIXED_SOC_UNITS_PER_CYCLE: f64 = 300.0;

/// Multiplier share of one MAC's energy.
const MULT_ENERGY_SHARE: f64 = 0.6;
/// Adder-tree share of one MAC's energy.
const ADD_ENERGY_SHARE: f64 = 0.4;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HwSetting;
    use crate::workloads;

    fn report(setting: HwSetting, size: usize, net: &Network) -> NetworkReport {
        simulate_network(&HwConfig::new(setting, size).unwrap(), net)
    }

    #[test]
    fn effective_macs_match_workload() {
        let net = workloads::resnet18();
        let r = report(HwSetting::Ews, 32, &net);
        assert!((r.effective_macs - net.total_macs() as f64).abs() < 1.0);
    }

    #[test]
    fn cms_speeds_up_large_arrays() {
        // At 64x64 the dense EWS is weight-load bound; EWS-CMS relieves it
        // (paper Fig. 17: 1.2-2.2x).
        let net = workloads::resnet18();
        let base = report(HwSetting::Ews, 64, &net);
        let cms = report(HwSetting::EwsCms, 64, &net);
        let speedup = base.cycles / cms.cycles;
        assert!(speedup > 1.15, "speedup {speedup}");
        assert!(speedup < 5.0, "speedup {speedup} implausibly high");
    }

    #[test]
    fn small_arrays_are_compute_bound() {
        // at 16x16 compute dominates, so compression barely speeds up
        let net = workloads::resnet18();
        let base = report(HwSetting::Ews, 16, &net);
        let cms = report(HwSetting::EwsCms, 16, &net);
        let speedup = base.cycles / cms.cycles;
        assert!(speedup < 1.3, "speedup {speedup} at 16x16");
    }

    #[test]
    fn ws_is_slower_than_ews() {
        let net = workloads::resnet18();
        for size in [16usize, 64] {
            let ws = report(HwSetting::Ws, size, &net);
            let ews = report(HwSetting::Ews, size, &net);
            assert!(
                ws.cycles > ews.cycles * 1.05,
                "WS {} vs EWS {} at {size}",
                ws.cycles,
                ews.cycles
            );
        }
    }

    #[test]
    fn efficiency_ordering_matches_fig19() {
        // paper Fig. 19 (RN18): WS < EWS < EWS-C < EWS-CM < EWS-CMS, and
        // WS < WS-CMS.
        let net = workloads::resnet18();
        for size in [16usize, 32, 64] {
            let eff = |s: HwSetting| report(s, size, &net).tops_per_watt();
            let ws = eff(HwSetting::Ws);
            let ws_cms = eff(HwSetting::WsCms);
            let ews = eff(HwSetting::Ews);
            let ews_c = eff(HwSetting::EwsC);
            let ews_cm = eff(HwSetting::EwsCm);
            let ews_cms = eff(HwSetting::EwsCms);
            assert!(ws < ews, "size {size}: WS {ws} !< EWS {ews}");
            assert!(ws < ws_cms, "size {size}: WS {ws} !< WS-CMS {ws_cms}");
            assert!(ews < ews_cm, "size {size}: EWS {ews} !< EWS-CM {ews_cm}");
            assert!(ews_cm < ews_cms, "size {size}: EWS-CM {ews_cm} !< EWS-CMS {ews_cms}");
            assert!(ews_c <= ews_cm * 1.2, "size {size}: EWS-C {ews_c} vs EWS-CM {ews_cm}");
        }
    }

    #[test]
    fn ews_cms_gains_about_2x_over_ews_at_64() {
        // headline: 2.3x energy efficiency at 64x64 on ResNet-18
        let net = workloads::resnet18();
        let base = report(HwSetting::Ews, 64, &net).tops_per_watt();
        let cms = report(HwSetting::EwsCms, 64, &net).tops_per_watt();
        let gain = cms / base;
        assert!((1.7..3.2).contains(&gain), "efficiency gain {gain}");
    }

    #[test]
    fn data_access_reduction_in_paper_band() {
        // Fig. 15: 1.7x - 4.1x reduction depending on model and size
        for net in workloads::all_networks() {
            for size in [16usize, 32, 64] {
                let base = report(HwSetting::Ews, size, &net).data_access_cost();
                let cms = report(HwSetting::EwsCms, size, &net).data_access_cost();
                let red = base / cms;
                assert!((1.2..8.0).contains(&red), "{} at {size}: reduction {red}", net.name);
            }
        }
    }

    #[test]
    fn dram_dominates_data_access_cost() {
        // Fig. 14: DRAM is the majority of the access cost
        let net = workloads::resnet18();
        let r = report(HwSetting::Ews, 32, &net);
        let [dram, l2, l1, rf] = r.data_access_levels();
        let total = dram + l2 + l1 + rf;
        assert!(dram / total > 0.5, "DRAM share {}", dram / total);
    }

    #[test]
    fn vgg_reduction_lower_than_resnet() {
        // paper: VGG16's early-layer activations spill to DRAM, lowering
        // its reduction ratio relative to ResNet-18
        let size = 32usize;
        let rn = report(HwSetting::Ews, size, &workloads::resnet18()).data_access_cost()
            / report(HwSetting::EwsCms, size, &workloads::resnet18()).data_access_cost();
        let vgg = report(HwSetting::Ews, size, &workloads::vgg16()).data_access_cost()
            / report(HwSetting::EwsCms, size, &workloads::vgg16()).data_access_cost();
        assert!(vgg < rn, "VGG {vgg} !< ResNet {rn}");
    }

    #[test]
    fn power_breakdown_positive_and_ws_l1_heavy() {
        let net = workloads::resnet18();
        let ws = report(HwSetting::Ws, 64, &net);
        let ews = report(HwSetting::Ews, 64, &net);
        let (wa, wl1, wl2, wo) = ws.power_breakdown_mw(64);
        let (ea, el1, _, _) = ews.power_breakdown_mw(64);
        assert!(wa > 0.0 && wl1 > 0.0 && wl2 > 0.0 && wo > 0.0);
        // WS reads L1 every cycle; EWS amortizes via ARF/PRF
        assert!(wl1 > el1 * 2.0, "WS L1 {wl1} vs EWS L1 {el1}");
        assert!(ea > 0.0);
    }

    #[test]
    fn depthwise_layers_use_diagonal() {
        let cfg = HwConfig::new(HwSetting::Ews, 32).unwrap();
        let dw = ConvShape::dw(128, 3, 1, 28);
        let rep = simulate_layer(&cfg, &dw);
        // parallelism = 32, not 1024
        assert!((rep.compute_cycles - dw.macs() as f64 / 32.0).abs() < 1.0);
    }

    #[test]
    fn tops_below_peak() {
        let net = workloads::resnet18();
        for setting in HwSetting::ALL {
            let cfg = HwConfig::new(setting, 64).unwrap();
            let r = simulate_network(&cfg, &net);
            assert!(
                r.tops() <= cfg.peak_tops() * 1.001,
                "{setting}: {} > peak {}",
                r.tops(),
                cfg.peak_tops()
            );
        }
    }
}
