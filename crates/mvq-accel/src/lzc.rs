//! The sparse tile's cascaded leading-zero-counter (LZC) mask encoder and
//! a behavioral model of the tile itself (paper §5.3, Fig. 8).
//!
//! An N:M sparsity mask has `Q` set bits per `d` lanes; the hardware
//! converts it into `Q` position encodings (one per Mask Register File
//! entry) with a cascade of LZCs: each stage finds the leading set bit,
//! emits its position, and XORs it out of the mask before the next stage.
//! This module implements that bit-exactly, plus the DEMUX routing of the
//! `Q` products onto the `d`-deep adder tree.

use crate::error::AccelError;

/// Encodes a `d`-bit sparsity mask into the positions of its set bits, in
/// exactly the order the cascaded LZC hardware produces them (most
/// significant / leading position first).
///
/// Returns one position per set bit. An all-zero mask returns an empty
/// vector (no PEs active).
pub fn lzc_encode_mask(mask: &[bool]) -> Vec<usize> {
    // Hardware: stage i computes the LZC of the remaining mask, one-hot
    // decodes it and XORs it off. Software equivalent: positions of set
    // bits in order.
    let mut working: Vec<bool> = mask.to_vec();
    let mut positions = Vec::new();
    // leading zero count = index of first set bit from the front
    while let Some(p) = working.iter().position(|&b| b) {
        positions.push(p);
        working[p] = false; // XOR with the one-hot decode
    }
    positions
}

/// Behavioral model of one sparse tile column group: `Q` multipliers whose
/// products are routed by MRF position encodings onto a `d`-deep adder
/// tree (the dense tile's `d` multipliers collapse to `Q`).
#[derive(Debug, Clone)]
pub struct SparseTile {
    d: usize,
    q: usize,
    mrf: Vec<usize>,
    weights: Vec<f64>,
}

impl SparseTile {
    /// Programs the tile with a subvector's mask and its `Q` kept weights
    /// (in mask order, as the weight loader delivers them).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when the mask length is not
    /// `d` or the kept-weight count does not match the mask population.
    pub fn program(
        d: usize,
        mask: &[bool],
        kept_weights: &[f64],
    ) -> Result<SparseTile, AccelError> {
        if mask.len() != d {
            return Err(AccelError::InvalidConfig(format!(
                "mask length {} != d = {d}",
                mask.len()
            )));
        }
        let mrf = lzc_encode_mask(mask);
        if mrf.len() != kept_weights.len() {
            return Err(AccelError::InvalidConfig(format!(
                "{} kept weights for {} set mask bits",
                kept_weights.len(),
                mrf.len()
            )));
        }
        Ok(SparseTile { d, q: mrf.len(), mrf, weights: kept_weights.to_vec() })
    }

    /// Number of physical multipliers in use.
    pub fn q(&self) -> usize {
        self.q
    }

    /// The MRF contents (position encodings).
    pub fn mrf(&self) -> &[usize] {
        &self.mrf
    }

    /// One cycle of the tile: multiplies the broadcast activation by every
    /// kept weight and routes products through the DEMUXes onto the adder
    /// tree inputs; returns the `d` partial sums (pruned lanes
    /// contribute 0).
    pub fn cycle(&self, activation: f64) -> Vec<f64> {
        let mut psums = vec![0.0; self.d];
        for (w, &pos) in self.weights.iter().zip(&self.mrf) {
            psums[pos] += w * activation;
        }
        psums
    }

    /// Reference check: the dense tile result with the masked weight
    /// vector (used by tests to prove tile equivalence).
    pub fn dense_reference(d: usize, mask: &[bool], kept: &[f64], activation: f64) -> Vec<f64> {
        let mut dense_w = vec![0.0; d];
        let mut it = kept.iter();
        for (t, &m) in mask.iter().enumerate() {
            if m {
                dense_w[t] = *it.next().expect("kept weights match mask");
            }
        }
        dense_w.iter().map(|w| w * activation).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_positions_in_order() {
        assert_eq!(lzc_encode_mask(&[false, true, false, true]), vec![1, 3]);
        assert_eq!(lzc_encode_mask(&[true, true, true]), vec![0, 1, 2]);
        assert_eq!(lzc_encode_mask(&[false, false]), Vec::<usize>::new());
    }

    #[test]
    fn encoder_handles_all_4choose2_masks() {
        // every 2:4 mask round-trips: positions reconstruct the mask
        for a in 0..4usize {
            for b in (a + 1)..4usize {
                let mut mask = [false; 4];
                mask[a] = true;
                mask[b] = true;
                let pos = lzc_encode_mask(&mask);
                assert_eq!(pos, vec![a, b]);
            }
        }
    }

    #[test]
    fn sparse_tile_matches_dense_reference() {
        let d = 16;
        // a 4:16 mask
        let mut mask = vec![false; d];
        for &p in &[2usize, 7, 9, 15] {
            mask[p] = true;
        }
        let kept = [0.5, -1.25, 2.0, 0.125];
        let tile = SparseTile::program(d, &mask, &kept).unwrap();
        assert_eq!(tile.q(), 4);
        for act in [0.0, 1.0, -3.5, 0.75] {
            let sparse = tile.cycle(act);
            let dense = SparseTile::dense_reference(d, &mask, &kept, act);
            assert_eq!(sparse, dense, "activation {act}");
        }
    }

    #[test]
    fn tile_validates_inputs() {
        assert!(SparseTile::program(4, &[true; 3], &[1.0]).is_err());
        assert!(SparseTile::program(4, &[true, false, false, false], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn mrf_width_is_log2_d_compatible() {
        // every position fits in log2(d) bits, as Table 2's MRF sizing
        // requires
        let d = 16;
        let mask: Vec<bool> = (0..d).map(|i| i % 4 == 3).collect();
        let tile = SparseTile::program(d, &mask, &[1.0; 4]).unwrap();
        for &p in tile.mrf() {
            assert!(p < d);
        }
    }
}
