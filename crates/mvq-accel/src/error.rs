use std::error::Error;
use std::fmt;

/// Error type for accelerator configuration and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccelError {
    /// A hardware configuration parameter was invalid.
    InvalidConfig(String),
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::InvalidConfig(msg) => write!(f, "invalid hardware config: {msg}"),
        }
    }
}

impl Error for AccelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_message() {
        let e = AccelError::InvalidConfig("array size".into());
        assert!(e.to_string().contains("array size"));
    }
}
