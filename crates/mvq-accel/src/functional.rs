//! A functional (value-accurate, cycle-counted) model of the EWS array.
//!
//! Where [`crate::sim`] is analytical (it *counts* events), this module
//! *executes* a convolution through the modeled hardware path:
//!
//! 1. the weight loader reads assignments, looks codewords up in the CRF
//!    image, decodes the mask through the C(M,N) LUT and AND-gates the
//!    codeword (§5.2) — exactly the decode the silicon performs;
//! 2. the array computes output-channel tiles with [`SparseTile`]s
//!    (compressed settings) or dense multiplies (baselines), accumulating
//!    partial sums per output position;
//! 3. cycles are counted per tile: weight-load cycles across the DMA
//!    interface, compute cycles at one ofmap position per cycle per tile,
//!    overlapped as the 1W2R WRFs allow.
//!
//! Tests verify value-exact agreement between the sparse path, the dense
//! path, and a reference GEMM — the hardware-correctness argument for the
//! sparse tile design.

use mvq_core::{CompressedMatrix, MaskLut};
use mvq_tensor::{gemm, Tensor};

use crate::config::HwConfig;
use crate::error::AccelError;
use crate::lzc::SparseTile;

/// Result of a functional run.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalRun {
    /// The computed output, `[K, E2]`.
    pub ofmap: Tensor,
    /// Total modeled cycles (weight-load overlapped with compute).
    pub cycles: u64,
    /// Cycles spent loading weights/assignments across the DMA interface.
    pub weight_load_cycles: u64,
    /// Physical multiply operations executed.
    pub macs_executed: u64,
}

/// The functional EWS array executor.
#[derive(Debug, Clone)]
pub struct FunctionalEws {
    cfg: HwConfig,
}

impl FunctionalEws {
    /// Wraps a hardware configuration.
    pub fn new(cfg: HwConfig) -> FunctionalEws {
        FunctionalEws { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &HwConfig {
        &self.cfg
    }

    /// Executes `W (K×R) · X (R×E2)` with dense 8-bit-style weights
    /// (values used as-is; quantization is the caller's concern).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] on shape mismatches.
    pub fn run_dense(&self, wmat: &Tensor, x: &Tensor) -> Result<FunctionalRun, AccelError> {
        let (k, r) = check_shapes(wmat, x)?;
        let e2 = x.dims()[1];
        let (h, l) = (self.cfg.array_h, self.cfg.array_l);
        let mut ofmap = Tensor::zeros(vec![k, e2]);
        let mut macs = 0u64;
        let mut compute_cycles = 0u64;
        let mut load_cycles = 0u64;
        // tile output channels by L and reduction rows by H
        for k0 in (0..k).step_by(l) {
            let k1 = (k0 + l).min(k);
            for r0 in (0..r).step_by(h) {
                let r1 = (r0 + h).min(r);
                // load this weight tile: (k1-k0)*(r1-r0) 8-bit weights
                let bits = ((k1 - k0) * (r1 - r0)) as u64 * 8;
                load_cycles += bits.div_ceil(self.cfg.dma_bits as u64);
                // stream E2 positions, one per cycle
                compute_cycles += e2 as u64;
                for e in 0..e2 {
                    for kk in k0..k1 {
                        let mut acc = ofmap.at(&[kk, e]).expect("in range");
                        for rr in r0..r1 {
                            acc += wmat.at(&[kk, rr]).expect("in range")
                                * x.at(&[rr, e]).expect("in range");
                            macs += 1;
                        }
                        ofmap.set(&[kk, e], acc).expect("in range");
                    }
                }
            }
        }
        // EWS 1W2R WRFs overlap loading behind compute
        let cycles = compute_cycles.max(load_cycles);
        Ok(FunctionalRun { ofmap, cycles, weight_load_cycles: load_cycles, macs_executed: macs })
    }

    /// Executes a convolution whose weights arrive as an MVQ
    /// [`CompressedMatrix`]: the loader decodes `index+mask` into sparse
    /// weight vectors and the array computes them with [`SparseTile`]s.
    ///
    /// `compressed` must use output-channel-wise grouping over a `[K, R]`
    /// weight (d consecutive output channels per subvector), matching the
    /// CRF port layout of §5.2.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] on layout mismatches.
    pub fn run_compressed(
        &self,
        compressed: &CompressedMatrix,
        x: &Tensor,
    ) -> Result<FunctionalRun, AccelError> {
        let dims = compressed.orig_dims();
        if dims.len() != 2 {
            return Err(AccelError::InvalidConfig(format!(
                "functional array expects a 2-D weight, got {dims:?}"
            )));
        }
        let (k, r) = (dims[0], dims[1]);
        if x.rank() != 2 || x.dims()[0] != r {
            return Err(AccelError::InvalidConfig(format!(
                "ifmap {:?} does not match weight reduction dim {r}",
                x.dims()
            )));
        }
        let e2 = x.dims()[1];
        let d = compressed.mask().d();
        if k % d != 0 {
            return Err(AccelError::InvalidConfig(format!(
                "output channels {k} not a multiple of d = {d}"
            )));
        }
        let mask = compressed.mask();
        let lut = MaskLut::new(mask.keep_n(), mask.m())
            .map_err(|e| AccelError::InvalidConfig(format!("mask LUT construction failed: {e}")))?;
        let codebook = compressed.codebook();
        let assignments = compressed.assignments();
        let groups_per_m = d / mask.m();
        let mut ofmap = Tensor::zeros(vec![k, e2]);
        let mut macs = 0u64;
        let mut load_cycles = 0u64;
        let mut compute_cycles = 0u64;
        // subvector j covers output channels [kb*d, kb*d+d) at reduction
        // position pos, with j = kb*r + pos (output-wise grouping of a
        // [K, R] matrix)
        let blocks = k / d;
        for kb in 0..blocks {
            // loader traffic for this block: R subvectors of
            // (index + mask) bits, plus the one-time CRF init amortized
            // elsewhere
            let bits_per_subvector =
                codebook.index_bits() as u64 + lut.index_bits() as u64 * groups_per_m as u64;
            load_cycles += (r as u64 * bits_per_subvector).div_ceil(self.cfg.dma_bits as u64);
            // build the R sparse tiles of this output-channel block via
            // the modeled decode path: CRF lookup -> LUT decode -> AND
            let mut tiles = Vec::with_capacity(r);
            for pos in 0..r {
                let j = kb * r + pos;
                let codeword = codebook.codeword(assignments.of(j));
                // hardware: mask arrives as LUT indices; round-trip them
                let mut mask_bits = Vec::with_capacity(d);
                let row = mask.row(j);
                for g in 0..groups_per_m {
                    let chunk = &row[g * mask.m()..(g + 1) * mask.m()];
                    let idx = lut.encode(chunk).map_err(|e| {
                        AccelError::InvalidConfig(format!("mask encode failed: {e}"))
                    })?;
                    mask_bits
                        .extend_from_slice(lut.decode(idx).expect("index from encode is valid"));
                }
                // AND gates: keep codeword lanes where the mask is set
                let kept: Vec<f64> = codeword
                    .iter()
                    .zip(&mask_bits)
                    .filter(|(_, &m)| m)
                    .map(|(&w, _)| w as f64)
                    .collect();
                let tile = SparseTile::program(d, &mask_bits, &kept)?;
                tiles.push(tile);
            }
            // stream the ofmap plane through the block's tiles
            compute_cycles += e2 as u64;
            for e in 0..e2 {
                for (pos, tile) in tiles.iter().enumerate() {
                    let act = x.at(&[pos, e]).expect("in range") as f64;
                    if act == 0.0 {
                        continue; // zero-value gating (Fig. 9)
                    }
                    let psums = tile.cycle(act);
                    macs += tile.q() as u64;
                    for (t, &p) in psums.iter().enumerate() {
                        let kk = kb * d + t;
                        let acc = ofmap.at(&[kk, e]).expect("in range") + p as f32;
                        ofmap.set(&[kk, e], acc).expect("in range");
                    }
                }
            }
        }
        let cycles = compute_cycles.max(load_cycles);
        Ok(FunctionalRun { ofmap, cycles, weight_load_cycles: load_cycles, macs_executed: macs })
    }

    /// Reference result via plain GEMM.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] on shape mismatches.
    pub fn reference(&self, wmat: &Tensor, x: &Tensor) -> Result<Tensor, AccelError> {
        check_shapes(wmat, x)?;
        gemm(wmat, x).map_err(|e| AccelError::InvalidConfig(e.to_string()))
    }
}

fn check_shapes(wmat: &Tensor, x: &Tensor) -> Result<(usize, usize), AccelError> {
    if wmat.rank() != 2 || x.rank() != 2 || wmat.dims()[1] != x.dims()[0] {
        return Err(AccelError::InvalidConfig(format!(
            "incompatible shapes: W {:?} vs X {:?}",
            wmat.dims(),
            x.dims()
        )));
    }
    Ok((wmat.dims()[0], wmat.dims()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HwSetting;
    use mvq_core::{MvqCompressor, MvqConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
        a.dims() == b.dims() && a.data().iter().zip(b.data()).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn dense_run_matches_gemm() {
        let mut r = rng();
        let w = mvq_tensor::uniform(vec![32, 24], -1.0, 1.0, &mut r);
        let x = mvq_tensor::uniform(vec![24, 10], -1.0, 1.0, &mut r);
        let arr = FunctionalEws::new(HwConfig::new(HwSetting::Ews, 16).unwrap());
        let run = arr.run_dense(&w, &x).unwrap();
        let reference = arr.reference(&w, &x).unwrap();
        assert!(close(&run.ofmap, &reference, 1e-4));
        assert_eq!(run.macs_executed, 32 * 24 * 10);
        assert!(run.cycles > 0);
    }

    #[test]
    fn compressed_run_matches_decoded_gemm() {
        let mut r = rng();
        let w = mvq_tensor::kaiming_normal(vec![32, 24], 24, &mut r);
        let cfg = MvqConfig::new(16, 16, 4, 16).unwrap().with_codebook_bits(Some(8));
        let compressed = MvqCompressor::new(cfg).compress_matrix(&w, &mut r).unwrap();
        let decoded = compressed.reconstruct().unwrap();
        let x = mvq_tensor::uniform(vec![24, 10], -1.0, 1.0, &mut r);
        let arr = FunctionalEws::new(HwConfig::new(HwSetting::EwsCms, 16).unwrap());
        let run = arr.run_compressed(&compressed, &x).unwrap();
        let reference = arr.reference(&decoded, &x).unwrap();
        assert!(close(&run.ofmap, &reference, 1e-3), "sparse path diverged");
    }

    #[test]
    fn compressed_run_executes_quarter_of_the_macs() {
        let mut r = rng();
        let w = mvq_tensor::kaiming_normal(vec![64, 18], 18, &mut r);
        let cfg = MvqConfig::new(8, 16, 4, 16).unwrap();
        let compressed = MvqCompressor::new(cfg).compress_matrix(&w, &mut r).unwrap();
        let x = mvq_tensor::uniform(vec![18, 5], 0.1, 1.0, &mut r); // no zeros
        let arr = FunctionalEws::new(HwConfig::new(HwSetting::EwsCms, 16).unwrap());
        let run = arr.run_compressed(&compressed, &x).unwrap();
        // Q = 4 of 16 lanes per subvector: exactly 25% of dense MACs
        assert_eq!(run.macs_executed, 64 * 18 * 5 / 4);
    }

    #[test]
    fn zero_activations_are_gated() {
        let mut r = rng();
        let w = mvq_tensor::kaiming_normal(vec![16, 8], 8, &mut r);
        let cfg = MvqConfig::new(4, 16, 4, 16).unwrap();
        let compressed = MvqCompressor::new(cfg).compress_matrix(&w, &mut r).unwrap();
        let mut x = mvq_tensor::uniform(vec![8, 6], 0.1, 1.0, &mut r);
        // zero half the activations
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let arr = FunctionalEws::new(HwConfig::new(HwSetting::EwsCms, 16).unwrap());
        let run = arr.run_compressed(&compressed, &x).unwrap();
        assert_eq!(run.macs_executed, 16 * 8 * 6 / 4 / 2);
    }

    #[test]
    fn compressed_loading_is_much_narrower() {
        let mut r = rng();
        let w = mvq_tensor::kaiming_normal(vec![64, 36], 36, &mut r);
        let cfg = MvqConfig::new(16, 16, 4, 16).unwrap();
        let compressed = MvqCompressor::new(cfg).compress_matrix(&w, &mut r).unwrap();
        let x = mvq_tensor::uniform(vec![36, 4], -1.0, 1.0, &mut r);
        let arr = FunctionalEws::new(HwConfig::new(HwSetting::EwsCms, 16).unwrap());
        let dense = arr.run_dense(&w, &x).unwrap();
        let sparse = arr.run_compressed(&compressed, &x).unwrap();
        // index+mask loading: (9-ish + 11) bits per 16 weights vs 128 bits
        assert!(
            (sparse.weight_load_cycles as f64) < dense.weight_load_cycles as f64 * 0.4,
            "sparse {} vs dense {}",
            sparse.weight_load_cycles,
            dense.weight_load_cycles
        );
    }

    #[test]
    fn rejects_bad_shapes() {
        let arr = FunctionalEws::new(HwConfig::new(HwSetting::Ews, 16).unwrap());
        let w = Tensor::zeros(vec![4, 4]);
        let x = Tensor::zeros(vec![5, 2]);
        assert!(arr.run_dense(&w, &x).is_err());
        assert!(arr.reference(&w, &x).is_err());
        let mut r = rng();
        let w2 = mvq_tensor::kaiming_normal(vec![16, 8], 8, &mut r);
        let cfg = MvqConfig::new(4, 16, 4, 16).unwrap();
        let compressed = MvqCompressor::new(cfg).compress_matrix(&w2, &mut r).unwrap();
        assert!(arr.run_compressed(&compressed, &x).is_err());
    }
}
