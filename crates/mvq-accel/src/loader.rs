//! The assignment-aware weight loader (paper §5.2).
//!
//! Instead of streaming dense 8-bit weights from L2 into the array, the
//! MVQ settings stream *assignments* — a `⌈log2 k⌉`-bit codebook index plus
//! a `⌈log2 C(M,N)⌉·d/M`-bit LUT-encoded mask per `d`-element subvector —
//! and reconstruct the weight vector with a CRF lookup, a mask-LUT decode
//! and AND gates. This cuts the weight-loading datawidth by the
//! compression ratio, which is exactly where the paper's speedup at large
//! array sizes comes from (Fig. 18).

use mvq_core::MaskLut;

use crate::config::{CompressionMode, HwConfig};

/// Bits that must cross the L2→array interface to load `weight_elems`
/// weights under `mode`, plus the one-time codebook initialization.
///
/// Depthwise layers are always loaded dense (they are excluded from MVQ).
pub fn weight_load_bits(cfg: &HwConfig, weight_elems: u64, depthwise: bool) -> f64 {
    let mode = if depthwise { CompressionMode::Dense } else { cfg.setting.compression() };
    match mode {
        CompressionMode::Dense => weight_elems as f64 * 8.0,
        CompressionMode::VqDense => {
            let ng = weight_elems as f64 / cfg.d as f64;
            let index_bits = ceil_log2(cfg.k) as f64;
            ng * index_bits
        }
        CompressionMode::MaskedVq | CompressionMode::MaskedVqSparse => {
            let ng = weight_elems as f64 / cfg.d as f64;
            let index_bits = ceil_log2(cfg.k) as f64;
            let lut = MaskLut::new(cfg.keep_n, cfg.m).expect("config validated");
            let mask_bits = lut.index_bits() as f64 * (cfg.d / cfg.m) as f64;
            ng * (index_bits + mask_bits)
        }
    }
}

/// The weight loader's per-layer event model: CRF reads and LUT decodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightLoader {
    /// CRF read accesses (one per reconstructed subvector per read port).
    pub crf_reads: f64,
    /// One-time codebook initialization elements (DMA into the CRF).
    pub codebook_init_elems: f64,
    /// Mask-LUT decodes.
    pub lut_decodes: f64,
}

impl WeightLoader {
    /// Event counts for loading `weight_elems` weights.
    pub fn events(cfg: &HwConfig, weight_elems: u64, depthwise: bool) -> WeightLoader {
        let mode = if depthwise { CompressionMode::Dense } else { cfg.setting.compression() };
        match mode {
            CompressionMode::Dense => {
                WeightLoader { crf_reads: 0.0, codebook_init_elems: 0.0, lut_decodes: 0.0 }
            }
            CompressionMode::VqDense => {
                let ng = weight_elems as f64 / cfg.d as f64;
                WeightLoader {
                    crf_reads: ng,
                    codebook_init_elems: (cfg.k * cfg.d) as f64,
                    lut_decodes: 0.0,
                }
            }
            CompressionMode::MaskedVq | CompressionMode::MaskedVqSparse => {
                let ng = weight_elems as f64 / cfg.d as f64;
                WeightLoader {
                    crf_reads: ng,
                    codebook_init_elems: (cfg.k * cfg.d) as f64,
                    lut_decodes: ng * (cfg.d / cfg.m) as f64,
                }
            }
        }
    }
}

pub(crate) fn ceil_log2(k: usize) -> u32 {
    if k <= 1 {
        0
    } else {
        usize::BITS - (k - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HwSetting;

    #[test]
    fn dense_loads_eight_bits_per_weight() {
        let cfg = HwConfig::new(HwSetting::Ews, 32).unwrap();
        assert_eq!(weight_load_bits(&cfg, 1000, false), 8000.0);
    }

    #[test]
    fn vq_dense_loads_index_only() {
        // k=1024, d=8: 10 bits per 8 weights = 1.25 b/w
        let cfg = HwConfig::new(HwSetting::EwsC, 32).unwrap();
        let bits = weight_load_bits(&cfg, 8000, false);
        assert!((bits - 8000.0 * 1.25 / 8.0 * 8.0).abs() < 1e-6);
        assert_eq!(bits, 1000.0 * 10.0);
    }

    #[test]
    fn masked_vq_loads_index_plus_mask() {
        // k=512, d=16, 4:16: 9 + 11 bits per 16 weights = 1.25 b/w
        let cfg = HwConfig::new(HwSetting::EwsCms, 32).unwrap();
        let bits = weight_load_bits(&cfg, 16_000, false);
        assert_eq!(bits, 1000.0 * (9.0 + 11.0));
        // ≈ 6.4x narrower than dense 8-bit loading
        let dense = weight_load_bits(&HwConfig::new(HwSetting::Ews, 32).unwrap(), 16_000, false);
        assert!((dense / bits - 6.4).abs() < 0.01);
    }

    #[test]
    fn depthwise_always_dense() {
        let cfg = HwConfig::new(HwSetting::EwsCms, 32).unwrap();
        assert_eq!(weight_load_bits(&cfg, 1152, true), 1152.0 * 8.0);
        let ev = WeightLoader::events(&cfg, 1152, true);
        assert_eq!(ev.crf_reads, 0.0);
    }

    #[test]
    fn loader_events_scale_with_subvectors() {
        let cfg = HwConfig::new(HwSetting::EwsCms, 32).unwrap();
        let ev = WeightLoader::events(&cfg, 16_000, false);
        assert_eq!(ev.crf_reads, 1000.0);
        assert_eq!(ev.lut_decodes, 1000.0);
        assert_eq!(ev.codebook_init_elems, (512 * 16) as f64);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(512), 9);
        assert_eq!(ceil_log2(513), 10);
        assert_eq!(ceil_log2(1024), 10);
    }
}
