//! # mvq-net — the compression service on the wire
//!
//! A hand-rolled, length-prefixed binary protocol over
//! `std::net::TcpListener` putting [`mvq_serve::CompressionService`] on
//! the network: no async runtime, no serialization dependency — a
//! reader/writer thread pair per connection, std-only concurrency
//! (bounded `sync_channel`s, atomics, condvars down in the service),
//! and the store codec's own framing for every message.
//!
//! * [`NetServer`] — accept loop + per-connection reader/writer pair.
//!   The reader decodes [`WireRequest`] frames and rides
//!   [`mvq_serve::CompressionService::submit_one`] tickets; the writer
//!   resolves them **in submission order** and streams responses back.
//! * Deadlines — a request's relative `deadline_ms` becomes an absolute
//!   queue deadline at receipt; a job still queued past it is dropped at
//!   dequeue (never occupying a worker) and reported as
//!   [`WireErrorKind::CancelledDeadline`].
//! * Cancellation — each request carries a
//!   [`mvq_serve::CancelToken`]; a client disconnect cancels every
//!   outstanding token, so the dead client's queued jobs are discarded
//!   at dequeue and its workers freed.
//! * Graceful drain — [`NetServer::shutdown`] (and [`Drop`]) stops
//!   accepting, half-closes read sides, and flushes every accepted
//!   in-flight job's response before closing.
//! * Zero-copy serving — a cache hit's response body is the cache's own
//!   validated `Arc<[u8]>` blob written straight to the socket; wire
//!   artifacts and cache blobs are the **same bytes** under the same
//!   codec, so a client can persist a response blob and a cache can
//!   serve it back unchanged.
//!
//! ## Wire format
//!
//! Every message, both directions, is:
//!
//! ```text
//! [ u32 le length | MVQA frame of exactly `length` bytes ]
//! ```
//!
//! The frame is the store codec's container
//! ([`mvq_core::store::frame_blob`]):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "MVQA"
//! 4       2     u16 le FORMAT_VERSION (currently 1; future versions
//!               are refused, never guessed at)
//! 6       1     BlobKind tag: 4 = WireRequest, 5 = WireResponse,
//!               0 = Artifact (response bodies), 7 = StatsRequest,
//!               8 = StatsResponse
//! 7       8     u64 le payload length
//! 15      8     u64 le FNV-1a payload checksum
//! 23      …     payload
//! ```
//!
//! A conversation is:
//!
//! 1. client → server: a `WireRequest` frame (id, deadline, priority,
//!    cache mode, optional seed, name, algorithm, full pipeline spec,
//!    weight tensor as dims + f32 bit patterns);
//! 2. server → client: a `WireResponse` frame echoing the id — `Ok`
//!    (from-cache/deduped flags + name), followed by one `Artifact`
//!    frame as the next message; or `Err` (kind tag + message), which
//!    stands alone.
//!
//! A client may also send a [`WireStatsRequest`] frame (kind tag 7) at
//! any point; the server answers with one [`WireStatsReply`] frame
//! (kind tag 8) carrying a snapshot of the serving stack's
//! `mvq_obs::Registry` — every counter, gauge, and latency histogram
//! across store/serve/net/stream — plus the most recently completed
//! job-lifecycle traces. Stats replies ride the same per-connection
//! pipeline as job responses, so ordering holds across both kinds.
//!
//! Responses come back in request order per connection. Protocol
//! garbage — bad magic, a truncated frame, an oversize length prefix, a
//! future format version — closes the connection (the framing is
//! byte-positional; resynchronizing would be a guess), but never the
//! server: other connections and future connects are untouched.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod client;
mod server;
mod wire;

pub use client::{NetClient, NetError, NetOutcome, NetRequest};
pub use server::{NetConfig, NetServer, NetStats};
pub use wire::{
    WireErrorKind, WireMetric, WireMetricValue, WireRequest, WireResponse, WireStatsReply,
    WireStatsRequest, DEFAULT_MAX_MESSAGE_LEN,
};
