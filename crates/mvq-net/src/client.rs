//! The blocking TCP client: one connection, one in-order
//! request/response exchange per [`NetClient::submit`] call.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use mvq_core::pipeline::PipelineSpec;
use mvq_core::store::{validate_frame, BlobKind, Persist};
use mvq_core::{CompressedArtifact, MvqError};
use mvq_serve::{CacheMode, Priority};
use mvq_tensor::Tensor;

use crate::wire::{
    read_message, write_message, WireErrorKind, WireRequest, WireResponse, WireStatsReply,
    WireStatsRequest, DEFAULT_MAX_MESSAGE_LEN,
};

/// One compression request to send over a [`NetClient`]. Construct with
/// [`NetRequest::new`] and adjust the public fields; validation happens
/// server-side (an invalid request comes back as a
/// [`NetError::Remote`] with [`WireErrorKind::Rejected`]).
#[derive(Debug, Clone)]
pub struct NetRequest {
    /// Job label (not part of the cache identity).
    pub name: String,
    /// The weight tensor to compress.
    pub weight: Tensor,
    /// Registry algorithm name (aliases allowed).
    pub algo: String,
    /// Pipeline hyperparameters.
    pub spec: PipelineSpec,
    /// Pinned RNG seed; `None` derives a content seed server-side.
    pub seed: Option<u64>,
    /// Scheduling priority.
    pub priority: Priority,
    /// Cache interaction policy.
    pub cache_mode: CacheMode,
    /// Queue deadline, relative to server receipt; `None` = no deadline.
    pub deadline: Option<Duration>,
}

impl NetRequest {
    /// A request with default spec, priority, cache mode, no seed and no
    /// deadline.
    pub fn new(name: impl Into<String>, weight: Tensor, algo: impl Into<String>) -> NetRequest {
        NetRequest {
            name: name.into(),
            weight,
            algo: algo.into(),
            spec: PipelineSpec::default(),
            seed: None,
            priority: Priority::default(),
            cache_mode: CacheMode::default(),
            deadline: None,
        }
    }
}

/// A successful remote compression.
#[derive(Debug, Clone)]
pub struct NetOutcome {
    /// The job's label, echoed by the server.
    pub name: String,
    /// True when the artifact came from the server's cache.
    pub from_cache: bool,
    /// True when the job shared an identical in-flight compression.
    pub deduped: bool,
    /// The artifact's framed bytes, exactly as the server's cache holds
    /// them (frame-validated on receipt; decode on demand).
    pub bytes: Vec<u8>,
}

impl NetOutcome {
    /// Decodes the carried artifact.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when the bytes fail to decode (they
    /// were frame-validated on receipt, so this indicates corruption
    /// after the fact).
    pub fn artifact(&self) -> Result<CompressedArtifact, MvqError> {
        CompressedArtifact::from_bytes(&self.bytes)
    }
}

/// Why a [`NetClient::submit`] failed.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed (connect, read, or write).
    Io(std::io::Error),
    /// The server sent bytes this client cannot parse.
    Protocol(MvqError),
    /// The server answered, reporting a job failure.
    Remote {
        /// The failure class.
        kind: WireErrorKind,
        /// Human-readable detail from the server.
        message: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport failed: {e}"),
            NetError::Protocol(e) => write!(f, "protocol violation: {e}"),
            NetError::Remote { kind, message } => write!(f, "remote {kind:?}: {message}"),
        }
    }
}

impl std::error::Error for NetError {}

/// A blocking client for one [`crate::NetServer`] connection.
///
/// `submit` is strictly in-order request/response; open several clients
/// for concurrency (the server pairs a reader/writer per connection).
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    max_message_len: usize,
    next_id: u64,
}

impl NetClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr).map_err(NetError::Io)?;
        // without this, the length prefix and the frame — two write()s —
        // interact with Nagle + delayed ACK into ~40 ms stalls per message
        let _ = stream.set_nodelay(true);
        Ok(NetClient { stream, max_message_len: DEFAULT_MAX_MESSAGE_LEN, next_id: 0 })
    }

    /// Overrides the per-message length cap (must match the server's to
    /// exchange artifacts near the cap).
    pub fn with_max_message_len(mut self, max: usize) -> NetClient {
        self.max_message_len = max;
        self
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] for transport failures (including the server
    /// dropping a connection it judged protocol-poisoned),
    /// [`NetError::Protocol`] for unparseable server bytes, and
    /// [`NetError::Remote`] for a job the server reports as failed —
    /// including [`WireErrorKind::CancelledDeadline`] when the request's
    /// deadline expired while queued.
    pub fn submit(&mut self, request: &NetRequest) -> Result<NetOutcome, NetError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let deadline_ms = request.deadline.map(|d| d.as_millis().min(u64::MAX as u128) as u64);
        let wire = WireRequest {
            id,
            name: request.name.clone(),
            algo: request.algo.clone(),
            spec: request.spec.clone(),
            seed: request.seed,
            priority: request.priority,
            cache_mode: request.cache_mode,
            deadline_ms,
            weight: request.weight.clone(),
        };
        let frame = wire.encode().map_err(NetError::Protocol)?;
        write_message(&mut self.stream, &frame).map_err(NetError::Io)?;
        let header = read_message(&mut self.stream, self.max_message_len).map_err(NetError::Io)?;
        match WireResponse::decode(&header).map_err(NetError::Protocol)? {
            WireResponse::Ok { id: rid, name, from_cache, deduped } => {
                if rid != id {
                    return Err(NetError::Protocol(MvqError::Codec(format!(
                        "response id {rid} does not match request id {id}"
                    ))));
                }
                let bytes =
                    read_message(&mut self.stream, self.max_message_len).map_err(NetError::Io)?;
                validate_frame(BlobKind::Artifact, &bytes).map_err(NetError::Protocol)?;
                Ok(NetOutcome { name, from_cache, deduped, bytes })
            }
            WireResponse::Err { id: rid, kind, message } => {
                if rid != id {
                    return Err(NetError::Protocol(MvqError::Codec(format!(
                        "response id {rid} does not match request id {id}"
                    ))));
                }
                Err(NetError::Remote { kind, message })
            }
        }
    }

    /// Asks the server for a live snapshot of its metrics registry and
    /// up to `max_traces` recently completed job traces (newest first).
    /// In-order like [`NetClient::submit`]: the reply reflects the
    /// server's state after every request this connection already sent.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] for transport failures, [`NetError::Protocol`]
    /// for unparseable server bytes or a mismatched reply id.
    pub fn stats(&mut self, max_traces: usize) -> Result<WireStatsReply, NetError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let max_traces = u32::try_from(max_traces).unwrap_or(u32::MAX);
        let frame = WireStatsRequest { id, max_traces }.encode();
        write_message(&mut self.stream, &frame).map_err(NetError::Io)?;
        let msg = read_message(&mut self.stream, self.max_message_len).map_err(NetError::Io)?;
        let reply = WireStatsReply::decode(&msg).map_err(NetError::Protocol)?;
        if reply.id != id {
            return Err(NetError::Protocol(MvqError::Codec(format!(
                "stats reply id {} does not match request id {id}",
                reply.id
            ))));
        }
        Ok(reply)
    }

    /// Raw access to the connection, for failure-injection tests that
    /// need to write garbage or half-close.
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
