//! Wire message types and the length-prefixed message I/O.
//!
//! Every message is `[u32 le length][MVQA frame]`; the frame reuses the
//! store codec's header (magic, format version, kind tag, payload
//! length, FNV-1a payload checksum) via
//! [`frame_blob`]/[`unframe_blob`], under the append-only kinds
//! [`BlobKind::WireRequest`] and [`BlobKind::WireResponse`]. Artifact
//! payloads are **not** re-encoded for the wire: a response carries the
//! cache's own `BlobKind::Artifact` frame as the next message, byte for
//! byte. See the crate docs for the full layout.

use std::io::{Read, Write};

use mvq_core::pipeline::PipelineSpec;
use mvq_core::store::{frame_blob, unframe_blob, BlobKind, HEADER_LEN};
use mvq_core::{GroupingStrategy, KernelStrategy, MvqError};
use mvq_obs::{
    HistogramSummary, MetricKind, MetricValue, RegistrySnapshot, Stage, TraceOutcome, TraceSnapshot,
};
use mvq_serve::{CacheMode, CancelKind, JobError, Priority};
use mvq_tensor::Tensor;

/// Default cap on one message's frame length (length prefix excluded):
/// protects both sides from a hostile or corrupt length prefix
/// committing them to a multi-GiB read.
pub const DEFAULT_MAX_MESSAGE_LEN: usize = 64 << 20;

/// Writes one length-prefixed message.
pub(crate) fn write_message(w: &mut impl Write, frame: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(frame.len()).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the u32 length prefix", frame.len()),
        )
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(frame)
}

/// Reads one length-prefixed message, rejecting frames shorter than the
/// MVQA header or longer than `max_len` **before** allocating.
///
/// EOF at the length prefix is a clean disconnect and surfaces as
/// [`std::io::ErrorKind::UnexpectedEof`]; EOF *inside* a message is a
/// truncated frame and surfaces as
/// [`std::io::ErrorKind::InvalidData`], so callers can tell a peer that
/// hung up between messages from one that died mid-frame.
pub(crate) fn read_message(r: &mut impl Read, max_len: usize) -> std::io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len < HEADER_LEN || len > max_len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("message length {len} outside [{HEADER_LEN}, {max_len}]"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("message truncated: length prefix promised {len} bytes"),
            )
        } else {
            e
        }
    })?;
    Ok(buf)
}

// ---------------------------------------------------------------------
// primitive payload readers/writers (the store codec's are private; the
// wire payloads carry their own copies of these few-line helpers)
// ---------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), MvqError> {
    let len = u32::try_from(s.len()).map_err(|_| {
        MvqError::Codec(format!("string of {} bytes exceeds the u32 length field", s.len()))
    })?;
    put_u32(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => put_u8(out, 0),
        Some(x) => {
            put_u8(out, 1);
            put_u64(out, x);
        }
    }
}

/// Bounds-checked sequential reader over a verified payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], MvqError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
            MvqError::Codec(format!(
                "wire payload truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            ))
        })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, MvqError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, MvqError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, MvqError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn usize(&mut self) -> Result<usize, MvqError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| MvqError::Codec(format!("length {v} overflows usize")))
    }

    fn f32(&mut self) -> Result<f32, MvqError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn str(&mut self) -> Result<String, MvqError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| MvqError::Codec("wire string field is not UTF-8".into()))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, MvqError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(MvqError::Codec(format!("bad Option<u64> tag {t}"))),
        }
    }

    fn finish(&self) -> Result<(), MvqError> {
        if self.pos != self.bytes.len() {
            return Err(MvqError::Codec(format!(
                "{} trailing bytes after wire payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// wire tag maps (append-only; pinned in lint.toml like the store tags)
// ---------------------------------------------------------------------

fn grouping_tag(g: GroupingStrategy) -> u8 {
    match g {
        GroupingStrategy::KernelWise => 0,
        GroupingStrategy::OutputChannelWise => 1,
        GroupingStrategy::InputChannelWise => 2,
    }
}

fn grouping_from_tag(tag: u8) -> Result<GroupingStrategy, MvqError> {
    match tag {
        0 => Ok(GroupingStrategy::KernelWise),
        1 => Ok(GroupingStrategy::OutputChannelWise),
        2 => Ok(GroupingStrategy::InputChannelWise),
        other => Err(MvqError::Codec(format!("unknown wire grouping tag {other}"))),
    }
}

fn kernel_tag(k: KernelStrategy) -> u8 {
    match k {
        KernelStrategy::Naive => 0,
        KernelStrategy::Blocked => 1,
        KernelStrategy::Minibatch => 2,
        KernelStrategy::Simd => 3,
    }
}

fn kernel_from_tag(tag: u8) -> Result<KernelStrategy, MvqError> {
    match tag {
        0 => Ok(KernelStrategy::Naive),
        1 => Ok(KernelStrategy::Blocked),
        2 => Ok(KernelStrategy::Minibatch),
        3 => Ok(KernelStrategy::Simd),
        other => Err(MvqError::Codec(format!("unknown wire kernel tag {other}"))),
    }
}

fn priority_tag(p: Priority) -> u8 {
    match p {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    }
}

fn priority_from_tag(tag: u8) -> Result<Priority, MvqError> {
    match tag {
        0 => Ok(Priority::Low),
        1 => Ok(Priority::Normal),
        2 => Ok(Priority::High),
        other => Err(MvqError::Codec(format!("unknown wire priority tag {other}"))),
    }
}

fn cache_mode_tag(m: CacheMode) -> u8 {
    match m {
        CacheMode::ReadWrite => 0,
        CacheMode::ReadOnly => 1,
        CacheMode::Bypass => 2,
    }
}

fn cache_mode_from_tag(tag: u8) -> Result<CacheMode, MvqError> {
    match tag {
        0 => Ok(CacheMode::ReadWrite),
        1 => Ok(CacheMode::ReadOnly),
        2 => Ok(CacheMode::Bypass),
        other => Err(MvqError::Codec(format!("unknown wire cache-mode tag {other}"))),
    }
}

// ---------------------------------------------------------------------
// WireRequest
// ---------------------------------------------------------------------

/// One compression request as it travels over the wire. Decoded by the
/// server's per-connection reader and rebuilt into a validated
/// [`mvq_serve::CompressionRequest`].
#[derive(Debug, Clone)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// Job label (not part of the cache identity).
    pub name: String,
    /// Registry algorithm name (aliases resolve server-side).
    pub algo: String,
    /// Pipeline hyperparameters.
    pub spec: PipelineSpec,
    /// Pinned RNG seed; `None` lets the service derive a content seed.
    pub seed: Option<u64>,
    /// Scheduling priority.
    pub priority: Priority,
    /// Cache interaction policy.
    pub cache_mode: CacheMode,
    /// Queue deadline in milliseconds, relative to server receipt;
    /// `None` means no deadline. Relative by design: the two hosts'
    /// clocks never need to agree.
    pub deadline_ms: Option<u64>,
    /// The weight tensor to compress.
    pub weight: Tensor,
}

impl WireRequest {
    /// Encodes into a framed `BlobKind::WireRequest` message body.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when a length field overflows (a
    /// > 4 GiB name, a rank-256 tensor).
    pub fn encode(&self) -> Result<Vec<u8>, MvqError> {
        let mut p = Vec::new();
        put_u64(&mut p, self.id);
        put_opt_u64(&mut p, self.deadline_ms);
        put_u8(&mut p, priority_tag(self.priority));
        put_u8(&mut p, cache_mode_tag(self.cache_mode));
        put_opt_u64(&mut p, self.seed);
        put_str(&mut p, &self.name)?;
        put_str(&mut p, &self.algo)?;
        put_u64(&mut p, self.spec.k as u64);
        put_u64(&mut p, self.spec.d as u64);
        put_u64(&mut p, self.spec.keep_n as u64);
        put_u64(&mut p, self.spec.m as u64);
        put_opt_u64(&mut p, self.spec.prune_d.map(|d| d as u64));
        put_u8(&mut p, grouping_tag(self.spec.grouping));
        put_opt_u64(&mut p, self.spec.codebook_bits.map(u64::from));
        put_u32(&mut p, self.spec.scalar_bits);
        put_u64(&mut p, self.spec.swap_trials as u64);
        put_u8(&mut p, kernel_tag(self.spec.kernel));
        let rank = u8::try_from(self.weight.rank()).map_err(|_| {
            MvqError::Codec(format!("tensor rank {} exceeds the u8 rank field", self.weight.rank()))
        })?;
        put_u8(&mut p, rank);
        for &d in self.weight.dims() {
            put_u64(&mut p, d as u64);
        }
        for &v in self.weight.data() {
            put_u32(&mut p, v.to_bits());
        }
        Ok(frame_blob(BlobKind::WireRequest, p))
    }

    /// Decodes a framed `BlobKind::WireRequest` message body.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] for bad framing (magic, version,
    /// kind, checksum) or a malformed payload.
    pub fn decode(bytes: &[u8]) -> Result<WireRequest, MvqError> {
        let payload = unframe_blob(BlobKind::WireRequest, bytes)?;
        let mut r = Reader::new(payload);
        let id = r.u64()?;
        let deadline_ms = r.opt_u64()?;
        let priority = priority_from_tag(r.u8()?)?;
        let cache_mode = cache_mode_from_tag(r.u8()?)?;
        let seed = r.opt_u64()?;
        let name = r.str()?;
        let algo = r.str()?;
        let k = r.usize()?;
        let d = r.usize()?;
        let keep_n = r.usize()?;
        let m = r.usize()?;
        let prune_d = match r.opt_u64()? {
            None => None,
            Some(v) => Some(
                usize::try_from(v)
                    .map_err(|_| MvqError::Codec(format!("prune_d {v} overflows usize")))?,
            ),
        };
        let grouping = grouping_from_tag(r.u8()?)?;
        let codebook_bits = match r.opt_u64()? {
            None => None,
            Some(v) => Some(
                u32::try_from(v)
                    .map_err(|_| MvqError::Codec(format!("codebook_bits {v} overflows u32")))?,
            ),
        };
        let scalar_bits = r.u32()?;
        let swap_trials = r.usize()?;
        let kernel = kernel_from_tag(r.u8()?)?;
        let spec = PipelineSpec {
            k,
            d,
            keep_n,
            m,
            prune_d,
            grouping,
            codebook_bits,
            scalar_bits,
            swap_trials,
            kernel,
        };
        let rank = r.u8()? as usize;
        let mut dims = Vec::with_capacity(rank);
        let mut numel: u128 = 1;
        for _ in 0..rank {
            let dim = r.usize()?;
            numel = numel.saturating_mul(dim as u128);
            if numel > u32::MAX as u128 {
                return Err(MvqError::Codec(format!(
                    "wire tensor of dims {dims:?}×{dim} is implausibly large"
                )));
            }
            dims.push(dim);
        }
        let n: usize = dims.iter().product();
        // cap the pre-allocation: a malformed rank/dims must fail at the
        // first short read, not abort on a multi-GB reservation
        let mut data = Vec::with_capacity(n.min(1 << 24));
        for _ in 0..n {
            data.push(r.f32()?);
        }
        r.finish()?;
        let weight = Tensor::from_vec(dims, data)
            .map_err(|e| MvqError::Codec(format!("wire weight tensor: {e}")))?;
        Ok(WireRequest { id, name, algo, spec, seed, priority, cache_mode, deadline_ms, weight })
    }
}

// ---------------------------------------------------------------------
// WireResponse
// ---------------------------------------------------------------------

/// Why a remote job failed, as carried in an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireErrorKind {
    /// The compression itself failed.
    Compression,
    /// The server's artifact cache failed the job.
    Cache,
    /// The compression panicked (contained server-side).
    Panicked,
    /// The service shut down before the job completed.
    Disconnected,
    /// The job's cancel token fired while it was queued.
    CancelledExplicit,
    /// The job's deadline passed while it was queued.
    CancelledDeadline,
    /// The request failed validation before anything queued (unknown
    /// algorithm, spec that does not compile, empty weight, …).
    Rejected,
}

fn error_kind_tag(k: WireErrorKind) -> u8 {
    match k {
        WireErrorKind::Compression => 0,
        WireErrorKind::Cache => 1,
        WireErrorKind::Panicked => 2,
        WireErrorKind::Disconnected => 3,
        WireErrorKind::CancelledExplicit => 4,
        WireErrorKind::CancelledDeadline => 5,
        WireErrorKind::Rejected => 6,
    }
}

fn error_kind_from_tag(tag: u8) -> Result<WireErrorKind, MvqError> {
    match tag {
        0 => Ok(WireErrorKind::Compression),
        1 => Ok(WireErrorKind::Cache),
        2 => Ok(WireErrorKind::Panicked),
        3 => Ok(WireErrorKind::Disconnected),
        4 => Ok(WireErrorKind::CancelledExplicit),
        5 => Ok(WireErrorKind::CancelledDeadline),
        6 => Ok(WireErrorKind::Rejected),
        other => Err(MvqError::Codec(format!("unknown wire error kind tag {other}"))),
    }
}

impl WireErrorKind {
    /// Maps a service-side [`JobError`] to its wire kind.
    pub fn from_job_error(e: &JobError) -> WireErrorKind {
        match e {
            JobError::Compression { .. } => WireErrorKind::Compression,
            JobError::Cache { .. } => WireErrorKind::Cache,
            JobError::Panicked { .. } => WireErrorKind::Panicked,
            JobError::Disconnected { .. } => WireErrorKind::Disconnected,
            JobError::Cancelled { kind: CancelKind::Explicit, .. } => {
                WireErrorKind::CancelledExplicit
            }
            JobError::Cancelled { kind: CancelKind::DeadlineExpired, .. } => {
                WireErrorKind::CancelledDeadline
            }
        }
    }
}

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

/// One response header as it travels over the wire. An `Ok` header is
/// followed by one more message carrying the artifact's own
/// `BlobKind::Artifact` frame (written zero-copy from the cache's
/// shared bytes); an `Err` header stands alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireResponse {
    /// The job succeeded; the artifact frame follows as the next message.
    Ok {
        /// Echo of the request id.
        id: u64,
        /// The job's label, echoed back.
        name: String,
        /// True when the artifact came from the server's cache.
        from_cache: bool,
        /// True when the job shared an identical in-flight compression.
        deduped: bool,
    },
    /// The job failed; no artifact follows.
    Err {
        /// Echo of the request id.
        id: u64,
        /// The failure class.
        kind: WireErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl WireResponse {
    /// Encodes into a framed `BlobKind::WireResponse` message body.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when a string field overflows its
    /// length prefix.
    pub fn encode(&self) -> Result<Vec<u8>, MvqError> {
        let mut p = Vec::new();
        match self {
            WireResponse::Ok { id, name, from_cache, deduped } => {
                put_u64(&mut p, *id);
                put_u8(&mut p, STATUS_OK);
                put_u8(&mut p, u8::from(*from_cache));
                put_u8(&mut p, u8::from(*deduped));
                put_str(&mut p, name)?;
            }
            WireResponse::Err { id, kind, message } => {
                put_u64(&mut p, *id);
                put_u8(&mut p, STATUS_ERR);
                put_u8(&mut p, error_kind_tag(*kind));
                put_str(&mut p, message)?;
            }
        }
        Ok(frame_blob(BlobKind::WireResponse, p))
    }

    /// Decodes a framed `BlobKind::WireResponse` message body.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] for bad framing or a malformed
    /// payload.
    pub fn decode(bytes: &[u8]) -> Result<WireResponse, MvqError> {
        let payload = unframe_blob(BlobKind::WireResponse, bytes)?;
        let mut r = Reader::new(payload);
        let id = r.u64()?;
        let decoded = match r.u8()? {
            STATUS_OK => {
                let from_cache = r.u8()? != 0;
                let deduped = r.u8()? != 0;
                let name = r.str()?;
                WireResponse::Ok { id, name, from_cache, deduped }
            }
            STATUS_ERR => {
                let kind = error_kind_from_tag(r.u8()?)?;
                let message = r.str()?;
                WireResponse::Err { id, kind, message }
            }
            other => return Err(MvqError::Codec(format!("unknown wire status tag {other}"))),
        };
        r.finish()?;
        Ok(decoded)
    }
}

// ---------------------------------------------------------------------
// live stats: WireStatsRequest / WireStatsReply
// ---------------------------------------------------------------------

/// A live-stats probe: asks the server for a snapshot of its metrics
/// registry and up to `max_traces` recently completed job traces. The
/// server answers from the registry without touching the compression
/// queue, so a stats probe is cheap even under full load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireStatsRequest {
    /// Client-chosen correlation id, echoed on the reply.
    pub id: u64,
    /// Cap on the completed traces returned (newest first).
    pub max_traces: u32,
}

impl WireStatsRequest {
    /// Encodes into a framed `BlobKind::StatsRequest` message body.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        put_u64(&mut p, self.id);
        put_u32(&mut p, self.max_traces);
        frame_blob(BlobKind::StatsRequest, p)
    }

    /// Decodes a framed `BlobKind::StatsRequest` message body.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] for bad framing or a malformed
    /// payload.
    pub fn decode(bytes: &[u8]) -> Result<WireStatsRequest, MvqError> {
        let payload = unframe_blob(BlobKind::StatsRequest, bytes)?;
        let mut r = Reader::new(payload);
        let id = r.u64()?;
        let max_traces = r.u32()?;
        r.finish()?;
        Ok(WireStatsRequest { id, max_traces })
    }
}

/// One metric as it travels in a [`WireStatsReply`]. The name rides as
/// a string (not a pinned-ID lookup) so an older client renders a newer
/// server's metrics without knowing their IDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMetric {
    /// The metric's pinned registry ID.
    pub id: u16,
    /// The metric's dotted name (`"serve.queue.wait_us"` style).
    pub name: String,
    /// The captured value.
    pub value: WireMetricValue,
}

/// A [`WireMetric`]'s captured value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMetricValue {
    /// A counter's current count.
    Counter(u64),
    /// A gauge's current level.
    Gauge(u64),
    /// A histogram's summary.
    Histogram(HistogramSummary),
}

/// A live-stats reply: every registry metric plus the most recently
/// completed job traces (newest first), as of the instant the server's
/// reader handled the probe.
#[derive(Debug, Clone, PartialEq)]
pub struct WireStatsReply {
    /// Echo of the request id.
    pub id: u64,
    /// All metrics, in registry (ID) order.
    pub metrics: Vec<WireMetric>,
    /// Recently completed traces, newest first, capped at the request's
    /// `max_traces`.
    pub traces: Vec<TraceSnapshot>,
}

impl WireStatsReply {
    /// Builds a reply from a registry snapshot and a trace-ring read.
    pub fn from_registry(
        id: u64,
        snapshot: &RegistrySnapshot,
        traces: Vec<TraceSnapshot>,
    ) -> WireStatsReply {
        let metrics = snapshot
            .metrics
            .iter()
            .map(|m| WireMetric {
                id: m.id,
                name: m.name.to_string(),
                value: match m.value {
                    MetricValue::Counter(v) => WireMetricValue::Counter(v),
                    MetricValue::Gauge(v) => WireMetricValue::Gauge(v),
                    MetricValue::Histogram(h) => WireMetricValue::Histogram(h),
                },
            })
            .collect();
        WireStatsReply { id, metrics, traces }
    }

    /// Encodes into a framed `BlobKind::StatsResponse` message body.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when a length field overflows.
    pub fn encode(&self) -> Result<Vec<u8>, MvqError> {
        let mut p = Vec::new();
        put_u64(&mut p, self.id);
        let n = u32::try_from(self.metrics.len())
            .map_err(|_| MvqError::Codec("metric count exceeds the u32 field".into()))?;
        put_u32(&mut p, n);
        for m in &self.metrics {
            put_u32(&mut p, u32::from(m.id));
            put_str(&mut p, &m.name)?;
            match m.value {
                WireMetricValue::Counter(v) => {
                    put_u8(&mut p, MetricKind::Counter.tag());
                    put_u64(&mut p, v);
                }
                WireMetricValue::Gauge(v) => {
                    put_u8(&mut p, MetricKind::Gauge.tag());
                    put_u64(&mut p, v);
                }
                WireMetricValue::Histogram(h) => {
                    put_u8(&mut p, MetricKind::Histogram.tag());
                    put_u64(&mut p, h.count);
                    put_u64(&mut p, h.sum);
                    put_u64(&mut p, h.max);
                    put_u64(&mut p, h.p50);
                    put_u64(&mut p, h.p90);
                    put_u64(&mut p, h.p99);
                }
            }
        }
        let n = u32::try_from(self.traces.len())
            .map_err(|_| MvqError::Codec("trace count exceeds the u32 field".into()))?;
        put_u32(&mut p, n);
        for t in &self.traces {
            put_str(&mut p, &t.name)?;
            put_u8(&mut p, u8::from(t.deduped));
            put_u8(&mut p, t.outcome.tag());
            let n = u32::try_from(t.stages.len())
                .map_err(|_| MvqError::Codec("stage count exceeds the u32 field".into()))?;
            put_u32(&mut p, n);
            for &(stage, us) in &t.stages {
                put_u8(&mut p, stage.tag());
                put_u64(&mut p, us);
            }
        }
        Ok(frame_blob(BlobKind::StatsResponse, p))
    }

    /// Decodes a framed `BlobKind::StatsResponse` message body.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] for bad framing, a malformed
    /// payload, or an unknown metric-kind / stage / outcome tag (tags
    /// are append-only; an unknown tag means a newer peer).
    pub fn decode(bytes: &[u8]) -> Result<WireStatsReply, MvqError> {
        let payload = unframe_blob(BlobKind::StatsResponse, bytes)?;
        let mut r = Reader::new(payload);
        let id = r.u64()?;
        let n_metrics = r.u32()? as usize;
        let mut metrics = Vec::with_capacity(n_metrics.min(1 << 16));
        for _ in 0..n_metrics {
            let raw_id = r.u32()?;
            let mid = u16::try_from(raw_id)
                .map_err(|_| MvqError::Codec(format!("metric id {raw_id} overflows u16")))?;
            let name = r.str()?;
            let kind_tag = r.u8()?;
            let value = match MetricKind::from_tag(kind_tag) {
                Some(MetricKind::Counter) => WireMetricValue::Counter(r.u64()?),
                Some(MetricKind::Gauge) => WireMetricValue::Gauge(r.u64()?),
                Some(MetricKind::Histogram) => WireMetricValue::Histogram(HistogramSummary {
                    count: r.u64()?,
                    sum: r.u64()?,
                    max: r.u64()?,
                    p50: r.u64()?,
                    p90: r.u64()?,
                    p99: r.u64()?,
                }),
                None => return Err(MvqError::Codec(format!("unknown metric kind tag {kind_tag}"))),
            };
            metrics.push(WireMetric { id: mid, name, value });
        }
        let n_traces = r.u32()? as usize;
        let mut traces = Vec::with_capacity(n_traces.min(1 << 16));
        for _ in 0..n_traces {
            let name = r.str()?;
            let deduped = r.u8()? != 0;
            let outcome_tag = r.u8()?;
            let outcome = TraceOutcome::from_tag(outcome_tag).ok_or_else(|| {
                MvqError::Codec(format!("unknown trace outcome tag {outcome_tag}"))
            })?;
            let n_stages = r.u32()? as usize;
            let mut stages = Vec::with_capacity(n_stages.min(64));
            for _ in 0..n_stages {
                let stage_tag = r.u8()?;
                let stage = Stage::from_tag(stage_tag).ok_or_else(|| {
                    MvqError::Codec(format!("unknown trace stage tag {stage_tag}"))
                })?;
                stages.push((stage, r.u64()?));
            }
            traces.push(TraceSnapshot { name, deduped, outcome, stages });
        }
        r.finish()?;
        Ok(WireStatsReply { id, metrics, traces })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> WireRequest {
        WireRequest {
            id: 42,
            name: "conv1".into(),
            algo: "mvq".into(),
            spec: PipelineSpec {
                k: 8,
                prune_d: None,
                codebook_bits: Some(6),
                kernel: KernelStrategy::Blocked,
                ..PipelineSpec::default()
            },
            seed: Some(7),
            priority: Priority::High,
            cache_mode: CacheMode::ReadOnly,
            deadline_ms: Some(250),
            weight: Tensor::from_vec(vec![4, 4], (0..16).map(|i| i as f32 * 0.5).collect())
                .unwrap(),
        }
    }

    #[test]
    fn request_round_trips_bit_identically() {
        let req = request();
        let back = WireRequest::decode(&req.encode().unwrap()).unwrap();
        assert_eq!(back.id, req.id);
        assert_eq!(back.name, req.name);
        assert_eq!(back.algo, req.algo);
        assert_eq!(back.spec, req.spec);
        assert_eq!(back.seed, req.seed);
        assert_eq!(back.priority, req.priority);
        assert_eq!(back.cache_mode, req.cache_mode);
        assert_eq!(back.deadline_ms, req.deadline_ms);
        assert_eq!(back.weight.dims(), req.weight.dims());
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.weight), bits(&req.weight));
    }

    #[test]
    fn responses_round_trip() {
        let ok = WireResponse::Ok { id: 1, name: "a".into(), from_cache: true, deduped: false };
        assert_eq!(WireResponse::decode(&ok.encode().unwrap()).unwrap(), ok);
        let err = WireResponse::Err {
            id: 2,
            kind: WireErrorKind::CancelledDeadline,
            message: "deadline expired while queued".into(),
        };
        assert_eq!(WireResponse::decode(&err.encode().unwrap()).unwrap(), err);
    }

    #[test]
    fn frames_reject_cross_kind_and_corruption() {
        let req = request().encode().unwrap();
        assert!(WireResponse::decode(&req).is_err(), "request decoded as a response");
        let mut corrupt = req.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert!(WireRequest::decode(&corrupt).is_err(), "bad checksum accepted");
        assert!(WireRequest::decode(&req[..10]).is_err(), "truncation accepted");
    }

    #[test]
    fn stats_round_trip() {
        let req = WireStatsRequest { id: 9, max_traces: 16 };
        assert_eq!(WireStatsRequest::decode(&req.encode()).unwrap(), req);
        let reply = WireStatsReply {
            id: 9,
            metrics: vec![
                WireMetric {
                    id: 0,
                    name: "store.cache.hits".into(),
                    value: WireMetricValue::Counter(41),
                },
                WireMetric {
                    id: 23,
                    name: "stream.window.bytes_peak".into(),
                    value: WireMetricValue::Gauge(1 << 20),
                },
                WireMetric {
                    id: 8,
                    name: "serve.queue.wait_us".into(),
                    value: WireMetricValue::Histogram(HistogramSummary {
                        count: 100,
                        sum: 5000,
                        max: 120,
                        p50: 40,
                        p90: 80,
                        p99: 110,
                    }),
                },
            ],
            traces: vec![TraceSnapshot {
                name: "conv1".into(),
                deduped: true,
                outcome: TraceOutcome::Ok,
                stages: vec![(Stage::Submitted, 0), (Stage::Queued, 3), (Stage::Replied, 250)],
            }],
        };
        let frame = reply.encode().unwrap();
        assert_eq!(WireStatsReply::decode(&frame).unwrap(), reply);
        // cross-kind confusion is refused, like every other frame pair
        assert!(WireStatsRequest::decode(&frame).is_err());
        assert!(WireResponse::decode(&frame).is_err());
    }

    #[test]
    fn messages_round_trip_and_oversize_is_refused_before_allocation() {
        let frame = request().encode().unwrap();
        let mut buf = Vec::new();
        write_message(&mut buf, &frame).unwrap();
        assert_eq!(buf.len(), 4 + frame.len());
        let mut r = &buf[..];
        assert_eq!(read_message(&mut r, DEFAULT_MAX_MESSAGE_LEN).unwrap(), frame);
        // a length prefix over the cap fails fast
        let mut r = &buf[..];
        let err = read_message(&mut r, frame.len() - 1).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
