//! The TCP server: an accept loop plus a reader/writer thread pair per
//! connection, riding [`CompressionService`] tickets to completion.
//!
//! Concurrency is std-only, mirroring the serve layer: plain
//! `std::thread`s, a **bounded** `sync_channel` handing submitted
//! tickets from each connection's reader to its writer (the bound is
//! the per-connection in-flight pipeline depth — a client that
//! pipelines faster than the service completes blocks in its reader,
//! which is the backpressure), and atomics for stats and the drain
//! flag.
//!
//! ## Deadlines and cancellation
//!
//! Each wire request may carry a relative deadline; the reader converts
//! it to an absolute [`Instant`] at receipt and attaches it — plus a
//! fresh [`CancelToken`] — to the service request. A job still queued
//! when its deadline passes, or whose client disconnected (the reader
//! cancels every outstanding token on EOF), is dropped at dequeue and
//! never occupies a worker; its waiter resolves to
//! [`JobError::Cancelled`] and the writer reports the corresponding
//! wire error (or discards it, if the connection is already gone).
//!
//! ## Graceful drain
//!
//! [`NetServer::shutdown`] (also run on [`Drop`]) stops accepting, then
//! half-closes every connection's read side. Readers exit **without**
//! cancelling outstanding work — the drain flag distinguishes a server
//! drain from a client disconnect — so writers flush every accepted
//! in-flight ticket before the sockets close.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mvq_core::store::BlobKind;
use mvq_core::MvqError;
use mvq_obs::{names as metric, Registry};
use mvq_serve::{CancelToken, CompressionRequest, CompressionService, JobError, Ticket};

use crate::wire::{
    read_message, write_message, WireErrorKind, WireRequest, WireResponse, WireStatsReply,
    WireStatsRequest, DEFAULT_MAX_MESSAGE_LEN,
};

/// Tunables for [`NetServer::bind_with`].
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Cap on one message's frame length, both directions.
    pub max_message_len: usize,
    /// Per-connection in-flight pipeline depth: how many submitted
    /// tickets may sit between a connection's reader and writer before
    /// the reader blocks (bounded by construction — the workspace's
    /// no-unbounded-queue rule).
    pub pipeline_depth: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig { max_message_len: DEFAULT_MAX_MESSAGE_LEN, pipeline_depth: 64 }
    }
}

/// Monotonic counters for the server's observable behavior. Snapshot
/// via [`NetServer::stats`]; tests spin on these to await events (a
/// cancelled job, a drained connection) without sleeping.
///
/// Since the observability layer landed this is a **view over the
/// serving stack's `mvq_obs::Registry`** (the server adopts its
/// service's registry, which the service adopted from its cache): the
/// fields read the registry's `net.conn.*` counters, recorded at the
/// same points that used to bump a private atomic struct. Fields and
/// values are unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub connections: u64,
    /// Well-formed requests decoded and handed to the service.
    pub requests: u64,
    /// Ok responses written (artifact delivered).
    pub responses_ok: u64,
    /// Error responses (compression/cache/panic/reject) resolved.
    pub responses_err: u64,
    /// Jobs cancelled because their client disconnected while they were
    /// queued.
    pub cancelled_disconnect: u64,
    /// Jobs cancelled because their queue deadline expired.
    pub cancelled_deadline: u64,
    /// Connections dropped for protocol garbage (bad magic, truncated
    /// frame, oversize length, future format version, …).
    pub protocol_errors: u64,
}

/// One live connection's handles, kept for the drain.
struct Conn {
    /// A clone of the connection's stream, used only to half-close the
    /// read side at drain.
    stream: TcpStream,
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
}

struct NetShared {
    service: CompressionService,
    config: NetConfig,
    draining: AtomicBool,
    /// The serving stack's metrics registry, adopted from the service
    /// (which adopted it from its cache): one registry, one snapshot,
    /// covering store, serve, and net.
    metrics: Arc<Registry>,
    conns: Mutex<Vec<Conn>>,
}

/// A TCP front for one [`CompressionService`]: accepts connections on a
/// listener and serves the length-prefixed MVQA wire protocol (see the
/// crate docs for the layout).
///
/// Dropping the server drains gracefully: accepted in-flight jobs
/// complete and their responses flush before the sockets close.
pub struct NetServer {
    shared: Arc<NetShared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer").field("local_addr", &self.local_addr).finish_non_exhaustive()
    }
}

impl NetServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// serving `service` with default [`NetConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] when the bind or the
    /// acceptor spawn fails.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: CompressionService,
    ) -> Result<NetServer, MvqError> {
        NetServer::bind_with(addr, service, NetConfig::default())
    }

    /// [`NetServer::bind`] with explicit tunables.
    ///
    /// # Errors
    ///
    /// As [`NetServer::bind`].
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: CompressionService,
        config: NetConfig,
    ) -> Result<NetServer, MvqError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| MvqError::InvalidConfig(format!("cannot bind listener: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| MvqError::InvalidConfig(format!("cannot resolve bound address: {e}")))?;
        let metrics = Arc::clone(service.registry());
        let shared = Arc::new(NetShared {
            service,
            config,
            draining: AtomicBool::new(false),
            metrics,
            conns: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mvq-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(|e| MvqError::InvalidConfig(format!("cannot spawn acceptor: {e}")))?
        };
        Ok(NetServer { shared, local_addr, acceptor: Some(acceptor) })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The served compression service (for cache stats and direct
    /// submissions).
    pub fn service(&self) -> &CompressionService {
        &self.shared.service
    }

    /// A snapshot of the server's counters (a view over the shared
    /// registry's `net.conn.*` metrics).
    pub fn stats(&self) -> NetStats {
        let m = &self.shared.metrics;
        NetStats {
            connections: m.counter(metric::NET_CONN_ACCEPTED).get(),
            requests: m.counter(metric::NET_CONN_FRAMES_RX).get(),
            responses_ok: m.counter(metric::NET_CONN_RESPONSES_OK).get(),
            responses_err: m.counter(metric::NET_CONN_RESPONSES_ERR).get(),
            cancelled_disconnect: m.counter(metric::NET_CONN_CANCELLED_DISCONNECT).get(),
            cancelled_deadline: m.counter(metric::NET_CONN_CANCELLED_DEADLINE).get(),
            protocol_errors: m.counter(metric::NET_CONN_PROTOCOL_ERRORS).get(),
        }
    }

    /// The metrics registry (and completed-trace ring) shared by the
    /// whole serving stack: cache, service, and this network front.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.metrics
    }

    /// Graceful drain: stop accepting, half-close every connection's
    /// read side, flush every accepted in-flight job's response, join
    /// all threads. Idempotent; [`Drop`] calls it.
    pub fn shutdown(&mut self) {
        self.shared.draining.store(true, Ordering::Release);
        // poke the blocking accept() so the acceptor observes the flag
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // the acceptor is gone, so the registry is final now
        let conns = match self.shared.conns.lock() {
            Ok(mut guard) => guard.drain(..).collect::<Vec<_>>(),
            Err(_) => Vec::new(),
        };
        for conn in &conns {
            // readers parked in read_message wake with EOF; the drain
            // flag tells them not to cancel outstanding work
            let _ = conn.stream.shutdown(Shutdown::Read);
        }
        for conn in conns {
            let _ = conn.reader.join();
            // the writer exits once the reader's channel closes and
            // every remaining ticket is flushed
            let _ = conn.writer.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<NetShared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.draining.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::Acquire) {
            // the shutdown poke (or a late client); refuse and exit
            return;
        }
        spawn_connection(shared, stream);
    }
}

/// What the reader hands the writer, in submission order.
enum Pending {
    /// A submitted job's ticket (plus the cancel token shared with the
    /// service-side waiter). Boxed: a `Ticket` dwarfs the other variant,
    /// and one allocation per request is noise next to the compression.
    Job { id: u64, ticket: Box<Ticket> },
    /// A request refused at validation; respond without a ticket.
    Reject { id: u64, message: String },
    /// A live-stats reply, already encoded; rides the same channel so
    /// replies stay in per-connection submission order.
    Stats { frame: Vec<u8> },
}

fn spawn_connection(shared: &Arc<NetShared>, stream: TcpStream) {
    // the protocol writes a tiny length prefix before every frame; with
    // Nagle on, that second small write stalls behind the peer's
    // delayed ACK (~40 ms per message on loopback)
    let _ = stream.set_nodelay(true);
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    shared.metrics.counter(metric::NET_CONN_ACCEPTED).inc();
    // bounded by design: the pipeline depth is the connection's
    // in-flight budget, and a reader blocked on a full channel is the
    // protocol's backpressure
    let (tx, rx) = mpsc::sync_channel::<Pending>(shared.config.pipeline_depth.max(1));
    let outstanding: Arc<Mutex<HashMap<u64, CancelToken>>> = Arc::new(Mutex::new(HashMap::new()));
    let reader = {
        let shared = Arc::clone(shared);
        let outstanding = Arc::clone(&outstanding);
        std::thread::Builder::new()
            .name("mvq-net-reader".into())
            .spawn(move || conn_reader(&shared, reader_stream, &tx, &outstanding))
    };
    let writer = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("mvq-net-writer".into())
            .spawn(move || conn_writer(&shared, writer_stream, &rx, &outstanding))
    };
    match (reader, writer) {
        (Ok(reader), Ok(writer)) => {
            if let Ok(mut conns) = shared.conns.lock() {
                conns.push(Conn { stream, reader, writer });
            }
        }
        (reader, writer) => {
            // a failed spawn closes the connection; shutting the socket
            // (shared by every clone) unblocks whichever half did start
            let _ = stream.shutdown(Shutdown::Both);
            drop(stream);
            if let Ok(handle) = reader {
                let _ = handle.join();
            }
            if let Ok(handle) = writer {
                let _ = handle.join();
            }
        }
    }
}

fn conn_reader(
    shared: &NetShared,
    mut stream: TcpStream,
    tx: &mpsc::SyncSender<Pending>,
    outstanding: &Mutex<HashMap<u64, CancelToken>>,
) {
    loop {
        let msg = match read_message(&mut stream, shared.config.max_message_len) {
            Ok(msg) => msg,
            Err(e) => {
                // a clean disconnect surfaces as EOF at the length
                // prefix; anything else is protocol garbage
                if e.kind() != std::io::ErrorKind::UnexpectedEof {
                    shared.metrics.counter(metric::NET_CONN_PROTOCOL_ERRORS).inc();
                }
                break;
            }
        };
        // a stats probe is answered from the registry without touching
        // the service queue; it rides the same pending channel so the
        // reply lands in per-connection order (the kind tag sits at a
        // fixed offset in the verified-later frame header, so peeking
        // it never commits us to a decode)
        if msg.get(6) == Some(&(BlobKind::StatsRequest as u8)) {
            let reply = match WireStatsRequest::decode(&msg) {
                Ok(req) => {
                    shared.metrics.counter(metric::NET_CONN_STATS_REQUESTS).inc();
                    let traces = shared.metrics.traces().recent(req.max_traces as usize);
                    WireStatsReply::from_registry(req.id, &shared.metrics.snapshot(), traces)
                        .encode()
                }
                Err(e) => Err(e),
            };
            match reply {
                Ok(frame) => {
                    if tx.send(Pending::Stats { frame }).is_err() {
                        break; // writer is gone; the connection is dead
                    }
                    continue;
                }
                Err(_) => {
                    shared.metrics.counter(metric::NET_CONN_PROTOCOL_ERRORS).inc();
                    break;
                }
            }
        }
        let wire = match WireRequest::decode(&msg) {
            Ok(wire) => wire,
            Err(_) => {
                // an undecodable frame poisons the stream's framing;
                // drop the connection rather than guess at recovery
                shared.metrics.counter(metric::NET_CONN_PROTOCOL_ERRORS).inc();
                break;
            }
        };
        shared.metrics.counter(metric::NET_CONN_FRAMES_RX).inc();
        let id = wire.id;
        let token = CancelToken::new();
        let mut builder = CompressionRequest::builder(wire.name, wire.weight, wire.algo)
            .spec(wire.spec)
            .priority(wire.priority)
            .cache_mode(wire.cache_mode)
            .cancel_token(token.clone());
        if let Some(seed) = wire.seed {
            builder = builder.seed(seed);
        }
        if let Some(ms) = wire.deadline_ms {
            // relative on the wire, absolute from receipt here — the
            // client's clock never matters
            builder = builder.deadline(Instant::now() + Duration::from_millis(ms));
        }
        let pending = match builder.build() {
            Ok(request) => {
                // submit_one blocks while the service queue is full —
                // that, plus the bounded channel below, is the server's
                // backpressure; nothing is buffered without bound
                let ticket = shared.service.submit_one(request);
                if let Ok(mut map) = outstanding.lock() {
                    map.insert(id, token);
                }
                Pending::Job { id, ticket: Box::new(ticket) }
            }
            Err(e) => Pending::Reject { id, message: e.to_string() },
        };
        if tx.send(pending).is_err() {
            break; // writer is gone; the connection is dead
        }
    }
    // Client disconnect cancels everything still outstanding so queued
    // jobs never occupy a worker — unless the server itself is draining,
    // in which case accepted work must complete and flush.
    if !shared.draining.load(Ordering::Acquire) {
        if let Ok(mut map) = outstanding.lock() {
            for (_, token) in map.drain() {
                token.cancel();
            }
        }
    }
}

fn conn_writer(
    shared: &NetShared,
    mut stream: TcpStream,
    rx: &mpsc::Receiver<Pending>,
    outstanding: &Mutex<HashMap<u64, CancelToken>>,
) {
    // once a write fails the socket is dead, but tickets must still be
    // drained so their results (and cancellation stats) are accounted
    let mut alive = true;
    while let Ok(pending) = rx.recv() {
        match pending {
            Pending::Stats { frame } => {
                if alive {
                    alive = write_message(&mut stream, &frame).is_ok();
                }
            }
            Pending::Reject { id, message } => {
                shared.metrics.counter(metric::NET_CONN_RESPONSES_ERR).inc();
                if alive {
                    let resp = WireResponse::Err { id, kind: WireErrorKind::Rejected, message };
                    alive = write_response(&mut stream, &resp);
                }
            }
            Pending::Job { id, ticket } => {
                let result = ticket.wait();
                if let Ok(mut map) = outstanding.lock() {
                    map.remove(&id);
                }
                match result {
                    Ok(outcome) => {
                        shared.metrics.counter(metric::NET_CONN_RESPONSES_OK).inc();
                        if alive {
                            let header = WireResponse::Ok {
                                id,
                                name: outcome.name.clone(),
                                from_cache: outcome.from_cache,
                                deduped: outcome.deduped,
                            };
                            alive = write_response(&mut stream, &header)
                                && write_artifact(&mut stream, &outcome);
                        }
                    }
                    Err(e) => {
                        match &e {
                            JobError::Cancelled { kind, .. } => {
                                use mvq_serve::CancelKind;
                                let id = match kind {
                                    CancelKind::Explicit => metric::NET_CONN_CANCELLED_DISCONNECT,
                                    CancelKind::DeadlineExpired => {
                                        metric::NET_CONN_CANCELLED_DEADLINE
                                    }
                                };
                                shared.metrics.counter(id).inc();
                            }
                            _ => {
                                shared.metrics.counter(metric::NET_CONN_RESPONSES_ERR).inc();
                            }
                        }
                        if alive {
                            let resp = WireResponse::Err {
                                id,
                                kind: WireErrorKind::from_job_error(&e),
                                message: e.to_string(),
                            };
                            alive = write_response(&mut stream, &resp);
                        }
                    }
                }
            }
        }
    }
    let _ = stream.flush();
}

/// Encodes and writes one response header; false when the socket died.
fn write_response(stream: &mut TcpStream, resp: &WireResponse) -> bool {
    match resp.encode() {
        Ok(frame) => write_message(stream, &frame).is_ok(),
        Err(_) => false,
    }
}

/// Writes the artifact message after an Ok header. The hot path writes
/// the outcome's shared `Arc` bytes directly — the same allocation the
/// cache validated at admission, never copied or re-encoded for the
/// wire. Only cache-bypassing jobs (which never encoded) pay an encode
/// here.
fn write_artifact(stream: &mut TcpStream, outcome: &mvq_serve::JobOutcome) -> bool {
    match outcome.raw_bytes() {
        Some(bytes) => write_message(stream, bytes).is_ok(),
        None => match outcome.artifact().and_then(|a| {
            use mvq_core::store::Persist;
            a.to_bytes()
        }) {
            Ok(bytes) => write_message(stream, &bytes).is_ok(),
            Err(_) => false,
        },
    }
}
