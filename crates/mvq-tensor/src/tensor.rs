//! The dense row-major `f32` tensor type.

use crate::error::TensorError;
use crate::shape::{flat_index, numel, strides_of};

/// A dense, row-major, heap-allocated `f32` tensor of arbitrary rank.
///
/// `Tensor` is the single numeric currency of the MVQ workspace: CNN
/// weights/activations, clustering codebooks, and subvector matrices are all
/// `Tensor`s. The representation is deliberately simple — `dims` plus a flat
/// `Vec<f32>` — because every hot kernel (GEMM, im2col, k-means distance
/// computation) works on contiguous slices.
///
/// # Example
///
/// ```
/// use mvq_tensor::Tensor;
///
/// let t = Tensor::zeros(vec![2, 3]);
/// assert_eq!(t.dims(), &[2, 3]);
/// assert_eq!(t.numel(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    dims: Vec<usize>,
    data: Vec<f32>,
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor { dims: vec![0], data: Vec::new() }
    }
}

impl Tensor {
    /// Creates a tensor of zeros with the given dims.
    pub fn zeros(dims: Vec<usize>) -> Tensor {
        let n = numel(&dims);
        Tensor { dims, data: vec![0.0; n] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: Vec<usize>, value: f32) -> Tensor {
        let n = numel(&dims);
        Tensor { dims, data: vec![value; n] }
    }

    /// Creates a tensor of ones.
    pub fn ones(dims: Vec<usize>) -> Tensor {
        Tensor::full(dims, 1.0)
    }

    /// Creates a square identity matrix of side `n`.
    pub fn eye(n: usize) -> Tensor {
        let mut t = Tensor::zeros(vec![n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the product of `dims`.
    pub fn from_vec(dims: Vec<usize>, data: Vec<f32>) -> Result<Tensor, TensorError> {
        let expected = numel(&dims);
        if expected != data.len() {
            return Err(TensorError::LengthMismatch { expected, actual: data.len() });
        }
        Ok(Tensor { dims, data })
    }

    /// The tensor's dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The tensor's rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index does not
    /// address an element.
    pub fn at(&self, index: &[usize]) -> Result<f32, TensorError> {
        self.check_index(index)?;
        Ok(self.data[flat_index(index, &strides_of(&self.dims))])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index does not
    /// address an element.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        self.check_index(index)?;
        let f = flat_index(index, &strides_of(&self.dims));
        self.data[f] = value;
        Ok(())
    }

    fn check_index(&self, index: &[usize]) -> Result<(), TensorError> {
        if index.len() != self.dims.len() || index.iter().zip(&self.dims).any(|(i, d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                dims: self.dims.clone(),
            });
        }
        Ok(())
    }

    /// Returns a tensor with the same data and new dims.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: Vec<usize>) -> Result<Tensor, TensorError> {
        let expected = numel(&dims);
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch { expected, actual: self.data.len() });
        }
        Ok(Tensor { dims, data: self.data.clone() })
    }

    /// In-place reshape (no data movement).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape_in_place(&mut self, dims: Vec<usize>) -> Result<(), TensorError> {
        let expected = numel(&dims);
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch { expected, actual: self.data.len() });
        }
        self.dims = dims;
        Ok(())
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { dims: self.dims.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise binary operation against a same-shape tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if dims differ.
    pub fn zip_with(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.dims != other.dims {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims.clone(),
                rhs: other.dims.clone(),
                op,
            });
        }
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Tensor { dims: self.dims.clone(), data })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if dims differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if dims differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if dims differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, "mul", |a, b| a * b)
    }

    /// In-place `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if dims differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        if self.dims != other.dims {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims.clone(),
                rhs: other.dims.clone(),
                op: "add_assign",
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (AXPY).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if dims differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), TensorError> {
        if self.dims != other.dims {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims.clone(),
                rhs: other.dims.clone(),
                op: "axpy",
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| x * alpha)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute value (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Index of the largest element (first one on ties); `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Squared L2 norm of the whole tensor.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Sum of squared differences against `other` — the paper's SSE metric.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if dims differ.
    pub fn sse(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.dims != other.dims {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims.clone(),
                rhs: other.dims.clone(),
                op: "sse",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a - b;
                d * d
            })
            .sum())
    }

    /// 2-D transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for tensors that are not rank 2.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "transpose",
            });
        }
        let (r, c) = (self.dims[0], self.dims[1]);
        let mut out = Tensor::zeros(vec![c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Extracts row `i` of a 2-D tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of range. Use only
    /// in hot loops after shapes have been validated.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a matrix");
        let c = self.dims[1];
        &self.data[i * c..(i + 1) * c]
    }

    /// Mutable row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert_eq!(self.rank(), 2, "row_mut() requires a matrix");
        let c = self.dims[1];
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Fraction of elements equal to zero.
    pub fn sparsity(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&x| x == 0.0).count();
        zeros as f32 / self.data.len() as f32
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.dims)?;
        if self.numel() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::zeros(vec![2, 3]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.rank(), 2);
        assert!(t.data().iter().all(|&x| x == 0.0));

        let t = Tensor::full(vec![4], 2.5);
        assert!(t.data().iter().all(|&x| x == 2.5));

        let e = Tensor::eye(3);
        assert_eq!(e.at(&[0, 0]).unwrap(), 1.0);
        assert_eq!(e.at(&[0, 1]).unwrap(), 0.0);
        assert_eq!(e.sum(), 3.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![0.0; 4]).is_ok());
        let err = Tensor::from_vec(vec![2, 2], vec![0.0; 5]).unwrap_err();
        assert_eq!(err, TensorError::LengthMismatch { expected: 4, actual: 5 });
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(vec![2, 3, 4]);
        t.set(&[1, 2, 3], 7.0).unwrap();
        assert_eq!(t.at(&[1, 2, 3]).unwrap(), 7.0);
        assert_eq!(t.at(&[0, 0, 0]).unwrap(), 0.0);
        assert!(t.at(&[2, 0, 0]).is_err());
        assert!(t.at(&[0, 0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        let r = t.reshape(vec![3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![10.0, 20.0, 30.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[11.0, 22.0, 33.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[9.0, 18.0, 27.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[10.0, 40.0, 90.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        let c = Tensor::zeros(vec![4]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(vec![2]);
        let g = Tensor::from_vec(vec![2], vec![0.5, -0.5]).unwrap();
        a.axpy(-2.0, &g).unwrap();
        assert_eq!(a.data(), &[0.0, 2.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![4], vec![-3.0, 1.0, 2.0, 0.0]).unwrap();
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max_abs(), 3.0);
        assert_eq!(t.argmax(), Some(2));
        assert_eq!(t.sq_norm(), 14.0);
        assert_eq!(t.sparsity(), 0.25);
        assert_eq!(Tensor::zeros(vec![0]).argmax(), None);
    }

    #[test]
    fn sse_matches_manual() {
        let a = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![2], vec![0.0, 4.0]).unwrap();
        assert_eq!(a.sse(&b).unwrap(), 1.0 + 4.0);
        assert_eq!(a.sse(&a).unwrap(), 0.0);
    }

    #[test]
    fn transpose_square_and_rect() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]).unwrap(), t.at(&[1, 2]).unwrap());
        assert!(Tensor::zeros(vec![2]).transpose().is_err());
    }

    #[test]
    fn rows_are_contiguous() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn display_shows_small_tensors() {
        let t = Tensor::ones(vec![2]);
        let s = format!("{t}");
        assert!(s.contains("[2]"));
        assert!(s.contains("1.0"));
        let big = Tensor::zeros(vec![100]);
        assert!(!format!("{big}").contains("0.0,"));
    }
}
