//! im2col / col2im kernels and 2-D geometry helpers for convolution and
//! pooling layers.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Spatial geometry of a 2-D convolution: input size, kernel, stride and
/// symmetric zero padding.
///
/// ```
/// use mvq_tensor::Conv2dGeometry;
/// let g = Conv2dGeometry::new(32, 32, 3, 3, 1, 1);
/// assert_eq!(g.out_h(), 32);
/// assert_eq!(g.out_w(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Input feature-map height.
    pub in_h: usize,
    /// Input feature-map width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Symmetric zero padding (same on all sides).
    pub pad: usize,
}

impl Conv2dGeometry {
    /// Creates a geometry descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0` or the kernel is empty; these are programmer
    /// errors, not data-dependent conditions.
    pub fn new(
        in_h: usize,
        in_w: usize,
        k_h: usize,
        k_w: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(k_h > 0 && k_w > 0, "kernel must be non-empty");
        Conv2dGeometry { in_h, in_w, k_h, k_w, stride, pad }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad).saturating_sub(self.k_h) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad).saturating_sub(self.k_w) / self.stride + 1
    }
}

/// Pooling geometry; alias of the convolution geometry since the index math
/// is identical.
pub type Pool2dGeometry = Conv2dGeometry;

/// Unfolds a `[C, H, W]` image into a `[C*kh*kw, out_h*out_w]` column
/// matrix, so that convolution becomes a GEMM with the `[K, C*kh*kw]`
/// weight matrix.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless `image` is rank 3, and
/// [`TensorError::ShapeMismatch`] when the image does not match `geom`.
pub fn im2col(image: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor, TensorError> {
    if image.rank() != 3 {
        return Err(TensorError::RankMismatch { expected: 3, actual: image.rank(), op: "im2col" });
    }
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    if h != geom.in_h || w != geom.in_w {
        return Err(TensorError::ShapeMismatch {
            lhs: image.dims().to_vec(),
            rhs: vec![c, geom.in_h, geom.in_w],
            op: "im2col",
        });
    }
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let rows = c * geom.k_h * geom.k_w;
    let cols = oh * ow;
    let mut out = Tensor::zeros(vec![rows, cols]);
    let src = image.data();
    let dst = out.data_mut();
    for ch in 0..c {
        for kh in 0..geom.k_h {
            for kw in 0..geom.k_w {
                let row = (ch * geom.k_h + kh) * geom.k_w + kw;
                let dst_row = &mut dst[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * geom.stride + kh) as isize - geom.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_base = (ch * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kw) as isize - geom.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst_row[oy * ow + ox] = src[src_base + ix as usize];
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Folds a `[C*kh*kw, out_h*out_w]` column matrix back into a `[C, H, W]`
/// image, *accumulating* overlapping contributions — the adjoint of
/// [`im2col`], used for input gradients.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `cols` does not match `geom`
/// and `channels`.
pub fn col2im(
    cols: &Tensor,
    geom: &Conv2dGeometry,
    channels: usize,
) -> Result<Tensor, TensorError> {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let rows = channels * geom.k_h * geom.k_w;
    if cols.dims() != [rows, oh * ow] {
        return Err(TensorError::ShapeMismatch {
            lhs: cols.dims().to_vec(),
            rhs: vec![rows, oh * ow],
            op: "col2im",
        });
    }
    let mut out = Tensor::zeros(vec![channels, geom.in_h, geom.in_w]);
    let src = cols.data();
    let dst = out.data_mut();
    let n_cols = oh * ow;
    for ch in 0..channels {
        for kh in 0..geom.k_h {
            for kw in 0..geom.k_w {
                let row = (ch * geom.k_h + kh) * geom.k_w + kw;
                let src_row = &src[row * n_cols..(row + 1) * n_cols];
                for oy in 0..oh {
                    let iy = (oy * geom.stride + kh) as isize - geom.pad as isize;
                    if iy < 0 || iy >= geom.in_h as isize {
                        continue;
                    }
                    let dst_base = (ch * geom.in_h + iy as usize) * geom.in_w;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kw) as isize - geom.pad as isize;
                        if ix < 0 || ix >= geom.in_w as isize {
                            continue;
                        }
                        dst[dst_base + ix as usize] += src_row[oy * ow + ox];
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_output_sizes() {
        let g = Conv2dGeometry::new(5, 5, 3, 3, 1, 0);
        assert_eq!((g.out_h(), g.out_w()), (3, 3));
        let g = Conv2dGeometry::new(5, 5, 3, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (5, 5));
        let g = Conv2dGeometry::new(8, 8, 2, 2, 2, 0);
        assert_eq!((g.out_h(), g.out_w()), (4, 4));
        let g = Conv2dGeometry::new(7, 7, 3, 3, 2, 1);
        assert_eq!((g.out_h(), g.out_w()), (4, 4));
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_panics() {
        let _ = Conv2dGeometry::new(4, 4, 2, 2, 0, 0);
    }

    #[test]
    fn im2col_known_values() {
        // 1x3x3 image, 2x2 kernel, stride 1, no pad -> 4 columns.
        let img = Tensor::from_vec(vec![1, 3, 3], (1..=9).map(|x| x as f32).collect()).unwrap();
        let g = Conv2dGeometry::new(3, 3, 2, 2, 1, 0);
        let cols = im2col(&img, &g).unwrap();
        assert_eq!(cols.dims(), &[4, 4]);
        // First column = top-left patch [1,2,4,5].
        let col0: Vec<f32> = (0..4).map(|r| cols.at(&[r, 0]).unwrap()).collect();
        assert_eq!(col0, vec![1.0, 2.0, 4.0, 5.0]);
        // Last column = bottom-right patch [5,6,8,9].
        let col3: Vec<f32> = (0..4).map(|r| cols.at(&[r, 3]).unwrap()).collect();
        assert_eq!(col3, vec![5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_pads_with_zeros() {
        let img = Tensor::ones(vec![1, 2, 2]);
        let g = Conv2dGeometry::new(2, 2, 3, 3, 1, 1);
        let cols = im2col(&img, &g).unwrap();
        assert_eq!(cols.dims(), &[9, 4]);
        // Kernel center over image corner sees the corner pixel.
        assert_eq!(cols.at(&[4, 0]).unwrap(), 1.0);
        // Top-left kernel tap over image corner is padding.
        assert_eq!(cols.at(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn im2col_validates_shape() {
        let img = Tensor::zeros(vec![1, 4, 4]);
        let g = Conv2dGeometry::new(5, 5, 3, 3, 1, 0);
        assert!(im2col(&img, &g).is_err());
        assert!(im2col(&Tensor::zeros(vec![4, 4]), &g).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which conv backward relies on.
        let g = Conv2dGeometry::new(4, 5, 3, 2, 1, 1);
        let c = 2;
        let x = Tensor::from_vec(
            vec![c, 4, 5],
            (0..40).map(|i| ((i * 37 % 11) as f32) - 5.0).collect(),
        )
        .unwrap();
        let rows = c * g.k_h * g.k_w;
        let cols_n = g.out_h() * g.out_w();
        let y = Tensor::from_vec(
            vec![rows, cols_n],
            (0..rows * cols_n).map(|i| ((i * 13 % 7) as f32) - 3.0).collect(),
        )
        .unwrap();
        let ax = im2col(&x, &g).unwrap();
        let aty = col2im(&y, &g, c).unwrap();
        let lhs: f32 = ax.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(aty.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn col2im_validates_shape() {
        let g = Conv2dGeometry::new(4, 4, 2, 2, 1, 0);
        let bad = Tensor::zeros(vec![3, 9]);
        assert!(col2im(&bad, &g, 1).is_err());
    }
}
