//! Blocked, parallel matrix multiplication kernels.
//!
//! These back both the convolution layers (via im2col) and the clustering
//! distance computations, so they are written for cache friendliness:
//! row-major accumulation with the `k` loop innermost-but-one and rayon
//! parallelism across output rows.

use rayon::prelude::*;

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Minimum number of output rows before the kernels bother spawning rayon
/// tasks; below this the fork/join overhead dominates.
const PAR_THRESHOLD: usize = 8;

/// `C = A (m×k) · B (k×n)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless both operands are matrices,
/// and [`TensorError::ShapeMismatch`] when the inner dimensions disagree.
///
/// ```
/// use mvq_tensor::{gemm, Tensor};
/// let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let c = gemm(&a, &Tensor::eye(2))?;
/// assert_eq!(c, a);
/// # Ok::<(), mvq_tensor::TensorError>(())
/// ```
pub fn gemm(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    check_rank2(a, "gemm")?;
    check_rank2(b, "gemm")?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "gemm",
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    let a_data = a.data();
    let b_data = b.data();
    let body = |(i, out_row): (usize, &mut [f32])| {
        let a_row = &a_data[i * k..(i + 1) * k];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b_data[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    };
    if m >= PAR_THRESHOLD {
        out.data_mut().par_chunks_mut(n).enumerate().for_each(body);
    } else {
        out.data_mut().chunks_mut(n).enumerate().for_each(body);
    }
    Ok(out)
}

/// `C = Aᵀ (k×m)ᵀ · B (k×n)` computed without materializing `Aᵀ`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`] as
/// [`gemm`] does; here the *leading* dimensions of `a` and `b` must agree.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    check_rank2(a, "matmul_transpose_a")?;
    check_rank2(b, "matmul_transpose_a")?;
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul_transpose_a",
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    let a_data = a.data();
    let b_data = b.data();
    // out[i][j] = sum_p a[p][i] * b[p][j]; iterate p outer for contiguity.
    let out_slice = out.data_mut();
    for p in 0..k {
        let a_row = &a_data[p * m..(p + 1) * m];
        let b_row = &b_data[p * n..(p + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let o = &mut out_slice[i * n..(i + 1) * n];
            for (ov, &bv) in o.iter_mut().zip(b_row) {
                *ov += av * bv;
            }
        }
    }
    Ok(out)
}

/// `C = A (m×k) · Bᵀ (n×k)ᵀ` computed without materializing `Bᵀ`.
///
/// This is the kernel behind Euclidean distance matrices: each output cell
/// is a dot product of a row of `a` with a row of `b`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`];
/// here the *trailing* dimensions of `a` and `b` must agree.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    check_rank2(a, "matmul_transpose_b")?;
    check_rank2(b, "matmul_transpose_b")?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul_transpose_b",
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    let a_data = a.data();
    let b_data = b.data();
    let body = |(i, out_row): (usize, &mut [f32])| {
        let a_row = &a_data[i * k..(i + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b_data[j * k..(j + 1) * k];
            *o = a_row.iter().zip(b_row).map(|(&x, &y)| x * y).sum();
        }
    };
    if m >= PAR_THRESHOLD {
        out.data_mut().par_chunks_mut(n).enumerate().for_each(body);
    } else {
        out.data_mut().chunks_mut(n).enumerate().for_each(body);
    }
    Ok(out)
}

fn check_rank2(t: &Tensor, op: &'static str) -> Result<(), TensorError> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: t.rank(), op });
    }
    Ok(())
}

impl Tensor {
    /// Matrix product `self · other`; convenience method over [`gemm`].
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`gemm`].
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        gemm(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(vec![m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.data()[i * k + p] * b.data()[p * n + j];
                }
                out.data_mut()[i * n + j] = acc;
            }
        }
        out
    }

    fn seq_tensor(dims: Vec<usize>) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec(dims, (0..n).map(|x| (x as f32 * 0.37).sin()).collect()).unwrap()
    }

    #[test]
    fn gemm_matches_naive() {
        let a = seq_tensor(vec![13, 7]);
        let b = seq_tensor(vec![7, 9]);
        let fast = gemm(&a, &b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_identity() {
        let a = seq_tensor(vec![5, 5]);
        let c = gemm(&a, &Tensor::eye(5)).unwrap();
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn gemm_rejects_bad_shapes() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 2]);
        assert!(gemm(&a, &b).is_err());
        assert!(gemm(&Tensor::zeros(vec![3]), &b).is_err());
    }

    #[test]
    fn transpose_a_matches_explicit() {
        let a = seq_tensor(vec![6, 4]);
        let b = seq_tensor(vec![6, 5]);
        let fast = matmul_transpose_a(&a, &b).unwrap();
        let slow = naive(&a.transpose().unwrap(), &b);
        assert_eq!(fast.dims(), &[4, 5]);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_b_matches_explicit() {
        let a = seq_tensor(vec![6, 4]);
        let b = seq_tensor(vec![9, 4]);
        let fast = matmul_transpose_b(&a, &b).unwrap();
        let slow = naive(&a, &b.transpose().unwrap());
        assert_eq!(fast.dims(), &[6, 9]);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn large_parallel_path() {
        // Exceeds PAR_THRESHOLD so the rayon branch is exercised.
        let a = seq_tensor(vec![64, 32]);
        let b = seq_tensor(vec![32, 16]);
        let fast = gemm(&a, &b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-3);
        }
    }
}
