use std::error::Error;
use std::fmt;

/// Error type returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// length supplied.
    LengthMismatch {
        /// Elements implied by the requested dims.
        expected: usize,
        /// Elements actually supplied.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Dims of the left-hand operand.
        lhs: Vec<usize>,
        /// Dims of the right-hand operand.
        rhs: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An operation required a tensor of a particular rank.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An index was out of bounds for the tensor's dims.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor dims.
        dims: Vec<usize>,
    },
    /// A parameter was invalid (zero dimension, empty axis, ...).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "shape implies {expected} elements but {actual} were supplied")
            }
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "incompatible shapes for `{op}`: {lhs:?} vs {rhs:?}")
            }
            TensorError::RankMismatch { expected, actual, op } => {
                write!(f, "`{op}` expects rank {expected}, got rank {actual}")
            }
            TensorError::IndexOutOfBounds { index, dims } => {
                write!(f, "index {index:?} out of bounds for dims {dims:?}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::LengthMismatch { expected: 4, actual: 3 };
        assert!(err.to_string().contains('4'));
        assert!(err.to_string().contains('3'));
        let err = TensorError::ShapeMismatch { lhs: vec![2], rhs: vec![3], op: "add" };
        assert!(err.to_string().contains("add"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
