//! Random weight initializers used by the CNN substrate.

use rand::distributions::Distribution;
use rand::Rng;

use crate::tensor::Tensor;

/// Kaiming (He) normal initialization: `N(0, sqrt(2 / fan_in))`.
///
/// The standard initializer for ReLU networks; `fan_in` is the number of
/// input connections per output unit (`C_in * k_h * k_w` for conv layers).
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_normal<R: Rng>(dims: Vec<usize>, fan_in: usize, rng: &mut R) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    let normal = NormalApprox { std };
    let n: usize = dims.iter().product();
    let data = (0..n).map(|_| normal.sample(rng)).collect();
    Tensor::from_vec(dims, data).expect("dims/product invariant")
}

/// Xavier/Glorot uniform initialization over `[-a, a]` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform<R: Rng>(
    dims: Vec<usize>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fans must not both be zero");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(dims, -a, a, rng)
}

/// Uniform initialization over `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform<R: Rng>(dims: Vec<usize>, lo: f32, hi: f32, rng: &mut R) -> Tensor {
    assert!(lo <= hi, "empty range");
    let n: usize = dims.iter().product();
    let data = (0..n).map(|_| rng.gen_range(lo..=hi)).collect();
    Tensor::from_vec(dims, data).expect("dims/product invariant")
}

/// Gaussian sampler via the Box–Muller transform, avoiding a dependency on
/// `rand_distr`.
struct NormalApprox {
    std: f32,
}

impl Distribution<f32> for NormalApprox {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let mag = (-2.0 * u1.ln()).sqrt();
        self.std * mag * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_statistics() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = kaiming_normal(vec![64, 64], 128, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|&x| (x - mean).powi(2)).sum::<f32>() / t.numel() as f32;
        let expected_var = 2.0 / 128.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - expected_var).abs() / expected_var < 0.15, "var {var} vs {expected_var}");
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = xavier_uniform(vec![100, 10], 10, 10, &mut rng);
        let a = (6.0f32 / 20.0).sqrt();
        assert!(t.data().iter().all(|&x| x >= -a && x <= a));
        assert!(t.max_abs() > a * 0.5, "should use most of the range");
    }

    #[test]
    fn uniform_respects_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = uniform(vec![1000], -0.5, 0.25, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..=0.25).contains(&x)));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = kaiming_normal(vec![16], 4, &mut StdRng::seed_from_u64(9));
        let b = kaiming_normal(vec![16], 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
