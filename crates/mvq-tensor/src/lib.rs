//! Minimal n-dimensional `f32` tensor library backing the MVQ reproduction.
//!
//! The paper's algorithm (masked vector quantization) and its substrates
//! (a CNN training stack, an accelerator simulator) only need dense
//! row-major `f32` tensors with a handful of kernels: elementwise ops,
//! blocked GEMM, im2col-based convolution, pooling, and symmetric integer
//! quantization. This crate provides exactly that surface, nothing more.
//!
//! # Example
//!
//! ```
//! use mvq_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok::<(), mvq_tensor::TensorError>(())
//! ```

// Indexed loops are the clearer idiom for the numeric kernels here.
#![allow(clippy::needless_range_loop)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod conv;
mod error;
mod init;
mod matmul;
mod quant;
mod shape;
mod tensor;

pub use conv::{col2im, im2col, Conv2dGeometry, Pool2dGeometry};
pub use error::TensorError;
pub use init::{kaiming_normal, uniform, xavier_uniform};
pub use matmul::{gemm, matmul_transpose_a, matmul_transpose_b};
pub use quant::{dequantize_symmetric, quantize_symmetric, QuantizedTensor};
pub use shape::{broadcast_dims, numel, strides_of};
pub use tensor::Tensor;
