//! Shape arithmetic helpers shared by the tensor kernels.

/// Number of elements implied by a dims slice.
///
/// An empty dims slice denotes a scalar and has one element.
///
/// ```
/// assert_eq!(mvq_tensor::numel(&[2, 3, 4]), 24);
/// assert_eq!(mvq_tensor::numel(&[]), 1);
/// ```
pub fn numel(dims: &[usize]) -> usize {
    dims.iter().product()
}

/// Row-major strides for a dims slice.
///
/// ```
/// assert_eq!(mvq_tensor::strides_of(&[2, 3, 4]), vec![12, 4, 1]);
/// ```
pub fn strides_of(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

/// Computes the broadcast result dims of two shapes following NumPy rules,
/// or `None` if they are incompatible.
///
/// ```
/// assert_eq!(mvq_tensor::broadcast_dims(&[4, 1], &[3]), Some(vec![4, 3]));
/// assert_eq!(mvq_tensor::broadcast_dims(&[2], &[3]), None);
/// ```
pub fn broadcast_dims(lhs: &[usize], rhs: &[usize]) -> Option<Vec<usize>> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let l = if i < rank - lhs.len() { 1 } else { lhs[i - (rank - lhs.len())] };
        let r = if i < rank - rhs.len() { 1 } else { rhs[i - (rank - rhs.len())] };
        if l == r || l == 1 || r == 1 {
            out[i] = l.max(r);
        } else {
            return None;
        }
    }
    Some(out)
}

/// Converts a multi-dimensional index to a flat row-major offset.
pub(crate) fn flat_index(index: &[usize], strides: &[usize]) -> usize {
    index.iter().zip(strides).map(|(i, s)| i * s).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_handles_scalars_and_zeros() {
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[0, 5]), 0);
        assert_eq!(numel(&[7]), 7);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(strides_of(&[5]), vec![1]);
        assert_eq!(strides_of(&[2, 3]), vec![3, 1]);
        assert_eq!(strides_of(&[4, 1, 6]), vec![6, 6, 1]);
        assert!(strides_of(&[]).is_empty());
    }

    #[test]
    fn flat_index_round_trip() {
        let dims = [2usize, 3, 4];
        let strides = strides_of(&dims);
        let mut seen = vec![false; numel(&dims)];
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let f = flat_index(&[i, j, k], &strides);
                    assert!(!seen[f]);
                    seen[f] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn broadcast_rules() {
        assert_eq!(broadcast_dims(&[2, 3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_dims(&[1], &[5, 4]), Some(vec![5, 4]));
        assert_eq!(broadcast_dims(&[5, 1, 3], &[4, 1]), Some(vec![5, 4, 3]));
        assert_eq!(broadcast_dims(&[2, 2], &[3, 2]), None);
    }
}
