//! Symmetric uniform integer quantization (the paper's Eq. 5).
//!
//! `v̂ = s · clamp(round(v / s), -2^(qb-1), 2^(qb-1) - 1)` — used for the
//! MVQ codebook (8-bit) and for the scalar-quantization baseline PvQ at
//! arbitrary bit widths.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// A tensor stored as signed integers plus a shared scale factor.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    dims: Vec<usize>,
    values: Vec<i32>,
    scale: f32,
    bits: u32,
}

impl QuantizedTensor {
    /// The quantization scale `s`.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Bit width `qb`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The integer codes.
    pub fn values(&self) -> &[i32] {
        &self.values
    }

    /// Original dims.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Reconstructs the floating-point tensor `s * q`.
    pub fn dequantize(&self) -> Tensor {
        let data = self.values.iter().map(|&q| q as f32 * self.scale).collect();
        Tensor::from_vec(self.dims.clone(), data).expect("dims preserved")
    }
}

/// Quantizes `t` symmetrically to `bits` bits with scale `scale`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] when `bits` is not in `2..=16`
/// or `scale` is not a positive finite number.
pub fn quantize_symmetric(
    t: &Tensor,
    scale: f32,
    bits: u32,
) -> Result<QuantizedTensor, TensorError> {
    if !(2..=16).contains(&bits) {
        return Err(TensorError::InvalidArgument(format!("bits must be in 2..=16, got {bits}")));
    }
    if !(scale.is_finite() && scale > 0.0) {
        return Err(TensorError::InvalidArgument(format!("scale must be positive, got {scale}")));
    }
    let qmax = (1i32 << (bits - 1)) - 1;
    let qmin = -(1i32 << (bits - 1));
    let values = t.data().iter().map(|&v| ((v / scale).round() as i32).clamp(qmin, qmax)).collect();
    Ok(QuantizedTensor { dims: t.dims().to_vec(), values, scale, bits })
}

/// Quantize-then-dequantize in one call ("fake quantization"), returning the
/// representable tensor closest to `t` under the given scale.
///
/// # Errors
///
/// Propagates the validation errors of [`quantize_symmetric`].
pub fn dequantize_symmetric(t: &Tensor, scale: f32, bits: u32) -> Result<Tensor, TensorError> {
    Ok(quantize_symmetric(t, scale, bits)?.dequantize())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_grid() {
        // Values already on the quantization grid survive unchanged.
        let t = Tensor::from_vec(vec![4], vec![-0.5, 0.0, 0.25, 0.5]).unwrap();
        let q = quantize_symmetric(&t, 0.25, 8).unwrap();
        assert_eq!(q.dequantize().data(), t.data());
    }

    #[test]
    fn clamps_to_range() {
        let t = Tensor::from_vec(vec![2], vec![1000.0, -1000.0]).unwrap();
        let q = quantize_symmetric(&t, 1.0, 8).unwrap();
        assert_eq!(q.values(), &[127, -128]);
    }

    #[test]
    fn two_bit_has_four_levels() {
        let t = Tensor::from_vec(vec![5], vec![-2.0, -1.0, 0.0, 1.0, 2.0]).unwrap();
        let q = quantize_symmetric(&t, 1.0, 2).unwrap();
        assert_eq!(q.values(), &[-2, -1, 0, 1, 1]);
    }

    #[test]
    fn error_bounded_by_half_scale() {
        let scale = 0.1;
        let t = Tensor::from_vec(vec![3], vec![0.234, -0.561, 1.049]).unwrap();
        let d = dequantize_symmetric(&t, scale, 8).unwrap();
        for (orig, deq) in t.data().iter().zip(d.data()) {
            assert!((orig - deq).abs() <= scale / 2.0 + 1e-6);
        }
    }

    #[test]
    fn validates_arguments() {
        let t = Tensor::ones(vec![1]);
        assert!(quantize_symmetric(&t, 1.0, 1).is_err());
        assert!(quantize_symmetric(&t, 1.0, 17).is_err());
        assert!(quantize_symmetric(&t, 0.0, 8).is_err());
        assert!(quantize_symmetric(&t, -1.0, 8).is_err());
        assert!(quantize_symmetric(&t, f32::NAN, 8).is_err());
    }

    #[test]
    fn accessors() {
        let t = Tensor::ones(vec![2, 2]);
        let q = quantize_symmetric(&t, 0.5, 8).unwrap();
        assert_eq!(q.scale(), 0.5);
        assert_eq!(q.bits(), 8);
        assert_eq!(q.dims(), &[2, 2]);
        assert_eq!(q.values(), &[2, 2, 2, 2]);
    }
}
