//! Property-based tests over the tensor kernels: algebraic identities the
//! GEMM variants and the im2col/col2im pair must satisfy for arbitrary
//! shapes and data.

use mvq_tensor::{
    col2im, gemm, im2col, matmul_transpose_a, matmul_transpose_b, Conv2dGeometry, Tensor,
};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |d| Tensor::from_vec(vec![rows, cols], d).expect("sized"))
}

fn assert_close(a: &Tensor, b: &Tensor, tol: f32) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.dims(), b.dims());
    for (x, y) in a.data().iter().zip(b.data()) {
        prop_assert!((x - y).abs() <= tol, "{} vs {}", x, y);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A·I = A and I·A = A.
    #[test]
    fn gemm_identity_laws(a in matrix(5, 7)) {
        let right = gemm(&a, &Tensor::eye(7)).expect("conformable");
        assert_close(&right, &a, 1e-5)?;
        let left = gemm(&Tensor::eye(5), &a).expect("conformable");
        assert_close(&left, &a, 1e-5)?;
    }

    /// (A·B)ᵀ = Bᵀ·Aᵀ, exercised through the transpose-variant kernels.
    #[test]
    fn gemm_transpose_consistency(a in matrix(4, 6), b in matrix(6, 5)) {
        let ab = gemm(&a, &b).expect("conformable");
        // matmul_transpose_a(Aᵀ materialized) path
        let via_ta = matmul_transpose_a(&a.transpose().expect("matrix"), &b)
            .expect("conformable");
        assert_close(&ab, &via_ta, 1e-4)?;
        // matmul_transpose_b(B materialized transposed) path
        let via_tb = matmul_transpose_b(&a, &b.transpose().expect("matrix"))
            .expect("conformable");
        assert_close(&ab, &via_tb, 1e-4)?;
    }

    /// Distributivity: A·(B + C) = A·B + A·C.
    #[test]
    fn gemm_distributes_over_addition(
        a in matrix(3, 4),
        b in matrix(4, 3),
        c in matrix(4, 3),
    ) {
        let lhs = gemm(&a, &b.add(&c).expect("same dims")).expect("conformable");
        let rhs = gemm(&a, &b)
            .expect("conformable")
            .add(&gemm(&a, &c).expect("conformable"))
            .expect("same dims");
        assert_close(&lhs, &rhs, 1e-4)?;
    }

    /// <im2col(x), y> = <x, col2im(y)> — the adjoint identity conv
    /// backward depends on — over random geometries.
    #[test]
    fn im2col_col2im_adjoint(
        seed in 0u64..10_000,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let (c, h, w) = (2usize, 6usize, 5usize);
        prop_assume!(h + 2 * pad >= kernel && w + 2 * pad >= kernel);
        let geom = Conv2dGeometry::new(h, w, kernel, kernel, stride, pad);
        let x = Tensor::from_vec(
            vec![c, h, w],
            (0..c * h * w).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
        .expect("sized");
        let rows = c * kernel * kernel;
        let cols = geom.out_h() * geom.out_w();
        prop_assume!(cols > 0);
        let y = Tensor::from_vec(
            vec![rows, cols],
            (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
        .expect("sized");
        let ax = im2col(&x, &geom).expect("validated");
        let aty = col2im(&y, &geom, c).expect("validated");
        let lhs: f32 = ax.data().iter().zip(y.data()).map(|(p, q)| p * q).sum();
        let rhs: f32 = x.data().iter().zip(aty.data()).map(|(p, q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3, "{} vs {}", lhs, rhs);
    }

    /// Transpose is an involution and preserves the Frobenius norm.
    #[test]
    fn transpose_involution(a in matrix(6, 4)) {
        let tt = a
            .transpose()
            .expect("matrix")
            .transpose()
            .expect("matrix");
        assert_close(&tt, &a, 0.0)?;
        let na = a.sq_norm();
        let nt = a.transpose().expect("matrix").sq_norm();
        prop_assert!((na - nt).abs() < 1e-4);
    }

    /// SSE is symmetric, non-negative, and zero iff equal.
    #[test]
    fn sse_metric_properties(a in matrix(4, 4), b in matrix(4, 4)) {
        let ab = a.sse(&b).expect("same dims");
        let ba = b.sse(&a).expect("same dims");
        prop_assert!((ab - ba).abs() < 1e-4);
        prop_assert!(ab >= 0.0);
        prop_assert!(a.sse(&a).expect("same dims") == 0.0);
    }
}
