//! Training and evaluation loops.

use mvq_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::data::{batch_of, seg_batch_of, SyntheticClassification, SyntheticSegmentation};
use crate::error::NnError;
use crate::layers::Sequential;
use crate::loss::{cross_entropy, pixel_cross_entropy};
use crate::optim::Optimizer;

/// Hyperparameters for a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Multiply the learning rate by this factor after each epoch.
    pub lr_decay: f32,
    /// Print a progress line per epoch when true.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 5, batch_size: 32, lr_decay: 1.0, verbose: false }
    }
}

/// Summary statistics of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainStats {
    /// Mean loss of the final epoch.
    pub final_train_loss: f32,
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
}

/// Trains a classifier on a [`SyntheticClassification`] dataset.
///
/// # Errors
///
/// Propagates forward/backward shape errors.
pub fn train_classifier<R: Rng>(
    model: &mut Sequential,
    data: &SyntheticClassification,
    cfg: &TrainConfig,
    opt: &mut Optimizer,
    rng: &mut R,
) -> Result<TrainStats, NnError> {
    if cfg.batch_size == 0 || cfg.epochs == 0 {
        return Err(NnError::InvalidConfig("epochs and batch_size must be positive".into()));
    }
    let n = data.n_train();
    let mut order: Vec<usize> = (0..n).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        order.shuffle(rng);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        let mut start = 0;
        while start < n {
            let end = (start + cfg.batch_size).min(n);
            let (xb, yb) = gather_batch(&data.train_images, &data.train_labels, &order[start..end]);
            model.zero_grad();
            let logits = model.forward(&xb, true)?;
            let (loss, grad) = cross_entropy(&logits, &yb)?;
            model.backward(&grad)?;
            opt.step(model);
            total += loss as f64;
            batches += 1;
            start = end;
        }
        let mean = (total / batches.max(1) as f64) as f32;
        epoch_losses.push(mean);
        if cfg.verbose {
            eprintln!("epoch {epoch}: loss {mean:.4}");
        }
        let lr = opt.kind().lr() * cfg.lr_decay;
        opt.kind_mut().set_lr(lr);
    }
    Ok(TrainStats { final_train_loss: *epoch_losses.last().expect("epochs > 0"), epoch_losses })
}

/// Trains a segmentation model on a [`SyntheticSegmentation`] dataset.
///
/// # Errors
///
/// Propagates forward/backward shape errors.
pub fn train_segmenter<R: Rng>(
    model: &mut Sequential,
    data: &SyntheticSegmentation,
    cfg: &TrainConfig,
    opt: &mut Optimizer,
    rng: &mut R,
) -> Result<TrainStats, NnError> {
    if cfg.batch_size == 0 || cfg.epochs == 0 {
        return Err(NnError::InvalidConfig("epochs and batch_size must be positive".into()));
    }
    let n = data.train_images.dims()[0];
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut order: Vec<usize> = (0..n).collect();
    for epoch in 0..cfg.epochs {
        order.shuffle(rng);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        let mut start = 0;
        while start < n {
            let end = (start + cfg.batch_size).min(n);
            // gather a shuffled segmentation batch index-by-index
            let plane = data.image_size * data.image_size;
            let mut xb_parts = Vec::with_capacity(end - start);
            let mut yb = Vec::with_capacity((end - start) * plane);
            for &i in &order[start..end] {
                let (x1, y1) = seg_batch_of(&data.train_images, &data.train_labels, i, i + 1);
                xb_parts.push(x1);
                yb.extend(y1);
            }
            let xb = concat_batch(&xb_parts);
            model.zero_grad();
            let logits = model.forward(&xb, true)?;
            let (loss, grad) = pixel_cross_entropy(&logits, &yb)?;
            model.backward(&grad)?;
            opt.step(model);
            total += loss as f64;
            batches += 1;
            start = end;
        }
        let mean = (total / batches.max(1) as f64) as f32;
        epoch_losses.push(mean);
        if cfg.verbose {
            eprintln!("epoch {epoch}: seg loss {mean:.4}");
        }
        let lr = opt.kind().lr() * cfg.lr_decay;
        opt.kind_mut().set_lr(lr);
    }
    Ok(TrainStats { final_train_loss: *epoch_losses.last().expect("epochs > 0"), epoch_losses })
}

/// Top-1 accuracy on the test split of a classification dataset.
///
/// # Errors
///
/// Propagates forward shape errors.
pub fn evaluate_classifier(
    model: &mut Sequential,
    data: &SyntheticClassification,
) -> Result<f32, NnError> {
    let n = data.n_test();
    let mut correct = 0usize;
    let step = 32usize;
    let mut start = 0;
    while start < n {
        let end = (start + step).min(n);
        let (xb, yb) = batch_of(&data.test_images, &data.test_labels, start, end);
        let logits = model.forward(&xb, false)?;
        let c = logits.dims()[1];
        for (s, &label) in yb.iter().enumerate() {
            let row = &logits.data()[s * c..(s + 1) * c];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .expect("non-empty row");
            if pred == label {
                correct += 1;
            }
        }
        start = end;
    }
    Ok(correct as f32 / n as f32)
}

/// Mean intersection-over-union on the test split of a segmentation
/// dataset.
///
/// # Errors
///
/// Propagates forward shape errors.
pub fn evaluate_miou(model: &mut Sequential, data: &SyntheticSegmentation) -> Result<f32, NnError> {
    let n = data.test_images.dims()[0];
    let c = data.num_classes;
    let plane = data.image_size * data.image_size;
    let mut inter = vec![0u64; c];
    let mut uni = vec![0u64; c];
    let step = 8usize;
    let mut start = 0;
    while start < n {
        let end = (start + step).min(n);
        let (xb, yb) = seg_batch_of(&data.test_images, &data.test_labels, start, end);
        let logits = model.forward(&xb, false)?;
        let d = logits.dims();
        let (classes, oh, ow) = (d[1], d[2], d[3]);
        debug_assert_eq!(classes, c);
        debug_assert_eq!(oh * ow, plane);
        for s in 0..end - start {
            for p in 0..plane {
                let base = s * c * plane + p;
                let mut best = 0usize;
                let mut best_v = f32::NEG_INFINITY;
                for ch in 0..c {
                    let v = logits.data()[base + ch * plane];
                    if v > best_v {
                        best_v = v;
                        best = ch;
                    }
                }
                let truth = yb[s * plane + p];
                if best == truth {
                    inter[truth] += 1;
                    uni[truth] += 1;
                } else {
                    uni[truth] += 1;
                    uni[best] += 1;
                }
            }
        }
        start = end;
    }
    let mut sum = 0.0f64;
    let mut present = 0usize;
    for ch in 0..c {
        if uni[ch] > 0 {
            sum += inter[ch] as f64 / uni[ch] as f64;
            present += 1;
        }
    }
    Ok(if present == 0 { 0.0 } else { (sum / present as f64) as f32 })
}

/// Measures the fraction of zero activations flowing through the model on
/// `max_batches` training batches — the statistic the accelerator's
/// zero-value-gated PEs exploit (paper Fig. 9). Zeros are counted in the
/// output of every top-level layer (post-ReLU maps dominate), an
/// approximation that ignores activations internal to residual blocks.
///
/// # Errors
///
/// Propagates forward-pass errors.
pub fn measure_activation_sparsity(
    model: &mut Sequential,
    data: &SyntheticClassification,
    max_batches: usize,
) -> Result<f32, NnError> {
    let bs = 32usize.min(data.n_train());
    let mut zeros = 0u64;
    let mut total = 0u64;
    for b in 0..max_batches {
        let from = (b * bs) % (data.n_train().saturating_sub(bs) + 1);
        let (xb, _) = batch_of(&data.train_images, &data.train_labels, from, from + bs);
        let mut x = xb;
        for layer in model.layers_mut() {
            x = layer.forward(&x, false)?;
            if matches!(layer, crate::layers::Module::Relu(_))
                || matches!(layer, crate::layers::Module::Residual(_))
            {
                zeros += x.data().iter().filter(|&&v| v == 0.0).count() as u64;
                total += x.numel() as u64;
            }
        }
    }
    Ok(if total == 0 { 0.0 } else { zeros as f32 / total as f32 })
}

fn gather_batch(images: &Tensor, labels: &[usize], indices: &[usize]) -> (Tensor, Vec<usize>) {
    let d = images.dims();
    let per = d[1] * d[2] * d[3];
    let mut data = Vec::with_capacity(indices.len() * per);
    let mut lab = Vec::with_capacity(indices.len());
    for &i in indices {
        data.extend_from_slice(&images.data()[i * per..(i + 1) * per]);
        lab.push(labels[i]);
    }
    (
        Tensor::from_vec(vec![indices.len(), d[1], d[2], d[3]], data).expect("slice sized to dims"),
        lab,
    )
}

fn concat_batch(parts: &[Tensor]) -> Tensor {
    let d = parts[0].dims();
    let mut data = Vec::with_capacity(parts.len() * parts[0].numel());
    for p in parts {
        data.extend_from_slice(p.data());
    }
    Tensor::from_vec(vec![parts.len(), d[1], d[2], d[3]], data).expect("uniform parts")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::tiny_cnn;
    use crate::optim::OptimizerKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let mut rng = StdRng::seed_from_u64(0);
        let data = SyntheticClassification::generate(4, 160, 64, 8, &mut rng);
        let mut model = tiny_cnn(4, 8, &mut rng);
        let cfg = TrainConfig { epochs: 6, batch_size: 32, ..TrainConfig::default() };
        let mut opt = Optimizer::new(OptimizerKind::sgd(0.05, 0.9, 1e-4));
        let stats = train_classifier(&mut model, &data, &cfg, &mut opt, &mut rng).unwrap();
        assert!(
            stats.epoch_losses.first().unwrap() > stats.epoch_losses.last().unwrap(),
            "loss should fall: {:?}",
            stats.epoch_losses
        );
        let acc = evaluate_classifier(&mut model, &data).unwrap();
        assert!(acc > 0.4, "accuracy {acc} should beat chance 0.25");
    }

    #[test]
    fn invalid_config_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let data = SyntheticClassification::generate(2, 8, 4, 8, &mut rng);
        let mut model = tiny_cnn(2, 8, &mut rng);
        let cfg = TrainConfig { epochs: 0, ..TrainConfig::default() };
        let mut opt = Optimizer::new(OptimizerKind::adam(0.01));
        assert!(train_classifier(&mut model, &data, &cfg, &mut opt, &mut rng).is_err());
    }

    #[test]
    fn activation_sparsity_is_meaningful() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = SyntheticClassification::generate(3, 48, 16, 8, &mut rng);
        let mut model = tiny_cnn(3, 8, &mut rng);
        let frac = measure_activation_sparsity(&mut model, &data, 2).unwrap();
        // ReLU on roughly centered pre-activations zeroes a substantial
        // fraction, never everything
        assert!(frac > 0.1 && frac < 0.95, "activation zero fraction {frac}");
    }

    #[test]
    fn miou_of_perfect_and_constant_predictors() {
        // Hand-build logits via a model that ignores input is hard; instead
        // check the metric arithmetic through a 2-class dataset and the
        // trivially wrong constant predictor bound: mIoU in [0, 1].
        let mut rng = StdRng::seed_from_u64(5);
        let data = SyntheticSegmentation::generate(3, 4, 2, 8, &mut rng);
        let mut model = crate::models::tiny_segmenter(3, &mut rng);
        let miou = evaluate_miou(&mut model, &data).unwrap();
        assert!((0.0..=1.0).contains(&miou));
    }
}
