use mvq_tensor::Tensor;

/// A trainable parameter: a value tensor plus its accumulated gradient.
///
/// Layers own their `Param`s; optimizers visit them through
/// [`crate::Module::visit_params_mut`]. The gradient always has the same
/// dims as the value and is zeroed by [`Param::zero_grad`].
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (same dims as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient of the same dims.
    pub fn new(value: Tensor) -> Param {
        let grad = Tensor::zeros(value.dims().to_vec());
        Param { value, grad }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(vec![2, 3]));
        assert_eq!(p.grad.dims(), &[2, 3]);
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
        assert_eq!(p.numel(), 6);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(vec![4]));
        p.grad.data_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }
}
