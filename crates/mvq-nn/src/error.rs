use std::error::Error;
use std::fmt;

use mvq_tensor::TensorError;

/// Error type for the CNN substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The input to a layer had the wrong shape.
    BadInput {
        /// Which layer rejected the input.
        layer: String,
        /// Explanation of the mismatch.
        detail: String,
    },
    /// `backward` was called without a preceding `forward`.
    NoForwardCache(&'static str),
    /// A model or training configuration was invalid.
    InvalidConfig(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadInput { layer, detail } => {
                write!(f, "bad input to layer `{layer}`: {detail}")
            }
            NnError::NoForwardCache(layer) => {
                write!(f, "backward called on `{layer}` before forward")
            }
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_tensor_error_preserves_source() {
        let te = TensorError::InvalidArgument("x".into());
        let ne: NnError = te.clone().into();
        assert_eq!(ne, NnError::Tensor(te));
        assert!(Error::source(&ne).is_some());
    }

    #[test]
    fn display_mentions_layer() {
        let e = NnError::BadInput { layer: "conv1".into(), detail: "rank".into() };
        assert!(e.to_string().contains("conv1"));
        assert!(NnError::NoForwardCache("relu").to_string().contains("relu"));
    }
}
