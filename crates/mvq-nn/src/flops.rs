//! FLOPs accounting for models, dense and sparsity-aware.
//!
//! The paper reports FLOPs reduction from N:M sparsity (e.g. "0.54G (-70%)"
//! in Table 3): a weight-sparse conv layer skips the multiply-accumulates
//! of pruned weights, so effective FLOPs scale by the kept fraction `N/M`.

use mvq_tensor::{Conv2dGeometry, Tensor};

use crate::error::NnError;
use crate::layers::{Module, Sequential};

/// FLOPs of one layer, with the metadata needed for sparsity adjustment.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerFlops {
    /// Depth-first conv index (`None` for non-conv layers).
    pub conv_index: Option<usize>,
    /// Human-readable layer description.
    pub description: String,
    /// Dense multiply-accumulate count × 2 (mul + add).
    pub dense_flops: u64,
    /// Weight sparsity applied to this layer (0 = dense).
    pub sparsity: f32,
}

impl LayerFlops {
    /// FLOPs after skipping pruned weights.
    pub fn effective_flops(&self) -> u64 {
        (self.dense_flops as f64 * (1.0 - self.sparsity as f64)).round() as u64
    }
}

/// FLOPs report for a whole model at a given input size.
#[derive(Debug, Clone, Default)]
pub struct FlopsReport {
    /// Per-layer entries in execution order.
    pub layers: Vec<LayerFlops>,
}

impl FlopsReport {
    /// Total dense FLOPs.
    pub fn dense_total(&self) -> u64 {
        self.layers.iter().map(|l| l.dense_flops).sum()
    }

    /// Total FLOPs after sparsity.
    pub fn effective_total(&self) -> u64 {
        self.layers.iter().map(|l| l.effective_flops()).sum()
    }

    /// Applies a uniform sparsity to every *compressible* conv layer
    /// (dense 1x1-and-larger convs; depthwise layers are left dense, as the
    /// paper excludes them).
    pub fn with_conv_sparsity(mut self, sparsity: f32) -> FlopsReport {
        for l in &mut self.layers {
            if l.conv_index.is_some() && !l.description.contains("depthwise") {
                l.sparsity = sparsity;
            }
        }
        self
    }
}

/// Walks `model` with a probe input of `[1, in_channels, size, size]` and
/// tallies per-layer FLOPs.
///
/// The probe runs the real forward pass, so shapes are exact for any
/// architecture expressible as [`Module`]s.
///
/// # Errors
///
/// Propagates forward-pass shape errors.
pub fn count_flops(
    model: &mut Sequential,
    in_channels: usize,
    size: usize,
) -> Result<FlopsReport, NnError> {
    let mut report = FlopsReport::default();
    let mut conv_idx = 0usize;
    let x = Tensor::zeros(vec![1, in_channels, size, size]);
    walk(model, &x, &mut report, &mut conv_idx)?;
    Ok(report)
}

fn walk(
    seq: &mut Sequential,
    input: &Tensor,
    report: &mut FlopsReport,
    conv_idx: &mut usize,
) -> Result<Tensor, NnError> {
    let mut x = input.clone();
    for layer in seq.layers_mut() {
        x = walk_module(layer, &x, report, conv_idx)?;
    }
    Ok(x)
}

fn walk_module(
    layer: &mut Module,
    x: &Tensor,
    report: &mut FlopsReport,
    conv_idx: &mut usize,
) -> Result<Tensor, NnError> {
    match layer {
        Module::Conv2d(conv) => {
            let (h, w) = (x.dims()[2], x.dims()[3]);
            let geom =
                Conv2dGeometry::new(h, w, conv.kernel(), conv.kernel(), conv.stride(), conv.pad());
            let (oh, ow) = (geom.out_h(), geom.out_w());
            let cpg = conv.in_channels() / conv.groups();
            let macs = conv.out_channels() as u64
                * cpg as u64
                * (conv.kernel() * conv.kernel()) as u64
                * (oh * ow) as u64;
            let kind = if conv.is_depthwise() { "depthwise conv" } else { "conv" };
            report.layers.push(LayerFlops {
                conv_index: Some(*conv_idx),
                description: format!(
                    "{kind} {}x{}x{}x{} s{}",
                    conv.out_channels(),
                    cpg,
                    conv.kernel(),
                    conv.kernel(),
                    conv.stride()
                ),
                dense_flops: 2 * macs,
                sparsity: 0.0,
            });
            *conv_idx += 1;
            conv.forward(x, false)
        }
        Module::Linear(lin) => {
            let macs = lin.in_features() as u64 * lin.out_features() as u64;
            report.layers.push(LayerFlops {
                conv_index: None,
                description: format!("linear {}x{}", lin.out_features(), lin.in_features()),
                dense_flops: 2 * macs,
                sparsity: 0.0,
            });
            lin.forward(x, false)
        }
        Module::Residual(res) => {
            let main_out = walk(&mut res.main, x, report, conv_idx)?;
            if let Some(short) = &mut res.shortcut {
                let _ = walk(short, x, report, conv_idx)?;
            }
            // elementwise add + relu are negligible; reuse forward shape
            Ok(main_out)
        }
        Module::Sequential(inner) => walk(inner, x, report, conv_idx),
        other => other.forward(x, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm2d, Conv2d, Flatten, Linear, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_flops_formula() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model =
            Sequential::new(vec![Module::Conv2d(Conv2d::new(3, 8, 3, 1, 1, 1, false, &mut rng))]);
        let report = count_flops(&mut model, 3, 8).unwrap();
        // 2 * K*C*R*S*OH*OW = 2 * 8*3*9*64
        assert_eq!(report.dense_total(), 2 * 8 * 3 * 9 * 64);
        assert_eq!(report.layers.len(), 1);
        assert_eq!(report.layers[0].conv_index, Some(0));
    }

    #[test]
    fn linear_flops_formula() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Sequential::new(vec![
            Module::Flatten(Flatten::new()),
            Module::Linear(Linear::new(48, 10, &mut rng)),
        ]);
        let report = count_flops(&mut model, 3, 4).unwrap();
        assert_eq!(report.dense_total(), 2 * 48 * 10);
    }

    #[test]
    fn sparsity_scales_conv_only() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Sequential::new(vec![
            Module::Conv2d(Conv2d::new(3, 8, 3, 1, 1, 1, false, &mut rng)),
            Module::BatchNorm2d(BatchNorm2d::new(8)),
            Module::Relu(Relu::new()),
            Module::Flatten(Flatten::new()),
            Module::Linear(Linear::new(8 * 64, 10, &mut rng)),
        ]);
        let report = count_flops(&mut model, 3, 8).unwrap().with_conv_sparsity(0.75);
        let conv_dense = 2u64 * 8 * 3 * 9 * 64;
        let lin = 2u64 * 8 * 64 * 10;
        assert_eq!(report.dense_total(), conv_dense + lin);
        assert_eq!(report.effective_total(), conv_dense / 4 + lin);
    }

    #[test]
    fn depthwise_convs_stay_dense() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model =
            Sequential::new(vec![Module::Conv2d(Conv2d::new(8, 8, 3, 1, 1, 8, false, &mut rng))]);
        let report = count_flops(&mut model, 8, 4).unwrap().with_conv_sparsity(0.5);
        assert_eq!(report.effective_total(), report.dense_total());
        assert!(report.layers[0].description.contains("depthwise"));
    }

    #[test]
    fn stride_reduces_flops() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s1 =
            Sequential::new(vec![Module::Conv2d(Conv2d::new(3, 8, 3, 1, 1, 1, false, &mut rng))]);
        let mut s2 =
            Sequential::new(vec![Module::Conv2d(Conv2d::new(3, 8, 3, 2, 1, 1, false, &mut rng))]);
        let f1 = count_flops(&mut s1, 3, 8).unwrap().dense_total();
        let f2 = count_flops(&mut s2, 3, 8).unwrap().dense_total();
        assert_eq!(f1, 4 * f2);
    }
}
