//! CNN substrate for the MVQ reproduction.
//!
//! The paper evaluates its compression algorithm on trained convolutional
//! networks (ResNet-18/50, VGG-16, AlexNet, MobileNet-v1/v2, EfficientNet,
//! DeepLab-v3). Since no Rust DNN training ecosystem exists at that scale,
//! this crate provides a from-scratch, CPU-only training stack:
//!
//! * [`layers`] — conv / linear / batch-norm / activation / pooling layers
//!   with exact backward passes, composed via the [`Module`] enum and
//!   [`Sequential`] containers (enum-based so compression code can find and
//!   rewrite convolution weights without downcasting);
//! * [`optim`] — SGD (momentum), Adam and AdamW;
//! * [`loss`] — softmax cross-entropy for classification and per-pixel
//!   cross-entropy for segmentation;
//! * [`models`] — scaled-down ("-lite") versions of every model family in
//!   the paper's evaluation;
//! * [`data`] — procedurally generated classification and segmentation
//!   datasets that stand in for ImageNet / COCO / VOC (see DESIGN.md);
//! * [`train`] — training and evaluation loops (top-1 accuracy, mIoU);
//! * [`flops`] — dense and sparsity-aware FLOPs accounting.
//!
//! # Example: train a tiny CNN on synthetic data
//!
//! ```
//! use mvq_nn::data::SyntheticClassification;
//! use mvq_nn::models::tiny_cnn;
//! use mvq_nn::optim::{Optimizer, OptimizerKind};
//! use mvq_nn::train::{train_classifier, TrainConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let data = SyntheticClassification::generate(4, 64, 32, 8, &mut rng);
//! let mut model = tiny_cnn(4, 8, &mut rng);
//! let cfg = TrainConfig { epochs: 1, batch_size: 16, ..TrainConfig::default() };
//! let stats = train_classifier(
//!     &mut model,
//!     &data,
//!     &cfg,
//!     &mut Optimizer::new(OptimizerKind::sgd(0.05, 0.9, 0.0)),
//!     &mut rng,
//! )?;
//! assert!(stats.final_train_loss.is_finite());
//! # Ok::<(), mvq_nn::NnError>(())
//! ```

// Indexed loops are the clearer idiom for the numeric kernels here.
#![allow(clippy::needless_range_loop)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod data;

mod error;
pub mod flops;
pub mod layers;
pub mod loss;
pub mod models;
pub mod optim;
mod param;
pub mod train;

pub use error::NnError;
pub use layers::{Module, Sequential};
pub use param::Param;
