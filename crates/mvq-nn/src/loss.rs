//! Loss functions: softmax cross-entropy for classification and its
//! per-pixel variant for segmentation.

use mvq_tensor::Tensor;

use crate::error::NnError;

/// Softmax cross-entropy over `[N, num_classes]` logits.
///
/// Returns `(mean_loss, grad_logits)` where the gradient is already divided
/// by the batch size, ready to feed into `Sequential::backward`.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] when `logits` is not rank 2 or the label
/// count does not match the batch size, or a label is out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor), NnError> {
    if logits.rank() != 2 {
        return Err(NnError::BadInput {
            layer: "cross_entropy".into(),
            detail: format!("expected [N, C] logits, got {:?}", logits.dims()),
        });
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != n {
        return Err(NnError::BadInput {
            layer: "cross_entropy".into(),
            detail: format!("{} labels for batch of {n}", labels.len()),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= c) {
        return Err(NnError::BadInput {
            layer: "cross_entropy".into(),
            detail: format!("label {bad} out of range for {c} classes"),
        });
    }
    let mut grad = Tensor::zeros(vec![n, c]);
    let mut loss = 0.0f64;
    for s in 0..n {
        let row = &logits.data()[s * c..(s + 1) * c];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        let label = labels[s];
        loss += -((exps[label] / z).max(1e-12).ln()) as f64;
        let g = grad.row_mut(s);
        for (j, gv) in g.iter_mut().enumerate() {
            let p = exps[j] / z;
            *gv = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    Ok(((loss / n as f64) as f32, grad))
}

/// Per-pixel softmax cross-entropy over `[N, C, H, W]` logits with
/// `[N, H, W]`-shaped labels flattened into `labels` (row-major).
///
/// Returns `(mean_loss, grad_logits)`; the mean is over all pixels.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] on shape/label mismatches.
pub fn pixel_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor), NnError> {
    if logits.rank() != 4 {
        return Err(NnError::BadInput {
            layer: "pixel_cross_entropy".into(),
            detail: format!("expected [N, C, H, W] logits, got {:?}", logits.dims()),
        });
    }
    let d = logits.dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let pixels = n * h * w;
    if labels.len() != pixels {
        return Err(NnError::BadInput {
            layer: "pixel_cross_entropy".into(),
            detail: format!("{} labels for {pixels} pixels", labels.len()),
        });
    }
    let mut grad = Tensor::zeros(d.to_vec());
    let mut loss = 0.0f64;
    let plane = h * w;
    for s in 0..n {
        for p in 0..plane {
            let label = labels[s * plane + p];
            if label >= c {
                return Err(NnError::BadInput {
                    layer: "pixel_cross_entropy".into(),
                    detail: format!("label {label} out of range for {c} classes"),
                });
            }
            // gather the C logits of this pixel (stride `plane` apart)
            let base = s * c * plane + p;
            let mut max = f32::NEG_INFINITY;
            for ch in 0..c {
                max = max.max(logits.data()[base + ch * plane]);
            }
            let mut z = 0.0f32;
            let mut exps = vec![0.0f32; c];
            for ch in 0..c {
                let e = (logits.data()[base + ch * plane] - max).exp();
                exps[ch] = e;
                z += e;
            }
            loss += -((exps[label] / z).max(1e-12).ln()) as f64;
            for ch in 0..c {
                let prob = exps[ch] / z;
                grad.data_mut()[base + ch * plane] =
                    (prob - if ch == label { 1.0 } else { 0.0 }) / pixels as f32;
            }
        }
    }
    Ok(((loss / pixels as f64) as f32, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(vec![2, 4]);
        let (loss, grad) = cross_entropy(&logits, &[0, 3]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // gradient sums to zero per row
        for s in 0..2 {
            let sum: f32 = grad.row(s).iter().sum();
            assert!(sum.abs() < 1e-6);
        }
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Tensor::zeros(vec![1, 3]);
        logits.data_mut()[1] = 10.0;
        let (loss, _) = cross_entropy(&logits, &[1]).unwrap();
        assert!(loss < 1e-3);
        let (loss_wrong, _) = cross_entropy(&logits, &[0]).unwrap();
        assert!(loss_wrong > 5.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut logits =
            Tensor::from_vec(vec![2, 3], vec![0.3, -0.1, 0.5, 1.0, 0.0, -1.0]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for idx in 0..6 {
            let orig = logits.data()[idx];
            logits.data_mut()[idx] = orig + eps;
            let (lp, _) = cross_entropy(&logits, &labels).unwrap();
            logits.data_mut()[idx] = orig - eps;
            let (lm, _) = cross_entropy(&logits, &labels).unwrap();
            logits.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - grad.data()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn validates_inputs() {
        let logits = Tensor::zeros(vec![2, 3]);
        assert!(cross_entropy(&logits, &[0]).is_err());
        assert!(cross_entropy(&logits, &[0, 5]).is_err());
        assert!(cross_entropy(&Tensor::zeros(vec![6]), &[0]).is_err());
    }

    #[test]
    fn pixel_ce_matches_flat_ce_for_1x1() {
        // A 1x1 image per sample reduces to ordinary cross-entropy.
        let logits4 =
            Tensor::from_vec(vec![2, 3, 1, 1], vec![0.3, -0.1, 0.5, 1.0, 0.0, -1.0]).unwrap();
        let logits2 = logits4.reshape(vec![2, 3]).unwrap();
        let (l4, g4) = pixel_cross_entropy(&logits4, &[2, 0]).unwrap();
        let (l2, g2) = cross_entropy(&logits2, &[2, 0]).unwrap();
        assert!((l4 - l2).abs() < 1e-6);
        for (a, b) in g4.data().iter().zip(g2.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn pixel_ce_gradient_matches_finite_differences() {
        let mut logits =
            Tensor::from_vec(vec![1, 2, 2, 2], vec![0.5, -0.5, 0.2, 0.8, -0.3, 0.9, 0.0, 0.1])
                .unwrap();
        let labels = [0usize, 1, 1, 0];
        let (_, grad) = pixel_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for idx in 0..8 {
            let orig = logits.data()[idx];
            logits.data_mut()[idx] = orig + eps;
            let (lp, _) = pixel_cross_entropy(&logits, &labels).unwrap();
            logits.data_mut()[idx] = orig - eps;
            let (lm, _) = pixel_cross_entropy(&logits, &labels).unwrap();
            logits.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - grad.data()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn pixel_ce_validates() {
        let logits = Tensor::zeros(vec![1, 2, 2, 2]);
        assert!(pixel_cross_entropy(&logits, &[0; 3]).is_err());
        assert!(pixel_cross_entropy(&logits, &[9; 4]).is_err());
        assert!(pixel_cross_entropy(&Tensor::zeros(vec![2, 2]), &[0; 4]).is_err());
    }
}
