//! Pooling layers: max pooling and global average pooling.

use mvq_tensor::{Pool2dGeometry, Tensor};

use crate::error::NnError;
use crate::layers::conv::dims4;

/// 2-D max pooling with square window and stride.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    stride: usize,
    // for each output element, flat index of the winning input element
    argmax: Option<(Vec<usize>, Vec<usize>)>, // (indices, input dims as flat)
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `stride == 0`.
    pub fn new(window: usize, stride: usize) -> MaxPool2d {
        assert!(window > 0 && stride > 0);
        MaxPool2d { window, stride, argmax: None }
    }

    /// Pooling window side.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Forward pass over `[N, C, H, W]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when the input is not rank 4 or is
    /// smaller than the pooling window.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if input.rank() != 4 {
            return Err(NnError::BadInput {
                layer: "MaxPool2d".into(),
                detail: format!("expected rank 4, got {:?}", input.dims()),
            });
        }
        let (n, c, h, w) = dims4(input);
        if h < self.window || w < self.window {
            return Err(NnError::BadInput {
                layer: "MaxPool2d".into(),
                detail: format!("input {h}x{w} smaller than window {}", self.window),
            });
        }
        let geom = Pool2dGeometry::new(h, w, self.window, self.window, self.stride, 0);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let mut out = Tensor::zeros(vec![n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];
        let src = input.data();
        for s in 0..n {
            for ch in 0..c {
                let in_base = (s * c + ch) * h * w;
                let out_base = (s * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..self.window {
                            for kx in 0..self.window {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                let idx = in_base + iy * w + ix;
                                if src[idx] > best {
                                    best = src[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out.data_mut()[out_base + oy * ow + ox] = best;
                        argmax[out_base + oy * ow + ox] = best_idx;
                    }
                }
            }
        }
        if train {
            self.argmax = Some((argmax, input.dims().to_vec()));
        }
        Ok(out)
    }

    /// Backward pass scattering gradients to the argmax positions.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] if no training forward preceded.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let (argmax, in_dims) = self.argmax.take().ok_or(NnError::NoForwardCache("MaxPool2d"))?;
        let mut grad_in = Tensor::zeros(in_dims);
        let gi = grad_in.data_mut();
        for (g, &idx) in grad_out.data().iter().zip(&argmax) {
            gi[idx] += g;
        }
        Ok(grad_in)
    }
}

/// Global average pooling: `[N, C, H, W] -> [N, C, 1, 1]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    cached_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> GlobalAvgPool {
        GlobalAvgPool { cached_dims: None }
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] for non-rank-4 inputs.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if input.rank() != 4 {
            return Err(NnError::BadInput {
                layer: "GlobalAvgPool".into(),
                detail: format!("expected rank 4, got {:?}", input.dims()),
            });
        }
        let (n, c, h, w) = dims4(input);
        let plane = h * w;
        let mut out = Tensor::zeros(vec![n, c, 1, 1]);
        for i in 0..n * c {
            let s: f32 = input.data()[i * plane..(i + 1) * plane].iter().sum();
            out.data_mut()[i] = s / plane as f32;
        }
        if train {
            self.cached_dims = Some(input.dims().to_vec());
        }
        Ok(out)
    }

    /// Backward pass distributing gradient evenly over the pooled region.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] if no training forward preceded.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let dims = self.cached_dims.take().ok_or(NnError::NoForwardCache("GlobalAvgPool"))?;
        let (h, w) = (dims[2], dims[3]);
        let plane = (h * w) as f32;
        let mut grad_in = Tensor::zeros(dims);
        let gi = grad_in.data_mut();
        for (i, &g) in grad_out.data().iter().enumerate() {
            let v = g / plane;
            for x in &mut gi[i * (h * w)..(i + 1) * (h * w)] {
                *x = v;
            }
        }
        Ok(grad_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maximum() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![1, 1, 4, 4],
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let y = pool.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 5.0, 2.0, 3.0]).unwrap();
        pool.forward(&x, true).unwrap();
        let g = pool.backward(&Tensor::full(vec![1, 1, 1, 1], 2.5)).unwrap();
        assert_eq!(g.data(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_validates() {
        let mut pool = MaxPool2d::new(3, 1);
        assert!(pool.forward(&Tensor::ones(vec![1, 1, 2, 2]), false).is_err());
        assert!(pool.forward(&Tensor::ones(vec![2, 2]), false).is_err());
        assert!(matches!(
            pool.backward(&Tensor::ones(vec![1, 1, 1, 1])),
            Err(NnError::NoForwardCache(_))
        ));
    }

    #[test]
    fn gap_averages() {
        let mut gap = GlobalAvgPool::new();
        let x =
            Tensor::from_vec(vec![1, 2, 2, 2], vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0])
                .unwrap();
        let y = gap.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[1, 2, 1, 1]);
        assert_eq!(y.data(), &[2.5, 10.0]);
    }

    #[test]
    fn gap_backward_distributes() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::ones(vec![1, 1, 2, 2]);
        gap.forward(&x, true).unwrap();
        let g = gap.backward(&Tensor::full(vec![1, 1, 1, 1], 4.0)).unwrap();
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }
}
