//! Neural network layers composed through the [`Module`] enum.
//!
//! Layers are an *enum*, not trait objects, so that the compression pipeline
//! in `mvq-core` can pattern-match on convolution layers (to extract, prune
//! and rewrite their weights) without `Any`-downcasting. All layers follow
//! the same protocol: `forward(x, train)` caches what backward needs when
//! `train` is true, and `backward(grad_out)` consumes that cache,
//! accumulates parameter gradients, and returns the input gradient.

mod act;
mod block;
pub(crate) mod conv;
mod linear;
mod norm;
mod pool;
mod shape_ops;

pub use act::Relu;
pub use block::Residual;
pub use conv::Conv2d;
pub use linear::Linear;
pub use norm::BatchNorm2d;
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use shape_ops::{Flatten, UpsampleNearest};

use mvq_tensor::Tensor;

use crate::error::NnError;
use crate::param::Param;

/// A single network layer. See the module docs for why this is an enum.
#[derive(Debug, Clone)]
pub enum Module {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Fully connected layer.
    Linear(Linear),
    /// Batch normalization.
    BatchNorm2d(BatchNorm2d),
    /// ReLU / ReLU6.
    Relu(Relu),
    /// Max pooling.
    MaxPool2d(MaxPool2d),
    /// Global average pooling.
    GlobalAvgPool(GlobalAvgPool),
    /// Flatten to `[N, F]`.
    Flatten(Flatten),
    /// Nearest-neighbour upsampling.
    UpsampleNearest(UpsampleNearest),
    /// Residual block.
    Residual(Residual),
    /// Nested sequential container.
    Sequential(Sequential),
}

impl Module {
    /// Forward pass; caches intermediates for backward when `train`.
    ///
    /// # Errors
    ///
    /// Propagates layer-specific shape errors.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        match self {
            Module::Conv2d(l) => l.forward(input, train),
            Module::Linear(l) => l.forward(input, train),
            Module::BatchNorm2d(l) => l.forward(input, train),
            Module::Relu(l) => Ok(l.forward(input, train)),
            Module::MaxPool2d(l) => l.forward(input, train),
            Module::GlobalAvgPool(l) => l.forward(input, train),
            Module::Flatten(l) => l.forward(input, train),
            Module::UpsampleNearest(l) => l.forward(input, train),
            Module::Residual(l) => l.forward(input, train),
            Module::Sequential(l) => l.forward(input, train),
        }
    }

    /// Backward pass; returns the gradient w.r.t. this layer's input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] when no training-mode forward
    /// preceded this call.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        match self {
            Module::Conv2d(l) => l.backward(grad_out),
            Module::Linear(l) => l.backward(grad_out),
            Module::BatchNorm2d(l) => l.backward(grad_out),
            Module::Relu(l) => l.backward(grad_out),
            Module::MaxPool2d(l) => l.backward(grad_out),
            Module::GlobalAvgPool(l) => l.backward(grad_out),
            Module::Flatten(l) => l.backward(grad_out),
            Module::UpsampleNearest(l) => l.backward(grad_out),
            Module::Residual(l) => l.backward(grad_out),
            Module::Sequential(l) => l.backward(grad_out),
        }
    }

    /// Applies `f` to every trainable parameter, depth-first.
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            Module::Conv2d(l) => {
                f(&mut l.weight);
                if let Some(b) = &mut l.bias {
                    f(b);
                }
            }
            Module::Linear(l) => {
                f(&mut l.weight);
                f(&mut l.bias);
            }
            Module::BatchNorm2d(l) => {
                f(&mut l.gamma);
                f(&mut l.beta);
            }
            Module::Residual(l) => l.visit_params_mut(f),
            Module::Sequential(l) => l.visit_params_mut(f),
            _ => {}
        }
    }

    /// Applies `f` to every convolution layer, depth-first. The visit order
    /// is deterministic, giving each conv a stable index used by the
    /// compression pipeline.
    pub fn visit_convs_mut(&mut self, f: &mut dyn FnMut(&mut Conv2d)) {
        match self {
            Module::Conv2d(l) => f(l),
            Module::Residual(l) => l.visit_convs_mut(f),
            Module::Sequential(l) => l.visit_convs_mut(f),
            _ => {}
        }
    }

    /// Immutable variant of [`Module::visit_convs_mut`].
    pub fn visit_convs(&self, f: &mut dyn FnMut(&Conv2d)) {
        match self {
            Module::Conv2d(l) => f(l),
            Module::Residual(l) => l.visit_convs(f),
            Module::Sequential(l) => l.visit_convs(f),
            _ => {}
        }
    }
}

/// An ordered container of [`Module`]s executed front to back; the root
/// type of every model in [`crate::models`].
#[derive(Debug, Clone, Default)]
pub struct Sequential {
    layers: Vec<Module>,
}

impl Sequential {
    /// Creates a sequential model from layers.
    pub fn new(layers: Vec<Module>) -> Sequential {
        Sequential { layers }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Module) {
        self.layers.push(layer);
    }

    /// Number of direct child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the container has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Direct child layers.
    pub fn layers(&self) -> &[Module] {
        &self.layers
    }

    /// Mutable access to direct child layers.
    pub fn layers_mut(&mut self) -> &mut [Module] {
        &mut self.layers
    }

    /// Forward pass through all layers.
    ///
    /// # Errors
    ///
    /// Propagates the first failing layer's error.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train)?;
        }
        Ok(x)
    }

    /// Backward pass through all layers in reverse.
    ///
    /// # Errors
    ///
    /// Propagates the first failing layer's error.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Applies `f` to every trainable parameter, depth-first.
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params_mut(f);
        }
    }

    /// Applies `f` to every convolution, depth-first.
    pub fn visit_convs_mut(&mut self, f: &mut dyn FnMut(&mut Conv2d)) {
        for layer in &mut self.layers {
            layer.visit_convs_mut(f);
        }
    }

    /// Immutable variant of [`Sequential::visit_convs_mut`].
    pub fn visit_convs(&self, f: &mut dyn FnMut(&Conv2d)) {
        for layer in &self.layers {
            layer.visit_convs(f);
        }
    }

    /// Zeroes the gradients of every parameter.
    pub fn zero_grad(&mut self) {
        self.visit_params_mut(&mut |p| p.zero_grad());
    }

    /// Total number of trainable scalars.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params_mut(&mut |p| n += p.numel());
        n
    }

    /// Number of convolution layers (depth-first).
    pub fn num_convs(&self) -> usize {
        let mut n = 0;
        self.visit_convs(&mut |_| n += 1);
        n
    }
}

impl FromIterator<Module> for Sequential {
    fn from_iter<I: IntoIterator<Item = Module>>(iter: I) -> Self {
        Sequential::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net() -> Sequential {
        let mut rng = StdRng::seed_from_u64(2);
        Sequential::new(vec![
            Module::Conv2d(Conv2d::new(1, 4, 3, 1, 1, 1, false, &mut rng)),
            Module::BatchNorm2d(BatchNorm2d::new(4)),
            Module::Relu(Relu::new()),
            Module::MaxPool2d(MaxPool2d::new(2, 2)),
            Module::Flatten(Flatten::new()),
            Module::Linear(Linear::new(4 * 2 * 2, 3, &mut rng)),
        ])
    }

    #[test]
    fn forward_backward_shapes() {
        let mut net = small_net();
        let x = Tensor::ones(vec![2, 1, 4, 4]);
        let y = net.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        let gin = net.backward(&Tensor::ones(vec![2, 3])).unwrap();
        assert_eq!(gin.dims(), &[2, 1, 4, 4]);
    }

    #[test]
    fn param_and_conv_counts() {
        let mut net = small_net();
        // conv 1*4*9=36, bn 4+4, linear 16*3+3
        assert_eq!(net.num_params(), 36 + 8 + 51);
        assert_eq!(net.num_convs(), 1);
    }

    #[test]
    fn zero_grad_clears_everything() {
        let mut net = small_net();
        let x = Tensor::ones(vec![1, 1, 4, 4]);
        let y = net.forward(&x, true).unwrap();
        net.backward(&Tensor::ones(y.dims().to_vec())).unwrap();
        let mut any_nonzero = false;
        net.visit_params_mut(&mut |p| any_nonzero |= p.grad.data().iter().any(|&g| g != 0.0));
        assert!(any_nonzero, "backward should have produced gradients");
        net.zero_grad();
        net.visit_params_mut(&mut |p| {
            assert!(p.grad.data().iter().all(|&g| g == 0.0));
        });
    }

    #[test]
    fn from_iterator_collects() {
        let net: Sequential =
            vec![Module::Relu(Relu::new()), Module::Flatten(Flatten::new())].into_iter().collect();
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
    }

    #[test]
    fn nested_sequential_visits() {
        let mut rng = StdRng::seed_from_u64(3);
        let inner =
            Sequential::new(vec![Module::Conv2d(Conv2d::new(1, 1, 1, 1, 0, 1, false, &mut rng))]);
        let mut outer = Sequential::new(vec![
            Module::Sequential(inner),
            Module::Conv2d(Conv2d::new(1, 1, 1, 1, 0, 1, false, &mut rng)),
        ]);
        assert_eq!(outer.num_convs(), 2);
        let mut count = 0;
        outer.visit_convs_mut(&mut |_| count += 1);
        assert_eq!(count, 2);
    }
}
