//! Activation layers.

use mvq_tensor::Tensor;

use crate::error::NnError;

/// Rectified linear activation, optionally capped (`ReLU6` when
/// `cap == Some(6.0)`, as used by MobileNet-v2).
#[derive(Debug, Clone)]
pub struct Relu {
    cap: Option<f32>,
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Standard unbounded ReLU.
    pub fn new() -> Relu {
        Relu { cap: None, mask: None }
    }

    /// ReLU clamped to `[0, cap]`.
    ///
    /// # Panics
    ///
    /// Panics if `cap <= 0`.
    pub fn capped(cap: f32) -> Relu {
        assert!(cap > 0.0, "cap must be positive");
        Relu { cap: Some(cap), mask: None }
    }

    /// The cap, if any.
    pub fn cap(&self) -> Option<f32> {
        self.cap
    }

    /// Forward pass over any shape.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let cap = self.cap.unwrap_or(f32::INFINITY);
        let out = input.map(|x| x.clamp(0.0, cap));
        if train {
            self.mask = Some(input.data().iter().map(|&x| x > 0.0 && x < cap).collect());
        }
        out
    }

    /// Backward pass; gradient flows only where the input was in the active
    /// (linear) region.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] if no training forward preceded.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mask = self.mask.take().ok_or(NnError::NoForwardCache("Relu"))?;
        let data =
            grad_out.data().iter().zip(&mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect();
        Ok(Tensor::from_vec(grad_out.dims().to_vec(), data)?)
    }
}

impl Default for Relu {
    fn default() -> Self {
        Relu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![4], vec![-1.0, 0.0, 0.5, 3.0]).unwrap();
        let y = relu.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn relu6_caps() {
        let mut relu = Relu::capped(6.0);
        let x = Tensor::from_vec(vec![3], vec![-2.0, 4.0, 9.0]).unwrap();
        let y = relu.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 4.0, 6.0]);
        assert_eq!(relu.cap(), Some(6.0));
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::capped(6.0);
        let x = Tensor::from_vec(vec![4], vec![-1.0, 2.0, 7.0, 0.0]).unwrap();
        relu.forward(&x, true);
        let g = relu.backward(&Tensor::ones(vec![4])).unwrap();
        // gradient passes only for the in-range 2.0
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut relu = Relu::new();
        assert!(matches!(relu.backward(&Tensor::ones(vec![1])), Err(NnError::NoForwardCache(_))));
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn non_positive_cap_panics() {
        let _ = Relu::capped(0.0);
    }
}
