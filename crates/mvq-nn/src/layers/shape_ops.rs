//! Shape-manipulation layers: flatten and nearest-neighbour upsampling.

use mvq_tensor::Tensor;

use crate::error::NnError;
use crate::layers::conv::dims4;

/// Flattens `[N, C, H, W]` to `[N, C*H*W]` for the classifier head.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Flatten {
        Flatten { cached_dims: None }
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] for tensors of rank < 2.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if input.rank() < 2 {
            return Err(NnError::BadInput {
                layer: "Flatten".into(),
                detail: format!("expected rank >= 2, got {:?}", input.dims()),
            });
        }
        let n = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        if train {
            self.cached_dims = Some(input.dims().to_vec());
        }
        Ok(input.reshape(vec![n, rest])?)
    }

    /// Backward pass (inverse reshape).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] if no training forward preceded.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let dims = self.cached_dims.take().ok_or(NnError::NoForwardCache("Flatten"))?;
        Ok(grad_out.reshape(dims)?)
    }
}

/// Nearest-neighbour spatial upsampling by an integer factor — the decoder
/// step of DeepLab-lite.
#[derive(Debug, Clone)]
pub struct UpsampleNearest {
    factor: usize,
    cached_dims: Option<Vec<usize>>,
}

impl UpsampleNearest {
    /// Creates an upsampler that scales H and W by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn new(factor: usize) -> UpsampleNearest {
        assert!(factor > 0);
        UpsampleNearest { factor, cached_dims: None }
    }

    /// The scale factor.
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Forward pass `[N, C, H, W] -> [N, C, H*f, W*f]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] for non-rank-4 inputs.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if input.rank() != 4 {
            return Err(NnError::BadInput {
                layer: "UpsampleNearest".into(),
                detail: format!("expected rank 4, got {:?}", input.dims()),
            });
        }
        let (n, c, h, w) = dims4(input);
        let f = self.factor;
        let mut out = Tensor::zeros(vec![n, c, h * f, w * f]);
        let src = input.data();
        let dst = out.data_mut();
        for i in 0..n * c {
            let in_base = i * h * w;
            let out_base = i * h * f * w * f;
            for y in 0..h * f {
                for x in 0..w * f {
                    dst[out_base + y * w * f + x] = src[in_base + (y / f) * w + (x / f)];
                }
            }
        }
        if train {
            self.cached_dims = Some(input.dims().to_vec());
        }
        Ok(out)
    }

    /// Backward pass: sums gradients over each upsampled block.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] if no training forward preceded.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let dims = self.cached_dims.take().ok_or(NnError::NoForwardCache("UpsampleNearest"))?;
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let f = self.factor;
        let mut grad_in = Tensor::zeros(dims.clone());
        let gi = grad_in.data_mut();
        let go = grad_out.data();
        for i in 0..n * c {
            let in_base = i * h * w;
            let out_base = i * h * f * w * f;
            for y in 0..h * f {
                for x in 0..w * f {
                    gi[in_base + (y / f) * w + (x / f)] += go[out_base + y * w * f + x];
                }
            }
        }
        Ok(grad_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_round_trip() {
        let mut fl = Flatten::new();
        let x = Tensor::ones(vec![2, 3, 4, 4]);
        let y = fl.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[2, 48]);
        let g = fl.backward(&y).unwrap();
        assert_eq!(g.dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn flatten_validates() {
        let mut fl = Flatten::new();
        assert!(fl.forward(&Tensor::ones(vec![3]), false).is_err());
        assert!(matches!(fl.backward(&Tensor::ones(vec![1, 1])), Err(NnError::NoForwardCache(_))));
    }

    #[test]
    fn upsample_replicates() {
        let mut up = UpsampleNearest::new(2);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = up.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
        assert_eq!(
            y.data(),
            &[1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0, 3.0, 3.0, 4.0, 4.0]
        );
    }

    #[test]
    fn upsample_backward_sums_blocks() {
        let mut up = UpsampleNearest::new(2);
        let x = Tensor::ones(vec![1, 1, 2, 2]);
        up.forward(&x, true).unwrap();
        let g = up.backward(&Tensor::ones(vec![1, 1, 4, 4])).unwrap();
        assert_eq!(g.data(), &[4.0, 4.0, 4.0, 4.0]);
    }
}
