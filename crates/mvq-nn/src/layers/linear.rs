//! Fully connected layer.

use mvq_tensor::{gemm, kaiming_normal, matmul_transpose_a, matmul_transpose_b, Tensor};
use rand::Rng;

use crate::error::NnError;
use crate::param::Param;

/// A fully connected (dense) layer computing `y = x·Wᵀ + b` over a
/// `[N, in_features]` batch. Weight layout is `[out_features, in_features]`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix `[out_features, in_features]`.
    pub weight: Param,
    /// Bias vector `[out_features]`.
    pub bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics when a feature count is zero.
    pub fn new<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Linear {
        assert!(in_features > 0 && out_features > 0);
        Linear {
            weight: Param::new(kaiming_normal(vec![out_features, in_features], in_features, rng)),
            bias: Param::new(Tensor::zeros(vec![out_features])),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Forward pass over `[N, in_features]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on a shape mismatch.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::BadInput {
                layer: format!("Linear({}->{})", self.in_features, self.out_features),
                detail: format!("expected [N, {}], got {:?}", self.in_features, input.dims()),
            });
        }
        // y = x · Wᵀ
        let mut out = matmul_transpose_b(input, &self.weight.value)?;
        let n = out.dims()[0];
        let od = out.data_mut();
        for s in 0..n {
            for (o, &b) in od[s * self.out_features..(s + 1) * self.out_features]
                .iter_mut()
                .zip(self.bias.value.data())
            {
                *o += b;
            }
        }
        if train {
            self.cached_input = Some(input.clone());
        }
        Ok(out)
    }

    /// Backward pass; accumulates parameter gradients and returns `dL/dx`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] when called before a training
    /// forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let input = self.cached_input.take().ok_or(NnError::NoForwardCache("Linear"))?;
        // dW = goutᵀ · x  -> [out, in]
        let dw = matmul_transpose_a(grad_out, &input)?;
        self.weight.grad.add_assign(&dw)?;
        // db = column sums of gout
        let n = grad_out.dims()[0];
        let gb = self.bias.grad.data_mut();
        for s in 0..n {
            for (g, &v) in gb
                .iter_mut()
                .zip(&grad_out.data()[s * self.out_features..(s + 1) * self.out_features])
            {
                *g += v;
            }
        }
        // dx = gout · W
        Ok(gemm(grad_out, &self.weight.value)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lin = Linear::new(4, 3, &mut rng);
        lin.bias.value.data_mut().copy_from_slice(&[1.0, 2.0, 3.0]);
        for w in lin.weight.value.data_mut() {
            *w = 0.0;
        }
        let x = Tensor::ones(vec![2, 4]);
        let y = lin.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn rejects_bad_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lin = Linear::new(4, 3, &mut rng);
        assert!(lin.forward(&Tensor::ones(vec![2, 5]), false).is_err());
        assert!(lin.forward(&Tensor::ones(vec![4]), false).is_err());
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut lin = Linear::new(3, 2, &mut rng);
        let x = mvq_tensor::uniform(vec![2, 3], -1.0, 1.0, &mut rng);
        let y = lin.forward(&x, true).unwrap();
        let gin = lin.backward(&Tensor::ones(y.dims().to_vec())).unwrap();
        let eps = 1e-3;
        for idx in 0..6 {
            let orig = lin.weight.value.data()[idx];
            lin.weight.value.data_mut()[idx] = orig + eps;
            let lp = lin.forward(&x, false).unwrap().sum();
            lin.weight.value.data_mut()[idx] = orig - eps;
            let lm = lin.forward(&x, false).unwrap().sum();
            lin.weight.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - lin.weight.grad.data()[idx]).abs() < 1e-2);
        }
        let mut x2 = x.clone();
        for idx in 0..6 {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let lp = lin.forward(&x2, false).unwrap().sum();
            x2.data_mut()[idx] = orig - eps;
            let lm = lin.forward(&x2, false).unwrap().sum();
            x2.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gin.data()[idx]).abs() < 1e-2);
        }
        // bias grads equal batch size for unit upstream grads
        assert!(lin.bias.grad.data().iter().all(|&g| (g - 2.0).abs() < 1e-5));
    }

    #[test]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lin = Linear::new(4, 3, &mut rng);
        assert!(matches!(lin.backward(&Tensor::ones(vec![1, 3])), Err(NnError::NoForwardCache(_))));
    }
}
