//! 2-D convolution with stride, padding and channel groups (depthwise
//! convolution is `groups == in_channels`).

use mvq_tensor::{col2im, im2col, kaiming_normal, matmul_transpose_b, Conv2dGeometry, Tensor};
use rand::Rng;

use crate::error::NnError;
use crate::param::Param;

/// A 2-D convolution layer.
///
/// Weight layout is `[K, C/groups, R, S]` (output channels, input channels
/// per group, kernel height, kernel width) — the layout the paper's weight
/// grouping strategies (Fig. 3) slice into subvectors.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Convolution weight, `[K, C/groups, R, S]`.
    pub weight: Param,
    /// Per-output-channel bias, `[K]`; `None` when followed by batch norm.
    pub bias: Option<Param>,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide both channel counts, or any
    /// dimension is zero — model-construction bugs, not runtime conditions.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        groups: usize,
        bias: bool,
        rng: &mut R,
    ) -> Conv2d {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0 && groups > 0);
        assert_eq!(in_channels % groups, 0, "groups must divide in_channels");
        assert_eq!(out_channels % groups, 0, "groups must divide out_channels");
        let cpg = in_channels / groups;
        let fan_in = cpg * kernel * kernel;
        let weight =
            Param::new(kaiming_normal(vec![out_channels, cpg, kernel, kernel], fan_in, rng));
        let bias = bias.then(|| Param::new(Tensor::zeros(vec![out_channels])));
        Conv2d {
            weight,
            bias,
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            groups,
            cached_input: None,
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count `K`.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Square kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Channel groups (`in_channels` for depthwise convolution).
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// True when this is a depthwise convolution (one input channel per
    /// group). The paper excludes depthwise layers from MVQ compression
    /// (§7.5): their weight volume is negligible and EWS maps them onto the
    /// array diagonal.
    pub fn is_depthwise(&self) -> bool {
        self.groups == self.in_channels && self.groups > 1
    }

    fn geometry(&self, h: usize, w: usize) -> Conv2dGeometry {
        Conv2dGeometry::new(h, w, self.kernel, self.kernel, self.stride, self.pad)
    }

    /// Forward pass over a `[N, C, H, W]` batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when the input rank or channel count is
    /// wrong.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if input.rank() != 4 || input.dims()[1] != self.in_channels {
            return Err(NnError::BadInput {
                layer: format!("Conv2d({}->{})", self.in_channels, self.out_channels),
                detail: format!("expected [N, {}, H, W], got {:?}", self.in_channels, input.dims()),
            });
        }
        let (n, _, h, w) = dims4(input);
        let geom = self.geometry(h, w);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let cpg = self.in_channels / self.groups;
        let kpg = self.out_channels / self.groups;
        let w2 =
            self.weight.value.reshape(vec![self.out_channels, cpg * self.kernel * self.kernel])?;
        let mut out = Tensor::zeros(vec![n, self.out_channels, oh, ow]);
        for s in 0..n {
            let img = sample(input, s);
            for g in 0..self.groups {
                let img_g = channel_slice(&img, g * cpg, (g + 1) * cpg);
                let cols = im2col(&img_g, &geom)?;
                // rows kpg x (cpg*k*k) of the weight matrix for this group
                let mut wg = Tensor::zeros(vec![kpg, cpg * self.kernel * self.kernel]);
                for r in 0..kpg {
                    wg.row_mut(r).copy_from_slice(w2.row(g * kpg + r));
                }
                let res = wg.matmul(&cols)?;
                let base = s * self.out_channels * oh * ow + g * kpg * oh * ow;
                out.data_mut()[base..base + kpg * oh * ow].copy_from_slice(res.data());
            }
        }
        if let Some(bias) = &self.bias {
            let od = out.data_mut();
            for s in 0..n {
                for k in 0..self.out_channels {
                    let b = bias.value.data()[k];
                    let off = (s * self.out_channels + k) * oh * ow;
                    for v in &mut od[off..off + oh * ow] {
                        *v += b;
                    }
                }
            }
        }
        if train {
            self.cached_input = Some(input.clone());
        }
        Ok(out)
    }

    /// Backward pass: accumulates weight/bias gradients and returns the
    /// input gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] when called before a training
    /// forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let input = self.cached_input.take().ok_or(NnError::NoForwardCache("Conv2d"))?;
        let (n, _, h, w) = dims4(&input);
        let geom = self.geometry(h, w);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let cpg = self.in_channels / self.groups;
        let kpg = self.out_channels / self.groups;
        let ksz = cpg * self.kernel * self.kernel;
        let w2 = self.weight.value.reshape(vec![self.out_channels, ksz])?;
        let mut grad_in = Tensor::zeros(input.dims().to_vec());
        let mut grad_w = Tensor::zeros(vec![self.out_channels, ksz]);

        for s in 0..n {
            let img = sample(&input, s);
            for g in 0..self.groups {
                let img_g = channel_slice(&img, g * cpg, (g + 1) * cpg);
                let cols = im2col(&img_g, &geom)?;
                // grad_out slab for this sample/group: [kpg, oh*ow]
                let base = s * self.out_channels * oh * ow + g * kpg * oh * ow;
                let gout = Tensor::from_vec(
                    vec![kpg, oh * ow],
                    grad_out.data()[base..base + kpg * oh * ow].to_vec(),
                )?;
                // dW_g += gout · colsᵀ
                let dwg = matmul_transpose_b(&gout, &cols)?;
                for r in 0..kpg {
                    let gw = grad_w.row_mut(g * kpg + r);
                    for (a, b) in gw.iter_mut().zip(dwg.row(r)) {
                        *a += b;
                    }
                }
                // dX_g = W_gᵀ · gout folded back with col2im
                let mut wg = Tensor::zeros(vec![kpg, ksz]);
                for r in 0..kpg {
                    wg.row_mut(r).copy_from_slice(w2.row(g * kpg + r));
                }
                let dcols = mvq_tensor::matmul_transpose_a(&wg, &gout)?;
                let dimg = col2im(&dcols, &geom, cpg)?;
                let dst_base = s * self.in_channels * h * w + g * cpg * h * w;
                let gi = grad_in.data_mut();
                for (i, &v) in dimg.data().iter().enumerate() {
                    gi[dst_base + i] += v;
                }
            }
        }
        let gw4 = grad_w.reshape(self.weight.value.dims().to_vec())?;
        self.weight.grad.add_assign(&gw4)?;
        if let Some(bias) = &mut self.bias {
            let gb = bias.grad.data_mut();
            for s in 0..n {
                for k in 0..self.out_channels {
                    let off = (s * self.out_channels + k) * oh * ow;
                    gb[k] += grad_out.data()[off..off + oh * ow].iter().sum::<f32>();
                }
            }
        }
        Ok(grad_in)
    }
}

/// Dims of a rank-4 tensor as a tuple.
///
/// # Panics
///
/// Panics when the tensor is not rank 4; callers validate first.
pub(crate) fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    let d = t.dims();
    assert_eq!(d.len(), 4, "expected rank-4 tensor");
    (d[0], d[1], d[2], d[3])
}

/// Copies sample `s` of a `[N, C, H, W]` batch into a `[C, H, W]` tensor.
pub(crate) fn sample(batch: &Tensor, s: usize) -> Tensor {
    let (_, c, h, w) = dims4(batch);
    let sz = c * h * w;
    Tensor::from_vec(vec![c, h, w], batch.data()[s * sz..(s + 1) * sz].to_vec())
        .expect("slice length matches dims")
}

/// Copies channels `[from, to)` of a `[C, H, W]` image.
pub(crate) fn channel_slice(img: &Tensor, from: usize, to: usize) -> Tensor {
    let d = img.dims();
    let (h, w) = (d[1], d[2]);
    let sz = h * w;
    Tensor::from_vec(vec![to - from, h, w], img.data()[from * sz..to * sz].to_vec())
        .expect("slice length matches dims")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn forward_shape() {
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, 1, true, &mut rng());
        let x = Tensor::ones(vec![2, 3, 6, 6]);
        let y = conv.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 8, 6, 6]);
    }

    #[test]
    fn forward_stride_downsamples() {
        let mut conv = Conv2d::new(4, 8, 3, 2, 1, 1, false, &mut rng());
        let x = Tensor::ones(vec![1, 4, 8, 8]);
        let y = conv.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[1, 8, 4, 4]);
    }

    #[test]
    fn rejects_wrong_channels() {
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, 1, true, &mut rng());
        let x = Tensor::ones(vec![1, 4, 6, 6]);
        assert!(conv.forward(&x, false).is_err());
        assert!(conv.forward(&Tensor::ones(vec![3, 6, 6]), false).is_err());
    }

    #[test]
    fn identity_kernel_passes_through() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, 1, false, &mut rng());
        conv.weight.value.data_mut()[0] = 1.0;
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = conv.forward(&x, false).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn depthwise_detects() {
        let conv = Conv2d::new(8, 8, 3, 1, 1, 8, false, &mut rng());
        assert!(conv.is_depthwise());
        let conv = Conv2d::new(8, 8, 3, 1, 1, 1, false, &mut rng());
        assert!(!conv.is_depthwise());
    }

    #[test]
    fn grouped_forward_matches_per_group_dense() {
        // A groups=2 conv must equal two dense convs on channel halves.
        let mut seed = rng();
        let mut grouped = Conv2d::new(4, 6, 3, 1, 1, 2, false, &mut seed);
        let x = mvq_tensor::uniform(vec![1, 4, 5, 5], -1.0, 1.0, &mut seed);
        let y = grouped.forward(&x, false).unwrap();

        for g in 0..2 {
            let mut dense = Conv2d::new(2, 3, 3, 1, 1, 1, false, &mut rng());
            // copy group g weights
            let src = grouped.weight.value.data();
            let per = 3 * 2 * 9;
            dense.weight.value.data_mut().copy_from_slice(&src[g * per..(g + 1) * per]);
            let img = sample(&x, 0);
            let xg = channel_slice(&img, g * 2, (g + 1) * 2).reshape(vec![1, 2, 5, 5]).unwrap();
            let yg = dense.forward(&xg, false).unwrap();
            for k in 0..3 {
                for p in 0..25 {
                    let a = y.data()[(g * 3 + k) * 25 + p];
                    let b = yg.data()[k * 25 + p];
                    assert!((a - b).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn backward_requires_forward() {
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, 1, true, &mut rng());
        let g = Tensor::ones(vec![1, 8, 6, 6]);
        assert!(matches!(conv.backward(&g), Err(NnError::NoForwardCache(_))));
    }

    /// Numerical gradient check on a small conv (weight + input grads).
    #[test]
    fn gradients_match_finite_differences() {
        let mut r = rng();
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 1, true, &mut r);
        let x = mvq_tensor::uniform(vec![1, 2, 4, 4], -1.0, 1.0, &mut r);
        // loss = sum(forward(x))
        let y = conv.forward(&x, true).unwrap();
        let gout = Tensor::ones(y.dims().to_vec());
        let gin = conv.backward(&gout).unwrap();

        let eps = 1e-3;
        // check a handful of weight coordinates
        for &idx in &[0usize, 7, 20, 35, 53] {
            let orig = conv.weight.value.data()[idx];
            conv.weight.value.data_mut()[idx] = orig + eps;
            let lp = conv.forward(&x, false).unwrap().sum();
            conv.weight.value.data_mut()[idx] = orig - eps;
            let lm = conv.forward(&x, false).unwrap().sum();
            conv.weight.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = conv.weight.grad.data()[idx];
            assert!((num - ana).abs() < 2e-2, "weight[{idx}]: {num} vs {ana}");
        }
        // check a handful of input coordinates
        let mut x2 = x.clone();
        for &idx in &[0usize, 5, 17, 31] {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let lp = conv.forward(&x2, false).unwrap().sum();
            x2.data_mut()[idx] = orig - eps;
            let lm = conv.forward(&x2, false).unwrap().sum();
            x2.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = gin.data()[idx];
            assert!((num - ana).abs() < 2e-2, "input[{idx}]: {num} vs {ana}");
        }
        // bias gradient: d(sum)/db_k = number of output pixels
        for k in 0..3 {
            assert!((conv.bias.as_ref().unwrap().grad.data()[k] - 16.0).abs() < 1e-3);
        }
    }

    #[test]
    fn depthwise_gradients_match_finite_differences() {
        let mut r = rng();
        let mut conv = Conv2d::new(3, 3, 3, 1, 1, 3, false, &mut r);
        let x = mvq_tensor::uniform(vec![1, 3, 4, 4], -1.0, 1.0, &mut r);
        let y = conv.forward(&x, true).unwrap();
        conv.backward(&Tensor::ones(y.dims().to_vec())).unwrap();
        let eps = 1e-3;
        for &idx in &[0usize, 9, 22] {
            let orig = conv.weight.value.data()[idx];
            conv.weight.value.data_mut()[idx] = orig + eps;
            let lp = conv.forward(&x, false).unwrap().sum();
            conv.weight.value.data_mut()[idx] = orig - eps;
            let lm = conv.forward(&x, false).unwrap().sum();
            conv.weight.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = conv.weight.grad.data()[idx];
            assert!((num - ana).abs() < 2e-2, "dw weight[{idx}]: {num} vs {ana}");
        }
    }
}
