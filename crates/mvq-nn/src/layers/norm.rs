//! Batch normalization over `[N, C, H, W]` activations.

use mvq_tensor::Tensor;

use crate::error::NnError;
use crate::layers::conv::dims4;
use crate::param::Param;

/// 2-D batch normalization with learned scale/shift and running statistics
/// for inference.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    /// Learned per-channel scale γ.
    pub gamma: Param,
    /// Learned per-channel shift β.
    pub beta: Param,
    channels: usize,
    eps: f32,
    momentum: f32,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // backward caches
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    count: usize,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> BatchNorm2d {
        assert!(channels > 0);
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(vec![channels])),
            beta: Param::new(Tensor::zeros(vec![channels])),
            channels,
            eps: 1e-5,
            momentum: 0.1,
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cache: None,
        }
    }

    /// Channel count this layer normalizes.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Forward pass. In training mode uses batch statistics and updates the
    /// running averages; in eval mode uses the running statistics.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when the input is not
    /// `[N, channels, H, W]`.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if input.rank() != 4 || input.dims()[1] != self.channels {
            return Err(NnError::BadInput {
                layer: format!("BatchNorm2d({})", self.channels),
                detail: format!("expected [N, {}, H, W], got {:?}", self.channels, input.dims()),
            });
        }
        let (n, c, h, w) = dims4(input);
        let count = n * h * w;
        let plane = h * w;
        let mut out = Tensor::zeros(input.dims().to_vec());
        let mut x_hat = Tensor::zeros(input.dims().to_vec());
        let mut inv_stds = vec![0.0f32; c];
        for ch in 0..c {
            let (mean, var) = if train {
                let mut sum = 0.0f64;
                let mut sq = 0.0f64;
                for s in 0..n {
                    let off = (s * c + ch) * plane;
                    for &v in &input.data()[off..off + plane] {
                        sum += v as f64;
                        sq += (v as f64) * (v as f64);
                    }
                }
                let mean = (sum / count as f64) as f32;
                let var = ((sq / count as f64) - (sum / count as f64).powi(2)).max(0.0) as f32;
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ch], self.running_var[ch])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ch] = inv_std;
            let g = self.gamma.value.data()[ch];
            let b = self.beta.value.data()[ch];
            for s in 0..n {
                let off = (s * c + ch) * plane;
                for i in 0..plane {
                    let xh = (input.data()[off + i] - mean) * inv_std;
                    x_hat.data_mut()[off + i] = xh;
                    out.data_mut()[off + i] = g * xh + b;
                }
            }
        }
        if train {
            self.cache = Some(BnCache { x_hat, inv_std: inv_stds, count });
        }
        Ok(out)
    }

    /// Backward pass using the standard batch-norm gradient formula.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] when called before a training
    /// forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let cache = self.cache.take().ok_or(NnError::NoForwardCache("BatchNorm2d"))?;
        let (n, c, h, w) = dims4(grad_out);
        let plane = h * w;
        let m = cache.count as f32;
        let mut grad_in = Tensor::zeros(grad_out.dims().to_vec());
        for ch in 0..c {
            // Reductions over the channel: Σdy and Σdy·x̂.
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for s in 0..n {
                let off = (s * c + ch) * plane;
                for i in 0..plane {
                    let dy = grad_out.data()[off + i] as f64;
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.x_hat.data()[off + i] as f64;
                }
            }
            self.gamma.grad.data_mut()[ch] += sum_dy_xhat as f32;
            self.beta.grad.data_mut()[ch] += sum_dy as f32;
            let g = self.gamma.value.data()[ch];
            let inv_std = cache.inv_std[ch];
            let k1 = sum_dy as f32 / m;
            let k2 = sum_dy_xhat as f32 / m;
            for s in 0..n {
                let off = (s * c + ch) * plane;
                for i in 0..plane {
                    let dy = grad_out.data()[off + i];
                    let xh = cache.x_hat.data()[off + i];
                    grad_in.data_mut()[off + i] = g * inv_std * (dy - k1 - xh * k2);
                }
            }
        }
        Ok(grad_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes_batch_statistics() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut bn = BatchNorm2d::new(2);
        let x = mvq_tensor::uniform(vec![4, 2, 3, 3], -2.0, 5.0, &mut rng);
        let y = bn.forward(&x, true).unwrap();
        // each channel of y should have ~zero mean, ~unit variance
        for ch in 0..2 {
            let mut vals = Vec::new();
            for s in 0..4 {
                let off = (s * 2 + ch) * 9;
                vals.extend_from_slice(&y.data()[off..off + 9]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut bn = BatchNorm2d::new(1);
        // Feed many batches so the running stats converge to the true ones.
        for _ in 0..200 {
            let x = mvq_tensor::uniform(vec![8, 1, 2, 2], 2.0, 4.0, &mut rng);
            bn.forward(&x, true).unwrap();
        }
        // mean ≈ 3.0, var ≈ (4-2)²/12 ≈ 0.333
        let x = Tensor::full(vec![1, 1, 2, 2], 3.0);
        let y = bn.forward(&x, false).unwrap();
        for &v in y.data() {
            assert!(v.abs() < 0.15, "expected ~0, got {v}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut bn = BatchNorm2d::new(2);
        // Randomize gamma/beta so the test isn't at a special point.
        bn.gamma.value.data_mut().copy_from_slice(&[1.3, 0.7]);
        bn.beta.value.data_mut().copy_from_slice(&[0.1, -0.2]);
        let x = mvq_tensor::uniform(vec![2, 2, 2, 2], -1.0, 1.0, &mut rng);
        // Loss = Σ w_i y_i with fixed random weights (sum alone has zero grad
        // through normalization).
        let wv = mvq_tensor::uniform(vec![2, 2, 2, 2], -1.0, 1.0, &mut rng);
        let y = bn.forward(&x, true).unwrap();
        let gin = bn.backward(&wv).unwrap();
        let _ = y;
        let eps = 1e-2;
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            let y = bn.forward(x, true).unwrap();
            y.data().iter().zip(wv.data()).map(|(a, b)| a * b).sum()
        };
        let mut x2 = x.clone();
        for idx in 0..16 {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let lp = loss(&mut bn, &x2);
            x2.data_mut()[idx] = orig - eps;
            let lm = loss(&mut bn, &x2);
            x2.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gin.data()[idx]).abs() < 3e-2,
                "input[{idx}]: num {num} vs ana {}",
                gin.data()[idx]
            );
        }
    }

    #[test]
    fn rejects_wrong_channels() {
        let mut bn = BatchNorm2d::new(4);
        assert!(bn.forward(&Tensor::ones(vec![1, 3, 2, 2]), true).is_err());
    }

    #[test]
    fn backward_requires_forward() {
        let mut bn = BatchNorm2d::new(1);
        assert!(matches!(
            bn.backward(&Tensor::ones(vec![1, 1, 2, 2])),
            Err(NnError::NoForwardCache(_))
        ));
    }
}
