//! Residual block: `y = relu(main(x) + shortcut(x))`.

use mvq_tensor::Tensor;

use crate::error::NnError;
#[cfg(test)]
use crate::layers::Module;
use crate::layers::Sequential;

/// A residual block with an optional projection shortcut, covering both
/// ResNet basic/bottleneck blocks and MobileNet-v2 inverted residuals
/// (set `final_relu = false` for the latter's linear bottleneck).
#[derive(Debug, Clone)]
pub struct Residual {
    /// The main (residual) path.
    pub main: Sequential,
    /// Projection shortcut; `None` for the identity shortcut.
    pub shortcut: Option<Sequential>,
    final_relu: bool,
    relu_mask: Option<Vec<bool>>,
}

impl Residual {
    /// Builds a residual block.
    pub fn new(main: Sequential, shortcut: Option<Sequential>, final_relu: bool) -> Residual {
        Residual { main, shortcut, final_relu, relu_mask: None }
    }

    /// Whether a ReLU is applied after the addition.
    pub fn has_final_relu(&self) -> bool {
        self.final_relu
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Propagates sub-module errors; also rejects main/shortcut outputs of
    /// different shapes.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let main_out = self.main.forward(input, train)?;
        let skip_out = match &mut self.shortcut {
            Some(s) => s.forward(input, train)?,
            None => input.clone(),
        };
        let mut sum = main_out.add(&skip_out).map_err(|_| NnError::BadInput {
            layer: "Residual".into(),
            detail: format!(
                "main output {:?} does not match shortcut output {:?}",
                main_out.dims(),
                skip_out.dims()
            ),
        })?;
        if self.final_relu {
            if train {
                self.relu_mask = Some(sum.data().iter().map(|&x| x > 0.0).collect());
            }
            sum.map_in_place(|x| x.max(0.0));
        }
        Ok(sum)
    }

    /// Backward pass; returns the gradient w.r.t. the block input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] if no training forward preceded.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let grad_sum = if self.final_relu {
            let mask = self.relu_mask.take().ok_or(NnError::NoForwardCache("Residual"))?;
            let data =
                grad_out.data().iter().zip(&mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect();
            Tensor::from_vec(grad_out.dims().to_vec(), data)?
        } else {
            grad_out.clone()
        };
        let grad_main = self.main.backward(&grad_sum)?;
        let grad_skip = match &mut self.shortcut {
            Some(s) => s.backward(&grad_sum)?,
            None => grad_sum,
        };
        Ok(grad_main.add(&grad_skip)?)
    }

    /// Applies `f` to every trainable parameter in the block.
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut crate::Param)) {
        self.main.visit_params_mut(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params_mut(f);
        }
    }

    /// Applies `f` to every convolution layer (depth-first, main path then
    /// shortcut).
    pub fn visit_convs_mut(&mut self, f: &mut dyn FnMut(&mut super::conv::Conv2d)) {
        self.main.visit_convs_mut(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_convs_mut(f);
        }
    }

    /// Immutable variant of [`Residual::visit_convs_mut`].
    pub fn visit_convs(&self, f: &mut dyn FnMut(&super::conv::Conv2d)) {
        self.main.visit_convs(f);
        if let Some(s) = &self.shortcut {
            s.visit_convs(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::conv::Conv2d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn identity_block(relu: bool) -> Residual {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(2, 2, 1, 1, 0, 1, false, &mut rng);
        // zero conv => main path contributes nothing
        for w in conv.weight.value.data_mut() {
            *w = 0.0;
        }
        Residual::new(Sequential::new(vec![Module::Conv2d(conv)]), None, relu)
    }

    #[test]
    fn identity_shortcut_passes_input() {
        let mut block = identity_block(false);
        let x =
            Tensor::from_vec(vec![1, 2, 2, 2], (0..8).map(|i| i as f32 - 3.0).collect()).unwrap();
        let y = block.forward(&x, false).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn final_relu_applies() {
        let mut block = identity_block(true);
        let x =
            Tensor::from_vec(vec![1, 2, 2, 2], (0..8).map(|i| i as f32 - 3.0).collect()).unwrap();
        let y = block.forward(&x, false).unwrap();
        assert!(y.data().iter().all(|&v| v >= 0.0));
        assert!(block.has_final_relu());
    }

    #[test]
    fn backward_splits_gradient() {
        let mut block = identity_block(false);
        let x = Tensor::ones(vec![1, 2, 2, 2]);
        block.forward(&x, true).unwrap();
        let g = block.backward(&Tensor::ones(vec![1, 2, 2, 2])).unwrap();
        // main path conv has zero weights so its input grad is zero;
        // identity shortcut passes gradient through unchanged.
        assert_eq!(g.data(), &[1.0; 8]);
    }

    #[test]
    fn counts_convs() {
        let block = identity_block(true);
        let mut n = 0;
        block.visit_convs(&mut |_| n += 1);
        assert_eq!(n, 1);
    }
}
