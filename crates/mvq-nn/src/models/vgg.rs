//! VGG-16-lite: plain 3x3 conv stacks with max pooling.

use rand::Rng;

use crate::layers::{Flatten, Linear, MaxPool2d, Module, Relu, Sequential};
use crate::models::conv_bn_relu;

/// VGG-16-lite: conv stacks `[16,16] [32,32] [64,64,64]` with 2x2 pooling
/// after each stack, then a two-layer classifier. Mirrors VGG's
/// heavy-conv/heavy-FC profile that makes it DRAM-bound in the paper's
/// Fig. 15 discussion.
pub fn vgg16_lite<R: Rng>(num_classes: usize, rng: &mut R) -> Sequential {
    let mut layers = Vec::new();
    layers.extend(conv_bn_relu(3, 16, 3, 1, 1, 1, rng));
    layers.extend(conv_bn_relu(16, 16, 3, 1, 1, 1, rng));
    layers.push(Module::MaxPool2d(MaxPool2d::new(2, 2))); // 8x8
    layers.extend(conv_bn_relu(16, 32, 3, 1, 1, 1, rng));
    layers.extend(conv_bn_relu(32, 32, 3, 1, 1, 1, rng));
    layers.push(Module::MaxPool2d(MaxPool2d::new(2, 2))); // 4x4
    layers.extend(conv_bn_relu(32, 64, 3, 1, 1, 1, rng));
    layers.extend(conv_bn_relu(64, 64, 3, 1, 1, 1, rng));
    layers.extend(conv_bn_relu(64, 64, 3, 1, 1, 1, rng));
    layers.push(Module::MaxPool2d(MaxPool2d::new(2, 2))); // 2x2
    layers.push(Module::Flatten(Flatten::new()));
    layers.push(Module::Linear(Linear::new(64 * 2 * 2, 64, rng)));
    layers.push(Module::Relu(Relu::new()));
    layers.push(Module::Linear(Linear::new(64, num_classes, rng)));
    Sequential::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_count_and_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = vgg16_lite(10, &mut rng);
        assert_eq!(model.num_convs(), 7);
        let y = model.forward(&Tensor::zeros(vec![1, 3, 16, 16]), false).unwrap();
        assert_eq!(y.dims(), &[1, 10]);
    }

    #[test]
    fn has_two_linear_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = vgg16_lite(10, &mut rng);
        let linears = model.layers().iter().filter(|m| matches!(m, Module::Linear(_))).count();
        assert_eq!(linears, 2);
    }
}
