//! DeepLab-lite: a dense-prediction model (encoder + parallel-branch
//! context module + upsampled classifier) standing in for DeepLab-v3 with
//! MobileNet-v2 backbone in Table 6. Atrous convolution is replaced by
//! parallel 3x3/1x1 branches summed through the [`Residual`] container,
//! which preserves the property Table 6 tests: a dense-prediction head fed
//! by an MVQ-compressible backbone.

use rand::Rng;

use crate::layers::{Conv2d, Module, Residual, Sequential, UpsampleNearest};
use crate::models::{conv_bn_relu, conv_bn_relu6};

/// DeepLab-lite on 16×16 inputs: encoder downsamples to 4×4, an
/// "ASPP-lite" two-branch context block, a 1x1 classifier, and 4×
/// upsampling back to input resolution. Output is `[N, classes, 16, 16]`.
pub fn deeplab_lite<R: Rng>(num_classes: usize, rng: &mut R) -> Sequential {
    let mut layers = Vec::new();
    // encoder (MobileNet-v2-ish)
    layers.extend(conv_bn_relu6(3, 16, 3, 2, 1, 1, rng)); // 8x8
    layers.extend(conv_bn_relu6(16, 16, 3, 1, 1, 16, rng)); // depthwise
    layers.extend(conv_bn_relu6(16, 32, 1, 1, 0, 1, rng));
    layers.extend(conv_bn_relu6(32, 32, 3, 2, 1, 32, rng)); // depthwise, 4x4
    layers.extend(conv_bn_relu6(32, 64, 1, 1, 0, 1, rng));
    // ASPP-lite: 3x3 context branch + 1x1 branch, summed
    let ctx = Sequential::new(conv_bn_relu(64, 64, 3, 1, 1, 1, rng));
    let point = Sequential::new(vec![Module::Conv2d(Conv2d::new(64, 64, 1, 1, 0, 1, false, rng))]);
    layers.push(Module::Residual(Residual::new(ctx, Some(point), true)));
    // classifier + decoder
    layers.push(Module::Conv2d(Conv2d::new(64, num_classes, 1, 1, 0, 1, true, rng)));
    layers.push(Module::UpsampleNearest(UpsampleNearest::new(4)));
    Sequential::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_matches_input_resolution() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = deeplab_lite(5, &mut rng);
        let y = model.forward(&Tensor::zeros(vec![2, 3, 16, 16]), false).unwrap();
        assert_eq!(y.dims(), &[2, 5, 16, 16]);
    }

    #[test]
    fn trains_end_to_end() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = deeplab_lite(3, &mut rng);
        let x = Tensor::zeros(vec![1, 3, 16, 16]);
        let y = model.forward(&x, true).unwrap();
        let g = model.backward(&Tensor::ones(y.dims().to_vec()));
        assert!(g.is_ok());
    }

    #[test]
    fn contains_compressible_and_depthwise_convs() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = deeplab_lite(5, &mut rng);
        let (mut dense, mut dw) = (0, 0);
        model.visit_convs(&mut |c| {
            if c.is_depthwise() {
                dw += 1;
            } else {
                dense += 1;
            }
        });
        assert!(dense >= 4, "dense convs: {dense}");
        assert_eq!(dw, 2);
    }
}
