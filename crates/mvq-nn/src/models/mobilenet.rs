//! MobileNet-v1-lite (depthwise-separable convs) and MobileNet-v2-lite
//! (inverted residuals with linear bottlenecks and ReLU6).

use rand::Rng;

use crate::layers::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, Module, Residual, Sequential,
};
use crate::models::{conv_bn_relu, conv_bn_relu6};

/// One depthwise-separable unit: depthwise 3x3 then pointwise 1x1.
fn dw_separable<R: Rng>(in_ch: usize, out_ch: usize, stride: usize, rng: &mut R) -> Vec<Module> {
    let mut layers = Vec::new();
    layers.extend(conv_bn_relu(in_ch, in_ch, 3, stride, 1, in_ch, rng)); // depthwise
    layers.extend(conv_bn_relu(in_ch, out_ch, 1, 1, 0, 1, rng)); // pointwise
    layers
}

/// MobileNet-v1-lite: stem + five depthwise-separable stages.
pub fn mobilenet_v1_lite<R: Rng>(num_classes: usize, rng: &mut R) -> Sequential {
    let mut layers = Vec::new();
    layers.extend(conv_bn_relu(3, 16, 3, 1, 1, 1, rng));
    layers.extend(dw_separable(16, 32, 1, rng));
    layers.extend(dw_separable(32, 64, 2, rng)); // 8x8
    layers.extend(dw_separable(64, 64, 1, rng));
    layers.extend(dw_separable(64, 128, 2, rng)); // 4x4
    layers.extend(dw_separable(128, 128, 1, rng));
    layers.push(Module::GlobalAvgPool(GlobalAvgPool::new()));
    layers.push(Module::Flatten(crate::layers::Flatten::new()));
    layers.push(Module::Linear(Linear::new(128, num_classes, rng)));
    Sequential::new(layers)
}

/// One MobileNet-v2 inverted residual: 1x1 expand (ReLU6) → depthwise 3x3
/// (ReLU6) → 1x1 linear projection, with identity skip when shapes match.
fn inverted_residual<R: Rng>(
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    expand: usize,
    rng: &mut R,
) -> Module {
    let mid = in_ch * expand;
    let mut main = Vec::new();
    if expand != 1 {
        main.extend(conv_bn_relu6(in_ch, mid, 1, 1, 0, 1, rng));
    }
    main.extend(conv_bn_relu6(mid, mid, 3, stride, 1, mid, rng)); // depthwise
    main.push(Module::Conv2d(Conv2d::new(mid, out_ch, 1, 1, 0, 1, false, rng)));
    main.push(Module::BatchNorm2d(BatchNorm2d::new(out_ch)));
    if stride == 1 && in_ch == out_ch {
        // linear bottleneck: no ReLU after the addition
        Module::Residual(Residual::new(Sequential::new(main), None, false))
    } else {
        Module::Sequential(Sequential::new(main))
    }
}

/// MobileNet-v2-lite: stem + five inverted-residual blocks (t = 2 or 4).
pub fn mobilenet_v2_lite<R: Rng>(num_classes: usize, rng: &mut R) -> Sequential {
    let mut layers = Vec::new();
    layers.extend(conv_bn_relu6(3, 16, 3, 1, 1, 1, rng));
    layers.push(inverted_residual(16, 16, 1, 2, rng));
    layers.push(inverted_residual(16, 32, 2, 4, rng)); // 8x8
    layers.push(inverted_residual(32, 32, 1, 4, rng));
    layers.push(inverted_residual(32, 64, 2, 4, rng)); // 4x4
    layers.push(inverted_residual(64, 64, 1, 4, rng));
    layers.extend(conv_bn_relu6(64, 128, 1, 1, 0, 1, rng));
    layers.push(Module::GlobalAvgPool(GlobalAvgPool::new()));
    layers.push(Module::Flatten(Flatten::new()));
    layers.push(Module::Linear(Linear::new(128, num_classes, rng)));
    Sequential::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn v1_builds_and_runs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = mobilenet_v1_lite(10, &mut rng);
        let y = model.forward(&Tensor::zeros(vec![1, 3, 16, 16]), false).unwrap();
        assert_eq!(y.dims(), &[1, 10]);
        // stem + 5 blocks * 2 = 11 convs
        assert_eq!(model.num_convs(), 11);
    }

    #[test]
    fn v2_builds_and_runs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = mobilenet_v2_lite(10, &mut rng);
        let y = model.forward(&Tensor::zeros(vec![1, 3, 16, 16]), false).unwrap();
        assert_eq!(y.dims(), &[1, 10]);
    }

    #[test]
    fn v2_identity_blocks_are_residual() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = mobilenet_v2_lite(10, &mut rng);
        let residuals = model.layers().iter().filter(|m| matches!(m, Module::Residual(_))).count();
        // blocks with stride 1 and in == out: 16->16, 32->32, 64->64
        assert_eq!(residuals, 3);
    }

    #[test]
    fn v2_linear_bottleneck_has_no_final_relu() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = mobilenet_v2_lite(10, &mut rng);
        for m in model.layers() {
            if let Module::Residual(r) = m {
                assert!(!r.has_final_relu(), "v2 residuals must be linear bottlenecks");
            }
        }
    }
}
