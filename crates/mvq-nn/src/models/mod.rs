//! The model zoo: scaled-down ("-lite") versions of every architecture in
//! the paper's evaluation (§6.4, §7): ResNet-18/50, VGG-16, AlexNet,
//! MobileNet-v1/v2, EfficientNet and DeepLab-v3.
//!
//! All classification models take `[N, 3, 16, 16]` inputs. Channel counts
//! are multiples of 16 so that the paper's output-channel-wise grouping
//! with `d = 16` (and `d = 8`) applies without remainder, exactly as the
//! paper requires ("C_out and C_in are multiples of d", Fig. 3).

mod alexnet;
mod deeplab;
mod efficientnet;
mod mobilenet;
mod resnet;
mod vgg;

pub use alexnet::alexnet_lite;
pub use deeplab::deeplab_lite;
pub use efficientnet::efficientnet_lite;
pub use mobilenet::{mobilenet_v1_lite, mobilenet_v2_lite};
pub use resnet::{resnet18_lite, resnet50_lite};
pub use vgg::vgg16_lite;

use rand::Rng;

use crate::layers::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, Module, Relu, Sequential,
};

/// Input image side length every classification model in the zoo expects.
pub const INPUT_SIZE: usize = 16;

/// Number of input channels (RGB).
pub const INPUT_CHANNELS: usize = 3;

/// The architecture families evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// ResNet-18 (basic residual blocks).
    ResNet18,
    /// ResNet-50 (bottleneck residual blocks).
    ResNet50,
    /// VGG-16 (plain conv stacks).
    Vgg16,
    /// AlexNet.
    AlexNet,
    /// MobileNet-v1 (depthwise-separable convolutions).
    MobileNetV1,
    /// MobileNet-v2 (inverted residuals, ReLU6).
    MobileNetV2,
    /// EfficientNet (lite: MBConv stacks without squeeze-excite).
    EfficientNet,
}

impl Arch {
    /// All classification architectures.
    pub const ALL: [Arch; 7] = [
        Arch::ResNet18,
        Arch::ResNet50,
        Arch::Vgg16,
        Arch::AlexNet,
        Arch::MobileNetV1,
        Arch::MobileNetV2,
        Arch::EfficientNet,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Arch::ResNet18 => "ResNet-18",
            Arch::ResNet50 => "ResNet-50",
            Arch::Vgg16 => "VGG-16",
            Arch::AlexNet => "AlexNet",
            Arch::MobileNetV1 => "MobileNet-v1",
            Arch::MobileNetV2 => "MobileNet-v2",
            Arch::EfficientNet => "EfficientNet",
        }
    }

    /// True for architectures the paper calls "parameter-efficient"
    /// (MobileNets, EfficientNets), which get 1:2 / 2:4 pruning instead of
    /// 4:16 (§6.2).
    pub fn is_parameter_efficient(&self) -> bool {
        matches!(self, Arch::MobileNetV1 | Arch::MobileNetV2 | Arch::EfficientNet)
    }

    /// Builds the lite model for `num_classes`.
    pub fn build<R: Rng>(&self, num_classes: usize, rng: &mut R) -> Sequential {
        match self {
            Arch::ResNet18 => resnet18_lite(num_classes, rng),
            Arch::ResNet50 => resnet50_lite(num_classes, rng),
            Arch::Vgg16 => vgg16_lite(num_classes, rng),
            Arch::AlexNet => alexnet_lite(num_classes, rng),
            Arch::MobileNetV1 => mobilenet_v1_lite(num_classes, rng),
            Arch::MobileNetV2 => mobilenet_v2_lite(num_classes, rng),
            Arch::EfficientNet => efficientnet_lite(num_classes, rng),
        }
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// conv → batch-norm → ReLU, the ubiquitous building block.
pub(crate) fn conv_bn_relu<R: Rng>(
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    rng: &mut R,
) -> Vec<Module> {
    vec![
        Module::Conv2d(Conv2d::new(in_ch, out_ch, kernel, stride, pad, groups, false, rng)),
        Module::BatchNorm2d(BatchNorm2d::new(out_ch)),
        Module::Relu(Relu::new()),
    ]
}

/// conv → batch-norm → ReLU6 (MobileNet-v2 / EfficientNet flavour).
pub(crate) fn conv_bn_relu6<R: Rng>(
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    rng: &mut R,
) -> Vec<Module> {
    vec![
        Module::Conv2d(Conv2d::new(in_ch, out_ch, kernel, stride, pad, groups, false, rng)),
        Module::BatchNorm2d(BatchNorm2d::new(out_ch)),
        Module::Relu(Relu::capped(6.0)),
    ]
}

/// A minimal two-conv CNN used by unit tests and the quickstart example
/// (`size` is the input side, e.g. 8).
pub fn tiny_cnn<R: Rng>(num_classes: usize, size: usize, rng: &mut R) -> Sequential {
    let mut layers = Vec::new();
    layers.extend(conv_bn_relu(3, 16, 3, 1, 1, 1, rng));
    layers.push(Module::MaxPool2d(MaxPool2d::new(2, 2)));
    layers.extend(conv_bn_relu(16, 32, 3, 1, 1, 1, rng));
    layers.push(Module::GlobalAvgPool(GlobalAvgPool::new()));
    layers.push(Module::Flatten(Flatten::new()));
    layers.push(Module::Linear(Linear::new(32, num_classes, rng)));
    let _ = size;
    Sequential::new(layers)
}

/// A minimal encoder-decoder segmenter used by unit tests.
pub fn tiny_segmenter<R: Rng>(num_classes: usize, rng: &mut R) -> Sequential {
    use crate::layers::UpsampleNearest;
    let mut layers = Vec::new();
    layers.extend(conv_bn_relu(3, 16, 3, 2, 1, 1, rng));
    layers.extend(conv_bn_relu(16, 16, 3, 1, 1, 1, rng));
    layers.push(Module::Conv2d(Conv2d::new(16, num_classes, 1, 1, 0, 1, true, rng)));
    layers.push(Module::UpsampleNearest(UpsampleNearest::new(2)));
    Sequential::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_arch_builds_and_runs() {
        let mut rng = StdRng::seed_from_u64(0);
        for arch in Arch::ALL {
            let mut model = arch.build(10, &mut rng);
            let x = Tensor::zeros(vec![1, INPUT_CHANNELS, INPUT_SIZE, INPUT_SIZE]);
            let y =
                model.forward(&x, false).unwrap_or_else(|e| panic!("{arch} forward failed: {e}"));
            assert_eq!(y.dims(), &[1, 10], "{arch} output shape");
            assert!(model.num_convs() > 0, "{arch} has convs");
        }
    }

    #[test]
    fn every_arch_backprops() {
        let mut rng = StdRng::seed_from_u64(1);
        for arch in Arch::ALL {
            let mut model = arch.build(4, &mut rng);
            let x = Tensor::zeros(vec![2, 3, INPUT_SIZE, INPUT_SIZE]);
            let y = model.forward(&x, true).unwrap();
            let g = model.backward(&Tensor::ones(y.dims().to_vec()));
            assert!(g.is_ok(), "{arch} backward failed: {:?}", g.err());
        }
    }

    #[test]
    fn channel_counts_are_multiples_of_16_for_grouping() {
        // Output-wise grouping with d=16 requires C_out % 16 == 0 for every
        // compressible (non-depthwise) conv.
        let mut rng = StdRng::seed_from_u64(2);
        for arch in Arch::ALL {
            let model = arch.build(10, &mut rng);
            model.visit_convs(&mut |c| {
                if !c.is_depthwise() {
                    assert_eq!(
                        c.out_channels() % 16,
                        0,
                        "{arch}: conv with C_out {} not divisible by 16",
                        c.out_channels()
                    );
                }
            });
        }
    }

    #[test]
    fn parameter_efficient_flags() {
        assert!(Arch::MobileNetV1.is_parameter_efficient());
        assert!(Arch::MobileNetV2.is_parameter_efficient());
        assert!(Arch::EfficientNet.is_parameter_efficient());
        assert!(!Arch::ResNet18.is_parameter_efficient());
        assert!(!Arch::Vgg16.is_parameter_efficient());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Arch::ResNet18.name(), "ResNet-18");
        assert_eq!(format!("{}", Arch::MobileNetV2), "MobileNet-v2");
    }

    #[test]
    fn mobilenets_have_depthwise_layers() {
        let mut rng = StdRng::seed_from_u64(3);
        for arch in [Arch::MobileNetV1, Arch::MobileNetV2, Arch::EfficientNet] {
            let model = arch.build(10, &mut rng);
            let mut any_dw = false;
            model.visit_convs(&mut |c| any_dw |= c.is_depthwise());
            assert!(any_dw, "{arch} should contain depthwise convs");
        }
    }

    #[test]
    fn tiny_models_run() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut cnn = tiny_cnn(5, 8, &mut rng);
        let y = cnn.forward(&Tensor::zeros(vec![1, 3, 8, 8]), false).unwrap();
        assert_eq!(y.dims(), &[1, 5]);
        let mut seg = tiny_segmenter(3, &mut rng);
        let y = seg.forward(&Tensor::zeros(vec![1, 3, 8, 8]), false).unwrap();
        assert_eq!(y.dims(), &[1, 3, 8, 8]);
    }

    #[test]
    fn deeplab_output_is_dense() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = deeplab_lite(4, &mut rng);
        let x = Tensor::zeros(vec![1, 3, 16, 16]);
        let y = model.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[1, 4, 16, 16]);
    }
}
