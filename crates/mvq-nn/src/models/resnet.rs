//! ResNet-18-lite (basic blocks) and ResNet-50-lite (bottleneck blocks).

use rand::Rng;

use crate::layers::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, Module, Residual, Sequential,
};
use crate::models::conv_bn_relu;

/// A basic residual block: 3x3 conv → bn → relu → 3x3 conv → bn, plus a
/// projection shortcut when shape changes.
fn basic_block<R: Rng>(in_ch: usize, out_ch: usize, stride: usize, rng: &mut R) -> Module {
    let mut main = Vec::new();
    main.extend(conv_bn_relu(in_ch, out_ch, 3, stride, 1, 1, rng));
    main.push(Module::Conv2d(Conv2d::new(out_ch, out_ch, 3, 1, 1, 1, false, rng)));
    main.push(Module::BatchNorm2d(BatchNorm2d::new(out_ch)));
    let shortcut = if stride != 1 || in_ch != out_ch {
        Some(Sequential::new(vec![
            Module::Conv2d(Conv2d::new(in_ch, out_ch, 1, stride, 0, 1, false, rng)),
            Module::BatchNorm2d(BatchNorm2d::new(out_ch)),
        ]))
    } else {
        None
    };
    Module::Residual(Residual::new(Sequential::new(main), shortcut, true))
}

/// A bottleneck residual block: 1x1 reduce → 3x3 → 1x1 expand.
fn bottleneck_block<R: Rng>(
    in_ch: usize,
    mid_ch: usize,
    out_ch: usize,
    stride: usize,
    rng: &mut R,
) -> Module {
    let mut main = Vec::new();
    main.extend(conv_bn_relu(in_ch, mid_ch, 1, 1, 0, 1, rng));
    main.extend(conv_bn_relu(mid_ch, mid_ch, 3, stride, 1, 1, rng));
    main.push(Module::Conv2d(Conv2d::new(mid_ch, out_ch, 1, 1, 0, 1, false, rng)));
    main.push(Module::BatchNorm2d(BatchNorm2d::new(out_ch)));
    let shortcut = if stride != 1 || in_ch != out_ch {
        Some(Sequential::new(vec![
            Module::Conv2d(Conv2d::new(in_ch, out_ch, 1, stride, 0, 1, false, rng)),
            Module::BatchNorm2d(BatchNorm2d::new(out_ch)),
        ]))
    } else {
        None
    };
    Module::Residual(Residual::new(Sequential::new(main), shortcut, true))
}

/// ResNet-18-lite: stem + three stages of two basic blocks each
/// (16 → 32 → 64 channels) on 16×16 inputs.
pub fn resnet18_lite<R: Rng>(num_classes: usize, rng: &mut R) -> Sequential {
    let mut layers = Vec::new();
    layers.extend(conv_bn_relu(3, 16, 3, 1, 1, 1, rng));
    // stage 1: 16ch, 16x16
    layers.push(basic_block(16, 16, 1, rng));
    layers.push(basic_block(16, 16, 1, rng));
    // stage 2: 32ch, 8x8
    layers.push(basic_block(16, 32, 2, rng));
    layers.push(basic_block(32, 32, 1, rng));
    // stage 3: 64ch, 4x4
    layers.push(basic_block(32, 64, 2, rng));
    layers.push(basic_block(64, 64, 1, rng));
    layers.push(Module::GlobalAvgPool(GlobalAvgPool::new()));
    layers.push(Module::Flatten(Flatten::new()));
    layers.push(Module::Linear(Linear::new(64, num_classes, rng)));
    Sequential::new(layers)
}

/// ResNet-50-lite: stem + three stages of two bottleneck blocks each
/// (mid 16/32/64, out 32/64/128) on 16×16 inputs.
pub fn resnet50_lite<R: Rng>(num_classes: usize, rng: &mut R) -> Sequential {
    let mut layers = Vec::new();
    layers.extend(conv_bn_relu(3, 32, 3, 1, 1, 1, rng));
    // stage 1
    layers.push(bottleneck_block(32, 16, 32, 1, rng));
    layers.push(bottleneck_block(32, 16, 32, 1, rng));
    // stage 2
    layers.push(bottleneck_block(32, 32, 64, 2, rng));
    layers.push(bottleneck_block(64, 32, 64, 1, rng));
    // stage 3
    layers.push(bottleneck_block(64, 64, 128, 2, rng));
    layers.push(bottleneck_block(128, 64, 128, 1, rng));
    layers.push(Module::GlobalAvgPool(GlobalAvgPool::new()));
    layers.push(Module::Flatten(Flatten::new()));
    layers.push(Module::Linear(Linear::new(128, num_classes, rng)));
    let mut seq = Sequential::new(layers);
    let _ = &mut seq;
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn resnet18_has_expected_depth() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = resnet18_lite(10, &mut rng);
        // stem 1 + 6 blocks * 2 convs + 2 projection shortcuts = 15 convs
        assert_eq!(model.num_convs(), 1 + 12 + 2);
    }

    #[test]
    fn resnet50_has_expected_depth() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = resnet50_lite(10, &mut rng);
        // stem 1 + 6 blocks * 3 convs + 2 projection shortcuts (stage 1's
        // first block keeps 32 channels, so only stages 2-3 project)
        assert_eq!(model.num_convs(), 1 + 18 + 2);
    }

    #[test]
    fn spatial_reduction_is_4x() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = resnet18_lite(10, &mut rng);
        // probe through everything but the classifier head
        let x = Tensor::zeros(vec![1, 3, 16, 16]);
        let y = model.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[1, 10]);
    }

    #[test]
    fn residual_blocks_train_without_error() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = resnet18_lite(4, &mut rng);
        let x = mvq_tensor::uniform(vec![2, 3, 16, 16], -1.0, 1.0, &mut rng);
        let y = model.forward(&x, true).unwrap();
        model.backward(&Tensor::ones(y.dims().to_vec())).unwrap();
        let mut grads_nonzero = 0;
        model.visit_params_mut(&mut |p| {
            if p.grad.data().iter().any(|&g| g != 0.0) {
                grads_nonzero += 1;
            }
        });
        assert!(grads_nonzero > 10, "most params should receive gradient");
    }
}
