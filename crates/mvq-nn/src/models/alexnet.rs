//! AlexNet-lite: a shallow stack of wider convolutions.

use rand::Rng;

use crate::layers::{Flatten, Linear, MaxPool2d, Module, Relu, Sequential};
use crate::models::conv_bn_relu;

/// AlexNet-lite: five conv layers with aggressive early pooling and a
/// two-layer classifier, echoing AlexNet's few-but-wide profile.
pub fn alexnet_lite<R: Rng>(num_classes: usize, rng: &mut R) -> Sequential {
    let mut layers = Vec::new();
    layers.extend(conv_bn_relu(3, 32, 3, 1, 1, 1, rng));
    layers.push(Module::MaxPool2d(MaxPool2d::new(2, 2))); // 8x8
    layers.extend(conv_bn_relu(32, 64, 3, 1, 1, 1, rng));
    layers.push(Module::MaxPool2d(MaxPool2d::new(2, 2))); // 4x4
    layers.extend(conv_bn_relu(64, 96, 3, 1, 1, 1, rng));
    layers.extend(conv_bn_relu(96, 96, 3, 1, 1, 1, rng));
    layers.extend(conv_bn_relu(96, 64, 3, 1, 1, 1, rng));
    layers.push(Module::MaxPool2d(MaxPool2d::new(2, 2))); // 2x2
    layers.push(Module::Flatten(Flatten::new()));
    layers.push(Module::Linear(Linear::new(64 * 2 * 2, 96, rng)));
    layers.push(Module::Relu(Relu::new()));
    layers.push(Module::Linear(Linear::new(96, num_classes, rng)));
    Sequential::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builds_and_runs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = alexnet_lite(10, &mut rng);
        assert_eq!(model.num_convs(), 5);
        let y = model.forward(&Tensor::zeros(vec![2, 3, 16, 16]), false).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
    }
}
