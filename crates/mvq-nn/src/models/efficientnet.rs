//! EfficientNet-lite: MBConv (inverted-residual) stacks without
//! squeeze-and-excite, the standard "lite" simplification (as in Google's
//! EfficientNet-Lite release) that keeps every compressible layer a plain
//! or depthwise convolution.

use rand::Rng;

use crate::layers::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, Module, Residual, Sequential,
};
use crate::models::conv_bn_relu6;

fn mbconv<R: Rng>(
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    expand: usize,
    rng: &mut R,
) -> Module {
    let mid = in_ch * expand;
    let mut main = Vec::new();
    if expand != 1 {
        main.extend(conv_bn_relu6(in_ch, mid, 1, 1, 0, 1, rng));
    }
    main.extend(conv_bn_relu6(mid, mid, 3, stride, 1, mid, rng));
    main.push(Module::Conv2d(Conv2d::new(mid, out_ch, 1, 1, 0, 1, false, rng)));
    main.push(Module::BatchNorm2d(BatchNorm2d::new(out_ch)));
    if stride == 1 && in_ch == out_ch {
        Module::Residual(Residual::new(Sequential::new(main), None, false))
    } else {
        Module::Sequential(Sequential::new(main))
    }
}

/// EfficientNet-lite: deeper MBConv stacks than MobileNet-v2-lite with a
/// wider head.
pub fn efficientnet_lite<R: Rng>(num_classes: usize, rng: &mut R) -> Sequential {
    let mut layers = Vec::new();
    layers.extend(conv_bn_relu6(3, 16, 3, 1, 1, 1, rng));
    layers.push(mbconv(16, 16, 1, 1, rng));
    layers.push(mbconv(16, 32, 2, 4, rng)); // 8x8
    layers.push(mbconv(32, 32, 1, 4, rng));
    layers.push(mbconv(32, 32, 1, 4, rng));
    layers.push(mbconv(32, 64, 2, 4, rng)); // 4x4
    layers.push(mbconv(64, 64, 1, 4, rng));
    layers.push(mbconv(64, 64, 1, 4, rng));
    layers.extend(conv_bn_relu6(64, 160, 1, 1, 0, 1, rng));
    layers.push(Module::GlobalAvgPool(GlobalAvgPool::new()));
    layers.push(Module::Flatten(Flatten::new()));
    layers.push(Module::Linear(Linear::new(160, num_classes, rng)));
    Sequential::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builds_and_runs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = efficientnet_lite(10, &mut rng);
        let y = model.forward(&Tensor::zeros(vec![1, 3, 16, 16]), false).unwrap();
        assert_eq!(y.dims(), &[1, 10]);
    }

    #[test]
    fn deeper_than_mobilenet_v2() {
        let mut rng = StdRng::seed_from_u64(0);
        let eff = efficientnet_lite(10, &mut rng);
        let mb2 = crate::models::mobilenet_v2_lite(10, &mut rng);
        assert!(eff.num_convs() > mb2.num_convs());
    }
}
