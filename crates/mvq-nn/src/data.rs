//! Procedurally generated datasets standing in for ImageNet / COCO / VOC.
//!
//! The MVQ algorithm's comparative behaviour depends on the statistics of
//! trained weights, not on any particular dataset, so training happens on
//! synthetic tasks that small CNNs can learn to high accuracy — leaving
//! clear headroom for compression-induced degradation, which is what the
//! paper's tables measure.

use mvq_tensor::Tensor;
use rand::Rng;

/// A labelled image-classification dataset split into train and test.
///
/// Images are class prototypes (random low-frequency sinusoid mixtures)
/// with per-sample random shift, amplitude jitter and additive noise: easy
/// enough for a small CNN to learn, hard enough that weight perturbation
/// costs accuracy.
#[derive(Debug, Clone)]
pub struct SyntheticClassification {
    /// Training images `[N_train, 3, S, S]`.
    pub train_images: Tensor,
    /// Training labels.
    pub train_labels: Vec<usize>,
    /// Test images `[N_test, 3, S, S]`.
    pub test_images: Tensor,
    /// Test labels.
    pub test_labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
    /// Image side length.
    pub image_size: usize,
}

/// The frequency mixture defining one class's appearance.
#[derive(Debug, Clone)]
struct Prototype {
    // (channel amplitude, fx, fy, phase) per component
    components: Vec<(f32, f32, f32, f32)>,
}

impl Prototype {
    fn sample<R: Rng>(rng: &mut R) -> Prototype {
        let n = rng.gen_range(3..=5);
        let components = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0.5..1.5),
                    rng.gen_range(0.5..3.0),
                    rng.gen_range(0.5..3.0),
                    rng.gen_range(0.0..std::f32::consts::TAU),
                )
            })
            .collect();
        Prototype { components }
    }

    fn render(&self, size: usize, shift: (f32, f32), amp: f32, channel: usize) -> Vec<f32> {
        let mut img = vec![0.0f32; size * size];
        for (i, (a, fx, fy, phase)) in self.components.iter().enumerate() {
            // rotate component emphasis across channels so channels differ
            let ca = a * (1.0 + 0.3 * ((i + channel) % 3) as f32);
            for y in 0..size {
                for x in 0..size {
                    let u = (x as f32 + shift.0) / size as f32;
                    let v = (y as f32 + shift.1) / size as f32;
                    img[y * size + x] +=
                        amp * ca * (std::f32::consts::TAU * (fx * u + fy * v) + phase).sin();
                }
            }
        }
        img
    }
}

impl SyntheticClassification {
    /// Generates a dataset with `num_classes` classes, `n_train`/`n_test`
    /// samples and square images of side `image_size`.
    ///
    /// # Panics
    ///
    /// Panics when any count is zero.
    pub fn generate<R: Rng>(
        num_classes: usize,
        n_train: usize,
        n_test: usize,
        image_size: usize,
        rng: &mut R,
    ) -> SyntheticClassification {
        assert!(num_classes > 0 && n_train > 0 && n_test > 0 && image_size > 0);
        let prototypes: Vec<Prototype> = (0..num_classes).map(|_| Prototype::sample(rng)).collect();
        let (train_images, train_labels) =
            Self::render_split(&prototypes, n_train, image_size, rng);
        let (test_images, test_labels) = Self::render_split(&prototypes, n_test, image_size, rng);
        SyntheticClassification {
            train_images,
            train_labels,
            test_images,
            test_labels,
            num_classes,
            image_size,
        }
    }

    fn render_split<R: Rng>(
        prototypes: &[Prototype],
        n: usize,
        size: usize,
        rng: &mut R,
    ) -> (Tensor, Vec<usize>) {
        let mut images = Tensor::zeros(vec![n, 3, size, size]);
        let mut labels = Vec::with_capacity(n);
        for s in 0..n {
            let class = rng.gen_range(0..prototypes.len());
            labels.push(class);
            let shift = (rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0));
            let amp = rng.gen_range(0.8..1.2);
            for ch in 0..3 {
                let img = prototypes[class].render(size, shift, amp, ch);
                let base = (s * 3 + ch) * size * size;
                let dst = &mut images.data_mut()[base..base + size * size];
                for (d, v) in dst.iter_mut().zip(img) {
                    *d = v + rng.gen_range(-0.15..0.15);
                }
            }
        }
        (images, labels)
    }

    /// Number of training samples.
    pub fn n_train(&self) -> usize {
        self.train_labels.len()
    }

    /// Number of test samples.
    pub fn n_test(&self) -> usize {
        self.test_labels.len()
    }
}

/// A dense-prediction (segmentation) dataset: images containing colored
/// geometric shapes over a textured background; the label of each pixel is
/// the class of the shape covering it (0 = background).
#[derive(Debug, Clone)]
pub struct SyntheticSegmentation {
    /// Training images `[N, 3, S, S]`.
    pub train_images: Tensor,
    /// Per-pixel training labels, `N * S * S` entries row-major.
    pub train_labels: Vec<usize>,
    /// Test images.
    pub test_images: Tensor,
    /// Per-pixel test labels.
    pub test_labels: Vec<usize>,
    /// Number of classes including background.
    pub num_classes: usize,
    /// Image side length.
    pub image_size: usize,
}

impl SyntheticSegmentation {
    /// Generates a segmentation dataset with `num_classes` classes
    /// (including background class 0).
    ///
    /// # Panics
    ///
    /// Panics when `num_classes < 2` or any count is zero.
    pub fn generate<R: Rng>(
        num_classes: usize,
        n_train: usize,
        n_test: usize,
        image_size: usize,
        rng: &mut R,
    ) -> SyntheticSegmentation {
        assert!(num_classes >= 2 && n_train > 0 && n_test > 0 && image_size > 0);
        // fixed per-class colors so the task is learnable
        let colors: Vec<[f32; 3]> = (0..num_classes)
            .map(|_| [rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let (train_images, train_labels) =
            Self::render_split(&colors, num_classes, n_train, image_size, rng);
        let (test_images, test_labels) =
            Self::render_split(&colors, num_classes, n_test, image_size, rng);
        SyntheticSegmentation {
            train_images,
            train_labels,
            test_images,
            test_labels,
            num_classes,
            image_size,
        }
    }

    fn render_split<R: Rng>(
        colors: &[[f32; 3]],
        num_classes: usize,
        n: usize,
        size: usize,
        rng: &mut R,
    ) -> (Tensor, Vec<usize>) {
        let mut images = Tensor::zeros(vec![n, 3, size, size]);
        let mut labels = vec![0usize; n * size * size];
        for s in 0..n {
            // textured background
            for ch in 0..3 {
                let base = (s * 3 + ch) * size * size;
                for p in 0..size * size {
                    images.data_mut()[base + p] = colors[0][ch] * 0.3 + rng.gen_range(-0.2..0.2);
                }
            }
            // 1-3 shapes of non-background classes
            let n_shapes = rng.gen_range(1..=3);
            for _ in 0..n_shapes {
                let class = rng.gen_range(1..num_classes);
                let cx = rng.gen_range(0..size) as isize;
                let cy = rng.gen_range(0..size) as isize;
                let r = rng.gen_range(size / 6..=size / 3) as isize;
                let circle = rng.gen_bool(0.5);
                for y in 0..size as isize {
                    for x in 0..size as isize {
                        let inside = if circle {
                            (x - cx).pow(2) + (y - cy).pow(2) <= r * r
                        } else {
                            (x - cx).abs() <= r && (y - cy).abs() <= r
                        };
                        if inside {
                            let p = (y as usize) * size + x as usize;
                            labels[s * size * size + p] = class;
                            for ch in 0..3 {
                                let base = (s * 3 + ch) * size * size;
                                images.data_mut()[base + p] =
                                    colors[class][ch] + rng.gen_range(-0.1..0.1);
                            }
                        }
                    }
                }
            }
        }
        (images, labels)
    }
}

/// Copies a batch `[from, to)` of images and labels out of a dataset.
///
/// # Panics
///
/// Panics if the range is out of bounds.
pub fn batch_of(images: &Tensor, labels: &[usize], from: usize, to: usize) -> (Tensor, Vec<usize>) {
    let d = images.dims();
    let per = d[1] * d[2] * d[3];
    let data = images.data()[from * per..to * per].to_vec();
    let batch =
        Tensor::from_vec(vec![to - from, d[1], d[2], d[3]], data).expect("slice sized to dims");
    (batch, labels[from..to].to_vec())
}

/// Copies a batch of a segmentation dataset, where labels are per-pixel.
///
/// # Panics
///
/// Panics if the range is out of bounds.
pub fn seg_batch_of(
    images: &Tensor,
    labels: &[usize],
    from: usize,
    to: usize,
) -> (Tensor, Vec<usize>) {
    let d = images.dims();
    let per = d[1] * d[2] * d[3];
    let plane = d[2] * d[3];
    let data = images.data()[from * per..to * per].to_vec();
    let batch =
        Tensor::from_vec(vec![to - from, d[1], d[2], d[3]], data).expect("slice sized to dims");
    (batch, labels[from * plane..to * plane].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classification_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = SyntheticClassification::generate(5, 20, 10, 8, &mut rng);
        assert_eq!(d.train_images.dims(), &[20, 3, 8, 8]);
        assert_eq!(d.test_images.dims(), &[10, 3, 8, 8]);
        assert_eq!(d.n_train(), 20);
        assert_eq!(d.n_test(), 10);
        assert!(d.train_labels.iter().all(|&l| l < 5));
    }

    #[test]
    fn classification_classes_differ() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = SyntheticClassification::generate(2, 40, 4, 8, &mut rng);
        // mean images of the two classes should differ measurably
        let per = 3 * 8 * 8;
        let mut means = [vec![0.0f32; per], vec![0.0f32; per]];
        let mut counts = [0usize; 2];
        for (s, &l) in d.train_labels.iter().enumerate() {
            counts[l] += 1;
            for i in 0..per {
                means[l][i] += d.train_images.data()[s * per + i];
            }
        }
        let dist: f32 = means[0]
            .iter()
            .zip(&means[1])
            .map(|(a, b)| (a / counts[0].max(1) as f32 - b / counts[1].max(1) as f32).powi(2))
            .sum();
        assert!(dist > 0.5, "class means too close: {dist}");
    }

    #[test]
    fn segmentation_labels_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = SyntheticSegmentation::generate(4, 6, 3, 16, &mut rng);
        assert_eq!(d.train_labels.len(), 6 * 16 * 16);
        assert!(d.train_labels.iter().all(|&l| l < 4));
        // shapes exist: some non-background pixels
        assert!(d.train_labels.iter().any(|&l| l > 0));
        // background exists too
        assert!(d.train_labels.contains(&0));
    }

    #[test]
    fn batch_extraction() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = SyntheticClassification::generate(3, 10, 4, 8, &mut rng);
        let (xb, yb) = batch_of(&d.train_images, &d.train_labels, 2, 5);
        assert_eq!(xb.dims(), &[3, 3, 8, 8]);
        assert_eq!(yb.len(), 3);
        assert_eq!(yb[0], d.train_labels[2]);
        // first image of batch equals third image of dataset
        let per = 3 * 8 * 8;
        assert_eq!(&xb.data()[..per], &d.train_images.data()[2 * per..3 * per]);
    }

    #[test]
    fn seg_batch_extraction() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = SyntheticSegmentation::generate(3, 5, 2, 8, &mut rng);
        let (xb, yb) = seg_batch_of(&d.train_images, &d.train_labels, 1, 3);
        assert_eq!(xb.dims(), &[2, 3, 8, 8]);
        assert_eq!(yb.len(), 2 * 64);
        assert_eq!(yb[0], d.train_labels[64]);
    }

    #[test]
    fn deterministic_generation() {
        let a = SyntheticClassification::generate(3, 5, 2, 8, &mut StdRng::seed_from_u64(9));
        let b = SyntheticClassification::generate(3, 5, 2, 8, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.train_images.data(), b.train_images.data());
        assert_eq!(a.train_labels, b.train_labels);
    }
}
