//! Optimizers: SGD with momentum, Adam, and AdamW.
//!
//! The paper fine-tunes codebooks with "the optimizer (Adam, SGD, AdamW)
//! with hyperparameter θ" (Eq. 6); the same three are provided here and are
//! reused by `mvq-core` for masked-gradient codebook updates.

use mvq_tensor::Tensor;

use crate::layers::Sequential;
use crate::param::Param;

/// Which update rule to apply, with its hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with momentum and (coupled) L2 weight
    /// decay.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (0 disables momentum).
        momentum: f32,
        /// L2 weight-decay coefficient added to the gradient.
        weight_decay: f32,
    },
    /// Adam (Kingma & Ba, 2014) with bias correction.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// AdamW: Adam with decoupled weight decay.
    AdamW {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Numerical-stability epsilon.
        eps: f32,
        /// Decoupled weight-decay coefficient.
        weight_decay: f32,
    },
}

impl OptimizerKind {
    /// SGD shorthand.
    pub fn sgd(lr: f32, momentum: f32, weight_decay: f32) -> OptimizerKind {
        OptimizerKind::Sgd { lr, momentum, weight_decay }
    }

    /// Adam with the standard betas.
    pub fn adam(lr: f32) -> OptimizerKind {
        OptimizerKind::Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }

    /// AdamW with the standard betas.
    pub fn adamw(lr: f32, weight_decay: f32) -> OptimizerKind {
        OptimizerKind::AdamW { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay }
    }

    /// The current learning rate.
    pub fn lr(&self) -> f32 {
        match *self {
            OptimizerKind::Sgd { lr, .. }
            | OptimizerKind::Adam { lr, .. }
            | OptimizerKind::AdamW { lr, .. } => lr,
        }
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, new_lr: f32) {
        match self {
            OptimizerKind::Sgd { lr, .. }
            | OptimizerKind::Adam { lr, .. }
            | OptimizerKind::AdamW { lr, .. } => *lr = new_lr,
        }
    }
}

/// Per-parameter optimizer state (momentum / moment buffers), keyed by the
/// visit order of the model's parameters.
#[derive(Debug, Default, Clone)]
struct SlotState {
    m: Option<Tensor>,
    v: Option<Tensor>,
}

/// An optimizer instance holding per-parameter state.
///
/// The optimizer identifies parameters by their depth-first visit order, so
/// it must always be used with the same model.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    slots: Vec<SlotState>,
    step_count: u64,
}

impl Optimizer {
    /// Creates an optimizer with empty state.
    pub fn new(kind: OptimizerKind) -> Optimizer {
        Optimizer { kind, slots: Vec::new(), step_count: 0 }
    }

    /// The update rule and hyperparameters.
    pub fn kind(&self) -> &OptimizerKind {
        &self.kind
    }

    /// Mutable access to hyperparameters (e.g. for LR schedules).
    pub fn kind_mut(&mut self) -> &mut OptimizerKind {
        &mut self.kind
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Applies one update step to every parameter of `model` using the
    /// gradients accumulated since the last `zero_grad`.
    pub fn step(&mut self, model: &mut Sequential) {
        self.step_count += 1;
        let t = self.step_count;
        let kind = self.kind;
        let slots = &mut self.slots;
        let mut idx = 0usize;
        model.visit_params_mut(&mut |p| {
            if slots.len() <= idx {
                slots.resize(idx + 1, SlotState::default());
            }
            apply_update(&kind, p, &mut slots[idx], t);
            idx += 1;
        });
    }

    /// Applies one update to a free-standing parameter (used by the
    /// codebook fine-tuner in `mvq-core`, where the "parameter" is a
    /// codebook rather than a model weight). `slot` selects independent
    /// state; allocate one slot per codebook.
    pub fn step_param(&mut self, param: &mut Param, slot: usize) {
        self.step_count += 1;
        if self.slots.len() <= slot {
            self.slots.resize(slot + 1, SlotState::default());
        }
        let kind = self.kind;
        let t = self.step_count;
        apply_update(&kind, param, &mut self.slots[slot], t);
    }
}

fn apply_update(kind: &OptimizerKind, p: &mut Param, slot: &mut SlotState, t: u64) {
    match *kind {
        OptimizerKind::Sgd { lr, momentum, weight_decay } => {
            if momentum != 0.0 {
                let m = slot.m.get_or_insert_with(|| Tensor::zeros(p.value.dims().to_vec()));
                for ((mv, &g), &w) in m.data_mut().iter_mut().zip(p.grad.data()).zip(p.value.data())
                {
                    *mv = momentum * *mv + g + weight_decay * w;
                }
                let m = slot.m.as_ref().expect("just inserted");
                for (w, &mv) in p.value.data_mut().iter_mut().zip(m.data()) {
                    *w -= lr * mv;
                }
            } else {
                let wd = weight_decay;
                let grads: Vec<f32> = p.grad.data().to_vec();
                for (w, g) in p.value.data_mut().iter_mut().zip(grads) {
                    *w -= lr * (g + wd * *w);
                }
            }
        }
        OptimizerKind::Adam { lr, beta1, beta2, eps } => {
            adam_update(p, slot, t, lr, beta1, beta2, eps, 0.0);
        }
        OptimizerKind::AdamW { lr, beta1, beta2, eps, weight_decay } => {
            adam_update(p, slot, t, lr, beta1, beta2, eps, weight_decay);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn adam_update(
    p: &mut Param,
    slot: &mut SlotState,
    t: u64,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    decoupled_wd: f32,
) {
    let dims = p.value.dims().to_vec();
    let m = slot.m.get_or_insert_with(|| Tensor::zeros(dims.clone()));
    for (mv, &g) in m.data_mut().iter_mut().zip(p.grad.data()) {
        *mv = beta1 * *mv + (1.0 - beta1) * g;
    }
    let v = slot.v.get_or_insert_with(|| Tensor::zeros(dims));
    for (vv, &g) in v.data_mut().iter_mut().zip(p.grad.data()) {
        *vv = beta2 * *vv + (1.0 - beta2) * g * g;
    }
    let bc1 = 1.0 - beta1.powi(t as i32);
    let bc2 = 1.0 - beta2.powi(t as i32);
    let m = slot.m.as_ref().expect("inserted above");
    let v = slot.v.as_ref().expect("inserted above");
    for ((w, &mv), &vv) in p.value.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
        let m_hat = mv / bc1;
        let v_hat = vv / bc2;
        *w -= lr * (m_hat / (v_hat.sqrt() + eps) + decoupled_wd * *w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quadratic_model() -> Sequential {
        // Single 1x1 linear layer: loss = (w*x - target)^2 is what the test
        // loop below simulates via manual gradients.
        let mut rng = StdRng::seed_from_u64(1);
        Sequential::new(vec![Module::Linear(Linear::new(1, 1, &mut rng))])
    }

    fn param_of(model: &mut Sequential) -> f32 {
        let mut val = 0.0;
        let mut first = true;
        model.visit_params_mut(&mut |p| {
            if first {
                val = p.value.data()[0];
                first = false;
            }
        });
        val
    }

    fn converges(kind: OptimizerKind) -> bool {
        // minimize (w - 3)^2 by supplying grad = 2(w - 3)
        let mut model = quadratic_model();
        let mut opt = Optimizer::new(kind);
        for _ in 0..300 {
            model.zero_grad();
            let w = param_of(&mut model);
            let mut first = true;
            model.visit_params_mut(&mut |p| {
                if first {
                    p.grad.data_mut()[0] = 2.0 * (w - 3.0);
                    first = false;
                }
            });
            opt.step(&mut model);
        }
        (param_of(&mut model) - 3.0).abs() < 0.05
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(converges(OptimizerKind::sgd(0.05, 0.0, 0.0)));
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        assert!(converges(OptimizerKind::sgd(0.02, 0.9, 0.0)));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(converges(OptimizerKind::adam(0.05)));
    }

    #[test]
    fn adamw_converges_on_quadratic() {
        assert!(converges(OptimizerKind::adamw(0.05, 0.0)));
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut model = quadratic_model();
        // set weight to a large value, run decay-only updates
        model.visit_params_mut(&mut |p| {
            for w in p.value.data_mut() {
                *w = 10.0;
            }
        });
        let mut opt = Optimizer::new(OptimizerKind::sgd(0.1, 0.0, 0.5));
        for _ in 0..10 {
            model.zero_grad();
            opt.step(&mut model);
        }
        let w = param_of(&mut model);
        assert!(w < 10.0 && w > 0.0, "decayed to {w}");
    }

    #[test]
    fn lr_accessors() {
        let mut k = OptimizerKind::adam(0.1);
        assert_eq!(k.lr(), 0.1);
        k.set_lr(0.01);
        assert_eq!(k.lr(), 0.01);
    }

    #[test]
    fn step_param_with_slots() {
        let mut p1 = Param::new(Tensor::full(vec![1], 5.0));
        let mut p2 = Param::new(Tensor::full(vec![1], -5.0));
        let mut opt = Optimizer::new(OptimizerKind::adam(0.1));
        for _ in 0..200 {
            p1.grad.data_mut()[0] = 2.0 * p1.value.data()[0];
            p2.grad.data_mut()[0] = 2.0 * (p2.value.data()[0] + 1.0);
            opt.step_param(&mut p1, 0);
            opt.step_param(&mut p2, 1);
        }
        assert!(p1.value.data()[0].abs() < 0.1);
        assert!((p2.value.data()[0] + 1.0).abs() < 0.1);
        assert!(opt.steps() == 400);
    }
}
