//! Differential oracle harness for the distance/assignment kernels.
//!
//! PR 2's validation convention pinned every kernel to the naive oracle at
//! 0 ULP, which only order-preserving kernels can satisfy. The SIMD
//! kernels reassociate f32 adds, so the contract splits into two tiers
//! (see [`crate::kernels`]): **exact assignment equality** (with ties
//! broken to the lowest codeword index) for every strategy, plus either
//! **0-ULP SSE** (order-preserving kernels) or **SSE within a pinned ULP
//! bound** ([`crate::kernels::REASSOC_SSE_ULP_BOUND`], reassociating
//! kernels).
//!
//! This module is the reusable machinery behind that convention: it runs
//! any kernel pair over randomized shapes/masks/seeds — with constructed
//! duplicate-codeword ties injected at a fixed cadence — and reports
//! assignment mismatches, tie-breaking violations, and the maximum ULP
//! divergence of the reported SSE. `tests/properties.rs` drives it as the
//! acceptance gate; `bench_kernels` reuses [`ulp_distance`] so the
//! recorded numbers share the harness's definition of divergence.
//!
//! ```
//! use mvq_core::differential::{compare_masked, DiffConfig};
//! use mvq_core::KernelStrategy;
//!
//! let report = compare_masked(KernelStrategy::Blocked, &DiffConfig::quick())?;
//! assert_eq!(report.assignment_mismatches, 0);
//! assert_eq!(report.max_sse_ulp, 0); // blocked is order-preserving
//! # Ok::<(), mvq_core::MvqError>(())
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mvq_tensor::Tensor;

use crate::error::MvqError;
use crate::kernels::{dense_assign_with, masked_assign_with, masked_sse_with, KernelStrategy};
use crate::pruning::prune_matrix_nm;

/// How a differential run generates its randomized cases.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Randomized cases to run (the registry acceptance bar is ≥ 256).
    pub cases: usize,
    /// Master seed; every case derives its own `StdRng` from it, so a run
    /// is reproducible end to end.
    pub seed: u64,
    /// Subvector counts are drawn from `1..=max_ng`.
    pub max_ng: usize,
    /// Codebook sizes are drawn from `1..=max_k`.
    pub max_k: usize,
    /// `(keep_n, m, d)` shape triples cases cycle through; `d` values
    /// should straddle the SIMD chunk width (not divide it, equal it,
    /// exceed it) and `m` need not divide `d` evenly into chunks.
    pub shapes: Vec<(usize, usize, usize)>,
    /// Every `tie_every`-th case duplicates one codeword at a higher
    /// index — a constructed exact tie that checks lowest-index breaking
    /// on both kernels. `0` disables injection.
    pub tie_every: usize,
    /// Half-width of the uniform data/codeword distribution.
    pub range: f32,
}

impl Default for DiffConfig {
    /// The registry acceptance configuration: 256 cases over shapes that
    /// straddle every chunk/tile boundary, ties injected every 8th case.
    fn default() -> DiffConfig {
        DiffConfig {
            cases: 256,
            seed: 0xD1FF_0AC1E,
            max_ng: 96,
            max_k: 40,
            shapes: vec![(1, 2, 4), (2, 4, 4), (2, 4, 8), (3, 4, 12), (4, 8, 8), (4, 16, 16)],
            tie_every: 8,
            range: 2.0,
        }
    }
}

impl DiffConfig {
    /// A smaller run for doctests and smoke checks.
    pub fn quick() -> DiffConfig {
        DiffConfig { cases: 16, ..DiffConfig::default() }
    }
}

/// Outcome of a differential run over one kernel pair.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Cases executed.
    pub cases: usize,
    /// Cases whose assignment vectors were not exactly equal.
    pub assignment_mismatches: usize,
    /// Human-readable description of the first divergence, for test
    /// failure messages.
    pub first_divergence: Option<String>,
    /// Maximum [`ulp_distance`] between the two kernels' SSEs across all
    /// cases (0 means bit-identical everywhere).
    pub max_sse_ulp: u32,
    /// Rows (counted once per row) where either kernel resolved an
    /// injected duplicate-codeword tie to one of the duplicates.
    pub tie_rows: usize,
    /// Per-kernel choices of the *higher* duplicate — violations of the
    /// lowest-index rule (a row both kernels break counts twice).
    pub tie_break_violations: usize,
}

impl DiffReport {
    /// True when every case produced exactly equal assignments and no tie
    /// was broken upward.
    pub fn assignments_identical(&self) -> bool {
        self.assignment_mismatches == 0 && self.tie_break_violations == 0
    }
}

/// Bit-level distance between two f32 values in units in the last place,
/// saturating at `u32::MAX` (which is also returned when either value is
/// NaN). `+0.0` and `−0.0` are 0 ULPs apart.
pub fn ulp_distance(a: f32, b: f32) -> u32 {
    fn key(x: f32) -> i64 {
        let bits = x.to_bits();
        if bits & 0x8000_0000 != 0 {
            -((bits & 0x7FFF_FFFF) as i64)
        } else {
            bits as i64
        }
    }
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    (key(a) - key(b)).unsigned_abs().try_into().unwrap_or(u32::MAX)
}

/// One randomized case: data, mask, codebook, and (when a tie was
/// injected) the `(low, high)` duplicate codeword pair.
struct Case {
    data: Tensor,
    mask: crate::NmMask,
    centers: Tensor,
    dup: Option<(u32, u32)>,
}

fn build_case(cfg: &DiffConfig, index: usize, rng: &mut StdRng) -> Result<Case, MvqError> {
    let (n, m, d) = cfg.shapes[index % cfg.shapes.len()];
    let ng = rng.gen_range(1..=cfg.max_ng);
    let k = rng.gen_range(1..=cfg.max_k);
    let data = mvq_tensor::uniform(vec![ng, d], -cfg.range, cfg.range, rng);
    // masks come from pruning an *independent* matrix, so masked lanes of
    // `data` need not hold zeros — kernels must agree regardless
    let mask_src = mvq_tensor::uniform(vec![ng, d], -1.0, 1.0, rng);
    let (_, mask) = prune_matrix_nm(&mask_src, n, m)?;
    let mut centers = mvq_tensor::uniform(vec![k, d], -cfg.range, cfg.range, rng);
    let dup = if cfg.tie_every > 0 && index.is_multiple_of(cfg.tie_every) && k >= 2 {
        let lo = rng.gen_range(0..k - 1);
        let hi = rng.gen_range(lo + 1..k);
        let src = centers.row(lo).to_vec();
        centers.row_mut(hi).copy_from_slice(&src);
        Some((lo as u32, hi as u32))
    } else {
        None
    };
    Ok(Case { data, mask, centers, dup })
}

/// Folds one case's paired assignments/SSEs into `report`.
#[allow(clippy::too_many_arguments)]
fn record(
    report: &mut DiffReport,
    case_no: usize,
    label: &str,
    assign_a: &[u32],
    assign_b: &[u32],
    sse_a: f32,
    sse_b: f32,
    dup: Option<(u32, u32)>,
) {
    report.cases += 1;
    if assign_a != assign_b {
        report.assignment_mismatches += 1;
        if report.first_divergence.is_none() {
            let row = assign_a.iter().zip(assign_b).position(|(x, y)| x != y).unwrap_or(0);
            report.first_divergence = Some(format!(
                "case {case_no} ({label}): row {row} assigned {} vs {}",
                assign_a[row], assign_b[row]
            ));
        }
    }
    if let Some((lo, hi)) = dup {
        for (&a, &b) in assign_a.iter().zip(assign_b) {
            // a row "faced" the tie when either kernel resolved it to one
            // of the duplicates; counted once per row
            if a == lo || a == hi || b == lo || b == hi {
                report.tie_rows += 1;
            }
            // violations are counted per kernel choice (a row both
            // kernels got wrong counts twice)
            for chosen in [a, b] {
                if chosen == hi {
                    report.tie_break_violations += 1;
                    if report.first_divergence.is_none() {
                        report.first_divergence = Some(format!(
                            "case {case_no} ({label}): duplicate codeword {hi} chosen over {lo}"
                        ));
                    }
                }
            }
        }
    }
    report.max_sse_ulp = report.max_sse_ulp.max(ulp_distance(sse_a, sse_b));
}

/// Runs `cfg.cases` randomized masked cases through kernels `a` and `b`
/// and reports assignment equality, tie-breaking, and SSE ULP divergence.
///
/// # Errors
///
/// Propagates kernel validation errors (the generated cases are always
/// well-formed, so an error here is a harness bug).
pub fn compare_masked_pair(
    a: KernelStrategy,
    b: KernelStrategy,
    cfg: &DiffConfig,
) -> Result<DiffReport, MvqError> {
    let mut report = DiffReport::default();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for case_no in 0..cfg.cases {
        let case = build_case(cfg, case_no, &mut rng)?;
        let assign_a = masked_assign_with(a, &case.data, &case.mask, &case.centers)?;
        let assign_b = masked_assign_with(b, &case.data, &case.mask, &case.centers)?;
        // each kernel scores its *own* assignments so an assignment
        // mismatch cannot masquerade as SSE divergence; when assignments
        // agree (the contract) this compares the same point set
        let sse_a = masked_sse_with(a, &case.data, &case.mask, &case.centers, &assign_a)?;
        let sse_b = masked_sse_with(b, &case.data, &case.mask, &case.centers, &assign_b)?;
        record(&mut report, case_no, "masked", &assign_a, &assign_b, sse_a, sse_b, case.dup);
    }
    Ok(report)
}

/// Runs `cfg.cases` randomized *dense* cases (no mask) through kernels `a`
/// and `b`. SSE is not part of the dense kernel surface, so the report's
/// `max_sse_ulp` stays 0.
///
/// # Errors
///
/// Propagates kernel validation errors.
pub fn compare_dense_pair(
    a: KernelStrategy,
    b: KernelStrategy,
    cfg: &DiffConfig,
) -> Result<DiffReport, MvqError> {
    let mut report = DiffReport::default();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for case_no in 0..cfg.cases {
        let case = build_case(cfg, case_no, &mut rng)?;
        let assign_a = dense_assign_with(a, &case.data, &case.centers)?;
        let assign_b = dense_assign_with(b, &case.data, &case.centers)?;
        record(&mut report, case_no, "dense", &assign_a, &assign_b, 0.0, 0.0, case.dup);
    }
    Ok(report)
}

/// [`compare_masked_pair`] against the naive oracle — the registry
/// acceptance entry point.
///
/// # Errors
///
/// See [`compare_masked_pair`].
pub fn compare_masked(candidate: KernelStrategy, cfg: &DiffConfig) -> Result<DiffReport, MvqError> {
    compare_masked_pair(KernelStrategy::Naive, candidate, cfg)
}

/// [`compare_dense_pair`] against the naive oracle.
///
/// # Errors
///
/// See [`compare_dense_pair`].
pub fn compare_dense(candidate: KernelStrategy, cfg: &DiffConfig) -> Result<DiffReport, MvqError> {
    compare_dense_pair(KernelStrategy::Naive, candidate, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(-1.0, f32::from_bits((-1.0f32).to_bits() + 1)), 1);
        // straddling zero: distance is the sum of both sides' offsets
        assert_eq!(ulp_distance(f32::from_bits(2), -f32::from_bits(3)), 5);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u32::MAX);
        // the full finite span still fits in u32 (2 × 0x7F7F_FFFF)
        assert_eq!(ulp_distance(f32::MAX, f32::MIN), 4_278_190_078);
    }

    #[test]
    fn oracle_compared_to_itself_is_exact() {
        let report = compare_masked(KernelStrategy::Naive, &DiffConfig::quick()).unwrap();
        assert_eq!(report.cases, 16);
        assert!(report.assignments_identical(), "{report:?}");
        assert_eq!(report.max_sse_ulp, 0);
        assert!(report.tie_rows > 0, "tie injection never fired");
    }

    #[test]
    fn harness_catches_a_deliberately_broken_kernel() {
        // A "kernel" that breaks ties upward: feed the harness assignments
        // that prefer the higher duplicate and confirm it notices. We
        // simulate by comparing naive against naive but post-processing
        // through record(): simpler to validate record() directly.
        let mut report = DiffReport::default();
        super::record(&mut report, 0, "masked", &[0, 1], &[0, 2], 1.0, 1.0, Some((1, 2)));
        assert_eq!(report.assignment_mismatches, 1);
        assert_eq!(report.tie_break_violations, 1);
        assert!(report.first_divergence.is_some());
        let mut report = DiffReport::default();
        super::record(&mut report, 0, "masked", &[0], &[0], 1.0, 1.0000001, None);
        assert!(report.max_sse_ulp > 0);
    }
}
