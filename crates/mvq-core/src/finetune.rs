//! Codebook fine-tuning with masked gradients (paper §4.6, Fig. 5, Eq. 6).
//!
//! During each step: weights are decoded from (codebook, assignments,
//! mask) for the forward pass; backward produces per-weight gradients;
//! each codeword receives the *masked average* of the gradients of the
//! subvectors assigned to it —
//! `c_i ← c_i − O(Σ_p (∂L/∂v_p ∘ n_p) / Σ_p n_p, θ)` —
//! so zero-gradients of pruned lanes cannot dilute the update. Quantized
//! codebooks are re-snapped to their grid after every step
//! (straight-through estimation).

use mvq_nn::data::SyntheticClassification;
use mvq_nn::layers::Sequential;
use mvq_nn::loss::cross_entropy;
use mvq_nn::optim::{Optimizer, OptimizerKind};
use mvq_nn::Param;
use mvq_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::MvqError;
use crate::model_compress::CompressedModel;

/// Hyperparameters for codebook fine-tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct CodebookFinetuneConfig {
    /// Epochs over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimizer `O(·, θ)` of Eq. 6.
    pub optimizer: OptimizerKind,
}

impl Default for CodebookFinetuneConfig {
    fn default() -> Self {
        CodebookFinetuneConfig { epochs: 2, batch_size: 32, optimizer: OptimizerKind::adam(1e-3) }
    }
}

/// Fine-tunes the codebooks of `compressed` on `data`, keeping
/// `model`'s decoded weights in sync. Returns the mean loss per epoch.
///
/// # Errors
///
/// Propagates model and reconstruction errors.
pub fn finetune_codebooks<R: Rng>(
    model: &mut Sequential,
    compressed: &mut CompressedModel,
    data: &SyntheticClassification,
    cfg: &CodebookFinetuneConfig,
    rng: &mut R,
) -> Result<Vec<f32>, MvqError> {
    if cfg.epochs == 0 || cfg.batch_size == 0 {
        return Err(MvqError::InvalidConfig("epochs and batch_size must be positive".into()));
    }
    let mut opt = Optimizer::new(cfg.optimizer);
    let n = data.n_train();
    let mut order: Vec<usize> = (0..n).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    // wrap each codebook in a Param so the shared optimizer machinery applies
    let mut cb_params: Vec<Param> =
        compressed.codebooks.iter().map(|cb| Param::new(cb.centers().clone())).collect();
    for _ in 0..cfg.epochs {
        order.shuffle(rng);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        let mut start = 0;
        while start < n {
            let end = (start + cfg.batch_size).min(n);
            let (xb, yb) = gather(data, &order[start..end]);
            compressed.apply_to(model)?;
            model.zero_grad();
            let logits = model.forward(&xb, true)?;
            let (loss, grad) = cross_entropy(&logits, &yb)?;
            model.backward(&grad)?;
            accumulate_masked_codebook_grads(model, compressed, &mut cb_params)?;
            for (slot, p) in cb_params.iter_mut().enumerate() {
                opt.step_param(p, slot);
                p.zero_grad();
            }
            // write updated centers back and re-snap to the int grid
            for (cb, p) in compressed.codebooks.iter_mut().zip(&cb_params) {
                *cb.centers_mut() = p.value.clone();
                cb.requantize()?;
            }
            total += loss as f64;
            batches += 1;
            start = end;
        }
        epoch_losses.push((total / batches.max(1) as f64) as f32);
    }
    compressed.apply_to(model)?;
    Ok(epoch_losses)
}

/// Computes Eq. 6's masked codeword gradients from the conv weight
/// gradients currently stored in `model`.
fn accumulate_masked_codebook_grads(
    model: &mut Sequential,
    compressed: &CompressedModel,
    cb_params: &mut [Param],
) -> Result<(), MvqError> {
    // gather conv weight grads by depth-first index
    let mut grads: Vec<Tensor> = Vec::new();
    model.visit_convs_mut(&mut |conv| grads.push(conv.weight.grad.clone()));
    // per-codebook lane-wise numerator and denominator
    let mut sums: Vec<Vec<f64>> = cb_params.iter().map(|p| vec![0.0f64; p.value.numel()]).collect();
    let mut counts: Vec<Vec<f64>> = sums.clone();
    let d = compressed.entries.first().map(|e| e.mask.d()).unwrap_or(0);
    for entry in &compressed.entries {
        let g4 = &grads[entry.conv_index];
        let grouped = compressed.grouping().group(g4, d)?;
        let sum = &mut sums[entry.codebook_id];
        let count = &mut counts[entry.codebook_id];
        for j in 0..entry.mask.ng() {
            let i = entry.assignments.of(j);
            let grow = grouped.row(j);
            let mrow = entry.mask.row(j);
            for t in 0..d {
                if mrow[t] {
                    sum[i * d + t] += grow[t] as f64;
                    count[i * d + t] += 1.0;
                }
            }
        }
    }
    for (p, (sum, count)) in cb_params.iter_mut().zip(sums.iter().zip(&counts)) {
        for (g, (&s, &c)) in p.grad.data_mut().iter_mut().zip(sum.iter().zip(count)) {
            *g = if c > 0.0 { (s / c) as f32 } else { 0.0 };
        }
    }
    Ok(())
}

fn gather(data: &SyntheticClassification, idx: &[usize]) -> (Tensor, Vec<usize>) {
    let dims = data.train_images.dims();
    let per = dims[1] * dims[2] * dims[3];
    let mut buf = Vec::with_capacity(idx.len() * per);
    let mut labels = Vec::with_capacity(idx.len());
    for &i in idx {
        buf.extend_from_slice(&data.train_images.data()[i * per..(i + 1) * per]);
        labels.push(data.train_labels[i]);
    }
    (
        Tensor::from_vec(vec![idx.len(), dims[1], dims[2], dims[3]], buf).expect("sized buffer"),
        labels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::MvqConfig;
    use crate::model_compress::ModelCompressor;
    use mvq_nn::models::tiny_cnn;
    use mvq_nn::optim::{Optimizer as NnOpt, OptimizerKind as NnOptKind};
    use mvq_nn::train::{evaluate_classifier, train_classifier, TrainConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finetune_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(0);
        let data = SyntheticClassification::generate(3, 96, 48, 8, &mut rng);
        let mut model = tiny_cnn(3, 8, &mut rng);
        // train briefly so compression has something to recover
        let tc = TrainConfig { epochs: 4, batch_size: 32, ..TrainConfig::default() };
        train_classifier(
            &mut model,
            &data,
            &tc,
            &mut NnOpt::new(NnOptKind::sgd(0.05, 0.9, 0.0)),
            &mut rng,
        )
        .unwrap();
        let acc_before = evaluate_classifier(&mut model, &data).unwrap();
        // fp32 codebook isolates the gradient path from grid-snap noise
        let cfg = MvqConfig::new(8, 16, 4, 16).unwrap().with_codebook_bits(None);
        let mut compressed = ModelCompressor::new(cfg).compress(&mut model, &mut rng).unwrap();
        let ft = CodebookFinetuneConfig {
            epochs: 3,
            batch_size: 32,
            optimizer: OptimizerKind::adam(5e-3),
        };
        let losses = finetune_codebooks(&mut model, &mut compressed, &data, &ft, &mut rng).unwrap();
        assert!(
            losses.first().unwrap() > losses.last().unwrap(),
            "fine-tuning should reduce loss: {losses:?}"
        );
        let acc_after = evaluate_classifier(&mut model, &data).unwrap();
        // sanity: fine-tuned compressed model is a working classifier
        assert!(acc_after >= 0.2, "acc {acc_after} (dense was {acc_before})");
    }

    #[test]
    fn quantized_codebooks_stay_on_grid() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = SyntheticClassification::generate(3, 32, 16, 8, &mut rng);
        let mut model = tiny_cnn(3, 8, &mut rng);
        let cfg = MvqConfig::new(8, 16, 4, 16).unwrap();
        let mut compressed = ModelCompressor::new(cfg).compress(&mut model, &mut rng).unwrap();
        let ft = CodebookFinetuneConfig { epochs: 1, batch_size: 16, ..Default::default() };
        finetune_codebooks(&mut model, &mut compressed, &data, &ft, &mut rng).unwrap();
        for cb in &compressed.codebooks {
            let s = cb.scale().expect("quantized");
            for &v in cb.centers().data() {
                let steps = v / s;
                assert!((steps - steps.round()).abs() < 1e-3, "{v} off-grid (s={s})");
            }
        }
    }

    #[test]
    fn model_weights_match_decode_after_finetune() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = SyntheticClassification::generate(3, 32, 16, 8, &mut rng);
        let mut model = tiny_cnn(3, 8, &mut rng);
        let cfg = MvqConfig::new(8, 16, 8, 16).unwrap();
        let mut compressed = ModelCompressor::new(cfg).compress(&mut model, &mut rng).unwrap();
        let ft = CodebookFinetuneConfig { epochs: 1, batch_size: 16, ..Default::default() };
        finetune_codebooks(&mut model, &mut compressed, &data, &ft, &mut rng).unwrap();
        // model weights equal the decoded representation
        let mut weights = Vec::new();
        model.visit_convs_mut(&mut |c| weights.push(c.weight.value.clone()));
        for (idx, e) in compressed.entries.iter().enumerate() {
            let w = compressed.reconstruct_entry(e).unwrap();
            assert_eq!(w.data(), weights[e.conv_index].data(), "entry {idx}");
        }
    }

    #[test]
    fn rejects_zero_epochs() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = SyntheticClassification::generate(2, 8, 4, 8, &mut rng);
        let mut model = tiny_cnn(2, 8, &mut rng);
        let cfg = MvqConfig::new(4, 16, 4, 16).unwrap();
        let mut compressed = ModelCompressor::new(cfg).compress(&mut model, &mut rng).unwrap();
        let ft = CodebookFinetuneConfig { epochs: 0, batch_size: 16, ..Default::default() };
        assert!(finetune_codebooks(&mut model, &mut compressed, &data, &ft, &mut rng).is_err());
    }
}
