//! # mvq-core — Masked Vector Quantization
//!
//! The paper's primary contribution (§4): a DNN weight-compression pipeline
//! that (1) groups weights into subvectors, (2) removes unimportant weights
//! with N:M pruning, (3) clusters the survivors with a *masked k-means*
//! whose assignment distances and centroid updates ignore pruned lanes,
//! (4) quantizes the codebook to int8 with an LSQ-learned scale, and
//! (5) fine-tunes codewords with masked gradients (Eq. 6).
//!
//! Also included: the VQ baselines the paper compares against (plain VQ
//! cases A/B/C of the ablation, PQF, BGD, DKM, PvQ) and the storage/FLOPs
//! metrics of Eq. 7. All algorithms — MVQ and every baseline — implement
//! the [`Compressor`] trait and are reachable by name through
//! [`pipeline::registry`], so benchmarks and tools dispatch them from one
//! loop.
//!
//! ## Kernel strategies and the naive-as-oracle convention
//!
//! The distance/assignment hot loops inside every clustering algorithm
//! dispatch through [`kernels`], selected by a [`KernelStrategy`] knob on
//! [`PipelineSpec`] (and on [`MvqConfig`] / [`KmeansConfig`]):
//!
//! * `Naive` — the per-row reference kernels. These are the **oracle**:
//!   deliberately simple, fixed left-to-right accumulation, no tricks.
//! * `Blocked` (default) — cache-blocked, LUT-masked kernels that are
//!   **bit-identical** to the oracle: same assignments, 0-ULP-identical
//!   SSE, hence identical artifacts for every registry algorithm.
//! * `Simd` — explicitly lane-parallel kernels (8-lane f32 chunks with
//!   per-lane accumulators; optional runtime-detected AVX backend behind
//!   the `simd-intrinsics` feature). **Assignment-identical** to the
//!   oracle with ties broken to the lowest index, but the reassociated
//!   f32 adds put its SSE within the pinned [`REASSOC_SSE_ULP_BOUND`]
//!   ULPs rather than at 0.
//! * `Minibatch` — per-iteration sampled k-means batches
//!   ([`masked_kmeans_minibatch`]); deterministic for a fixed seed but not
//!   bit-identical to full-batch runs.
//!
//! The testing convention: **a new kernel must not be dispatched from the
//! registry until the differential oracle harness ([`differential`],
//! driven by `tests/properties.rs`) proves it against the naive oracle**
//! over ≥ 256 randomized shapes/masks/seeds — exact assignment equality
//! plus 0-ULP SSE for order-preserving kernels, or exact assignments +
//! lowest-index tie-breaking + SSE within a pinned ULP bound for
//! reassociating kernels — and `tests/conformance.rs` shows matching
//! registry artifacts, in debug *and* `--release` builds (plus CI's
//! `target-cpu=native` leg), since optimization- and target-feature-
//! dependent reassociation is exactly the class of bug this harness
//! exists to catch.
//!
//! ## Durable artifacts and the serve layer
//!
//! [`store`] gives every artifact kind a versioned, checksummed binary
//! form ([`store::Persist`]: `to_bytes`/`from_bytes`, 0-ULP-identical on
//! decode) and a sharded, content-addressed [`store::ArtifactCache`]
//! keyed by weight hash + [`PipelineSpec::fingerprint`] + algorithm +
//! kernel + seed. Blobs are validated once at admission and served
//! zero-copy as shared bytes; byte budgets ([`store::CacheBudget`]) are
//! enforced by reserve-then-insert LRU eviction, so footprints never
//! exceed their caps. The `mvq-serve` crate builds the ticket-based
//! compression service on top. Bump [`store::FORMAT_VERSION`] on any
//! layout change and keep a decode test for the old version.
//!
//! ## Streaming model compression
//!
//! [`stream`] compresses whole models without materializing them:
//! [`stream_compress`] pulls layers one at a time from a [`LayerStream`]
//! into a bounded window ([`StreamConfig`]: max in-flight layers ×
//! bytes), compresses them on worker threads through any registry
//! [`Compressor`], and spills each finished layer to the cache as its
//! own blob under [`store::CacheKey::layer_key`], with a
//! [`store::ModelIndex`] stored under the model key.
//! [`load_streamed_model`] reassembles the [`ModelArtifacts`], which are
//! **bit-identical** to the in-memory
//! [`Compressor::compress_model_artifacts`] path for every registry
//! algorithm — the in-memory path is the streaming path's oracle.
//! Per-layer progress is observable through a [`ProgressHandle`].
//!
//! ## Quick example
//!
//! ```
//! use mvq_core::pipeline::{by_name, PipelineSpec};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let weights = mvq_tensor::kaiming_normal(vec![256, 16], 16, &mut rng);
//! // k=64, d=16, 4:16 pruning — the paper's ResNet operating point
//! let mvq = by_name("mvq", &PipelineSpec::default())?;
//! let compressed = mvq.compress_matrix(&weights, &mut rng)?;
//! let w_hat = compressed.reconstruct()?;
//! // pruned positions are exactly zero
//! assert!(w_hat.sparsity() >= 0.74);
//! assert!(compressed.compression_ratio() > 10.0);
//! # Ok::<(), mvq_core::MvqError>(())
//! ```

// Indexed loops are the clearer idiom for the numeric kernels here.
#![allow(clippy::needless_range_loop)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod baselines;

mod codebook;
mod compress;
pub mod differential;
mod error;
pub mod experiments;
mod finetune;
mod grouping;
pub mod kernels;
mod kmeans;
mod mask;
mod mask_lut;
mod masked_kmeans;
mod metrics;
mod mixed_nm;
mod model_compress;
pub mod pipeline;
mod pruning;
pub mod store;
pub mod stream;

pub use codebook::{Assignments, Codebook};
pub use compress::{CompressedMatrix, MvqCompressor, MvqConfig};
pub use error::MvqError;
pub use finetune::{finetune_codebooks, CodebookFinetuneConfig};
pub use grouping::GroupingStrategy;
pub use kernels::{
    default_minibatch_size, dense_assign_naive, dense_assign_with, masked_assign_with,
    masked_sse_with, KernelStrategy, MaskedDistancePlan, REASSOC_SSE_ULP_BOUND, SIMD_CHUNK,
};
pub use kmeans::{kmeans, KmeansConfig, KmeansResult};
pub use mask::NmMask;
pub use mask_lut::MaskLut;
pub use masked_kmeans::{
    masked_assign_naive, masked_kmeans, masked_kmeans_minibatch, masked_kmeans_minibatch_chunked,
    masked_sse,
};
pub use metrics::{mvq_compression_ratio, vq_compression_ratio, StorageBreakdown};
pub use mixed_nm::{search_mixed_nm, LayerPattern, MixedNmPlan};
pub use model_compress::{
    ClusterScope, CompressedModel, LayerCodebook, ModelCompressor, Parallelism,
};
pub use pipeline::{CompressedArtifact, Compressor, LayerArtifact, ModelArtifacts, PipelineSpec};
pub use pruning::{
    prune_matrix_nm, prune_model, sparse_finetune, PruneMethod, SparseFinetuneConfig,
};
pub use store::{weight_hash, ArtifactCache, CacheBudget, CacheKey, CacheStats, Persist};
pub use stream::{
    load_streamed_model, model_cache_key, model_weight_hash, stream_compress,
    stream_compress_model, LayerMeta, LayerStream, ModelLayerStream, Progress, ProgressHandle,
    StreamConfig, StreamReport,
};
