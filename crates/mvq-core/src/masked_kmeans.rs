//! Masked k-means (paper §4.4): the clustering step of MVQ.
//!
//! Two modifications to standard k-means:
//!
//! * **masked assignment** (Eq. 2) — the distance between subvector `w_j`
//!   and codeword `c` only counts unpruned lanes:
//!   `c_i = argmin_c ‖w_j − c ∘ bm_j‖²`;
//! * **masked update** (Eq. 3/4) — each codeword lane is the mean of the
//!   *unpruned* values assigned to it: `c*_i = Σ_p v_p / Σ_p n_p`
//!   (elementwise), so the flood of structural zeros cannot drag important
//!   lanes toward zero.
//!
//! ## Implementation note (the ablation benchmarked in `mvq-bench`)
//!
//! Because pruned lanes of `w_j` are exactly zero, the masked distance
//! factors as `‖w_j‖² − 2·w_j·c + ‖c ∘ bm_j‖²`: only the *codeword norm*
//! term depends on the mask. Subvectors sharing a mask pattern share that
//! term, so we group rows by pattern (at most `C(M,N)^(d/M)` patterns, far
//! fewer in practice) and compute one GEMM for the cross terms — the same
//! trick the paper implements with broadcast `torch.cdist` batches, but
//! cheaper. A naive per-row reference ([`masked_assign_naive`]) validates
//! it in tests.

use std::collections::HashMap;

use mvq_tensor::{matmul_transpose_b, Tensor};
use rand::Rng;

use crate::codebook::{Assignments, Codebook};
use crate::error::MvqError;
use crate::kmeans::{check_data, kmeanspp_init, KmeansConfig, KmeansResult};
use crate::mask::NmMask;

/// Runs masked k-means over `data` (`[NG, d]`, pruned lanes zero) with its
/// N:M `mask`.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] when data/mask dims disagree or the
/// config is degenerate.
pub fn masked_kmeans<R: Rng>(
    data: &Tensor,
    mask: &NmMask,
    cfg: &KmeansConfig,
    rng: &mut R,
) -> Result<KmeansResult, MvqError> {
    let (ng, d) = check_data(data, cfg.k)?;
    if mask.ng() != ng || mask.d() != d {
        return Err(MvqError::InvalidConfig(format!(
            "mask [{}, {}] does not match data [{ng}, {d}]",
            mask.ng(),
            mask.d()
        )));
    }
    let k = cfg.k.min(ng);
    let mut centers = kmeanspp_init(data, k, rng);
    let mut assign = vec![0u32; ng];
    let pattern_ids = pattern_index(mask);
    let mut iterations = 0;
    for iter in 0..cfg.max_iters {
        iterations = iter + 1;
        let changed = masked_assign(data, mask, &pattern_ids, &centers, &mut assign);
        masked_update(data, mask, &mut centers, &assign, rng);
        if (changed as f64) < cfg.tol_frac * ng as f64 {
            break;
        }
    }
    masked_assign(data, mask, &pattern_ids, &centers, &mut assign);
    let sse = masked_sse_raw(data, mask, &centers, &assign);
    Ok(KmeansResult {
        codebook: Codebook::new(centers)?,
        assignments: Assignments::new(assign, k)?,
        sse,
        iterations,
    })
}

/// Masked SSE (Eq. 1): `Σ_j ‖w_j − q(w_j) ∘ bm_j‖²` for an existing
/// codebook/assignment pair.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] on dimension mismatches.
pub fn masked_sse(
    data: &Tensor,
    mask: &NmMask,
    codebook: &Codebook,
    assignments: &Assignments,
) -> Result<f32, MvqError> {
    if data.rank() != 2
        || data.dims() != [mask.ng(), mask.d()]
        || assignments.len() != mask.ng()
        || codebook.d() != mask.d()
    {
        return Err(MvqError::InvalidConfig(
            "data, mask, codebook and assignments must agree in shape".into(),
        ));
    }
    Ok(masked_sse_raw(data, mask, codebook.centers(), assignments.indices()))
}

fn masked_sse_raw(data: &Tensor, mask: &NmMask, centers: &Tensor, assign: &[u32]) -> f32 {
    let ng = data.dims()[0];
    let d = data.dims()[1];
    let mut sse = 0.0f64;
    for j in 0..ng {
        let row = data.row(j);
        let c = centers.row(assign[j] as usize);
        let m = mask.row(j);
        for t in 0..d {
            let ct = if m[t] { c[t] } else { 0.0 };
            let e = row[t] - ct;
            sse += (e * e) as f64;
        }
    }
    sse as f32
}

/// Maps each subvector to a dense pattern id; patterns are the distinct
/// mask rows.
fn pattern_index(mask: &NmMask) -> PatternIndex {
    let mut ids = Vec::with_capacity(mask.ng());
    let mut patterns: Vec<Vec<bool>> = Vec::new();
    let mut lookup: HashMap<Vec<bool>, usize> = HashMap::new();
    for j in 0..mask.ng() {
        let row = mask.row(j).to_vec();
        let id = *lookup.entry(row.clone()).or_insert_with(|| {
            patterns.push(row);
            patterns.len() - 1
        });
        ids.push(id);
    }
    PatternIndex { ids, patterns }
}

struct PatternIndex {
    ids: Vec<usize>,
    patterns: Vec<Vec<bool>>,
}

/// Factored masked assignment; returns the number of changed assignments.
fn masked_assign(
    data: &Tensor,
    _mask: &NmMask,
    patterns: &PatternIndex,
    centers: &Tensor,
    assign: &mut [u32],
) -> usize {
    let ng = data.dims()[0];
    let d = data.dims()[1];
    let k = centers.dims()[0];
    // cross terms via one GEMM: [ng, k]
    let xc = matmul_transpose_b(data, centers).expect("validated shapes");
    // masked codeword norms per pattern: [n_patterns][k]
    let mut mnorm = vec![vec![0.0f32; k]; patterns.patterns.len()];
    for (p, pat) in patterns.patterns.iter().enumerate() {
        for i in 0..k {
            let c = centers.row(i);
            let mut acc = 0.0f32;
            for t in 0..d {
                if pat[t] {
                    acc += c[t] * c[t];
                }
            }
            mnorm[p][i] = acc;
        }
    }
    let mut changed = 0usize;
    for j in 0..ng {
        let norms = &mnorm[patterns.ids[j]];
        let row = xc.row(j);
        let mut best = 0usize;
        let mut best_v = f32::INFINITY;
        for i in 0..k {
            let v = norms[i] - 2.0 * row[i];
            if v < best_v {
                best_v = v;
                best = i;
            }
        }
        if assign[j] != best as u32 {
            assign[j] = best as u32;
            changed += 1;
        }
    }
    changed
}

/// Naive reference for the masked assignment (Eq. 2), O(NG·k·d) with
/// explicit masking. Used by tests and the `masked_kmeans` Criterion bench
/// to quantify the factored implementation's speedup.
pub fn masked_assign_naive(data: &Tensor, mask: &NmMask, centers: &Tensor) -> Vec<u32> {
    let ng = data.dims()[0];
    let d = data.dims()[1];
    let k = centers.dims()[0];
    let mut assign = vec![0u32; ng];
    for j in 0..ng {
        let row = data.row(j);
        let m = mask.row(j);
        let mut best = 0usize;
        let mut best_v = f32::INFINITY;
        for i in 0..k {
            let c = centers.row(i);
            let mut acc = 0.0f32;
            for t in 0..d {
                let ct = if m[t] { c[t] } else { 0.0 };
                let e = row[t] - ct;
                acc += e * e;
            }
            if acc < best_v {
                best_v = acc;
                best = i;
            }
        }
        assign[j] = best as u32;
    }
    assign
}

/// Masked update (Eq. 4): per-lane weighted average over unpruned entries.
fn masked_update<R: Rng>(
    data: &Tensor,
    mask: &NmMask,
    centers: &mut Tensor,
    assign: &[u32],
    rng: &mut R,
) {
    let ng = data.dims()[0];
    let d = data.dims()[1];
    let k = centers.dims()[0];
    let mut sums = vec![0.0f64; k * d];
    let mut counts = vec![0.0f64; k * d];
    let mut members = vec![0usize; k];
    for j in 0..ng {
        let i = assign[j] as usize;
        members[i] += 1;
        let row = data.row(j);
        let m = mask.row(j);
        for t in 0..d {
            if m[t] {
                sums[i * d + t] += row[t] as f64;
                counts[i * d + t] += 1.0;
            }
        }
    }
    for i in 0..k {
        if members[i] == 0 {
            let j = rng.gen_range(0..ng);
            centers.row_mut(i).copy_from_slice(data.row(j));
            continue;
        }
        let c = centers.row_mut(i);
        for t in 0..d {
            if counts[i * d + t] > 0.0 {
                c[t] = (sums[i * d + t] / counts[i * d + t]) as f32;
            }
            // lanes never unmasked keep their previous value: pruned
            // weights do not rely on the codeword (paper §4.4)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::prune_matrix_nm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pruned_random(ng: usize, d: usize, n: usize, m: usize, seed: u64) -> (Tensor, NmMask) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = mvq_tensor::uniform(vec![ng, d], -1.0, 1.0, &mut rng);
        prune_matrix_nm(&w, n, m).unwrap()
    }

    #[test]
    fn factored_assignment_matches_naive() {
        let (data, mask) = pruned_random(64, 8, 2, 4, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let centers = kmeanspp_init(&data, 7, &mut rng);
        let naive = masked_assign_naive(&data, &mask, &centers);
        let patterns = pattern_index(&mask);
        let mut fast = vec![0u32; 64];
        masked_assign(&data, &mask, &patterns, &centers, &mut fast);
        assert_eq!(naive, fast);
    }

    #[test]
    fn masked_beats_unmasked_on_masked_sse() {
        // The defining property (paper Tab. 3): on sparse weights, masked
        // k-means reaches lower masked SSE than plain k-means.
        let (data, mask) = pruned_random(512, 16, 4, 16, 2);
        let cfg = KmeansConfig::new(16);
        let masked = masked_kmeans(&data, &mask, &cfg, &mut StdRng::seed_from_u64(3)).unwrap();
        let plain =
            crate::kmeans::kmeans(&data, &cfg, None, &mut StdRng::seed_from_u64(3)).unwrap();
        let plain_masked_sse =
            masked_sse(&data, &mask, &plain.codebook, &plain.assignments).unwrap();
        assert!(masked.sse < plain_masked_sse, "masked {} !< plain {plain_masked_sse}", masked.sse);
    }

    #[test]
    fn masked_sse_is_result_sse() {
        let (data, mask) = pruned_random(128, 8, 2, 4, 4);
        let res = masked_kmeans(&data, &mask, &KmeansConfig::new(8), &mut StdRng::seed_from_u64(5))
            .unwrap();
        let recomputed = masked_sse(&data, &mask, &res.codebook, &res.assignments).unwrap();
        assert!((res.sse - recomputed).abs() < 1e-3);
    }

    #[test]
    fn identical_rows_cluster_perfectly() {
        // all subvectors equal and fully masked the same way => SSE 0 with k=1
        let row = [1.0f32, 2.0, 0.0, 0.0];
        let data = Tensor::from_vec(vec![8, 4], row.repeat(8)).unwrap();
        let mask = NmMask::from_bits(8, 4, 2, 4, [true, true, false, false].repeat(8)).unwrap();
        let res = masked_kmeans(&data, &mask, &KmeansConfig::new(1), &mut StdRng::seed_from_u64(6))
            .unwrap();
        assert!(res.sse < 1e-9);
        // codeword's masked lanes match the data
        assert!((res.codebook.codeword(0)[0] - 1.0).abs() < 1e-6);
        assert!((res.codebook.codeword(0)[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn complementary_masks_share_codeword() {
        // Two groups with disjoint masks can share one codeword perfectly:
        // the masked update fills each lane from the group that keeps it.
        let mut data = Vec::new();
        let mut bits = Vec::new();
        for j in 0..10 {
            if j % 2 == 0 {
                data.extend_from_slice(&[0.7, 0.7, 0.0, 0.0]);
                bits.extend_from_slice(&[true, true, false, false]);
            } else {
                data.extend_from_slice(&[0.0, 0.0, 0.5, 0.5]);
                bits.extend_from_slice(&[false, false, true, true]);
            }
        }
        let data = Tensor::from_vec(vec![10, 4], data).unwrap();
        let mask = NmMask::from_bits(10, 4, 2, 4, bits).unwrap();
        let res = masked_kmeans(&data, &mask, &KmeansConfig::new(1), &mut StdRng::seed_from_u64(7))
            .unwrap();
        assert!(res.sse < 1e-9, "sse {}", res.sse);
        let c = res.codebook.codeword(0);
        assert!((c[0] - 0.7).abs() < 1e-6 && (c[3] - 0.5).abs() < 1e-6, "{c:?}");
    }

    #[test]
    fn validates_mismatched_mask() {
        let (data, _) = pruned_random(16, 8, 2, 4, 8);
        let (_, other_mask) = pruned_random(8, 8, 2, 4, 9);
        let cfg = KmeansConfig::new(4);
        assert!(masked_kmeans(&data, &other_mask, &cfg, &mut StdRng::seed_from_u64(0)).is_err());
    }

    #[test]
    fn more_codewords_reduce_masked_sse() {
        let (data, mask) = pruned_random(256, 16, 4, 16, 10);
        let s4 = masked_kmeans(&data, &mask, &KmeansConfig::new(4), &mut StdRng::seed_from_u64(1))
            .unwrap()
            .sse;
        let s64 =
            masked_kmeans(&data, &mask, &KmeansConfig::new(64), &mut StdRng::seed_from_u64(1))
                .unwrap()
                .sse;
        assert!(s64 < s4);
    }
}
