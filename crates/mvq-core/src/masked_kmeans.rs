//! Masked k-means (paper §4.4): the clustering step of MVQ.
//!
//! Two modifications to standard k-means:
//!
//! * **masked assignment** (Eq. 2) — the distance between subvector `w_j`
//!   and codeword `c` only counts unpruned lanes:
//!   `c_i = argmin_c ‖w_j − c ∘ bm_j‖²`;
//! * **masked update** (Eq. 3/4) — each codeword lane is the mean of the
//!   *unpruned* values assigned to it: `c*_i = Σ_p v_p / Σ_p n_p`
//!   (elementwise), so the flood of structural zeros cannot drag important
//!   lanes toward zero.
//!
//! ## Kernel dispatch
//!
//! The assignment/SSE hot loops run through [`crate::kernels`], selected
//! by [`KmeansConfig::kernel`]: the per-row naive oracle, the cache-blocked
//! LUT-masked kernel (bit-identical to the oracle, the default), the
//! lane-parallel SIMD kernel (assignment-identical, SSE within the pinned
//! ULP bound), or minibatch iterations ([`masked_kmeans_minibatch`]) that
//! sample a batch of live subvectors per step — deterministic for a fixed
//! seed, and the crosslayer scope's answer to clustering millions of
//! subvectors at once. [`masked_assign_naive`] remains the reference every
//! kernel is differentially tested against (see [`crate::differential`]).

use mvq_tensor::Tensor;
use rand::Rng;

use crate::codebook::{Assignments, Codebook};
use crate::error::MvqError;
use crate::kernels::{
    default_minibatch_size, masked_assign_blocked_into, masked_assign_step, masked_sse_blocked,
    masked_sse_simd, KernelStrategy, MaskedDistancePlan,
};
use crate::kmeans::{check_data, kmeanspp_init, KmeansConfig, KmeansResult};
use crate::mask::NmMask;

/// Runs masked k-means over `data` (`[NG, d]`, pruned lanes zero) with its
/// N:M `mask`, dispatching the hot loops through the kernel named by
/// `cfg.kernel`.
///
/// Under [`KernelStrategy::Minibatch`] this delegates to
/// [`masked_kmeans_minibatch`] with [`default_minibatch_size`], clamping
/// `k` to the number of live (not all-zero) subvectors.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] when data/mask dims disagree or the
/// config is degenerate.
pub fn masked_kmeans<R: Rng>(
    data: &Tensor,
    mask: &NmMask,
    cfg: &KmeansConfig,
    rng: &mut R,
) -> Result<KmeansResult, MvqError> {
    let (ng, d) = check_data(data, cfg.k)?;
    if mask.ng() != ng || mask.d() != d {
        return Err(MvqError::InvalidConfig(format!(
            "mask [{}, {}] does not match data [{ng}, {d}]",
            mask.ng(),
            mask.d()
        )));
    }
    if cfg.kernel == KernelStrategy::Minibatch {
        let live = live_rows(data);
        if live.is_empty() {
            return Err(MvqError::InvalidConfig(
                "all subvectors are zero; nothing to cluster".into(),
            ));
        }
        let k = cfg.k.min(live.len());
        let batch = default_minibatch_size(live.len(), k);
        return minibatch_impl(data, mask, k, cfg.max_iters, batch, &live, rng);
    }
    let k = cfg.k.min(ng);
    let mut centers = kmeanspp_init(data, k, rng);
    let mut assign = vec![0u32; ng];
    // the naive oracle path never reads the plan; only build it for the
    // blocked kernel
    let plan = match cfg.kernel {
        KernelStrategy::Naive => None,
        _ => Some(MaskedDistancePlan::new(mask)?),
    };
    let mut iterations = 0;
    for iter in 0..cfg.max_iters {
        iterations = iter + 1;
        let changed =
            masked_assign_step(cfg.kernel, data, mask, plan.as_ref(), &centers, &mut assign);
        masked_update(data, mask, &mut centers, &assign, rng);
        if (changed as f64) < cfg.tol_frac * ng as f64 {
            break;
        }
    }
    masked_assign_step(cfg.kernel, data, mask, plan.as_ref(), &centers, &mut assign);
    // each strategy reports SSE through its own kernel: 0-ULP identical
    // for the order-preserving ones, ULP-bounded for `Simd`
    let sse = match (&plan, cfg.kernel) {
        (None, _) => masked_sse_naive(data, mask, &centers, &assign),
        (Some(plan), KernelStrategy::Simd) => masked_sse_simd(data, plan, &centers, &assign),
        (Some(plan), _) => masked_sse_blocked(data, plan, &centers, &assign),
    };
    Ok(KmeansResult {
        codebook: Codebook::new(centers)?,
        assignments: Assignments::new(assign, k)?,
        sse,
        iterations,
    })
}

/// Minibatch masked k-means: each iteration samples `batch_size` live
/// subvectors (uniformly, with replacement, from `rng`) and applies the
/// per-lane streaming update `c_t ← c_t + (w_t − c_t) / n_t` of Sculley's
/// minibatch k-means, restricted to unpruned lanes. The final assignment
/// and SSE are computed over the *full* dataset with the blocked kernel.
///
/// Dead (all-zero) subvectors are skipped consistently: they are excluded
/// from k-means++ seeding and from batch sampling — mirroring the
/// dead-layer skip in the model fan-out — so their structural zeros never
/// drag codewords down. They still receive a (nearest-codeword) assignment
/// in the returned result.
///
/// Deterministic for a fixed seed: the result depends only on `data`,
/// `mask`, `cfg`, `batch_size`, and the rng state.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] when data/mask dims disagree,
/// `batch_size == 0`, every subvector is zero, or `cfg.k` exceeds the
/// number of live subvectors (the strategy-dispatch path in
/// [`masked_kmeans`] clamps `k` instead).
pub fn masked_kmeans_minibatch<R: Rng>(
    data: &Tensor,
    mask: &NmMask,
    cfg: &KmeansConfig,
    batch_size: usize,
    rng: &mut R,
) -> Result<KmeansResult, MvqError> {
    let (ng, d) = check_data(data, cfg.k)?;
    if mask.ng() != ng || mask.d() != d {
        return Err(MvqError::InvalidConfig(format!(
            "mask [{}, {}] does not match data [{ng}, {d}]",
            mask.ng(),
            mask.d()
        )));
    }
    if batch_size == 0 {
        return Err(MvqError::InvalidConfig("minibatch size must be positive".into()));
    }
    let live = live_rows(data);
    if live.is_empty() {
        return Err(MvqError::InvalidConfig("all subvectors are zero; nothing to cluster".into()));
    }
    if cfg.k > live.len() {
        return Err(MvqError::InvalidConfig(format!(
            "k = {} exceeds the {} live subvectors available to minibatch sampling",
            cfg.k,
            live.len()
        )));
    }
    minibatch_impl(data, mask, cfg.k, cfg.max_iters, batch_size, &live, rng)
}

/// The minibatch loop proper; `live` is the precomputed non-dead row set
/// (both entry points validate before calling, so the full-data scan runs
/// exactly once even on the dispatch path).
fn minibatch_impl<R: Rng>(
    data: &Tensor,
    mask: &NmMask,
    k: usize,
    max_iters: usize,
    batch_size: usize,
    live: &[usize],
    rng: &mut R,
) -> Result<KmeansResult, MvqError> {
    let ng = data.dims()[0];
    let d = data.dims()[1];
    // Seeding and sampling run over the live subset only, so the result is
    // identical whether or not dead rows are present in `data`.
    let mut live_data = Tensor::zeros(vec![live.len(), d]);
    for (r, &j) in live.iter().enumerate() {
        live_data.row_mut(r).copy_from_slice(data.row(j));
    }
    let mut centers = kmeanspp_init(&live_data, k, rng);
    let plan = MaskedDistancePlan::new(mask)?;
    let mut counts = vec![0u64; k * d];
    for _ in 0..max_iters {
        for _ in 0..batch_size {
            let j = live[rng.gen_range(0..live.len())];
            let i = nearest_masked(data.row(j), &plan, j, &centers) as usize;
            let row = data.row(j);
            let mrow = mask.row(j);
            let c = centers.row_mut(i);
            for t in 0..d {
                if mrow[t] {
                    counts[i * d + t] += 1;
                    c[t] += (row[t] - c[t]) / counts[i * d + t] as f32;
                }
            }
        }
    }
    let mut assign = vec![0u32; ng];
    masked_assign_blocked_into(data, &plan, &centers, &mut assign);
    let sse = masked_sse_blocked(data, &plan, &centers, &assign);
    Ok(KmeansResult {
        codebook: Codebook::new(centers)?,
        assignments: Assignments::new(assign, k)?,
        sse,
        iterations: max_iters,
    })
}

/// Minibatch masked k-means over per-layer `(pruned, mask)` chunks —
/// the crosslayer scope's streaming form. **Bit-identical** to
/// [`masked_kmeans_minibatch`] over the chunks' concatenation, without
/// ever materializing the concatenated matrix or mask: seeding and batch
/// sampling address rows through a chunk map, each chunk keeps its own
/// [`MaskedDistancePlan`] (plans are row-local, so per-chunk rows equal
/// the concatenation's), and the final SSE threads a single f64
/// accumulator across chunks in row order.
///
/// `batch_size = None` mirrors the [`masked_kmeans`] strategy dispatch:
/// `k` is clamped to the live-row count and the batch is
/// [`default_minibatch_size`]. `Some(b)` mirrors
/// [`masked_kmeans_minibatch`]'s strict `k` validation.
///
/// Returns assignments over the **concatenated** row space (chunk 0's
/// rows first), so callers slice per chunk exactly as they would after a
/// monolithic run.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] when chunks are empty or disagree
/// in `d`/N:M, every subvector is zero, `batch_size == 0`, or (with
/// `Some`) `cfg.k` exceeds the live-row count.
pub fn masked_kmeans_minibatch_chunked<R: Rng>(
    chunks: &[(&Tensor, &NmMask)],
    cfg: &KmeansConfig,
    batch_size: Option<usize>,
    rng: &mut R,
) -> Result<KmeansResult, MvqError> {
    if chunks.is_empty() {
        return Err(MvqError::InvalidConfig("chunked minibatch needs at least one chunk".into()));
    }
    if cfg.k == 0 {
        return Err(MvqError::InvalidConfig("k must be positive".into()));
    }
    let (d, keep_n, m) = {
        let (_, mask0) = chunks[0];
        (mask0.d(), mask0.keep_n(), mask0.m())
    };
    let mut map: Vec<(u32, u32)> = Vec::new();
    let mut total_ng = 0usize;
    for (c, (data, mask)) in chunks.iter().enumerate() {
        if data.rank() != 2 || data.dims()[1] != d {
            return Err(MvqError::InvalidConfig(format!(
                "chunk {c} is {:?}, expected [NG, {d}]",
                data.dims()
            )));
        }
        let ng = data.dims()[0];
        if mask.ng() != ng || mask.d() != d || mask.keep_n() != keep_n || mask.m() != m {
            return Err(MvqError::InvalidConfig(format!(
                "chunk {c} mask [{}, {}] ({}:{}) does not match its data [{ng}, {d}] ({keep_n}:{m})",
                mask.ng(),
                mask.d(),
                mask.keep_n(),
                mask.m()
            )));
        }
        for r in 0..ng {
            if data.row(r).iter().any(|&x| x != 0.0) {
                map.push((c as u32, r as u32));
            }
        }
        total_ng += ng;
    }
    if map.is_empty() {
        return Err(MvqError::InvalidConfig("all subvectors are zero; nothing to cluster".into()));
    }
    let (k, batch) = match batch_size {
        None => {
            let k = cfg.k.min(map.len());
            (k, default_minibatch_size(map.len(), k))
        }
        Some(b) => {
            if b == 0 {
                return Err(MvqError::InvalidConfig("minibatch size must be positive".into()));
            }
            if cfg.k > map.len() {
                return Err(MvqError::InvalidConfig(format!(
                    "k = {} exceeds the {} live subvectors available to minibatch sampling",
                    cfg.k,
                    map.len()
                )));
            }
            (cfg.k, b)
        }
    };
    let row = |pos: usize| -> &[f32] {
        let (c, r) = map[pos];
        chunks[c as usize].0.row(r as usize)
    };
    // k-means++ over the live rows, replicating `kmeanspp_init` on the
    // dense live-row copy draw for draw and op for op
    let mut centers = Tensor::zeros(vec![k, d]);
    let first = rng.gen_range(0..map.len());
    centers.row_mut(0).copy_from_slice(row(first));
    let mut best_d2 = vec![f32::INFINITY; map.len()];
    for c in 1..k {
        let prev = centers.row(c - 1).to_vec();
        for (j, d2) in best_d2.iter_mut().enumerate() {
            let v = crate::kmeans::sq_dist(row(j), &prev);
            if v < *d2 {
                *d2 = v;
            }
        }
        let total: f64 = best_d2.iter().map(|&x| x as f64).sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..map.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = map.len() - 1;
            for (j, &x) in best_d2.iter().enumerate() {
                target -= x as f64;
                if target <= 0.0 {
                    chosen = j;
                    break;
                }
            }
            chosen
        };
        centers.row_mut(c).copy_from_slice(row(pick));
    }
    let plans: Vec<MaskedDistancePlan> =
        chunks.iter().map(|(_, mask)| MaskedDistancePlan::new(mask)).collect::<Result<_, _>>()?;
    // Sculley updates over sampled live rows — the same draws and lane
    // arithmetic as `minibatch_impl` over the concatenation
    let mut counts = vec![0u64; k * d];
    for _ in 0..cfg.max_iters {
        for _ in 0..batch {
            let pos = rng.gen_range(0..map.len());
            let (ci, r) = map[pos];
            let (data, mask) = chunks[ci as usize];
            let r = r as usize;
            let wrow = data.row(r);
            let i = nearest_masked(wrow, &plans[ci as usize], r, &centers) as usize;
            let mrow = mask.row(r);
            let c = centers.row_mut(i);
            for t in 0..d {
                if mrow[t] {
                    counts[i * d + t] += 1;
                    c[t] += (wrow[t] - c[t]) / counts[i * d + t] as f32;
                }
            }
        }
    }
    // full assignment chunk by chunk (the blocked kernel is row-local),
    // SSE through one f64 across chunks in row order
    let mut assign = vec![0u32; total_ng];
    let mut sse = 0.0f64;
    let mut offset = 0usize;
    for (c, (data, _)) in chunks.iter().enumerate() {
        let ng = data.dims()[0];
        let slot = &mut assign[offset..offset + ng];
        masked_assign_blocked_into(data, &plans[c], &centers, slot);
        crate::kernels::masked_sse_blocked_acc(data, &plans[c], &centers, slot, &mut sse);
        offset += ng;
    }
    Ok(KmeansResult {
        codebook: Codebook::new(centers)?,
        assignments: Assignments::new(assign, k)?,
        sse: sse as f32,
        iterations: cfg.max_iters,
    })
}

/// Indices of subvectors with at least one nonzero lane.
fn live_rows(data: &Tensor) -> Vec<usize> {
    (0..data.dims()[0]).filter(|&j| data.row(j).iter().any(|&x| x != 0.0)).collect()
}

/// Nearest codeword for a single subvector under its mask multipliers.
fn nearest_masked(row: &[f32], plan: &MaskedDistancePlan, j: usize, centers: &Tensor) -> u32 {
    let k = centers.dims()[0];
    let mm = plan.multiplier_row(j);
    let mut best = 0u32;
    let mut best_v = f32::INFINITY;
    for i in 0..k {
        let c = centers.row(i);
        let mut acc = 0.0f32;
        for (t, (&w, &m)) in row.iter().zip(mm).enumerate() {
            let e = w - c[t] * m;
            acc += e * e;
        }
        if acc < best_v {
            best_v = acc;
            best = i as u32;
        }
    }
    best
}

/// Masked SSE (Eq. 1): `Σ_j ‖w_j − q(w_j) ∘ bm_j‖²` for an existing
/// codebook/assignment pair.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] on dimension mismatches.
pub fn masked_sse(
    data: &Tensor,
    mask: &NmMask,
    codebook: &Codebook,
    assignments: &Assignments,
) -> Result<f32, MvqError> {
    if data.rank() != 2
        || data.dims() != [mask.ng(), mask.d()]
        || assignments.len() != mask.ng()
        || codebook.d() != mask.d()
    {
        return Err(MvqError::InvalidConfig(
            "data, mask, codebook and assignments must agree in shape".into(),
        ));
    }
    Ok(masked_sse_naive(data, mask, codebook.centers(), assignments.indices()))
}

/// The naive masked-SSE reference: one f64 accumulator, rows then lanes in
/// ascending order. [`crate::kernels::masked_sse_with`] must match this to
/// 0 ULP for every strategy.
pub(crate) fn masked_sse_naive(
    data: &Tensor,
    mask: &NmMask,
    centers: &Tensor,
    assign: &[u32],
) -> f32 {
    let ng = data.dims()[0];
    let d = data.dims()[1];
    let mut sse = 0.0f64;
    for j in 0..ng {
        let row = data.row(j);
        let c = centers.row(assign[j] as usize);
        let m = mask.row(j);
        for t in 0..d {
            let ct = if m[t] { c[t] } else { 0.0 };
            let e = row[t] - ct;
            sse += (e * e) as f64;
        }
    }
    sse as f32
}

/// Naive reference for the masked assignment (Eq. 2), O(NG·k·d) with
/// explicit masking and fixed left-to-right f32 accumulation — the oracle
/// the blocked kernel is property-tested against, and the `naive` arm of
/// the `masked_kmeans` Criterion bench.
pub fn masked_assign_naive(data: &Tensor, mask: &NmMask, centers: &Tensor) -> Vec<u32> {
    let ng = data.dims()[0];
    let d = data.dims()[1];
    let k = centers.dims()[0];
    let mut assign = vec![0u32; ng];
    for j in 0..ng {
        let row = data.row(j);
        let m = mask.row(j);
        let mut best = 0usize;
        let mut best_v = f32::INFINITY;
        for i in 0..k {
            let c = centers.row(i);
            let mut acc = 0.0f32;
            for t in 0..d {
                let ct = if m[t] { c[t] } else { 0.0 };
                let e = row[t] - ct;
                acc += e * e;
            }
            if acc < best_v {
                best_v = acc;
                best = i;
            }
        }
        assign[j] = best as u32;
    }
    assign
}

/// Masked update (Eq. 4): per-lane weighted average over unpruned entries.
fn masked_update<R: Rng>(
    data: &Tensor,
    mask: &NmMask,
    centers: &mut Tensor,
    assign: &[u32],
    rng: &mut R,
) {
    let ng = data.dims()[0];
    let d = data.dims()[1];
    let k = centers.dims()[0];
    let mut sums = vec![0.0f64; k * d];
    let mut counts = vec![0.0f64; k * d];
    let mut members = vec![0usize; k];
    for j in 0..ng {
        let i = assign[j] as usize;
        members[i] += 1;
        let row = data.row(j);
        let m = mask.row(j);
        for t in 0..d {
            if m[t] {
                sums[i * d + t] += row[t] as f64;
                counts[i * d + t] += 1.0;
            }
        }
    }
    for i in 0..k {
        if members[i] == 0 {
            let j = rng.gen_range(0..ng);
            centers.row_mut(i).copy_from_slice(data.row(j));
            continue;
        }
        let c = centers.row_mut(i);
        for t in 0..d {
            if counts[i * d + t] > 0.0 {
                c[t] = (sums[i * d + t] / counts[i * d + t]) as f32;
            }
            // lanes never unmasked keep their previous value: pruned
            // weights do not rely on the codeword (paper §4.4)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::prune_matrix_nm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pruned_random(ng: usize, d: usize, n: usize, m: usize, seed: u64) -> (Tensor, NmMask) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = mvq_tensor::uniform(vec![ng, d], -1.0, 1.0, &mut rng);
        prune_matrix_nm(&w, n, m).unwrap()
    }

    fn with_kernel(k: usize, kernel: KernelStrategy) -> KmeansConfig {
        KmeansConfig::new(k).with_kernel(kernel)
    }

    #[test]
    fn blocked_assignment_matches_naive() {
        let (data, mask) = pruned_random(64, 8, 2, 4, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let centers = kmeanspp_init(&data, 7, &mut rng);
        let naive = masked_assign_naive(&data, &mask, &centers);
        let blocked =
            crate::kernels::masked_assign_with(KernelStrategy::Blocked, &data, &mask, &centers)
                .unwrap();
        assert_eq!(naive, blocked);
    }

    #[test]
    fn naive_and_blocked_full_runs_are_identical() {
        let (data, mask) = pruned_random(256, 16, 4, 16, 1);
        let run = |kernel| {
            masked_kmeans(&data, &mask, &with_kernel(16, kernel), &mut StdRng::seed_from_u64(2))
                .unwrap()
        };
        let naive = run(KernelStrategy::Naive);
        let blocked = run(KernelStrategy::Blocked);
        assert_eq!(naive.assignments.indices(), blocked.assignments.indices());
        assert_eq!(naive.codebook.centers().data(), blocked.codebook.centers().data());
        assert_eq!(naive.sse.to_bits(), blocked.sse.to_bits());
        assert_eq!(naive.iterations, blocked.iterations);
    }

    #[test]
    fn masked_beats_unmasked_on_masked_sse() {
        // The defining property (paper Tab. 3): on sparse weights, masked
        // k-means reaches lower masked SSE than plain k-means.
        let (data, mask) = pruned_random(512, 16, 4, 16, 2);
        let cfg = KmeansConfig::new(16);
        let masked = masked_kmeans(&data, &mask, &cfg, &mut StdRng::seed_from_u64(3)).unwrap();
        let plain =
            crate::kmeans::kmeans(&data, &cfg, None, &mut StdRng::seed_from_u64(3)).unwrap();
        let plain_masked_sse =
            masked_sse(&data, &mask, &plain.codebook, &plain.assignments).unwrap();
        assert!(masked.sse < plain_masked_sse, "masked {} !< plain {plain_masked_sse}", masked.sse);
    }

    #[test]
    fn masked_sse_is_result_sse() {
        let (data, mask) = pruned_random(128, 8, 2, 4, 4);
        let res = masked_kmeans(&data, &mask, &KmeansConfig::new(8), &mut StdRng::seed_from_u64(5))
            .unwrap();
        let recomputed = masked_sse(&data, &mask, &res.codebook, &res.assignments).unwrap();
        assert!((res.sse - recomputed).abs() < 1e-3);
    }

    #[test]
    fn identical_rows_cluster_perfectly() {
        // all subvectors equal and fully masked the same way => SSE 0 with k=1
        let row = [1.0f32, 2.0, 0.0, 0.0];
        let data = Tensor::from_vec(vec![8, 4], row.repeat(8)).unwrap();
        let mask = NmMask::from_bits(8, 4, 2, 4, [true, true, false, false].repeat(8)).unwrap();
        let res = masked_kmeans(&data, &mask, &KmeansConfig::new(1), &mut StdRng::seed_from_u64(6))
            .unwrap();
        assert!(res.sse < 1e-9);
        // codeword's masked lanes match the data
        assert!((res.codebook.codeword(0)[0] - 1.0).abs() < 1e-6);
        assert!((res.codebook.codeword(0)[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn complementary_masks_share_codeword() {
        // Two groups with disjoint masks can share one codeword perfectly:
        // the masked update fills each lane from the group that keeps it.
        let mut data = Vec::new();
        let mut bits = Vec::new();
        for j in 0..10 {
            if j % 2 == 0 {
                data.extend_from_slice(&[0.7, 0.7, 0.0, 0.0]);
                bits.extend_from_slice(&[true, true, false, false]);
            } else {
                data.extend_from_slice(&[0.0, 0.0, 0.5, 0.5]);
                bits.extend_from_slice(&[false, false, true, true]);
            }
        }
        let data = Tensor::from_vec(vec![10, 4], data).unwrap();
        let mask = NmMask::from_bits(10, 4, 2, 4, bits).unwrap();
        let res = masked_kmeans(&data, &mask, &KmeansConfig::new(1), &mut StdRng::seed_from_u64(7))
            .unwrap();
        assert!(res.sse < 1e-9, "sse {}", res.sse);
        let c = res.codebook.codeword(0);
        assert!((c[0] - 0.7).abs() < 1e-6 && (c[3] - 0.5).abs() < 1e-6, "{c:?}");
    }

    #[test]
    fn validates_mismatched_mask() {
        let (data, _) = pruned_random(16, 8, 2, 4, 8);
        let (_, other_mask) = pruned_random(8, 8, 2, 4, 9);
        let cfg = KmeansConfig::new(4);
        assert!(masked_kmeans(&data, &other_mask, &cfg, &mut StdRng::seed_from_u64(0)).is_err());
        assert!(masked_kmeans_minibatch(
            &data,
            &other_mask,
            &cfg,
            8,
            &mut StdRng::seed_from_u64(0)
        )
        .is_err());
    }

    #[test]
    fn more_codewords_reduce_masked_sse() {
        let (data, mask) = pruned_random(256, 16, 4, 16, 10);
        let s4 = masked_kmeans(&data, &mask, &KmeansConfig::new(4), &mut StdRng::seed_from_u64(1))
            .unwrap()
            .sse;
        let s64 =
            masked_kmeans(&data, &mask, &KmeansConfig::new(64), &mut StdRng::seed_from_u64(1))
                .unwrap()
                .sse;
        assert!(s64 < s4);
    }

    #[test]
    fn minibatch_is_deterministic_and_reasonable() {
        let (data, mask) = pruned_random(512, 16, 4, 16, 11);
        let cfg = KmeansConfig::new(16);
        let run = |seed| {
            masked_kmeans_minibatch(&data, &mask, &cfg, 128, &mut StdRng::seed_from_u64(seed))
                .unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.assignments.indices(), b.assignments.indices());
        assert_eq!(a.codebook.centers().data(), b.codebook.centers().data());
        assert_eq!(a.sse.to_bits(), b.sse.to_bits());
        // and it actually clusters: better than a single mean codeword
        let k1 = masked_kmeans(&data, &mask, &KmeansConfig::new(1), &mut StdRng::seed_from_u64(6))
            .unwrap();
        assert!(a.sse < k1.sse, "minibatch {} !< k=1 {}", a.sse, k1.sse);
    }

    #[test]
    fn minibatch_dispatch_through_strategy() {
        let (data, mask) = pruned_random(256, 16, 4, 16, 12);
        let cfg = with_kernel(8, KernelStrategy::Minibatch);
        let direct = masked_kmeans_minibatch(
            &data,
            &mask,
            &KmeansConfig::new(8),
            default_minibatch_size(256, 8),
            &mut StdRng::seed_from_u64(13),
        )
        .unwrap();
        let dispatched = masked_kmeans(&data, &mask, &cfg, &mut StdRng::seed_from_u64(13)).unwrap();
        assert_eq!(direct.assignments.indices(), dispatched.assignments.indices());
        assert_eq!(direct.codebook.centers().data(), dispatched.codebook.centers().data());
    }

    #[test]
    fn minibatch_skips_dead_vectors() {
        // Regression pin: interleaving all-zero subvectors must not change
        // the learned codebook — dead rows are invisible to seeding and
        // sampling, exactly like dead layers in the model fan-out.
        let (live, live_mask) = pruned_random(64, 8, 2, 4, 14);
        let mut data = Vec::new();
        let mut bits = Vec::new();
        for j in 0..64 {
            data.extend_from_slice(live.row(j));
            bits.extend_from_slice(live_mask.row(j));
            // every 4th row, insert a dead (all-zero) subvector
            if j % 4 == 0 {
                data.extend_from_slice(&[0.0; 8]);
                bits.extend_from_slice(&[true, true, false, false, true, true, false, false]);
            }
        }
        let ng = 64 + 16;
        let padded = Tensor::from_vec(vec![ng, 8], data).unwrap();
        let padded_mask = NmMask::from_bits(ng, 8, 2, 4, bits).unwrap();
        let cfg = KmeansConfig::new(6);
        let with_dead = masked_kmeans_minibatch(
            &padded,
            &padded_mask,
            &cfg,
            32,
            &mut StdRng::seed_from_u64(15),
        )
        .unwrap();
        let live_only =
            masked_kmeans_minibatch(&live, &live_mask, &cfg, 32, &mut StdRng::seed_from_u64(15))
                .unwrap();
        assert_eq!(
            with_dead.codebook.centers().data(),
            live_only.codebook.centers().data(),
            "dead subvectors leaked into the minibatch codebook"
        );
    }

    #[test]
    fn chunked_single_chunk_is_bit_identical_to_monolithic() {
        let (data, mask) = pruned_random(256, 16, 4, 16, 21);
        let cfg = KmeansConfig::new(12);
        let mono = masked_kmeans_minibatch(&data, &mask, &cfg, 64, &mut StdRng::seed_from_u64(22))
            .unwrap();
        let chunked = masked_kmeans_minibatch_chunked(
            &[(&data, &mask)],
            &cfg,
            Some(64),
            &mut StdRng::seed_from_u64(22),
        )
        .unwrap();
        assert_eq!(mono.assignments.indices(), chunked.assignments.indices());
        assert_eq!(mono.codebook.centers().data(), chunked.codebook.centers().data());
        assert_eq!(mono.sse.to_bits(), chunked.sse.to_bits());
        assert_eq!(mono.iterations, chunked.iterations);
    }

    #[test]
    fn chunked_multi_chunk_matches_monolithic_on_the_concatenation() {
        // Three uneven layer chunks, one with interleaved dead rows — the
        // crosslayer shape. The chunked run must be bit-identical to the
        // strategy-dispatched (k-clamping, auto-batch) run over the
        // concatenation it never builds.
        let parts = [
            pruned_random(96, 16, 4, 16, 23),
            pruned_random(160, 16, 4, 16, 24),
            pruned_random(64, 16, 4, 16, 25),
        ];
        let mut data = Vec::new();
        let mut bits = Vec::new();
        let mut ng = 0usize;
        for (t, m) in &parts {
            data.extend_from_slice(t.data());
            bits.extend_from_slice(m.bits());
            ng += t.dims()[0];
        }
        // dead rows inside a chunk (not only whole-layer skips)
        let (mut t2, m2) = (parts[1].0.clone(), &parts[1].1);
        t2.row_mut(7).fill(0.0);
        let mut data2 = data.clone();
        let off = parts[0].0.dims()[0] * 16;
        data2[off + 7 * 16..off + 8 * 16].fill(0.0);

        let all = Tensor::from_vec(vec![ng, 16], data2).unwrap();
        let all_mask = NmMask::from_bits(ng, 16, 4, 16, bits).unwrap();
        let cfg = with_kernel(16, KernelStrategy::Minibatch);
        let mono = masked_kmeans(&all, &all_mask, &cfg, &mut StdRng::seed_from_u64(26)).unwrap();
        let chunks: Vec<(&Tensor, &NmMask)> =
            vec![(&parts[0].0, &parts[0].1), (&t2, m2), (&parts[2].0, &parts[2].1)];
        let chunked =
            masked_kmeans_minibatch_chunked(&chunks, &cfg, None, &mut StdRng::seed_from_u64(26))
                .unwrap();
        assert_eq!(mono.assignments.indices(), chunked.assignments.indices());
        assert_eq!(mono.codebook.centers().data(), chunked.codebook.centers().data());
        assert_eq!(mono.sse.to_bits(), chunked.sse.to_bits());
    }

    #[test]
    fn chunked_rejects_mismatched_chunks() {
        let (a, am) = pruned_random(32, 16, 4, 16, 27);
        let (b, bm) = pruned_random(32, 8, 2, 4, 28);
        let cfg = KmeansConfig::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        // disagreeing d / N:M across chunks
        assert!(
            masked_kmeans_minibatch_chunked(&[(&a, &am), (&b, &bm)], &cfg, None, &mut rng).is_err()
        );
        // no chunks at all
        assert!(masked_kmeans_minibatch_chunked(&[], &cfg, None, &mut rng).is_err());
        // all-dead chunks
        let zeros = Tensor::zeros(vec![32, 16]);
        assert!(masked_kmeans_minibatch_chunked(&[(&zeros, &am)], &cfg, None, &mut rng).is_err());
    }

    #[test]
    fn minibatch_rejects_degenerate_inputs() {
        let (data, mask) = pruned_random(8, 8, 2, 4, 16);
        let mut rng = StdRng::seed_from_u64(0);
        // zero batch
        assert!(masked_kmeans_minibatch(&data, &mask, &KmeansConfig::new(2), 0, &mut rng).is_err());
        // k exceeding live rows
        assert!(masked_kmeans_minibatch(&data, &mask, &KmeansConfig::new(9), 4, &mut rng).is_err());
        // all-dead data
        let zeros = Tensor::zeros(vec![8, 8]);
        assert!(masked_kmeans_minibatch(&zeros, &mask, &KmeansConfig::new(2), 4, &mut rng).is_err());
    }
}
