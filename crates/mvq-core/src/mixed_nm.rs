//! Mixed layerwise N:M selection — the DominoSearch-style extension the
//! paper cites as [34] (Sun et al., NeurIPS '21): instead of one N:M
//! pattern everywhere, pick a per-layer `N` from a candidate set to meet a
//! global sparsity budget while maximizing the retained weight energy.
//!
//! The selection is a greedy marginal-cost allocation: starting from the
//! densest candidate everywhere, repeatedly sparsify the layer whose next
//! step destroys the least magnitude-energy per pruned weight, until the
//! budget is met. This mirrors DominoSearch's layerwise scheme search at a
//! fraction of its cost and slots directly into the MVQ pipeline (the
//! chosen per-layer patterns feed [`crate::prune_model`]-style masks).

use mvq_nn::layers::Sequential;
use mvq_tensor::Tensor;

use crate::error::MvqError;
use crate::grouping::GroupingStrategy;
use crate::mask::NmMask;
use crate::pruning::prune_matrix_nm;

/// The per-layer outcome of a mixed-N:M search.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPattern {
    /// Depth-first conv index.
    pub conv_index: usize,
    /// Chosen kept count (the layer keeps `keep_n` of every `m`).
    pub keep_n: usize,
    /// Group size.
    pub m: usize,
    /// Weights in this layer.
    pub weights: usize,
    /// Fraction of the layer's squared-magnitude energy retained.
    pub energy_retained: f64,
}

/// Result of the search.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedNmPlan {
    /// Chosen pattern per compressible layer.
    pub layers: Vec<LayerPattern>,
    /// Achieved overall sparsity over compressible weights.
    pub achieved_sparsity: f64,
}

impl MixedNmPlan {
    /// Applies the plan: prunes each compressible conv with its chosen
    /// pattern, returning the per-layer masks (indexed like
    /// [`crate::prune_model`]'s output).
    ///
    /// # Errors
    ///
    /// Propagates grouping/pruning errors.
    pub fn apply(
        &self,
        model: &mut Sequential,
        grouping: GroupingStrategy,
        d: usize,
    ) -> Result<Vec<Option<NmMask>>, MvqError> {
        let by_index: std::collections::HashMap<usize, &LayerPattern> =
            self.layers.iter().map(|l| (l.conv_index, l)).collect();
        let mut masks = Vec::new();
        let mut idx = 0usize;
        let mut first_err = None;
        model.visit_convs_mut(&mut |conv| {
            if first_err.is_some() {
                return;
            }
            let Some(pat) = by_index.get(&idx) else {
                masks.push(None);
                idx += 1;
                return;
            };
            let weight = conv.weight.value.clone();
            let res = grouping
                .group(&weight, d)
                .and_then(|g| prune_matrix_nm(&g, pat.keep_n, pat.m))
                .and_then(|(pruned, mask)| {
                    grouping.ungroup(&pruned, weight.dims(), d).map(|w| (w, mask))
                });
            match res {
                Ok((w, mask)) => {
                    conv.weight.value = w;
                    masks.push(Some(mask));
                }
                Err(e) => first_err = Some(e),
            }
            idx += 1;
        });
        first_err.map_or(Ok(masks), Err)
    }
}

/// Searches per-layer kept counts (from `candidates`, e.g. `[8, 6, 4, 3]`
/// of 16) meeting `target_sparsity` over all compressible convs.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] for an empty/invalid candidate set
/// or unreachable budget.
pub fn search_mixed_nm(
    model: &Sequential,
    grouping: GroupingStrategy,
    d: usize,
    m: usize,
    candidates: &[usize],
    target_sparsity: f64,
) -> Result<MixedNmPlan, MvqError> {
    if candidates.is_empty() {
        return Err(MvqError::InvalidConfig("empty candidate set".into()));
    }
    let mut cands: Vec<usize> = candidates.to_vec();
    cands.sort_unstable();
    cands.dedup();
    cands.reverse(); // densest first
    if *cands.first().expect("non-empty") > m || *cands.last().expect("non-empty") == 0 {
        return Err(MvqError::InvalidConfig(format!(
            "candidates must lie in 1..={m}, got {cands:?}"
        )));
    }
    if !(0.0..1.0).contains(&target_sparsity) {
        return Err(MvqError::InvalidConfig(format!(
            "target sparsity must be in [0, 1), got {target_sparsity}"
        )));
    }
    // gather compressible layers and their retained-energy profile per
    // candidate
    let mut weights: Vec<(usize, Tensor)> = Vec::new();
    let mut idx = 0usize;
    model.visit_convs(&mut |conv| {
        if !conv.is_depthwise() && grouping.group(&conv.weight.value, d).is_ok() {
            weights.push((idx, conv.weight.value.clone()));
        }
        idx += 1;
    });
    if weights.is_empty() {
        return Err(MvqError::InvalidConfig("no compressible conv layers".into()));
    }
    // energy retained per layer per candidate
    let mut retained: Vec<Vec<f64>> = Vec::with_capacity(weights.len());
    for (_, w) in &weights {
        let grouped = grouping.group(w, d)?;
        let total: f64 = grouped.data().iter().map(|&x| (x as f64) * (x as f64)).sum();
        let mut per_candidate = Vec::with_capacity(cands.len());
        for &keep in &cands {
            let (pruned, _) = prune_matrix_nm(&grouped, keep, m)?;
            let kept: f64 = pruned.data().iter().map(|&x| (x as f64) * (x as f64)).sum();
            per_candidate.push(if total > 0.0 { kept / total } else { 1.0 });
        }
        retained.push(per_candidate);
    }
    // greedy: everyone starts densest; repeatedly take the cheapest step
    let total_weights: usize = weights.iter().map(|(_, w)| w.numel()).sum();
    let target_pruned = (target_sparsity * total_weights as f64).ceil() as usize;
    let mut choice = vec![0usize; weights.len()];
    let pruned_at =
        |layer: usize, c: usize| -> usize { weights[layer].1.numel() * (m - cands[c]) / m };
    let mut pruned_now: usize = (0..weights.len()).map(|l| pruned_at(l, 0)).sum();
    while pruned_now < target_pruned {
        // pick the layer whose next step loses the least energy per
        // newly-pruned weight
        let mut best: Option<(usize, f64)> = None;
        for l in 0..weights.len() {
            let c = choice[l];
            if c + 1 >= cands.len() {
                continue;
            }
            let extra = pruned_at(l, c + 1) - pruned_at(l, c);
            if extra == 0 {
                continue;
            }
            let loss = (retained[l][c] - retained[l][c + 1]).max(0.0) / extra as f64;
            if best.is_none_or(|(_, b)| loss < b) {
                best = Some((l, loss));
            }
        }
        let Some((l, _)) = best else {
            return Err(MvqError::InvalidConfig(format!(
                "target sparsity {target_sparsity} unreachable with candidates {cands:?}"
            )));
        };
        pruned_now += pruned_at(l, choice[l] + 1) - pruned_at(l, choice[l]);
        choice[l] += 1;
    }
    let layers = weights
        .iter()
        .zip(&choice)
        .zip(&retained)
        .map(|(((conv_index, w), &c), r)| LayerPattern {
            conv_index: *conv_index,
            keep_n: cands[c],
            m,
            weights: w.numel(),
            energy_retained: r[c],
        })
        .collect::<Vec<_>>();
    let achieved: usize = (0..weights.len()).map(|l| pruned_at(l, choice[l])).sum();
    Ok(MixedNmPlan { layers, achieved_sparsity: achieved as f64 / total_weights as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_nn::models::tiny_cnn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> Sequential {
        tiny_cnn(4, 8, &mut StdRng::seed_from_u64(0))
    }

    #[test]
    fn meets_budget() {
        let m = model();
        let plan =
            search_mixed_nm(&m, GroupingStrategy::OutputChannelWise, 16, 16, &[8, 6, 4, 3], 0.7)
                .unwrap();
        assert!(plan.achieved_sparsity >= 0.7, "{}", plan.achieved_sparsity);
        assert_eq!(plan.layers.len(), 2);
        for l in &plan.layers {
            assert!([8usize, 6, 4, 3].contains(&l.keep_n));
            assert!(l.energy_retained > 0.0 && l.energy_retained <= 1.0);
        }
    }

    #[test]
    fn protects_high_energy_layers() {
        // Give conv 0 huge weights: the search should sparsify conv 1
        // more aggressively (its energy is cheaper to discard).
        let mut m = model();
        let mut idx = 0;
        m.visit_convs_mut(&mut |c| {
            if idx == 0 {
                // concentrate energy: a few giant weights per group
                for (i, w) in c.weight.value.data_mut().iter_mut().enumerate() {
                    *w = if i % 16 < 4 { 50.0 } else { 0.001 };
                }
            }
            idx += 1;
        });
        let plan =
            search_mixed_nm(&m, GroupingStrategy::OutputChannelWise, 16, 16, &[8, 4], 0.6).unwrap();
        // conv 0 retains essentially all its energy even at 4:16, so the
        // greedy will push it to 4:16 first and it still keeps ~100%
        let l0 = plan.layers.iter().find(|l| l.conv_index == 0).unwrap();
        assert!(l0.energy_retained > 0.99, "{}", l0.energy_retained);
    }

    #[test]
    fn apply_prunes_to_chosen_patterns() {
        let mut m = model();
        let plan =
            search_mixed_nm(&m, GroupingStrategy::OutputChannelWise, 16, 16, &[8, 4], 0.6).unwrap();
        let masks = plan.apply(&mut m, GroupingStrategy::OutputChannelWise, 16).unwrap();
        let mut idx = 0;
        m.visit_convs_mut(&mut |c| {
            let expected = plan.layers.iter().find(|l| l.conv_index == idx).unwrap();
            let mask = masks[idx].as_ref().unwrap();
            assert_eq!(mask.keep_n(), expected.keep_n);
            let sp = 1.0 - expected.keep_n as f32 / 16.0;
            assert!((c.weight.value.sparsity() - sp).abs() < 0.02);
            idx += 1;
        });
    }

    #[test]
    fn validates_inputs() {
        let m = model();
        let g = GroupingStrategy::OutputChannelWise;
        assert!(search_mixed_nm(&m, g, 16, 16, &[], 0.5).is_err());
        assert!(search_mixed_nm(&m, g, 16, 16, &[20], 0.5).is_err());
        assert!(search_mixed_nm(&m, g, 16, 16, &[8], 1.5).is_err());
        // unreachable budget: only 8:16 (50%) available but asking 80%
        assert!(search_mixed_nm(&m, g, 16, 16, &[8], 0.8).is_err());
    }

    #[test]
    fn uniform_candidates_degenerate_to_uniform_plan() {
        let m = model();
        let plan =
            search_mixed_nm(&m, GroupingStrategy::OutputChannelWise, 16, 16, &[4], 0.74).unwrap();
        assert!(plan.layers.iter().all(|l| l.keep_n == 4));
        assert!((plan.achieved_sparsity - 0.75).abs() < 1e-9);
    }
}
