//! Bounded-memory streaming model compression.
//!
//! The in-memory model path ([`Compressor::compress_model_artifacts`])
//! clones every conv weight up front and assembles a [`ModelArtifacts`]
//! holding every compressed layer at once — fine for the paper's test
//! CNNs, hopeless for model-scale inputs. This module streams instead: a
//! **producer** materializes one layer at a time into a bounded window
//! (at most [`StreamConfig::max_layers`] layers and
//! [`StreamConfig::max_bytes`] weight bytes in flight), **workers**
//! compress admitted layers through the same [`Compressor`] the registry
//! hands out, and a **writer** spills each finished layer straight to the
//! [`ArtifactCache`] as its own [`BlobKind::Layer`] blob under a derived
//! [`CacheKey::layer_key`]. What survives in memory at the end is only a
//! [`ModelIndex`] — the conv indices, not the artifacts.
//!
//! ## Bit-identity with the in-memory oracle
//!
//! The streamed result is **bit-identical** to the in-memory path for
//! every registry algorithm: per-conv seeds are drawn serially up front
//! from `StdRng::seed_from_u64(model_key.seed)` (the same draws
//! `compress_layers` makes), each admitted layer is compressed with
//! `StdRng::seed_from_u64(seed)`, and the skip rules replicate the
//! oracle's exactly — depthwise convs (unless the algorithm opts in via
//! [`Compressor::skips_depthwise`]), all-zero layers, and shapes the
//! grouping rejects. The in-memory path stays as the oracle; tests assert
//! equality of [`ModelArtifacts::fingerprint`] on small models.
//!
//! ## What the window bounds
//!
//! Admission is charged at the layer's **weight bytes** (the dominant
//! term); the charge is held through compression and released only after
//! the encoded layer blob is spilled to the cache, so weights and their
//! in-flight artifacts never accumulate beyond the window. A single
//! weight larger than the whole byte budget is admitted only into an
//! empty window (it could never fit otherwise), so such a model still
//! streams — one giant layer at a time.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};

use mvq_nn::Sequential;
use mvq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::error::MvqError;
use crate::pipeline::{
    canonical_name, no_compressible_layer_error, Compressor, LayerArtifact, ModelArtifacts,
    PipelineSpec,
};
use crate::store::{weight_hash, ArtifactCache, BlobKind, CacheKey, Fnv1a, ModelIndex, Persist};

/// Knobs bounding a streaming compression's in-flight working set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// Max layers materialized at once (producer-admitted, not yet
    /// spilled). Clamped to at least 1.
    pub max_layers: usize,
    /// Max in-flight weight bytes across admitted layers. A single
    /// weight above this is admitted only into an empty window.
    pub max_bytes: u64,
    /// Worker threads compressing admitted layers. Clamped to at least 1.
    pub workers: usize,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            max_layers: 4,
            max_bytes: 256 << 20,
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
        }
    }
}

impl StreamConfig {
    /// Caps the in-flight window at `layers` layers and `bytes` weight
    /// bytes.
    pub fn with_window(mut self, layers: usize, bytes: u64) -> StreamConfig {
        self.max_layers = layers;
        self.max_bytes = bytes;
        self
    }

    /// Sets the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> StreamConfig {
        self.workers = workers;
        self
    }
}

/// A point-in-time view of a streaming job's per-layer progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Convs that reached a terminal state (compressed-and-spilled or
    /// skipped).
    pub layers_done: usize,
    /// Total convs the job will visit.
    pub layers_total: usize,
}

#[derive(Debug, Default)]
struct ProgressInner {
    done: AtomicUsize,
    total: AtomicUsize,
}

/// Shared handle observing a streaming job's progress from other threads
/// (cloned into the job; every clone sees the same counters).
#[derive(Debug, Clone, Default)]
pub struct ProgressHandle {
    inner: Arc<ProgressInner>,
}

impl ProgressHandle {
    /// A fresh handle reading `0 / 0` until a job adopts it.
    pub fn new() -> ProgressHandle {
        ProgressHandle::default()
    }

    /// The current per-layer progress.
    pub fn snapshot(&self) -> Progress {
        Progress {
            layers_done: self.inner.done.load(Ordering::Relaxed),
            layers_total: self.inner.total.load(Ordering::Relaxed),
        }
    }

    fn set_total(&self, total: usize) {
        self.inner.total.store(total, Ordering::Relaxed);
    }

    fn bump_done(&self) {
        self.inner.done.fetch_add(1, Ordering::Relaxed);
    }
}

/// What a streaming compression leaves behind: the durable index (already
/// stored under the model key) plus window telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamReport {
    /// The stored [`ModelIndex`] (layer and skipped conv indices).
    pub index: ModelIndex,
    /// High-water mark of in-flight weight bytes — in tests this is
    /// asserted against [`StreamConfig::max_bytes`].
    pub peak_window_bytes: u64,
    /// High-water mark of in-flight layers.
    pub peak_window_layers: usize,
}

/// Cheap per-conv facts the producer needs before materializing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerMeta {
    /// Whether the conv is depthwise (`groups == in == out`).
    pub depthwise: bool,
    /// Weight bytes the layer will occupy once materialized.
    pub bytes: u64,
}

/// A pull-style stream of conv layers: metadata for every conv up front
/// (cheap — no weights), weights materialized **one at a time** on
/// demand, only after the producer has acquired window space for them.
///
/// `Send` because the producer runs on its own thread.
pub trait LayerStream: Send {
    /// Per-conv metadata, in conv order. Must be stable across calls.
    fn layer_meta(&self) -> Vec<LayerMeta>;

    /// Materializes conv `conv_index`'s weight tensor. Called at most
    /// once per conv, in ascending order.
    ///
    /// # Errors
    ///
    /// A source error here aborts the whole stream.
    fn materialize(&mut self, conv_index: usize) -> Result<Tensor, MvqError>;
}

/// [`LayerStream`] over a built [`Sequential`]: the metadata pass walks
/// the model without cloning, and each materialize re-walks to clone
/// exactly one conv's weight — so the resident set is the window's, not
/// the model's artifact set.
///
/// (The model itself is in memory — this adapter exists to keep the
/// *compression* working set bounded and to exercise the same engine the
/// synthetic model-scale sources use.)
#[derive(Debug)]
pub struct ModelLayerStream<'a> {
    model: &'a Sequential,
}

impl<'a> ModelLayerStream<'a> {
    /// Streams `model`'s convs in visit order.
    pub fn new(model: &'a Sequential) -> ModelLayerStream<'a> {
        ModelLayerStream { model }
    }
}

impl LayerStream for ModelLayerStream<'_> {
    fn layer_meta(&self) -> Vec<LayerMeta> {
        let mut meta = Vec::new();
        self.model.visit_convs(&mut |conv| {
            meta.push(LayerMeta {
                depthwise: conv.is_depthwise(),
                bytes: std::mem::size_of_val(conv.weight.value.data()) as u64,
            });
        });
        meta
    }

    fn materialize(&mut self, conv_index: usize) -> Result<Tensor, MvqError> {
        let mut out: Option<Tensor> = None;
        let mut idx = 0usize;
        self.model.visit_convs(&mut |conv| {
            if idx == conv_index {
                out = Some(conv.weight.value.clone());
            }
            idx += 1;
        });
        out.ok_or_else(|| MvqError::InvalidConfig(format!("layer stream has no conv {conv_index}")))
    }
}

/// Content hash identifying a model for streaming cache keys: a
/// domain-separated fold of every conv weight's [`weight_hash`], in conv
/// order.
pub fn model_weight_hash(model: &Sequential) -> u64 {
    let mut h = Fnv1a::new();
    h.update(b"mvq.stream.modelhash.v1");
    model.visit_convs(&mut |conv| {
        h.update_u64(weight_hash(&conv.weight.value));
    });
    h.finish()
}

/// Builds the cache key a streamed model compression is addressed by:
/// like [`CacheKey::new`] but with [`model_weight_hash`] in place of a
/// single tensor's hash. Per-layer blobs derive from this key via
/// [`CacheKey::layer_key`].
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] for unknown algorithm names.
pub fn model_cache_key(
    algo: &str,
    model: &Sequential,
    spec: &PipelineSpec,
    seed: u64,
) -> Result<CacheKey, MvqError> {
    let algo = canonical_name(algo).ok_or_else(|| {
        MvqError::InvalidConfig(format!("unknown compressor `{algo}` for model cache key"))
    })?;
    Ok(CacheKey {
        algo,
        weight_hash: model_weight_hash(model),
        spec_fingerprint: spec.fingerprint(),
        kernel: spec.kernel,
        seed,
    })
}

/// The bounded admission window: producer blocks here until the next
/// layer fits (or the job failed).
struct Window {
    state: Mutex<WinState>,
    space: Condvar,
    max_layers: usize,
    max_bytes: u64,
}

struct WinState {
    layers: usize,
    bytes: u64,
    peak_layers: usize,
    peak_bytes: u64,
    failed: bool,
}

impl Window {
    fn new(config: &StreamConfig) -> Window {
        Window {
            state: Mutex::new(WinState {
                layers: 0,
                bytes: 0,
                peak_layers: 0,
                peak_bytes: 0,
                failed: false,
            }),
            space: Condvar::new(),
            max_layers: config.max_layers.max(1),
            max_bytes: config.max_bytes,
        }
    }

    /// Blocks until `bytes` fits (an oversized charge fits only an empty
    /// window). Returns `false` when the job has failed — the producer
    /// must stop.
    fn acquire(&self, bytes: u64) -> bool {
        let mut st = self.state.lock().expect("stream lock");
        loop {
            if st.failed {
                return false;
            }
            let fits = st.layers < self.max_layers
                && (st.bytes + bytes <= self.max_bytes || st.layers == 0);
            if fits {
                st.layers += 1;
                st.bytes += bytes;
                st.peak_layers = st.peak_layers.max(st.layers);
                st.peak_bytes = st.peak_bytes.max(st.bytes);
                return true;
            }
            st = self.space.wait(st).expect("stream lock");
        }
    }

    fn release(&self, bytes: u64) {
        let mut st = self.state.lock().expect("stream lock");
        st.layers = st.layers.saturating_sub(1);
        st.bytes = st.bytes.saturating_sub(bytes);
        drop(st);
        self.space.notify_all();
    }

    /// Marks the job failed and wakes a producer blocked on admission.
    fn fail(&self) {
        self.state.lock().expect("stream lock").failed = true;
        self.space.notify_all();
    }

    fn peaks(&self) -> (usize, u64) {
        let st = self.state.lock().expect("stream lock");
        (st.peak_layers, st.peak_bytes)
    }
}

/// An admitted layer on its way to a worker.
struct Task {
    conv_index: usize,
    seed: u64,
    window_bytes: u64,
    weight: Tensor,
}

/// A layer's terminal (or fatal) outcome on its way to the writer.
/// `window_bytes` is the admission charge the writer must release
/// (0 when the layer never entered the window).
enum LayerResult {
    Done { conv_index: usize, window_bytes: u64, blob: Vec<u8> },
    Skipped { conv_index: usize, window_bytes: u64 },
    Failed { conv_index: usize, window_bytes: u64, error: MvqError },
}

/// Streams `source` through `comp`, spilling each compressed layer to
/// `cache` as a [`BlobKind::Layer`] blob under
/// `model_key.layer_key(conv_index)` and finishing with a
/// [`BlobKind::ModelIndex`] under `model_key` itself. Bit-identical to
/// the in-memory oracle (see the module docs); resident weight bytes
/// never exceed the window `config` bounds.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] when `model_key.algo` is not
/// `comp`'s name or no layer was compressible, and propagates the
/// lowest-conv-index compression error and any cache/codec failure.
pub fn stream_compress(
    comp: &dyn Compressor,
    source: &mut dyn LayerStream,
    cache: &ArtifactCache,
    model_key: &CacheKey,
    config: &StreamConfig,
    progress: Option<&ProgressHandle>,
) -> Result<StreamReport, MvqError> {
    if comp.name() != model_key.algo {
        return Err(MvqError::InvalidConfig(format!(
            "model key addresses `{}` but the compressor is `{}`",
            model_key.algo,
            comp.name()
        )));
    }
    let meta = source.layer_meta();
    let total = meta.len();
    // One seed per conv, drawn serially up front — the exact draws the
    // in-memory path makes, so per-layer RNGs agree bit-for-bit.
    let mut rng = StdRng::seed_from_u64(model_key.seed);
    let seeds: Vec<u64> = (0..total).map(|_| rng.next_u64()).collect();
    if let Some(p) = progress {
        p.set_total(total);
    }
    let skip_depthwise = comp.skips_depthwise();
    let window = Window::new(config);
    let workers = config.workers.max(1);

    let (task_tx, task_rx) = mpsc::channel::<Task>();
    let (res_tx, res_rx) = mpsc::channel::<LayerResult>();
    let task_rx = Mutex::new(task_rx);

    let (mut layers, skipped, failure) = std::thread::scope(|s| {
        for _ in 0..workers {
            let res_tx = res_tx.clone();
            let task_rx = &task_rx;
            let window = &window;
            s.spawn(move || worker_loop(comp, task_rx, &res_tx, window));
        }
        {
            let res_tx = res_tx.clone();
            let window = &window;
            let meta = &meta;
            let seeds = &seeds;
            s.spawn(move || {
                producer_loop(source, meta, seeds, skip_depthwise, window, &task_tx, &res_tx);
            });
        }
        drop(res_tx);
        write_results(&res_rx, cache, model_key, &window, progress)
    });

    if let Some((_, error)) = failure {
        return Err(error);
    }
    layers.sort_unstable();
    let mut skipped = skipped;
    skipped.sort_unstable();
    if layers.is_empty() {
        return Err(no_compressible_layer_error(comp.name(), &skipped));
    }
    let index = ModelIndex {
        algorithm: comp.name(),
        weight_hash: model_key.weight_hash,
        spec_fingerprint: model_key.spec_fingerprint,
        kernel: model_key.kernel,
        seed: model_key.seed,
        layers,
        skipped,
    };
    let bytes: Arc<[u8]> = index.to_bytes()?.into();
    cache.put_raw_kind(model_key, BlobKind::ModelIndex, bytes)?;
    let (peak_layers, peak_bytes) = window.peaks();
    let registry = cache.registry();
    registry.gauge(mvq_obs::names::STREAM_WINDOW_BYTES_PEAK).record_peak(peak_bytes);
    registry.gauge(mvq_obs::names::STREAM_WINDOW_LAYERS_PEAK).record_peak(peak_layers as u64);
    Ok(StreamReport { index, peak_window_bytes: peak_bytes, peak_window_layers: peak_layers })
}

/// [`stream_compress`] over a built model via [`ModelLayerStream`].
///
/// # Errors
///
/// As [`stream_compress`].
pub fn stream_compress_model(
    comp: &dyn Compressor,
    model: &Sequential,
    cache: &ArtifactCache,
    model_key: &CacheKey,
    config: &StreamConfig,
    progress: Option<&ProgressHandle>,
) -> Result<StreamReport, MvqError> {
    let mut source = ModelLayerStream::new(model);
    stream_compress(comp, &mut source, cache, model_key, config, progress)
}

/// Reassembles a streamed compression from the cache: loads the
/// [`ModelIndex`] under `model_key`, then every layer blob it references.
/// Returns `Ok(None)` when the index is absent **or any referenced layer
/// blob has been evicted** — a partial model is a miss, not an error, so
/// callers fall back to recompressing.
///
/// # Errors
///
/// Returns [`MvqError::Codec`] for corrupt blobs and for an index that
/// does not answer for `model_key` (wrong identity fields or a layer blob
/// holding a different conv index).
pub fn load_streamed_model(
    cache: &ArtifactCache,
    model_key: &CacheKey,
) -> Result<Option<ModelArtifacts>, MvqError> {
    let Some(bytes) = cache.get_raw_kind(model_key, BlobKind::ModelIndex)? else {
        return Ok(None);
    };
    let index = ModelIndex::from_bytes(&bytes)?;
    if index.algorithm != model_key.algo
        || index.weight_hash != model_key.weight_hash
        || index.spec_fingerprint != model_key.spec_fingerprint
        || index.kernel != model_key.kernel
        || index.seed != model_key.seed
    {
        return Err(MvqError::Codec(format!(
            "model index does not answer for its key (stored for `{}` hash {:016x})",
            index.algorithm, index.weight_hash
        )));
    }
    let mut layers = Vec::with_capacity(index.layers.len());
    for &conv_index in &index.layers {
        let layer_key = model_key.layer_key(conv_index);
        let Some(blob) = cache.get_raw_kind(&layer_key, BlobKind::Layer)? else {
            return Ok(None);
        };
        let layer = LayerArtifact::from_bytes(&blob)?;
        if layer.conv_index != conv_index {
            return Err(MvqError::Codec(format!(
                "layer blob for conv {conv_index} holds conv {}",
                layer.conv_index
            )));
        }
        layers.push(layer);
    }
    Ok(Some(ModelArtifacts { algorithm: index.algorithm, layers, skipped: index.skipped }))
}

/// Producer: admits layers into the window in conv order, materializing
/// each only after its space is held. Depthwise skips never materialize;
/// all-zero skips release immediately via the writer.
fn producer_loop(
    source: &mut dyn LayerStream,
    meta: &[LayerMeta],
    seeds: &[u64],
    skip_depthwise: bool,
    window: &Window,
    task_tx: &Sender<Task>,
    res_tx: &Sender<LayerResult>,
) {
    for (conv_index, m) in meta.iter().enumerate() {
        if skip_depthwise && m.depthwise {
            if res_tx.send(LayerResult::Skipped { conv_index, window_bytes: 0 }).is_err() {
                return;
            }
            continue;
        }
        if !window.acquire(m.bytes) {
            return; // job failed elsewhere
        }
        let weight = match source.materialize(conv_index) {
            Ok(w) => w,
            Err(error) => {
                window.fail();
                let _ =
                    res_tx.send(LayerResult::Failed { conv_index, window_bytes: m.bytes, error });
                return;
            }
        };
        // dead layer: nothing to cluster or quantize (oracle rule)
        if weight.data().iter().all(|&x| x == 0.0) {
            if res_tx.send(LayerResult::Skipped { conv_index, window_bytes: m.bytes }).is_err() {
                return;
            }
            continue;
        }
        let task = Task { conv_index, seed: seeds[conv_index], window_bytes: m.bytes, weight };
        if task_tx.send(task).is_err() {
            // all workers are gone (job failed); our admission charge is
            // unreleasable but the stream is over anyway
            return;
        }
    }
}

/// Worker: compresses admitted layers and encodes them off the writer's
/// critical path. Shape rejections are skips (oracle rule); other errors
/// fail the job.
fn worker_loop(
    comp: &dyn Compressor,
    tasks: &Mutex<Receiver<Task>>,
    out: &Sender<LayerResult>,
    window: &Window,
) {
    loop {
        let task = {
            let rx = tasks.lock().expect("stream lock");
            match rx.recv() {
                Ok(task) => task,
                Err(_) => return, // producer done
            }
        };
        let Task { conv_index, seed, window_bytes, weight } = task;
        let mut layer_rng = StdRng::seed_from_u64(seed);
        let msg = match comp.compress_matrix(&weight, &mut layer_rng) {
            Ok(artifact) => {
                drop(weight);
                match (LayerArtifact { conv_index, artifact }).to_bytes() {
                    Ok(blob) => LayerResult::Done { conv_index, window_bytes, blob },
                    Err(error) => {
                        window.fail();
                        LayerResult::Failed { conv_index, window_bytes, error }
                    }
                }
            }
            Err(MvqError::IncompatibleShape { .. }) => {
                LayerResult::Skipped { conv_index, window_bytes }
            }
            Err(error) => {
                window.fail();
                LayerResult::Failed { conv_index, window_bytes, error }
            }
        };
        if out.send(msg).is_err() {
            return;
        }
    }
}

/// Writer (runs on the calling thread): spills finished layers to the
/// cache, releases their window charges, and folds outcomes into the
/// index. Keeps draining after a failure so producer/workers never block
/// forever; the lowest-conv-index error wins.
fn write_results(
    res_rx: &Receiver<LayerResult>,
    cache: &ArtifactCache,
    model_key: &CacheKey,
    window: &Window,
    progress: Option<&ProgressHandle>,
) -> (Vec<usize>, Vec<usize>, Option<(usize, MvqError)>) {
    let mut layers: Vec<usize> = Vec::new();
    let mut skipped: Vec<usize> = Vec::new();
    let mut failure: Option<(usize, MvqError)> = None;
    let record = |failure: &mut Option<(usize, MvqError)>, conv_index: usize, error: MvqError| {
        if failure.as_ref().is_none_or(|(idx, _)| conv_index < *idx) {
            *failure = Some((conv_index, error));
        }
    };
    while let Ok(msg) = res_rx.recv() {
        match msg {
            LayerResult::Done { conv_index, window_bytes, blob } => {
                if failure.is_none() {
                    let layer_key = model_key.layer_key(conv_index);
                    match cache.put_raw_kind(&layer_key, BlobKind::Layer, blob.into()) {
                        Ok(()) => {
                            layers.push(conv_index);
                            if let Some(p) = progress {
                                p.bump_done();
                            }
                        }
                        Err(error) => {
                            window.fail();
                            record(&mut failure, conv_index, error);
                        }
                    }
                }
                window.release(window_bytes);
            }
            LayerResult::Skipped { conv_index, window_bytes } => {
                if window_bytes > 0 {
                    window.release(window_bytes);
                }
                skipped.push(conv_index);
                if let Some(p) = progress {
                    p.bump_done();
                }
            }
            LayerResult::Failed { conv_index, window_bytes, error } => {
                window.fail();
                if window_bytes > 0 {
                    window.release(window_bytes);
                }
                record(&mut failure, conv_index, error);
            }
        }
    }
    (layers, skipped, failure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{by_name, ALGORITHM_NAMES};
    use crate::store::CacheBudget;
    use mvq_nn::models::{mobilenet_v1_lite, tiny_cnn};
    use mvq_tensor::kaiming_normal;

    fn spec() -> PipelineSpec {
        PipelineSpec { k: 8, ..PipelineSpec::default() }
    }

    fn mem_cache() -> ArtifactCache {
        ArtifactCache::in_memory()
    }

    /// Satellite: the streamed path is bit-identical to the in-memory
    /// oracle for every registry algorithm — byte-identical layer blobs
    /// and an identical `ModelArtifacts` fingerprint.
    #[test]
    fn streamed_matches_in_memory_oracle_for_every_algorithm() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = tiny_cnn(4, 8, &mut rng);
        let spec = spec();
        for name in ALGORITHM_NAMES {
            let comp = by_name(name, &spec).unwrap();
            let mut oracle_rng = StdRng::seed_from_u64(17);
            let oracle = comp.compress_model_artifacts(&model, &mut oracle_rng).unwrap();

            let cache = mem_cache();
            let key = model_cache_key(name, &model, &spec, 17).unwrap();
            let report = stream_compress_model(
                comp.as_ref(),
                &model,
                &cache,
                &key,
                &StreamConfig::default(),
                None,
            )
            .unwrap();
            let loaded = load_streamed_model(&cache, &key).unwrap().unwrap();

            assert_eq!(
                loaded.fingerprint().unwrap(),
                oracle.fingerprint().unwrap(),
                "streamed `{name}` diverges from the in-memory oracle"
            );
            // layer blobs are byte-identical to an encode of the oracle's
            for layer in &oracle.layers {
                let blob = cache
                    .get_raw_kind(&key.layer_key(layer.conv_index), BlobKind::Layer)
                    .unwrap()
                    .unwrap();
                assert_eq!(&blob[..], &layer.to_bytes().unwrap()[..], "conv {}", layer.conv_index);
            }
            assert_eq!(report.index.layers.len(), oracle.layers.len());
            assert_eq!(report.index.skipped, oracle.skipped);
        }
    }

    /// Depthwise handling follows the compressor: pvq compresses
    /// depthwise convs, codebook methods skip them — same as the oracle.
    #[test]
    fn depthwise_skips_follow_the_compressor() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = mobilenet_v1_lite(4, &mut rng);
        let spec = spec();
        for name in ["mvq", "pvq"] {
            let comp = by_name(name, &spec).unwrap();
            let mut oracle_rng = StdRng::seed_from_u64(9);
            let oracle = comp.compress_model_artifacts(&model, &mut oracle_rng).unwrap();
            let cache = mem_cache();
            let key = model_cache_key(name, &model, &spec, 9).unwrap();
            stream_compress_model(
                comp.as_ref(),
                &model,
                &cache,
                &key,
                &StreamConfig::default(),
                None,
            )
            .unwrap();
            let loaded = load_streamed_model(&cache, &key).unwrap().unwrap();
            assert_eq!(loaded.fingerprint().unwrap(), oracle.fingerprint().unwrap());
            assert_eq!(loaded.skipped, oracle.skipped);
        }
    }

    /// A synthetic many-layer stream: weights generated one at a time on
    /// materialize, never all resident.
    struct SyntheticStream {
        dims: Vec<Vec<usize>>,
        seed: u64,
    }

    impl LayerStream for SyntheticStream {
        fn layer_meta(&self) -> Vec<LayerMeta> {
            self.dims
                .iter()
                .map(|d| LayerMeta {
                    depthwise: false,
                    bytes: (d.iter().product::<usize>() * 4) as u64,
                })
                .collect()
        }

        fn materialize(&mut self, conv_index: usize) -> Result<Tensor, MvqError> {
            let dims = self.dims[conv_index].clone();
            let fan_in: usize = dims[1..].iter().product();
            let mut rng = StdRng::seed_from_u64(self.seed ^ conv_index as u64);
            Ok(kaiming_normal(dims, fan_in, &mut rng))
        }
    }

    /// The window bound holds: peak in-flight bytes never exceed the
    /// configured budget when every layer fits it.
    #[test]
    fn window_bound_is_respected() {
        let dims = vec![vec![32, 16]; 12];
        let layer_bytes = (32 * 16 * 4) as u64;
        let mut source = SyntheticStream { dims, seed: 41 };
        let cache = mem_cache();
        let spec = spec();
        let comp = by_name("mvq", &spec).unwrap();
        let key = CacheKey {
            algo: "mvq",
            weight_hash: 0xfeed,
            spec_fingerprint: spec.fingerprint(),
            kernel: spec.kernel,
            seed: 7,
        };
        let config = StreamConfig::default().with_window(3, 2 * layer_bytes).with_workers(4);
        let report =
            stream_compress(comp.as_ref(), &mut source, &cache, &key, &config, None).unwrap();
        assert_eq!(report.index.layers.len(), 12);
        assert!(report.peak_window_bytes <= 2 * layer_bytes);
        assert!(report.peak_window_layers <= 3);
        assert!(report.peak_window_bytes > 0);
    }

    /// Acceptance: a synthetic model 10× the size of resnet18-lite
    /// streams to completion under a fixed window a fraction of the
    /// model's weight bytes, and the in-test peak working set respects
    /// the configured bound.
    #[test]
    fn ten_resnet18s_stream_under_a_fixed_window() {
        let mut rng = StdRng::seed_from_u64(2);
        let proto = mvq_nn::models::resnet18_lite(8, &mut rng);
        let mut dims: Vec<Vec<usize>> = Vec::new();
        proto.visit_convs(&mut |conv| dims.push(conv.weight.value.dims().to_vec()));
        let dims: Vec<Vec<usize>> = (0..10).flat_map(|_| dims.iter().cloned()).collect::<Vec<_>>();
        let total_bytes: u64 = dims.iter().map(|d| (d.iter().product::<usize>() * 4) as u64).sum();
        let largest: u64 =
            dims.iter().map(|d| (d.iter().product::<usize>() * 4) as u64).max().unwrap();
        let num_layers = dims.len();
        let mut source = SyntheticStream { dims, seed: 47 };

        // window: 2 largest layers, far below the whole model
        let window_bytes = 2 * largest;
        assert!(window_bytes * 4 < total_bytes, "window is not a meaningful bound");
        let spec = PipelineSpec { k: 8, d: 8, keep_n: 2, m: 8, ..PipelineSpec::default() };
        let comp = by_name("mvq", &spec).unwrap();
        let cache = mem_cache();
        let key = CacheKey {
            algo: "mvq",
            weight_hash: 0x10e5,
            spec_fingerprint: spec.fingerprint(),
            kernel: spec.kernel,
            seed: 13,
        };
        let progress = ProgressHandle::new();
        let config = StreamConfig::default().with_window(3, window_bytes);
        let report =
            stream_compress(comp.as_ref(), &mut source, &cache, &key, &config, Some(&progress))
                .unwrap();
        assert!(report.peak_window_bytes <= window_bytes, "window bound violated");
        assert!(report.peak_window_layers <= 3);
        assert_eq!(report.index.layers.len() + report.index.skipped.len(), num_layers);
        assert!(!report.index.layers.is_empty());
        let snap = progress.snapshot();
        assert_eq!(snap, Progress { layers_done: num_layers, layers_total: num_layers });
        assert!(load_streamed_model(&cache, &key).unwrap().is_some());
    }

    /// A single weight larger than the byte budget still streams — alone
    /// in an otherwise-empty window.
    #[test]
    fn oversized_layer_is_admitted_alone() {
        let dims = vec![vec![32, 16], vec![64, 16], vec![32, 16]];
        let big_bytes = (64 * 16 * 4) as u64;
        let mut source = SyntheticStream { dims, seed: 43 };
        let cache = mem_cache();
        let spec = spec();
        let comp = by_name("mvq", &spec).unwrap();
        let key = CacheKey {
            algo: "mvq",
            weight_hash: 0xbead,
            spec_fingerprint: spec.fingerprint(),
            kernel: spec.kernel,
            seed: 7,
        };
        // budget below the big layer's size
        let config = StreamConfig::default().with_window(4, big_bytes - 1);
        let report =
            stream_compress(comp.as_ref(), &mut source, &cache, &key, &config, None).unwrap();
        assert_eq!(report.index.layers.len(), 3);
        // the oversized layer was alone when admitted
        assert_eq!(report.peak_window_bytes, big_bytes);
    }

    /// Progress counts every conv reaching a terminal state, and the
    /// totals survive the job.
    #[test]
    fn progress_reaches_total() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = mobilenet_v1_lite(4, &mut rng);
        let spec = spec();
        let comp = by_name("mvq", &spec).unwrap();
        let cache = mem_cache();
        let key = model_cache_key("mvq", &model, &spec, 11).unwrap();
        let progress = ProgressHandle::new();
        assert_eq!(progress.snapshot(), Progress { layers_done: 0, layers_total: 0 });
        stream_compress_model(
            comp.as_ref(),
            &model,
            &cache,
            &key,
            &StreamConfig::default(),
            Some(&progress),
        )
        .unwrap();
        let snap = progress.snapshot();
        assert_eq!(snap.layers_total, model.num_convs());
        assert_eq!(snap.layers_done, snap.layers_total);
    }

    /// An evicted layer blob turns the whole model into a miss — never a
    /// partial `ModelArtifacts`.
    #[test]
    fn missing_layer_blob_is_a_model_miss() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = tiny_cnn(4, 8, &mut rng);
        let spec = spec();
        let comp = by_name("mvq", &spec).unwrap();
        let cache = mem_cache();
        let key = model_cache_key("mvq", &model, &spec, 17).unwrap();
        stream_compress_model(comp.as_ref(), &model, &cache, &key, &StreamConfig::default(), None)
            .unwrap();
        assert!(load_streamed_model(&cache, &key).unwrap().is_some());

        // same index, but a cache that never saw the layer blobs
        let index_bytes = cache.get_raw_kind(&key, BlobKind::ModelIndex).unwrap().unwrap();
        let empty = mem_cache();
        empty.put_raw_kind(&key, BlobKind::ModelIndex, index_bytes).unwrap();
        assert!(load_streamed_model(&empty, &key).unwrap().is_none());
    }

    /// An index stored under a mismatched key is corruption, not a hit.
    #[test]
    fn index_for_a_different_key_is_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = tiny_cnn(4, 8, &mut rng);
        let spec = spec();
        let comp = by_name("mvq", &spec).unwrap();
        let cache = mem_cache();
        let key = model_cache_key("mvq", &model, &spec, 17).unwrap();
        stream_compress_model(comp.as_ref(), &model, &cache, &key, &StreamConfig::default(), None)
            .unwrap();
        let index_bytes = cache.get_raw_kind(&key, BlobKind::ModelIndex).unwrap().unwrap();
        let other = CacheKey { seed: 18, ..key.clone() };
        let cross = mem_cache();
        cross.put_raw_kind(&other, BlobKind::ModelIndex, index_bytes).unwrap();
        let err = load_streamed_model(&cross, &other).unwrap_err();
        assert!(matches!(err, MvqError::Codec(_)), "got {err:?}");
    }

    /// The "nothing compressible" failure matches the oracle's.
    #[test]
    fn all_zero_model_fails_like_the_oracle() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = tiny_cnn(2, 8, &mut rng);
        model.visit_convs_mut(&mut |conv| {
            let zeros = vec![0.0; conv.weight.value.data().len()];
            conv.weight.value = Tensor::from_vec(conv.weight.value.dims().to_vec(), zeros).unwrap();
        });
        let spec = spec();
        let comp = by_name("mvq", &spec).unwrap();
        let cache = mem_cache();
        let key = model_cache_key("mvq", &model, &spec, 17).unwrap();
        let err = stream_compress_model(
            comp.as_ref(),
            &model,
            &cache,
            &key,
            &StreamConfig::default(),
            None,
        )
        .unwrap_err();
        let mut oracle_rng = StdRng::seed_from_u64(17);
        let oracle_err = comp.compress_model_artifacts(&model, &mut oracle_rng).unwrap_err();
        assert_eq!(format!("{err}"), format!("{oracle_err}"));
        // no index was left behind
        assert!(cache.get_raw_kind(&key, BlobKind::ModelIndex).unwrap().is_none());
    }

    /// Streaming works against a disk-backed, budgeted cache: layers
    /// spill and reload through the durable path.
    #[test]
    fn streams_through_a_disk_backed_cache() {
        let dir = std::env::temp_dir().join(format!("mvq-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut rng = StdRng::seed_from_u64(3);
        let model = tiny_cnn(4, 8, &mut rng);
        let spec = spec();
        let comp = by_name("mvq", &spec).unwrap();
        let key = model_cache_key("mvq", &model, &spec, 17).unwrap();
        {
            let cache = ArtifactCache::with_dir_and_budget(&dir, CacheBudget::default()).unwrap();
            stream_compress_model(
                comp.as_ref(),
                &model,
                &cache,
                &key,
                &StreamConfig::default(),
                None,
            )
            .unwrap();
        }
        // a fresh cache over the same dir reassembles the model
        let reopened = ArtifactCache::with_dir(&dir).unwrap();
        let loaded = load_streamed_model(&reopened, &key).unwrap().unwrap();
        let mut oracle_rng = StdRng::seed_from_u64(17);
        let oracle = comp.compress_model_artifacts(&model, &mut oracle_rng).unwrap();
        assert_eq!(loaded.fingerprint().unwrap(), oracle.fingerprint().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
