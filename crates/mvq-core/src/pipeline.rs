//! The unified compression pipeline: one algorithm-agnostic API over MVQ
//! and every VQ baseline the paper compares against.
//!
//! Historically each algorithm had a bespoke entry point (`bgd_compress`,
//! `pqf_compress`, `dkm_compress`, `pvq_quantize`, `vq_case_a/b/c`,
//! [`MvqCompressor::compress_matrix`]) and its own result struct, so every
//! consumer — the `paper` benchmark tables, the examples, the accelerator
//! simulator — hand-wired all six methods. This module unifies them behind
//! two abstractions:
//!
//! * [`Compressor`] — `compress_matrix` + `compress_model`, implemented by
//!   every algorithm (the existing entry points remain as the internals);
//! * [`CompressedArtifact`] — the common compressed representation:
//!   codebook + assignments, optional N:M mask, original dims, and a
//!   uniform `reconstruct()` / `storage()` / `compression_ratio()` surface.
//!
//! Algorithms are discovered through the string-keyed [`registry`] /
//! [`by_name`], parameterized by a [`PipelineSpec`]:
//!
//! | name    | algorithm                                   | paper section     |
//! |---------|---------------------------------------------|-------------------|
//! | `mvq`   | masked vector quantization (ours)           | §4, Tables 3–6    |
//! | `vq-a`  | plain VQ, dense weights, dense decode       | Fig. 12 case A    |
//! | `vq-b`  | plain VQ on pruned weights, dense decode    | Fig. 12 case B    |
//! | `vq-c`  | plain VQ on pruned weights, sparse decode   | Fig. 12 case C    |
//! | `pqf`   | permute–quantize (Martinez et al.)          | Table 5, Fig. 13  |
//! | `bgd`   | "bit goes down" importance k-means (Stock)  | Fig. 13           |
//! | `dkm`   | differentiable (attention) k-means (Cho)    | §2 related work   |
//! | `pvq`   | uniform scalar quantization (Kuzmin et al.) | Tables 4, 6       |
//!
//! (`vq` is accepted as an alias for `vq-a`.)
//!
//! ```
//! use mvq_core::pipeline::{by_name, PipelineSpec};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let w = mvq_tensor::kaiming_normal(vec![64, 16], 16, &mut rng);
//! for comp in mvq_core::pipeline::registry() {
//!     let artifact = comp.compress_matrix(&w, &mut rng)?;
//!     assert_eq!(artifact.reconstruct()?.dims(), w.dims());
//!     assert!(artifact.compression_ratio() > 1.0);
//! }
//! let mvq = by_name("mvq", &PipelineSpec::default())?;
//! assert_eq!(mvq.name(), "mvq");
//! # Ok::<(), mvq_core::MvqError>(())
//! ```

use mvq_nn::layers::Sequential;
use mvq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::baselines::bgd::bgd_compress;
use crate::baselines::dkm::{dkm_compress, DkmConfig};
use crate::baselines::pqf::{pqf_compress, PqfCompressed};
use crate::baselines::pvq::{pvq_quantize, PvqResult};
use crate::baselines::vq_plain::{vq_case_a, vq_case_b, vq_case_c, DenseVq};
use crate::codebook::{Assignments, Codebook};
use crate::compress::{CompressedMatrix, MvqCompressor, MvqConfig};
use crate::error::MvqError;
use crate::grouping::GroupingStrategy;
use crate::kernels::KernelStrategy;
use crate::mask::NmMask;
use crate::metrics::{StorageBreakdown, FULL_PRECISION_BITS};
use crate::pruning::prune_matrix_nm;

/// A weight tensor in any of the pipeline's compressed representations.
///
/// Every variant carries its original dims and exposes the same decode and
/// storage-accounting surface, so consumers can treat all algorithms
/// uniformly.
#[derive(Debug, Clone)]
pub enum CompressedArtifact {
    /// Codebook + assignments + N:M mask, sparse decode (MVQ, VQ case C).
    Masked(CompressedMatrix),
    /// Codebook + assignments, dense decode (VQ cases A/B, BGD, DKM).
    Dense(DenseVq),
    /// Permutation + codebook + assignments (PQF).
    Permuted(PqfCompressed),
    /// Per-tensor uniform scalar quantization (PvQ).
    Scalar(ScalarQuantized),
}

impl CompressedArtifact {
    /// Reconstructs the weight in its original dims.
    ///
    /// # Errors
    ///
    /// Propagates grouping errors.
    pub fn reconstruct(&self) -> Result<Tensor, MvqError> {
        match self {
            CompressedArtifact::Masked(m) => m.reconstruct(),
            CompressedArtifact::Dense(v) => v.reconstruct(),
            CompressedArtifact::Permuted(p) => p.reconstruct(),
            CompressedArtifact::Scalar(s) => Ok(s.result.quantized.clone()),
        }
    }

    /// Storage breakdown under the paper's Eq. 7 accounting.
    pub fn storage(&self) -> StorageBreakdown {
        match self {
            CompressedArtifact::Masked(m) => m.storage(),
            CompressedArtifact::Dense(v) => v.storage(),
            CompressedArtifact::Permuted(p) => p.storage(),
            CompressedArtifact::Scalar(s) => s.storage(),
        }
    }

    /// Compression ratio (Eq. 7).
    pub fn compression_ratio(&self) -> f64 {
        self.storage().ratio()
    }

    /// Original weight dims.
    pub fn orig_dims(&self) -> &[usize] {
        match self {
            CompressedArtifact::Masked(m) => m.orig_dims(),
            CompressedArtifact::Dense(v) => v.orig_dims(),
            CompressedArtifact::Permuted(p) => p.orig_dims(),
            CompressedArtifact::Scalar(s) => s.result.quantized.dims(),
        }
    }

    /// The codebook, when the representation has one.
    pub fn codebook(&self) -> Option<&Codebook> {
        match self {
            CompressedArtifact::Masked(m) => Some(m.codebook()),
            CompressedArtifact::Dense(v) => Some(v.codebook()),
            CompressedArtifact::Permuted(p) => Some(p.codebook()),
            CompressedArtifact::Scalar(_) => None,
        }
    }

    /// The assignments, when the representation has them.
    pub fn assignments(&self) -> Option<&Assignments> {
        match self {
            CompressedArtifact::Masked(m) => Some(m.assignments()),
            CompressedArtifact::Dense(v) => Some(v.assignments()),
            CompressedArtifact::Permuted(p) => Some(p.assignments()),
            CompressedArtifact::Scalar(_) => None,
        }
    }

    /// The N:M mask, for sparse representations.
    pub fn mask(&self) -> Option<&NmMask> {
        match self {
            CompressedArtifact::Masked(m) => Some(m.mask()),
            _ => None,
        }
    }

    /// Clustering / quantization SSE recorded at compression time, when
    /// the algorithm reports one (masked SSE for MVQ, plain clustering
    /// SSE for the dense/permuted baselines and VQ case C).
    pub fn sse(&self) -> Option<f32> {
        match self {
            CompressedArtifact::Masked(m) => m.sse(),
            CompressedArtifact::Dense(v) => Some(v.sse),
            CompressedArtifact::Permuted(p) => Some(p.sse),
            CompressedArtifact::Scalar(s) => Some(s.result.sse),
        }
    }
}

/// A scalar-quantized tensor wrapped into the artifact surface.
#[derive(Debug, Clone)]
pub struct ScalarQuantized {
    /// The underlying PvQ result.
    pub result: PvqResult,
}

impl ScalarQuantized {
    /// Storage: the payload is `bits` per weight (the per-tensor scale is
    /// amortized away, matching uniform-quantization reporting).
    pub fn storage(&self) -> StorageBreakdown {
        let n = self.result.quantized.numel() as u64;
        StorageBreakdown {
            original_bits: n * FULL_PRECISION_BITS,
            assignment_bits: n * self.result.bits as u64,
            mask_bits: 0,
            codebook_bits: 0,
        }
    }
}

/// One compressed conv layer inside a [`ModelArtifacts`].
#[derive(Debug, Clone)]
pub struct LayerArtifact {
    /// Depth-first index of the conv layer in the model.
    pub conv_index: usize,
    /// The layer's compressed representation.
    pub artifact: CompressedArtifact,
}

/// Whole-model output of [`Compressor::compress_model`]: one artifact per
/// compressed conv, plus the indices of skipped (incompatible) convs.
#[derive(Debug, Clone)]
pub struct ModelArtifacts {
    /// Algorithm name (from [`Compressor::name`]).
    pub algorithm: &'static str,
    /// Compressed layers in conv order.
    pub layers: Vec<LayerArtifact>,
    /// Conv indices skipped (depthwise / incompatible shapes).
    pub skipped: Vec<usize>,
}

impl ModelArtifacts {
    /// Whole-model storage breakdown (sum over layers).
    pub fn storage(&self) -> StorageBreakdown {
        let mut total = StorageBreakdown {
            original_bits: 0,
            assignment_bits: 0,
            mask_bits: 0,
            codebook_bits: 0,
        };
        for layer in &self.layers {
            total = total.merge(&layer.artifact.storage());
        }
        total
    }

    /// Compression ratio over all compressed layers.
    pub fn compression_ratio(&self) -> f64 {
        self.storage().ratio()
    }

    /// Content fingerprint: FNV-1a over the canonical durable encoding
    /// ([`crate::store::Persist::to_bytes`]), so two artifact sets agree
    /// iff their serialized bytes agree. This is the equality the
    /// streaming ↔ in-memory property suite pins — per-layer blobs may be
    /// spilled and reassembled in any order, but the assembled model must
    /// fingerprint identically to the monolithic path.
    ///
    /// # Errors
    ///
    /// Propagates encoding failures from
    /// [`crate::store::Persist::to_bytes`].
    pub fn fingerprint(&self) -> Result<u64, MvqError> {
        let mut h = crate::store::Fnv1a::new();
        h.update(b"mvq.modelartifacts.v1");
        h.update(&crate::store::Persist::to_bytes(self)?);
        Ok(h.finish())
    }

    /// Sum of per-layer SSEs for algorithms that record one.
    pub fn total_sse(&self) -> Option<f64> {
        let mut total = 0.0f64;
        for layer in &self.layers {
            total += layer.artifact.sse()? as f64;
        }
        Some(total)
    }

    /// Per-conv reconstructions indexed by conv position (`None` for
    /// skipped convs). `num_convs` must be the model's conv count.
    ///
    /// # Errors
    ///
    /// Propagates reconstruction errors, and rejects a `num_convs` smaller
    /// than the highest compressed conv index (artifacts from a different
    /// model).
    pub fn reconstructions(&self, num_convs: usize) -> Result<Vec<Option<Tensor>>, MvqError> {
        let mut out: Vec<Option<Tensor>> = vec![None; num_convs];
        for layer in &self.layers {
            if layer.conv_index >= num_convs {
                return Err(MvqError::InvalidConfig(format!(
                    "artifact for conv {} does not fit a model with {num_convs} convs",
                    layer.conv_index
                )));
            }
            out[layer.conv_index] = Some(layer.artifact.reconstruct()?);
        }
        Ok(out)
    }

    /// Writes every reconstructed weight back into `model`.
    ///
    /// # Errors
    ///
    /// Propagates reconstruction errors; see [`ModelArtifacts::reconstructions`].
    pub fn apply_to(&self, model: &mut Sequential) -> Result<(), MvqError> {
        let mut recons = self.reconstructions(model.num_convs())?;
        let mut idx = 0usize;
        model.visit_convs_mut(&mut |conv| {
            if let Some(slot) = recons.get_mut(idx) {
                if let Some(w) = slot.take() {
                    conv.weight.value = w;
                }
            }
            idx += 1;
        });
        Ok(())
    }
}

/// A compression algorithm usable through the unified pipeline.
///
/// `Send + Sync` so registry entries can fan out across layers with rayon.
pub trait Compressor: Send + Sync {
    /// Short registry name (e.g. `"mvq"`, `"pqf"`).
    fn name(&self) -> &'static str;

    /// One-line human-readable hyperparameter summary.
    fn config_summary(&self) -> String;

    /// Whether the model path skips depthwise convs. Codebook methods do
    /// (their grouping cannot use the degenerate shapes); scalar
    /// quantizers override to `false`. Must agree with the algorithm's
    /// [`Compressor::compress_model_artifacts`] behavior — the streaming
    /// pipeline (`crate::stream`) queries this to replicate the in-memory
    /// path's skip decisions bit-identically.
    fn skips_depthwise(&self) -> bool {
        true
    }

    /// Compresses a single weight tensor (rank 2 or 4).
    ///
    /// # Errors
    ///
    /// Propagates grouping errors for incompatible shapes and clustering
    /// errors for degenerate configurations.
    fn compress_matrix(
        &self,
        weight: &Tensor,
        rng: &mut StdRng,
    ) -> Result<CompressedArtifact, MvqError>;

    /// Compresses every compatible conv of `model` without touching its
    /// weights: skips depthwise convs, incompatible shapes, and dead
    /// (all-zero) layers. Layers are compressed rayon-parallel; each
    /// layer gets an independent RNG seeded from `rng`, so results are
    /// deterministic and identical to a serial walk.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] when no layer is compressible,
    /// and propagates non-shape compression errors.
    fn compress_model_artifacts(
        &self,
        model: &Sequential,
        rng: &mut StdRng,
    ) -> Result<ModelArtifacts, MvqError> {
        compress_model_with(self, model, rng, true)
    }

    /// [`Compressor::compress_model_artifacts`] plus writing the
    /// reconstructed weights back into `model`.
    ///
    /// # Errors
    ///
    /// See [`Compressor::compress_model_artifacts`].
    fn compress_model(
        &self,
        model: &mut Sequential,
        rng: &mut StdRng,
    ) -> Result<ModelArtifacts, MvqError> {
        let artifacts = self.compress_model_artifacts(model, rng)?;
        artifacts.apply_to(model)?;
        Ok(artifacts)
    }
}

/// Successful per-layer outcomes (`(conv_index, value)` in conv order)
/// plus the skipped conv indices.
pub(crate) type LayerFanOut<T> = (Vec<(usize, T)>, Vec<usize>);

/// Per-layer fan-out shared by the [`Compressor`] model path and
/// [`crate::ModelCompressor`]: draws one seed per conv serially from
/// `rng`, compresses eligible layers (serial or rayon — bit-identical),
/// and partitions the outcomes into compressed layers and skipped conv
/// indices. Skips depthwise convs (when asked), shapes the grouping
/// rejects, and dead all-zero layers.
///
/// # Errors
///
/// Propagates the first non-shape compression error.
pub(crate) fn compress_layers<T, R, F>(
    model: &Sequential,
    rng: &mut R,
    parallelism: crate::Parallelism,
    skip_depthwise: bool,
    compress_one: F,
) -> Result<LayerFanOut<T>, MvqError>
where
    T: Send,
    R: Rng,
    F: Fn(&Tensor, &mut StdRng) -> Result<T, MvqError> + Sync,
{
    let mut weights: Vec<Tensor> = Vec::new();
    let mut depthwise: Vec<bool> = Vec::new();
    model.visit_convs(&mut |conv| {
        weights.push(conv.weight.value.clone());
        depthwise.push(conv.is_depthwise());
    });
    // Seeds are drawn serially up front so the parallel fan-out below is
    // bit-identical to a serial walk.
    let jobs: Vec<(usize, Tensor, u64)> = weights
        .into_iter()
        .enumerate()
        .map(|(idx, w)| {
            let seed = rng.next_u64();
            (idx, w, seed)
        })
        .collect();
    type Outcome<T> = (usize, Option<Result<T, MvqError>>);
    let run = |(idx, w, seed): (usize, Tensor, u64)| -> Outcome<T> {
        if skip_depthwise && depthwise[idx] {
            return (idx, None);
        }
        // dead layer: nothing to cluster or quantize
        if w.data().iter().all(|&x| x == 0.0) {
            return (idx, None);
        }
        let mut layer_rng = StdRng::seed_from_u64(seed);
        match compress_one(&w, &mut layer_rng) {
            Ok(value) => (idx, Some(Ok(value))),
            Err(MvqError::IncompatibleShape { .. }) => (idx, None),
            Err(e) => (idx, Some(Err(e))),
        }
    };
    let outcomes: Vec<Outcome<T>> = match parallelism {
        crate::Parallelism::Serial => jobs.into_iter().map(run).collect(),
        crate::Parallelism::Rayon => jobs.into_par_iter().map(run).collect(),
    };
    let mut items = Vec::new();
    let mut skipped = Vec::new();
    for (idx, outcome) in outcomes {
        match outcome {
            Some(Ok(value)) => items.push((idx, value)),
            Some(Err(e)) => return Err(e),
            None => skipped.push(idx),
        }
    }
    Ok((items, skipped))
}

/// Shared implementation behind [`Compressor::compress_model_artifacts`]:
/// the internal layer fan-out packaged as [`ModelArtifacts`].
///
/// # Errors
///
/// See [`Compressor::compress_model_artifacts`].
pub fn compress_model_with<C: Compressor + ?Sized>(
    comp: &C,
    model: &Sequential,
    rng: &mut StdRng,
    skip_depthwise: bool,
) -> Result<ModelArtifacts, MvqError> {
    let (items, skipped) =
        compress_layers(model, rng, crate::Parallelism::Rayon, skip_depthwise, |w, r| {
            comp.compress_matrix(w, r)
        })?;
    let layers: Vec<LayerArtifact> = items
        .into_iter()
        .map(|(conv_index, artifact)| LayerArtifact { conv_index, artifact })
        .collect();
    if layers.is_empty() {
        return Err(no_compressible_layer_error(comp.name(), &skipped));
    }
    Ok(ModelArtifacts { algorithm: comp.name(), layers, skipped })
}

/// The "nothing compressed" failure, with the skipped conv indices in the
/// message: an all-depthwise (or all-incompatible) model failing a service
/// job must be diagnosable from the job error alone, without rerunning the
/// model locally.
pub(crate) fn no_compressible_layer_error(algorithm: &str, skipped: &[usize]) -> MvqError {
    MvqError::InvalidConfig(format!(
        "model has no conv layer compressible by `{algorithm}` \
         ({} conv(s) skipped as depthwise/incompatible/all-zero: {skipped:?})",
        skipped.len()
    ))
}

impl Compressor for MvqCompressor {
    fn name(&self) -> &'static str {
        "mvq"
    }

    fn config_summary(&self) -> String {
        let cfg = self.config();
        format!(
            "k={} d={} {}:{} grouping={} codebook={}",
            cfg.k,
            cfg.d,
            cfg.keep_n,
            cfg.m,
            cfg.grouping.name(),
            bits_label(cfg.codebook_bits)
        )
    }

    fn compress_matrix(
        &self,
        weight: &Tensor,
        rng: &mut StdRng,
    ) -> Result<CompressedArtifact, MvqError> {
        // resolves to the inherent (generic-RNG) method
        MvqCompressor::compress_matrix(self, weight, rng).map(CompressedArtifact::Masked)
    }
}

/// Which plain-VQ ablation arm a [`PlainVq`] runs (paper Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VqVariant {
    /// Dense weights, common k-means, dense reconstruction.
    CaseA,
    /// N:M-pruned weights, common k-means, dense reconstruction (mask not
    /// stored).
    CaseB,
    /// N:M-pruned weights, common k-means, sparse reconstruction (mask
    /// stored).
    CaseC,
}

/// Conventional vector quantization (ablation cases A/B/C).
#[derive(Debug, Clone)]
pub struct PlainVq {
    /// Which ablation arm.
    pub variant: VqVariant,
    /// Codewords.
    pub k: usize,
    /// Subvector length used for clustering.
    pub d: usize,
    /// Kept weights per pruning group (cases B/C).
    pub keep_n: usize,
    /// Pruning group size (cases B/C).
    pub m: usize,
    /// Subvector length the pruning grid lives on (case B's two-grid
    /// setup: prune at `prune_d`, recluster at `d`). Must equal `d` for
    /// case C.
    pub prune_d: usize,
    /// Grouping strategy.
    pub grouping: GroupingStrategy,
    /// Codebook quantization.
    pub codebook_bits: Option<u32>,
    /// Distance/assignment kernel for the clustering loop.
    pub kernel: KernelStrategy,
}

impl Compressor for PlainVq {
    fn name(&self) -> &'static str {
        match self.variant {
            VqVariant::CaseA => "vq-a",
            VqVariant::CaseB => "vq-b",
            VqVariant::CaseC => "vq-c",
        }
    }

    fn config_summary(&self) -> String {
        match self.variant {
            VqVariant::CaseA => format!(
                "k={} d={} grouping={} codebook={}",
                self.k,
                self.d,
                self.grouping.name(),
                bits_label(self.codebook_bits)
            ),
            _ => format!(
                "k={} d={} {}:{} (pruned at d={}) grouping={} codebook={}",
                self.k,
                self.d,
                self.keep_n,
                self.m,
                self.prune_d,
                self.grouping.name(),
                bits_label(self.codebook_bits)
            ),
        }
    }

    fn compress_matrix(
        &self,
        weight: &Tensor,
        rng: &mut StdRng,
    ) -> Result<CompressedArtifact, MvqError> {
        match self.variant {
            VqVariant::CaseA => vq_case_a(
                weight,
                self.k,
                self.d,
                self.grouping,
                self.codebook_bits,
                self.kernel,
                rng,
            )
            .map(CompressedArtifact::Dense),
            VqVariant::CaseB if self.prune_d == self.d => vq_case_b(
                weight,
                self.k,
                self.d,
                self.keep_n,
                self.m,
                self.grouping,
                self.codebook_bits,
                self.kernel,
                rng,
            )
            .map(CompressedArtifact::Dense),
            VqVariant::CaseB => {
                // two-grid setup: the N:M pattern lives on the prune_d
                // grouping, clustering happens on the d grouping
                let grouped = self.grouping.group(weight, self.prune_d)?;
                let (pruned, _mask) = prune_matrix_nm(&grouped, self.keep_n, self.m)?;
                let sparse = self.grouping.ungroup(&pruned, weight.dims(), self.prune_d)?;
                vq_case_a(
                    &sparse,
                    self.k,
                    self.d,
                    self.grouping,
                    self.codebook_bits,
                    self.kernel,
                    rng,
                )
                .map(CompressedArtifact::Dense)
            }
            VqVariant::CaseC => {
                if self.prune_d != self.d {
                    return Err(MvqError::InvalidConfig(
                        "case C stores the mask on the clustering grid; prune_d must equal d"
                            .into(),
                    ));
                }
                vq_case_c(
                    weight,
                    self.k,
                    self.d,
                    self.keep_n,
                    self.m,
                    self.grouping,
                    self.codebook_bits,
                    self.kernel,
                    rng,
                )
                .map(|(cm, _mask)| CompressedArtifact::Masked(cm))
            }
        }
    }
}

/// PQF: permutation search + k-means (Martinez et al., CVPR '21).
#[derive(Debug, Clone)]
pub struct Pqf {
    /// Codewords.
    pub k: usize,
    /// Subvector length.
    pub d: usize,
    /// Hill-climb swap trials.
    pub swap_trials: usize,
    /// Grouping strategy.
    pub grouping: GroupingStrategy,
    /// Codebook quantization.
    pub codebook_bits: Option<u32>,
    /// Distance/assignment kernel for the clustering loop.
    pub kernel: KernelStrategy,
}

impl Compressor for Pqf {
    fn name(&self) -> &'static str {
        "pqf"
    }

    fn config_summary(&self) -> String {
        format!(
            "k={} d={} swaps={} grouping={} codebook={}",
            self.k,
            self.d,
            self.swap_trials,
            self.grouping.name(),
            bits_label(self.codebook_bits)
        )
    }

    fn compress_matrix(
        &self,
        weight: &Tensor,
        rng: &mut StdRng,
    ) -> Result<CompressedArtifact, MvqError> {
        pqf_compress(
            weight,
            self.k,
            self.d,
            self.grouping,
            self.codebook_bits,
            self.swap_trials,
            self.kernel,
            rng,
        )
        .map(CompressedArtifact::Permuted)
    }
}

/// BGD: importance-weighted k-means (Stock et al., ICLR '20). Importance
/// defaults to squared subvector norms (no activation statistics).
#[derive(Debug, Clone)]
pub struct Bgd {
    /// Codewords.
    pub k: usize,
    /// Subvector length.
    pub d: usize,
    /// Grouping strategy.
    pub grouping: GroupingStrategy,
    /// Codebook quantization.
    pub codebook_bits: Option<u32>,
    /// Distance/assignment kernel for the clustering loop.
    pub kernel: KernelStrategy,
}

impl Compressor for Bgd {
    fn name(&self) -> &'static str {
        "bgd"
    }

    fn config_summary(&self) -> String {
        format!(
            "k={} d={} grouping={} codebook={} importance=norm2",
            self.k,
            self.d,
            self.grouping.name(),
            bits_label(self.codebook_bits)
        )
    }

    fn compress_matrix(
        &self,
        weight: &Tensor,
        rng: &mut StdRng,
    ) -> Result<CompressedArtifact, MvqError> {
        bgd_compress(
            weight,
            self.k,
            self.d,
            self.grouping,
            self.codebook_bits,
            None,
            self.kernel,
            rng,
        )
        .map(CompressedArtifact::Dense)
    }
}

/// DKM: differentiable (attention) k-means (Cho et al., ICLR '22).
#[derive(Debug, Clone)]
pub struct Dkm {
    /// Soft-clustering hyperparameters.
    pub config: DkmConfig,
    /// Subvector length.
    pub d: usize,
    /// Grouping strategy.
    pub grouping: GroupingStrategy,
    /// Codebook quantization.
    pub codebook_bits: Option<u32>,
}

impl Compressor for Dkm {
    fn name(&self) -> &'static str {
        "dkm"
    }

    fn config_summary(&self) -> String {
        format!(
            "k={} d={} tau={} anneal={} iters={} grouping={} codebook={}",
            self.config.k,
            self.d,
            self.config.temperature,
            self.config.anneal,
            self.config.iters,
            self.grouping.name(),
            bits_label(self.codebook_bits)
        )
    }

    fn compress_matrix(
        &self,
        weight: &Tensor,
        rng: &mut StdRng,
    ) -> Result<CompressedArtifact, MvqError> {
        dkm_compress(weight, &self.config, self.d, self.grouping, self.codebook_bits, rng)
            .map(CompressedArtifact::Dense)
    }
}

/// PvQ: uniform scalar quantization at a fixed bit width (Kuzmin et al.).
#[derive(Debug, Clone)]
pub struct Pvq {
    /// Bit width (2..=16).
    pub bits: u32,
}

impl Compressor for Pvq {
    fn name(&self) -> &'static str {
        "pvq"
    }

    fn config_summary(&self) -> String {
        format!("bits={}", self.bits)
    }

    fn compress_matrix(
        &self,
        weight: &Tensor,
        _rng: &mut StdRng,
    ) -> Result<CompressedArtifact, MvqError> {
        pvq_quantize(weight, self.bits)
            .map(|result| CompressedArtifact::Scalar(ScalarQuantized { result }))
    }

    // Scalar quantization has no shape constraints, so depthwise convs are
    // quantized too (matching the historical `pvq_quantize_model`).
    fn skips_depthwise(&self) -> bool {
        false
    }

    fn compress_model_artifacts(
        &self,
        model: &Sequential,
        rng: &mut StdRng,
    ) -> Result<ModelArtifacts, MvqError> {
        compress_model_with(self, model, rng, false)
    }
}

/// Shared hyperparameters the registry builds compressors from.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpec {
    /// Codewords `k`.
    pub k: usize,
    /// Subvector length `d`.
    pub d: usize,
    /// Kept weights per pruning group.
    pub keep_n: usize,
    /// Pruning group size `M`.
    pub m: usize,
    /// Pruning grid for VQ case B's two-grid setup (`None` = same as `d`).
    pub prune_d: Option<usize>,
    /// Grouping strategy.
    pub grouping: GroupingStrategy,
    /// Codebook quantization width.
    pub codebook_bits: Option<u32>,
    /// Bit width for scalar (PvQ) quantization.
    pub scalar_bits: u32,
    /// PQF hill-climb swap trials.
    pub swap_trials: usize,
    /// Distance/assignment kernel every clustering algorithm dispatches
    /// to (`naive` oracle / `blocked` / `minibatch` / `simd`).
    pub kernel: KernelStrategy,
}

impl Default for PipelineSpec {
    /// The paper's ResNet operating point: k=64, d=16, 4:16, int8
    /// codebooks, 2-bit PvQ.
    fn default() -> PipelineSpec {
        PipelineSpec {
            k: 64,
            d: 16,
            keep_n: 4,
            m: 16,
            prune_d: None,
            grouping: GroupingStrategy::OutputChannelWise,
            codebook_bits: Some(8),
            scalar_bits: 2,
            swap_trials: 1_000,
            kernel: KernelStrategy::default(),
        }
    }
}

impl PipelineSpec {
    /// Overrides `k`.
    pub fn with_k(mut self, k: usize) -> PipelineSpec {
        self.k = k;
        self
    }

    /// Overrides `d`.
    pub fn with_d(mut self, d: usize) -> PipelineSpec {
        self.d = d;
        self
    }

    /// Overrides the N:M pattern.
    pub fn with_nm(mut self, keep_n: usize, m: usize) -> PipelineSpec {
        self.keep_n = keep_n;
        self.m = m;
        self
    }

    /// Puts the pruning grid on a different subvector length than the
    /// clustering grid (VQ case B's two-grid setup).
    pub fn with_prune_d(mut self, prune_d: usize) -> PipelineSpec {
        self.prune_d = Some(prune_d);
        self
    }

    /// Overrides the scalar bit width.
    pub fn with_scalar_bits(mut self, bits: u32) -> PipelineSpec {
        self.scalar_bits = bits;
        self
    }

    /// Overrides the PQF swap budget.
    pub fn with_swap_trials(mut self, trials: usize) -> PipelineSpec {
        self.swap_trials = trials;
        self
    }

    /// Overrides the kernel strategy every algorithm dispatches to.
    pub fn with_kernel(mut self, kernel: KernelStrategy) -> PipelineSpec {
        self.kernel = kernel;
        self
    }

    /// The spec's canonical 64-bit identity, used as a component of
    /// content-addressed cache keys ([`crate::store::CacheKey`]).
    ///
    /// Every field that can change a compression result is folded in —
    /// `k`, `d`, `keep_n:m`, `prune_d`, grouping, codebook/scalar bits,
    /// `swap_trials`, and the kernel strategy — through a fixed-layout
    /// FNV-1a encoding that is independent of struct layout, so the value
    /// cannot drift silently across refactors. The pinned-value test
    /// `fingerprint_is_pinned` guards the encoding itself: changing it
    /// requires updating the pin *and* invalidates existing caches, which
    /// is exactly the visibility we want.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::store::Fnv1a::new();
        // domain separator doubles as the encoding's version stamp
        h.update(b"mvq.pipelinespec.v1");
        h.update_u64(self.k as u64);
        h.update_u64(self.d as u64);
        h.update_u64(self.keep_n as u64);
        h.update_u64(self.m as u64);
        match self.prune_d {
            None => h.update(&[0]),
            Some(p) => {
                h.update(&[1]);
                h.update_u64(p as u64);
            }
        }
        h.update(&[grouping_tag(self.grouping)]);
        match self.codebook_bits {
            None => h.update(&[0]),
            Some(b) => {
                h.update(&[1]);
                h.update_u64(b as u64);
            }
        }
        h.update_u64(self.scalar_bits as u64);
        h.update_u64(self.swap_trials as u64);
        h.update(&[kernel_tag(self.kernel)]);
        h.finish()
    }
}

/// Stable one-byte encoding of [`GroupingStrategy`] shared by the
/// fingerprint and the artifact codec. Append-only: existing values must
/// never be renumbered, or fingerprints and serialized blobs drift.
pub(crate) fn grouping_tag(g: GroupingStrategy) -> u8 {
    match g {
        GroupingStrategy::KernelWise => 0,
        GroupingStrategy::OutputChannelWise => 1,
        GroupingStrategy::InputChannelWise => 2,
    }
}

/// Inverse of [`grouping_tag`].
pub(crate) fn grouping_from_tag(tag: u8) -> Result<GroupingStrategy, MvqError> {
    match tag {
        0 => Ok(GroupingStrategy::KernelWise),
        1 => Ok(GroupingStrategy::OutputChannelWise),
        2 => Ok(GroupingStrategy::InputChannelWise),
        other => Err(MvqError::Codec(format!("unknown grouping tag {other}"))),
    }
}

/// Stable one-byte encoding of [`KernelStrategy`]; same append-only rule
/// as [`grouping_tag`]. `Simd` was appended as tag 3 in PR 4 — existing
/// tags (and therefore existing fingerprints and cache blobs) are
/// untouched.
pub(crate) fn kernel_tag(k: KernelStrategy) -> u8 {
    match k {
        KernelStrategy::Naive => 0,
        KernelStrategy::Blocked => 1,
        KernelStrategy::Minibatch => 2,
        KernelStrategy::Simd => 3,
    }
}

/// Registry names, in canonical order.
pub const ALGORITHM_NAMES: [&str; 8] = ["mvq", "vq-a", "vq-b", "vq-c", "pqf", "bgd", "dkm", "pvq"];

/// Resolves `name` (including the `vq` alias) to its canonical `'static`
/// registry name, or `None` for unknown algorithms. Used by the artifact
/// codec and cache so string keys always live in registry-canonical form.
pub fn canonical_name(name: &str) -> Option<&'static str> {
    if name == "vq" {
        return Some("vq-a");
    }
    ALGORITHM_NAMES.iter().find(|&&n| n == name).copied()
}

/// Builds the named compressor from `spec`.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] for unknown names or spec values
/// the algorithm rejects (e.g. inconsistent N:M for MVQ).
pub fn by_name(name: &str, spec: &PipelineSpec) -> Result<Box<dyn Compressor>, MvqError> {
    let plain = |variant: VqVariant| PlainVq {
        variant,
        k: spec.k,
        d: spec.d,
        keep_n: spec.keep_n,
        m: spec.m,
        prune_d: spec.prune_d.unwrap_or(spec.d),
        grouping: spec.grouping,
        codebook_bits: spec.codebook_bits,
        kernel: spec.kernel,
    };
    Ok(match name {
        "mvq" => {
            let cfg = MvqConfig::new(spec.k, spec.d, spec.keep_n, spec.m)?
                .with_grouping(spec.grouping)
                .with_codebook_bits(spec.codebook_bits)
                .with_kernel(spec.kernel);
            Box::new(MvqCompressor::new(cfg))
        }
        "vq" | "vq-a" => Box::new(plain(VqVariant::CaseA)),
        "vq-b" => Box::new(plain(VqVariant::CaseB)),
        "vq-c" => Box::new(plain(VqVariant::CaseC)),
        "pqf" => Box::new(Pqf {
            k: spec.k,
            d: spec.d,
            swap_trials: spec.swap_trials,
            grouping: spec.grouping,
            codebook_bits: spec.codebook_bits,
            kernel: spec.kernel,
        }),
        "bgd" => Box::new(Bgd {
            k: spec.k,
            d: spec.d,
            grouping: spec.grouping,
            codebook_bits: spec.codebook_bits,
            kernel: spec.kernel,
        }),
        "dkm" => Box::new(Dkm {
            config: DkmConfig::new(spec.k).with_kernel(spec.kernel),
            d: spec.d,
            grouping: spec.grouping,
            codebook_bits: spec.codebook_bits,
        }),
        "pvq" => Box::new(Pvq { bits: spec.scalar_bits }),
        other => {
            return Err(MvqError::InvalidConfig(format!(
                "unknown compressor `{other}` (known: {})",
                ALGORITHM_NAMES.join(", ")
            )))
        }
    })
}

/// Every registered algorithm built from `spec`, in canonical order.
///
/// # Errors
///
/// Propagates [`by_name`] errors for spec values an algorithm rejects.
pub fn registry_with(spec: &PipelineSpec) -> Result<Vec<Box<dyn Compressor>>, MvqError> {
    ALGORITHM_NAMES.iter().map(|name| by_name(name, spec)).collect()
}

/// Every registered algorithm with the default [`PipelineSpec`].
pub fn registry() -> Vec<Box<dyn Compressor>> {
    registry_with(&PipelineSpec::default()).expect("default spec is valid for every algorithm")
}

fn bits_label(bits: Option<u32>) -> String {
    bits.map_or_else(|| "fp32".to_string(), |b| format!("int{b}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_nn::models::tiny_cnn;

    #[test]
    fn registry_has_all_algorithms() {
        let names: Vec<&str> = registry().iter().map(|c| c.name()).collect();
        assert_eq!(names, ALGORITHM_NAMES.to_vec());
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("vqgan", &PipelineSpec::default()).is_err());
    }

    #[test]
    fn vq_alias_resolves_to_case_a() {
        let c = by_name("vq", &PipelineSpec::default()).unwrap();
        assert_eq!(c.name(), "vq-a");
    }

    #[test]
    fn config_summaries_are_nonempty() {
        for comp in registry() {
            assert!(!comp.config_summary().is_empty(), "{}", comp.name());
        }
    }

    #[test]
    fn case_b_two_grid_prunes_before_clustering() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = mvq_tensor::kaiming_normal(vec![32, 16], 16, &mut rng);
        let two_grid = PlainVq {
            variant: VqVariant::CaseB,
            k: 8,
            d: 8,
            keep_n: 4,
            m: 16,
            prune_d: 16,
            grouping: GroupingStrategy::OutputChannelWise,
            codebook_bits: None,
            kernel: KernelStrategy::default(),
        };
        let artifact = two_grid.compress_matrix(&w, &mut rng).unwrap();
        assert_eq!(artifact.reconstruct().unwrap().dims(), w.dims());
        // dense decode: mask not stored
        assert_eq!(artifact.storage().mask_bits, 0);
    }

    #[test]
    fn case_c_rejects_two_grid() {
        let c = PlainVq {
            variant: VqVariant::CaseC,
            k: 8,
            d: 8,
            keep_n: 4,
            m: 16,
            prune_d: 16,
            grouping: GroupingStrategy::OutputChannelWise,
            codebook_bits: None,
            kernel: KernelStrategy::default(),
        };
        let mut rng = StdRng::seed_from_u64(1);
        let w = mvq_tensor::kaiming_normal(vec![32, 16], 16, &mut rng);
        assert!(c.compress_matrix(&w, &mut rng).is_err());
    }

    #[test]
    fn compress_model_skips_depthwise_except_pvq() {
        // mobilenet-style separable convs: depthwise layers are skipped by
        // codebook methods but quantized by pvq
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = mvq_nn::models::mobilenet_v1_lite(4, &mut rng);
        let spec = PipelineSpec { k: 8, keep_n: 8, ..PipelineSpec::default() };
        let mvq = by_name("mvq", &spec).unwrap();
        let arts = mvq.compress_model(&mut model, &mut rng).unwrap();
        assert!(!arts.skipped.is_empty(), "depthwise convs should be skipped");
        let mut model2 = mvq_nn::models::mobilenet_v1_lite(4, &mut StdRng::seed_from_u64(2));
        let pvq = by_name("pvq", &spec).unwrap();
        let arts2 = pvq.compress_model(&mut model2, &mut rng).unwrap();
        assert!(arts2.skipped.is_empty(), "pvq quantizes every conv");
        assert!(arts2.layers.len() > arts.layers.len());
    }

    #[test]
    fn no_compressible_layer_error_reports_the_skipped_indices() {
        // satellite regression (diagnosability): an all-depthwise model
        // used to fail with a bare "no conv layer compressible", leaving a
        // service log with no way to tell *why* every layer was rejected
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = mvq_nn::models::mobilenet_v1_lite(4, &mut rng);
        // zero the non-depthwise convs so every layer is skipped (dead or
        // depthwise) and nothing compresses
        model.visit_convs_mut(&mut |conv| {
            if !conv.is_depthwise() {
                for v in conv.weight.value.data_mut() {
                    *v = 0.0;
                }
            }
        });
        let spec = PipelineSpec { k: 8, keep_n: 8, ..PipelineSpec::default() };
        let mvq = by_name("mvq", &spec).unwrap();
        let err = mvq.compress_model_artifacts(&model, &mut rng).unwrap_err();
        let msg = err.to_string();
        let n = model.num_convs();
        assert!(
            msg.contains(&format!("{n} conv(s) skipped")),
            "skipped count missing from `{msg}`"
        );
        assert!(msg.contains("0,"), "skipped index list missing from `{msg}`");
    }

    #[test]
    fn fingerprint_is_pinned() {
        // The canonical encoding behind cache keys. If this test fails you
        // changed the fingerprint layout: update the pin *and* treat every
        // existing artifact cache as invalidated (the domain separator in
        // `fingerprint()` should be bumped alongside). Appending a new
        // kernel tag must NOT move this pin — that is the append-only
        // guarantee (the `simd` pin below covers the appended tag).
        assert_eq!(PipelineSpec::default().fingerprint(), 6959797930409263823);
        assert_eq!(
            PipelineSpec::default().with_kernel(KernelStrategy::Simd).fingerprint(),
            6959800129432520245
        );
    }

    #[test]
    fn fingerprint_covers_every_compression_relevant_field() {
        let base = PipelineSpec::default();
        let variants = [
            base.clone().with_k(65),
            base.clone().with_d(8),
            base.clone().with_nm(2, 16),
            base.clone().with_nm(4, 8),
            base.clone().with_prune_d(8),
            PipelineSpec { grouping: GroupingStrategy::KernelWise, ..base.clone() },
            PipelineSpec { codebook_bits: None, ..base.clone() },
            PipelineSpec { codebook_bits: Some(4), ..base.clone() },
            base.clone().with_scalar_bits(4),
            base.clone().with_swap_trials(999),
            base.clone().with_kernel(KernelStrategy::Naive),
            base.clone().with_kernel(KernelStrategy::Minibatch),
            base.clone().with_kernel(KernelStrategy::Simd),
        ];
        let mut seen = vec![base.fingerprint()];
        for (i, v) in variants.iter().enumerate() {
            let fp = v.fingerprint();
            assert!(!seen.contains(&fp), "variant {i} collides with an earlier fingerprint");
            seen.push(fp);
        }
        // equal specs agree
        assert_eq!(base.fingerprint(), PipelineSpec::default().fingerprint());
        // prune_d: None and Some(d) are distinct identities even though
        // they behave the same for case B — the fingerprint is structural
        assert_ne!(base.fingerprint(), base.clone().with_prune_d(base.d).fingerprint());
    }

    #[test]
    fn canonical_name_resolves_aliases_and_rejects_unknowns() {
        assert_eq!(canonical_name("vq"), Some("vq-a"));
        for name in ALGORITHM_NAMES {
            assert_eq!(canonical_name(name), Some(name));
        }
        assert_eq!(canonical_name("vqgan"), None);
    }

    #[test]
    fn model_artifacts_storage_merges_layers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = tiny_cnn(4, 8, &mut rng);
        let comp = by_name("mvq", &PipelineSpec { k: 8, ..PipelineSpec::default() }).unwrap();
        let arts = comp.compress_model(&mut model, &mut rng).unwrap();
        let merged = arts.storage();
        let sum: u64 = arts.layers.iter().map(|l| l.artifact.storage().compressed_bits()).sum();
        assert_eq!(merged.compressed_bits(), sum);
        assert!(arts.compression_ratio() > 1.0);
    }
}
