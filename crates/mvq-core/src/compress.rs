//! The end-to-end MVQ compression of a single weight matrix (paper Fig. 2,
//! steps 1–3): group → N:M prune → masked k-means → int8 codebook.

use mvq_tensor::Tensor;
use rand::Rng;

use crate::codebook::{Assignments, Codebook};
use crate::error::MvqError;
use crate::grouping::GroupingStrategy;
use crate::kernels::KernelStrategy;
use crate::kmeans::KmeansConfig;
use crate::mask::{validate_nm, NmMask};
use crate::masked_kmeans::masked_kmeans;
use crate::metrics::{mvq_compression_ratio, StorageBreakdown};
use crate::pruning::prune_matrix_nm;

/// Hyperparameters of the MVQ pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct MvqConfig {
    /// Number of codewords `k`.
    pub k: usize,
    /// Subvector length `d`.
    pub d: usize,
    /// Kept weights per group (the paper's N in "N:M").
    pub keep_n: usize,
    /// Pruning group size M (`d` must be a multiple of it).
    pub m: usize,
    /// Grouping strategy (paper default: output-channel-wise).
    pub grouping: GroupingStrategy,
    /// Codebook quantization width; `None` keeps fp32 codewords.
    pub codebook_bits: Option<u32>,
    /// k-means iteration cap.
    pub max_iters: usize,
    /// k-means convergence threshold as a fraction of `NG`.
    pub tol_frac: f64,
    /// Distance/assignment kernel the clustering dispatches to.
    pub kernel: KernelStrategy,
}

impl MvqConfig {
    /// Creates a config with the paper's defaults: output-channel-wise
    /// grouping, int8 codebook, 50 iterations, 0.1 % tolerance.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] when the N:M/d combination is
    /// inconsistent or `k == 0`.
    pub fn new(k: usize, d: usize, keep_n: usize, m: usize) -> Result<MvqConfig, MvqError> {
        if k == 0 {
            return Err(MvqError::InvalidConfig("k must be positive".into()));
        }
        validate_nm(d, keep_n, m)?;
        Ok(MvqConfig {
            k,
            d,
            keep_n,
            m,
            grouping: GroupingStrategy::OutputChannelWise,
            codebook_bits: Some(8),
            max_iters: 50,
            tol_frac: 0.001,
            kernel: KernelStrategy::default(),
        })
    }

    /// Overrides the grouping strategy.
    pub fn with_grouping(mut self, grouping: GroupingStrategy) -> MvqConfig {
        self.grouping = grouping;
        self
    }

    /// Overrides codebook quantization (`None` disables it).
    pub fn with_codebook_bits(mut self, bits: Option<u32>) -> MvqConfig {
        self.codebook_bits = bits;
        self
    }

    /// Overrides the distance/assignment kernel strategy.
    pub fn with_kernel(mut self, kernel: KernelStrategy) -> MvqConfig {
        self.kernel = kernel;
        self
    }

    /// Weight sparsity this config produces.
    pub fn sparsity(&self) -> f32 {
        1.0 - self.keep_n as f32 / self.m as f32
    }

    /// The k-means sub-config (carries the kernel strategy).
    pub fn kmeans(&self) -> KmeansConfig {
        KmeansConfig {
            k: self.k,
            max_iters: self.max_iters,
            tol_frac: self.tol_frac,
            kernel: self.kernel,
        }
    }
}

/// Compresses weight matrices with MVQ.
#[derive(Debug, Clone)]
pub struct MvqCompressor {
    config: MvqConfig,
}

impl MvqCompressor {
    /// Creates a compressor.
    pub fn new(config: MvqConfig) -> MvqCompressor {
        MvqCompressor { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MvqConfig {
        &self.config
    }

    /// Compresses a weight tensor (rank 2 or 4): groups it into subvectors,
    /// prunes N:M, clusters with masked k-means, and quantizes the
    /// codebook.
    ///
    /// # Errors
    ///
    /// Returns grouping errors for incompatible shapes and clustering
    /// errors for degenerate configurations.
    pub fn compress_matrix<R: Rng>(
        &self,
        weight: &Tensor,
        rng: &mut R,
    ) -> Result<CompressedMatrix, MvqError> {
        let cfg = &self.config;
        let grouped = cfg.grouping.group(weight, cfg.d)?;
        let (pruned, mask) = prune_matrix_nm(&grouped, cfg.keep_n, cfg.m)?;
        let mut result = masked_kmeans(&pruned, &mask, &cfg.kmeans(), rng)?;
        if let Some(bits) = cfg.codebook_bits {
            result.codebook.quantize(bits)?;
        }
        Ok(CompressedMatrix {
            codebook: result.codebook,
            assignments: result.assignments,
            mask,
            orig_dims: weight.dims().to_vec(),
            grouping: cfg.grouping,
            keep_n: cfg.keep_n,
            m: cfg.m,
            sse: Some(result.sse),
        })
    }
}

/// A weight tensor in MVQ's compressed representation: codebook +
/// assignments + N:M mask (paper §4.6: "final storage comprises three
/// components").
#[derive(Debug, Clone)]
pub struct CompressedMatrix {
    codebook: Codebook,
    assignments: Assignments,
    mask: NmMask,
    orig_dims: Vec<usize>,
    grouping: GroupingStrategy,
    keep_n: usize,
    m: usize,
    sse: Option<f32>,
}

impl CompressedMatrix {
    /// Assembles a compressed matrix from parts (used by fine-tuning and
    /// the baselines).
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] when the parts disagree in
    /// shape.
    pub fn from_parts(
        codebook: Codebook,
        assignments: Assignments,
        mask: NmMask,
        orig_dims: Vec<usize>,
        grouping: GroupingStrategy,
    ) -> Result<CompressedMatrix, MvqError> {
        if assignments.len() != mask.ng() || codebook.d() != mask.d() {
            return Err(MvqError::InvalidConfig(
                "codebook/assignments/mask shapes disagree".into(),
            ));
        }
        let keep_n = mask.keep_n();
        let m = mask.m();
        Ok(CompressedMatrix {
            codebook,
            assignments,
            mask,
            orig_dims,
            grouping,
            keep_n,
            m,
            sse: None,
        })
    }

    /// Records the clustering SSE observed at compression time.
    pub fn with_sse(mut self, sse: f32) -> CompressedMatrix {
        self.sse = Some(sse);
        self
    }

    /// Clustering SSE recorded at compression time (masked SSE for MVQ,
    /// plain SSE on pruned data for VQ case C), if known.
    pub fn sse(&self) -> Option<f32> {
        self.sse
    }

    /// The codebook.
    pub fn codebook(&self) -> &Codebook {
        &self.codebook
    }

    /// Mutable codebook access (fine-tuning).
    pub fn codebook_mut(&mut self) -> &mut Codebook {
        &mut self.codebook
    }

    /// The assignments.
    pub fn assignments(&self) -> &Assignments {
        &self.assignments
    }

    /// The N:M mask.
    pub fn mask(&self) -> &NmMask {
        &self.mask
    }

    /// Original weight dims.
    pub fn orig_dims(&self) -> &[usize] {
        &self.orig_dims
    }

    /// Grouping strategy used.
    pub fn grouping(&self) -> GroupingStrategy {
        self.grouping
    }

    /// Reconstructs the decoded `[NG, d]` subvector matrix:
    /// `ŵ_j = c_{a_j} ∘ bm_j` (the weight loader's look-up + bit-select).
    ///
    /// # Errors
    ///
    /// Propagates mask application errors (cannot occur for matrices built
    /// by this crate).
    pub fn reconstruct_grouped(&self) -> Result<Tensor, MvqError> {
        let ng = self.mask.ng();
        let d = self.mask.d();
        let mut out = Tensor::zeros(vec![ng, d]);
        for j in 0..ng {
            let c = self.codebook.codeword(self.assignments.of(j));
            let m = self.mask.row(j);
            let row = out.row_mut(j);
            for t in 0..d {
                row[t] = if m[t] { c[t] } else { 0.0 };
            }
        }
        Ok(out)
    }

    /// Reconstructs the weight in its original dims.
    ///
    /// # Errors
    ///
    /// Propagates grouping errors.
    pub fn reconstruct(&self) -> Result<Tensor, MvqError> {
        let grouped = self.reconstruct_grouped()?;
        self.grouping.ungroup(&grouped, &self.orig_dims, self.mask.d())
    }

    /// Decomposes into `(codebook, assignments, mask, orig_dims)` — used
    /// by the model-level pipeline to pool per-layer codebooks.
    pub fn into_parts(self) -> (Codebook, Assignments, NmMask, Vec<usize>) {
        (self.codebook, self.assignments, self.mask, self.orig_dims)
    }

    /// Storage breakdown under Eq. 7.
    pub fn storage(&self) -> StorageBreakdown {
        mvq_compression_ratio(self.mask.ng(), &self.codebook, self.keep_n, self.m)
            .expect("N:M validated at construction")
    }

    /// Compression ratio (Eq. 7).
    pub fn compression_ratio(&self) -> f64 {
        self.storage().ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn compressor(k: usize, d: usize, n: usize, m: usize) -> MvqCompressor {
        MvqCompressor::new(MvqConfig::new(k, d, n, m).unwrap())
    }

    #[test]
    fn config_validation() {
        assert!(MvqConfig::new(0, 16, 4, 16).is_err());
        assert!(MvqConfig::new(8, 12, 4, 16).is_err(), "d not multiple of m");
        assert!(MvqConfig::new(8, 16, 17, 16).is_err());
        let c = MvqConfig::new(8, 16, 4, 16).unwrap();
        assert_eq!(c.sparsity(), 0.75);
        assert_eq!(c.kmeans().k, 8);
    }

    #[test]
    fn compress_reconstruct_preserves_shape_and_sparsity() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = mvq_tensor::kaiming_normal(vec![32, 16, 3, 3], 144, &mut rng);
        let c = compressor(32, 16, 4, 16).compress_matrix(&w, &mut rng).unwrap();
        let w_hat = c.reconstruct().unwrap();
        assert_eq!(w_hat.dims(), w.dims());
        assert!((w_hat.sparsity() - 0.75).abs() < 0.02, "sparsity {}", w_hat.sparsity());
    }

    #[test]
    fn reconstruction_zeroes_match_mask() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = mvq_tensor::kaiming_normal(vec![64, 16], 16, &mut rng);
        let c = compressor(16, 16, 4, 16).compress_matrix(&w, &mut rng).unwrap();
        let g = c.reconstruct_grouped().unwrap();
        for j in 0..c.mask().ng() {
            for t in 0..16 {
                if !c.mask().row(j)[t] {
                    assert_eq!(g.at(&[j, t]).unwrap(), 0.0);
                }
            }
        }
    }

    #[test]
    fn codebook_is_quantized_by_default() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = mvq_tensor::kaiming_normal(vec![64, 16], 16, &mut rng);
        let c = compressor(8, 16, 4, 16).compress_matrix(&w, &mut rng).unwrap();
        assert_eq!(c.codebook().bits(), Some(8));
        let c2 = MvqCompressor::new(MvqConfig::new(8, 16, 4, 16).unwrap().with_codebook_bits(None))
            .compress_matrix(&w, &mut rng)
            .unwrap();
        assert_eq!(c2.codebook().bits(), None);
    }

    #[test]
    fn compression_ratio_in_expected_band() {
        // d=16, 4:16, k=64 on a moderately sized block
        let mut rng = StdRng::seed_from_u64(3);
        let w = mvq_tensor::kaiming_normal(vec![128, 64, 3, 3], 64 * 9, &mut rng);
        let c = compressor(64, 16, 4, 16).compress_matrix(&w, &mut rng).unwrap();
        let r = c.compression_ratio();
        assert!((15.0..30.0).contains(&r), "ratio {r}");
        let s = c.storage();
        assert!(s.mask_bits > 0 && s.assignment_bits > 0 && s.codebook_bits > 0);
    }

    #[test]
    fn better_than_random_codebook() {
        // masked k-means should beat a random codebook on masked SSE
        let mut rng = StdRng::seed_from_u64(4);
        let w = mvq_tensor::kaiming_normal(vec![256, 16], 16, &mut rng);
        let c = compressor(32, 16, 4, 16).compress_matrix(&w, &mut rng).unwrap();
        let grouped = GroupingStrategy::OutputChannelWise.group(&w, 16).unwrap();
        let (pruned, _) = prune_matrix_nm(&grouped, 4, 16).unwrap();
        let recon = c.reconstruct_grouped().unwrap();
        let sse = pruned.sse(&recon).unwrap();
        // a random codebook would leave SSE ~ ||w_kept||²
        let baseline = pruned.sq_norm();
        assert!(sse < baseline * 0.8, "sse {sse} vs norm {baseline}");
    }

    #[test]
    fn from_parts_validates() {
        let cb = Codebook::new(Tensor::zeros(vec![4, 8])).unwrap();
        let asg = Assignments::new(vec![0; 10], 4).unwrap();
        let mask = NmMask::from_bits(10, 4, 2, 4, [true, true, false, false].repeat(10)).unwrap();
        // d mismatch: codebook d=8, mask d=4
        assert!(CompressedMatrix::from_parts(
            cb,
            asg,
            mask,
            vec![10, 4],
            GroupingStrategy::OutputChannelWise
        )
        .is_err());
    }
}
