//! Model-level MVQ compression: applies the pipeline to every compressible
//! convolution of a network, with either one codebook per layer
//! ("layerwise") or a single codebook shared by all layers ("crosslayer") —
//! the two clustering scopes compared in the paper's Fig. 13.
//!
//! Both scopes dispatch their clustering hot loops through
//! [`crate::kernels`], selected by [`MvqConfig::kernel`] (see
//! [`ModelCompressor::with_kernel`]). The crosslayer scope concatenates
//! every pruned layer into one clustering problem, which is where
//! [`crate::masked_kmeans_minibatch`]
//! ([`crate::KernelStrategy::Minibatch`]) pays off: per-iteration sampled
//! batches keep the cost independent of the concatenated size.

use mvq_nn::layers::Sequential;
use mvq_tensor::Tensor;
use rand::Rng;

use crate::codebook::{Assignments, Codebook};
use crate::compress::{MvqCompressor, MvqConfig};
use crate::error::MvqError;
use crate::grouping::GroupingStrategy;
use crate::mask::NmMask;
use crate::masked_kmeans::{masked_kmeans, masked_kmeans_minibatch_chunked, masked_sse};
use crate::metrics::{mvq_compression_ratio, StorageBreakdown};
use crate::pruning::prune_matrix_nm;

/// Whether codebooks are per-layer or shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterScope {
    /// One codebook per compressed layer (paper finds this superior).
    #[default]
    LayerWise,
    /// One codebook for all compressed layers.
    CrossLayer,
}

/// How layerwise model compression is executed. Both modes draw one seed
/// per layer up front, so they produce bit-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Compress layers one after another on the calling thread.
    Serial,
    /// Fan layers out across the rayon pool.
    #[default]
    Rayon,
}

/// One compressed convolution layer: assignments + mask referencing a
/// codebook held by the [`CompressedModel`].
#[derive(Debug, Clone)]
pub struct LayerCodebook {
    /// Depth-first index of the conv layer in the model.
    pub conv_index: usize,
    /// Which codebook in [`CompressedModel::codebooks`] this layer uses.
    pub codebook_id: usize,
    /// Per-subvector assignments.
    pub assignments: Assignments,
    /// N:M mask.
    pub mask: NmMask,
    /// Original weight dims.
    pub orig_dims: Vec<usize>,
}

/// A whole-model compressed representation.
#[derive(Debug, Clone)]
pub struct CompressedModel {
    /// The codebook pool (length 1 for crosslayer scope).
    pub codebooks: Vec<Codebook>,
    /// Compressed layers.
    pub entries: Vec<LayerCodebook>,
    /// Conv indices that were skipped (depthwise / incompatible shapes).
    pub skipped: Vec<usize>,
    grouping: GroupingStrategy,
    keep_n: usize,
    m: usize,
}

impl CompressedModel {
    /// Grouping strategy used for every layer.
    pub fn grouping(&self) -> GroupingStrategy {
        self.grouping
    }

    /// N of the N:M pattern (kept weights).
    pub fn keep_n(&self) -> usize {
        self.keep_n
    }

    /// M of the N:M pattern.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Reconstructs one entry's weight in original dims.
    ///
    /// # Errors
    ///
    /// Propagates grouping errors.
    pub fn reconstruct_entry(&self, entry: &LayerCodebook) -> Result<Tensor, MvqError> {
        let codebook = &self.codebooks[entry.codebook_id];
        let d = entry.mask.d();
        let ng = entry.mask.ng();
        let mut grouped = Tensor::zeros(vec![ng, d]);
        for j in 0..ng {
            let c = codebook.codeword(entry.assignments.of(j));
            let m = entry.mask.row(j);
            let row = grouped.row_mut(j);
            for t in 0..d {
                row[t] = if m[t] { c[t] } else { 0.0 };
            }
        }
        self.grouping.ungroup(&grouped, &entry.orig_dims, d)
    }

    /// Writes every reconstructed weight back into `model` (the paper's
    /// forward-pass decode of Fig. 5).
    ///
    /// # Errors
    ///
    /// Propagates reconstruction errors.
    pub fn apply_to(&self, model: &mut Sequential) -> Result<(), MvqError> {
        let mut by_index: Vec<Option<&LayerCodebook>> = Vec::new();
        for e in &self.entries {
            if by_index.len() <= e.conv_index {
                by_index.resize(e.conv_index + 1, None);
            }
            by_index[e.conv_index] = Some(e);
        }
        let mut idx = 0usize;
        let mut first_err = None;
        model.visit_convs_mut(&mut |conv| {
            if first_err.is_some() {
                return;
            }
            if let Some(Some(entry)) = by_index.get(idx) {
                match self.reconstruct_entry(entry) {
                    Ok(w) => conv.weight.value = w,
                    Err(e) => first_err = Some(e),
                }
            }
            idx += 1;
        });
        first_err.map_or(Ok(()), Err)
    }

    /// Whole-model storage breakdown: assignments and masks summed over
    /// entries, each codebook counted once.
    pub fn storage(&self) -> StorageBreakdown {
        let mut total = StorageBreakdown {
            original_bits: 0,
            assignment_bits: 0,
            mask_bits: 0,
            codebook_bits: 0,
        };
        for e in &self.entries {
            let cb = &self.codebooks[e.codebook_id];
            let part = mvq_compression_ratio(e.mask.ng(), cb, self.keep_n, self.m)
                .expect("validated at construction");
            total.original_bits += part.original_bits;
            total.assignment_bits += part.assignment_bits;
            total.mask_bits += part.mask_bits;
        }
        for cb in &self.codebooks {
            total.codebook_bits += cb.storage_bits();
        }
        total
    }

    /// Compression ratio over all compressed layers (Eq. 7).
    pub fn compression_ratio(&self) -> f64 {
        self.storage().ratio()
    }

    /// Sum of masked SSE over all entries against the current weights of
    /// `model` (used for Tables 3/5 before fine-tuning).
    ///
    /// # Errors
    ///
    /// Propagates grouping errors.
    pub fn total_masked_sse(&self, model: &Sequential) -> Result<f32, MvqError> {
        let mut weights: Vec<Tensor> = Vec::new();
        model.visit_convs(&mut |conv| weights.push(conv.weight.value.clone()));
        let mut sse = 0.0f32;
        for e in &self.entries {
            let grouped = self.grouping.group(&weights[e.conv_index], e.mask.d())?;
            let pruned = e.mask.apply(&grouped)?;
            sse += masked_sse(&pruned, &e.mask, &self.codebooks[e.codebook_id], &e.assignments)?;
        }
        Ok(sse)
    }

    /// Fraction of weights pruned in compressed layers.
    pub fn sparsity(&self) -> f32 {
        1.0 - self.keep_n as f32 / self.m as f32
    }
}

/// Output of one clustering scope: codebook pool, per-layer entries, and
/// skipped conv indices.
type ScopeOutput = (Vec<Codebook>, Vec<LayerCodebook>, Vec<usize>);

/// Compresses whole models.
#[derive(Debug, Clone)]
pub struct ModelCompressor {
    config: MvqConfig,
    scope: ClusterScope,
    parallelism: Parallelism,
}

impl ModelCompressor {
    /// Creates a model compressor with layerwise scope and rayon-parallel
    /// layer compression.
    pub fn new(config: MvqConfig) -> ModelCompressor {
        ModelCompressor {
            config,
            scope: ClusterScope::LayerWise,
            parallelism: Parallelism::default(),
        }
    }

    /// Overrides the clustering scope.
    pub fn with_scope(mut self, scope: ClusterScope) -> ModelCompressor {
        self.scope = scope;
        self
    }

    /// Overrides the execution mode (results are identical either way).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> ModelCompressor {
        self.parallelism = parallelism;
        self
    }

    /// Overrides the distance/assignment kernel both clustering scopes
    /// dispatch to (shorthand for setting [`MvqConfig::kernel`]).
    pub fn with_kernel(mut self, kernel: crate::kernels::KernelStrategy) -> ModelCompressor {
        self.config.kernel = kernel;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &MvqConfig {
        &self.config
    }

    /// Compresses every compressible conv of `model` (assumed already
    /// pruned+fine-tuned, or dense — pruning is applied here regardless,
    /// matching pipeline step 1) and writes reconstructed weights back.
    ///
    /// Layerwise scope delegates each layer to
    /// [`MvqCompressor::compress_matrix`] with an independent RNG seeded
    /// from `rng`, fanning layers out across the rayon pool (see
    /// [`Parallelism`]); crosslayer scope clusters the concatenation of
    /// all pruned layers into one codebook.
    ///
    /// # Errors
    ///
    /// Propagates clustering errors.
    pub fn compress<R: Rng>(
        &self,
        model: &mut Sequential,
        rng: &mut R,
    ) -> Result<CompressedModel, MvqError> {
        let cfg = &self.config;
        let (codebooks, entries, skipped) = match self.scope {
            ClusterScope::LayerWise => self.compress_layerwise(model, rng)?,
            ClusterScope::CrossLayer => {
                let mut weights: Vec<Tensor> = Vec::new();
                let mut depthwise: Vec<bool> = Vec::new();
                model.visit_convs(&mut |conv| {
                    weights.push(conv.weight.value.clone());
                    depthwise.push(conv.is_depthwise());
                });
                self.compress_crosslayer(&weights, &depthwise, rng)?
            }
        };
        if entries.is_empty() {
            return Err(MvqError::InvalidConfig(
                "model has no conv layer compatible with the grouping config".into(),
            ));
        }
        let compressed = CompressedModel {
            codebooks,
            entries,
            skipped,
            grouping: cfg.grouping,
            keep_n: cfg.keep_n,
            m: cfg.m,
        };
        compressed.apply_to(model)?;
        Ok(compressed)
    }

    /// Layerwise scope: one [`MvqCompressor::compress_matrix`] call per
    /// layer through the shared [`crate::pipeline`] fan-out, each layer
    /// with its own seeded RNG so serial and rayon execution are
    /// bit-identical.
    fn compress_layerwise<R: Rng>(
        &self,
        model: &Sequential,
        rng: &mut R,
    ) -> Result<ScopeOutput, MvqError> {
        let compressor = MvqCompressor::new(self.config.clone());
        let (items, skipped) =
            crate::pipeline::compress_layers(model, rng, self.parallelism, true, |w, r| {
                compressor.compress_matrix(w, r)
            })?;
        let mut codebooks = Vec::new();
        let mut entries = Vec::new();
        for (idx, cm) in items {
            let (codebook, assignments, mask, orig_dims) = cm.into_parts();
            codebooks.push(codebook);
            entries.push(LayerCodebook {
                conv_index: idx,
                codebook_id: codebooks.len() - 1,
                assignments,
                mask,
                orig_dims,
            });
        }
        Ok((codebooks, entries, skipped))
    }

    /// Crosslayer scope: group+prune every layer, concatenate, cluster
    /// once.
    fn compress_crosslayer<R: Rng>(
        &self,
        weights: &[Tensor],
        depthwise: &[bool],
        rng: &mut R,
    ) -> Result<ScopeOutput, MvqError> {
        let cfg = &self.config;
        let mut eligible: Vec<(usize, Tensor, NmMask, Vec<usize>)> = Vec::new();
        let mut skipped = Vec::new();
        for (idx, w) in weights.iter().enumerate() {
            // same skip policy as the layerwise fan-out: depthwise convs
            // and dead (all-zero) layers stay untouched
            if depthwise[idx] || w.data().iter().all(|&x| x == 0.0) {
                skipped.push(idx);
                continue;
            }
            let grouped = match cfg.grouping.group(w, cfg.d) {
                Ok(g) => g,
                Err(MvqError::IncompatibleShape { .. }) => {
                    skipped.push(idx);
                    continue;
                }
                Err(e) => return Err(e),
            };
            let (pruned, mask) = prune_matrix_nm(&grouped, cfg.keep_n, cfg.m)?;
            eligible.push((idx, pruned, mask, w.dims().to_vec()));
        }
        if eligible.is_empty() {
            return Ok((Vec::new(), Vec::new(), skipped));
        }
        let mut res = if cfg.kernel == crate::kernels::KernelStrategy::Minibatch {
            // minibatch samples straight from the per-layer chunks — no
            // concatenated matrix/mask is ever materialized (bit-identical
            // to the monolithic run; see `masked_kmeans_minibatch_chunked`)
            let chunks: Vec<(&Tensor, &NmMask)> =
                eligible.iter().map(|(_, pruned, mask, _)| (pruned, mask)).collect();
            masked_kmeans_minibatch_chunked(&chunks, &cfg.kmeans(), None, rng)?
        } else {
            // full-batch kernels need every row per iteration: concatenate
            let d = cfg.d;
            let total_ng: usize = eligible.iter().map(|(_, p, ..)| p.dims()[0]).sum();
            let mut data = Vec::with_capacity(total_ng * d);
            let mut bits = Vec::with_capacity(total_ng * d);
            for (_, pruned, mask, _) in &eligible {
                data.extend_from_slice(pruned.data());
                bits.extend_from_slice(mask.bits());
            }
            let all = Tensor::from_vec(vec![total_ng, d], data)?;
            let all_mask = NmMask::from_bits(total_ng, d, cfg.keep_n, cfg.m, bits)?;
            masked_kmeans(&all, &all_mask, &cfg.kmeans(), rng)?
        };
        if let Some(b) = cfg.codebook_bits {
            res.codebook.quantize(b)?;
        }
        let k = res.codebook.k();
        let mut entries = Vec::new();
        let mut offset = 0usize;
        for (idx, pruned, mask, dims) in eligible {
            let ng = pruned.dims()[0];
            let slice = res.assignments.indices()[offset..offset + ng].to_vec();
            entries.push(LayerCodebook {
                conv_index: idx,
                codebook_id: 0,
                assignments: Assignments::new(slice, k)?,
                mask,
                orig_dims: dims,
            });
            offset += ng;
        }
        Ok((vec![res.codebook], entries, skipped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_nn::models::tiny_cnn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(k: usize) -> MvqConfig {
        MvqConfig::new(k, 16, 4, 16).unwrap()
    }

    #[test]
    fn layerwise_compresses_all_eligible_convs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = tiny_cnn(4, 8, &mut rng);
        let cm = ModelCompressor::new(cfg(8)).compress(&mut model, &mut rng).unwrap();
        assert_eq!(cm.entries.len(), 2);
        assert_eq!(cm.codebooks.len(), 2);
        assert!(cm.skipped.is_empty());
        // weights in the model are now sparse reconstructions
        model.visit_convs_mut(&mut |conv| {
            assert!(conv.weight.value.sparsity() >= 0.70);
        });
    }

    #[test]
    fn crosslayer_shares_one_codebook() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = tiny_cnn(4, 8, &mut rng);
        let cm = ModelCompressor::new(cfg(8))
            .with_scope(ClusterScope::CrossLayer)
            .compress(&mut model, &mut rng)
            .unwrap();
        assert_eq!(cm.codebooks.len(), 1);
        assert_eq!(cm.entries.len(), 2);
        assert!(cm.entries.iter().all(|e| e.codebook_id == 0));
    }

    #[test]
    fn crosslayer_codebook_counted_once_in_storage() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m1 = tiny_cnn(4, 8, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(2);
        let mut m2 = tiny_cnn(4, 8, &mut rng2);
        let lw = ModelCompressor::new(cfg(8)).compress(&mut m1, &mut rng).unwrap();
        let cl = ModelCompressor::new(cfg(8))
            .with_scope(ClusterScope::CrossLayer)
            .compress(&mut m2, &mut rng2)
            .unwrap();
        assert!(cl.storage().codebook_bits < lw.storage().codebook_bits);
        assert_eq!(cl.storage().codebook_bits, cl.codebooks[0].storage_bits());
    }

    #[test]
    fn masked_sse_is_finite_and_reasonable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = tiny_cnn(4, 8, &mut rng);
        // SSE must be measured against the *pre-compression* weights
        let mut reference = tiny_cnn(4, 8, &mut StdRng::seed_from_u64(3));
        let cm = ModelCompressor::new(cfg(16)).compress(&mut model, &mut rng).unwrap();
        let sse = cm.total_masked_sse(&reference).unwrap();
        assert!(sse.is_finite() && sse >= 0.0);
        // against the reconstructed model the SSE is ~0
        let sse_self = cm.total_masked_sse(&model).unwrap();
        assert!(sse_self < 1e-6, "self-SSE {sse_self}");
        let _ = &mut reference;
    }

    #[test]
    fn more_codewords_lower_sse_lower_ratio() {
        let mk = |k: usize, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut model = tiny_cnn(4, 8, &mut rng);
            let reference = tiny_cnn(4, 8, &mut StdRng::seed_from_u64(seed));
            let cm = ModelCompressor::new(cfg(k)).compress(&mut model, &mut rng).unwrap();
            (cm.total_masked_sse(&reference).unwrap(), cm.compression_ratio())
        };
        let (sse_small, ratio_small) = mk(4, 7);
        let (sse_big, ratio_big) = mk(64, 7);
        assert!(sse_big < sse_small);
        assert!(ratio_big < ratio_small);
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let run = |parallelism: Parallelism| {
            let mut rng = StdRng::seed_from_u64(11);
            let mut model = tiny_cnn(4, 8, &mut rng);
            let cm = ModelCompressor::new(cfg(8))
                .with_parallelism(parallelism)
                .compress(&mut model, &mut rng)
                .unwrap();
            let mut weights = Vec::new();
            model.visit_convs(&mut |c| weights.push(c.weight.value.clone()));
            (cm, weights)
        };
        let (serial, w_serial) = run(Parallelism::Serial);
        let (rayon, w_rayon) = run(Parallelism::Rayon);
        assert_eq!(serial.entries.len(), rayon.entries.len());
        for (a, b) in serial.entries.iter().zip(&rayon.entries) {
            assert_eq!(a.conv_index, b.conv_index);
            assert_eq!(a.assignments.indices(), b.assignments.indices());
            assert_eq!(a.mask.bits(), b.mask.bits());
        }
        for (a, b) in serial.codebooks.iter().zip(&rayon.codebooks) {
            assert_eq!(a.centers().data(), b.centers().data());
        }
        for (a, b) in w_serial.iter().zip(&w_rayon) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn blocked_kernel_matches_naive_in_both_scopes() {
        use crate::kernels::KernelStrategy;
        for scope in [ClusterScope::LayerWise, ClusterScope::CrossLayer] {
            let run = |kernel: KernelStrategy| {
                let mut rng = StdRng::seed_from_u64(31);
                let mut model = tiny_cnn(4, 8, &mut rng);
                ModelCompressor::new(cfg(8))
                    .with_scope(scope)
                    .with_kernel(kernel)
                    .compress(&mut model, &mut rng)
                    .unwrap()
            };
            let naive = run(KernelStrategy::Naive);
            let blocked = run(KernelStrategy::Blocked);
            assert_eq!(naive.entries.len(), blocked.entries.len());
            for (a, b) in naive.entries.iter().zip(&blocked.entries) {
                assert_eq!(a.assignments.indices(), b.assignments.indices(), "{scope:?}");
            }
            for (a, b) in naive.codebooks.iter().zip(&blocked.codebooks) {
                assert_eq!(a.centers().data(), b.centers().data(), "{scope:?}");
            }
        }
    }

    #[test]
    fn minibatch_kernel_is_deterministic_in_both_scopes() {
        use crate::kernels::KernelStrategy;
        for scope in [ClusterScope::LayerWise, ClusterScope::CrossLayer] {
            let run = || {
                let mut rng = StdRng::seed_from_u64(33);
                let mut model = tiny_cnn(4, 8, &mut rng);
                ModelCompressor::new(cfg(8))
                    .with_scope(scope)
                    .with_kernel(KernelStrategy::Minibatch)
                    .compress(&mut model, &mut rng)
                    .unwrap()
            };
            let a = run();
            let b = run();
            assert_eq!(a.entries.len(), b.entries.len());
            for (x, y) in a.entries.iter().zip(&b.entries) {
                assert_eq!(x.assignments.indices(), y.assignments.indices(), "{scope:?}");
            }
            for (x, y) in a.codebooks.iter().zip(&b.codebooks) {
                assert_eq!(x.centers().data(), y.centers().data(), "{scope:?}");
            }
        }
    }

    #[test]
    fn sparsity_reported() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = tiny_cnn(4, 8, &mut rng);
        let cm = ModelCompressor::new(cfg(8)).compress(&mut model, &mut rng).unwrap();
        assert_eq!(cm.sparsity(), 0.75);
        assert_eq!(cm.keep_n(), 4);
        assert_eq!(cm.m(), 16);
        assert_eq!(cm.grouping(), GroupingStrategy::OutputChannelWise);
    }
}
