//! Compact mask storage via a C(M,N) look-up table (paper §5, Eq. 7).
//!
//! A N:M-pruned group of M weights admits only `C(M,N)` distinct masks, so
//! instead of one bit per weight the accelerator stores a
//! `⌈log2 C(M,N)⌉`-bit index per group and decodes it with a LUT in the
//! weight loader. This module builds that LUT bit-exactly and provides the
//! encode/decode used both by the storage model and by the simulated
//! hardware weight loader.

use crate::error::MvqError;
use crate::mask::validate_nm;

/// Binomial coefficient C(m, n) in u64 (saturating; fine for m ≤ 64).
pub(crate) fn binomial(m: u64, n: u64) -> u64 {
    if n > m {
        return 0;
    }
    let n = n.min(m - n);
    let mut acc = 1u64;
    for i in 0..n {
        acc = acc * (m - i) / (i + 1);
    }
    acc
}

/// The mask look-up table for one N:M configuration.
///
/// Masks are enumerated in lexicographic order of their bit patterns
/// (lowest index = kept lanes packed leftmost), matching a combinatorial
/// number system so encoding is O(M) without a hash map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskLut {
    m: usize,
    keep_n: usize,
    /// All C(M,N) masks; entry `i` decodes index `i`.
    table: Vec<Vec<bool>>,
}

impl MaskLut {
    /// Builds the LUT for keeping `keep_n` of every `m` weights.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] for degenerate N:M pairs or
    /// when `C(M,N)` exceeds 2^20 entries (LUT would not fit hardware).
    pub fn new(keep_n: usize, m: usize) -> Result<MaskLut, MvqError> {
        validate_nm(m, keep_n, m)?;
        let count = binomial(m as u64, keep_n as u64);
        if count > 1 << 20 {
            return Err(MvqError::InvalidConfig(format!(
                "C({m},{keep_n}) = {count} masks is too large for a LUT"
            )));
        }
        let mut table = Vec::with_capacity(count as usize);
        let mut mask = vec![false; m];
        enumerate(&mut table, &mut mask, 0, keep_n);
        Ok(MaskLut { m, keep_n, table })
    }

    /// Group size M.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Kept count N.
    pub fn keep_n(&self) -> usize {
        self.keep_n
    }

    /// Number of distinct masks, `C(M,N)`.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the LUT is empty (never, for valid configs).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Bits required to store one mask index: `⌈log2 C(M,N)⌉`.
    pub fn index_bits(&self) -> u32 {
        let len = self.table.len() as u64;
        if len <= 1 {
            0
        } else {
            64 - (len - 1).leading_zeros()
        }
    }

    /// Mask storage cost in bits per weight:
    /// `⌈log2 C(M,N)⌉ / M` (Eq. 7's `b_m` per-weight term).
    pub fn bits_per_weight(&self) -> f64 {
        self.index_bits() as f64 / self.m as f64
    }

    /// Encodes a group mask into its LUT index.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] when `mask` has the wrong length
    /// or wrong population count.
    pub fn encode(&self, mask: &[bool]) -> Result<u32, MvqError> {
        if mask.len() != self.m {
            return Err(MvqError::InvalidConfig(format!(
                "mask length {} != M = {}",
                mask.len(),
                self.m
            )));
        }
        if mask.iter().filter(|&&b| b).count() != self.keep_n {
            return Err(MvqError::InvalidConfig(format!(
                "mask must keep exactly {} of {}",
                self.keep_n, self.m
            )));
        }
        // Combinatorial ranking in the same order as `enumerate`.
        let mut rank = 0u64;
        let mut remaining_n = self.keep_n as u64;
        for (pos, &bit) in mask.iter().enumerate() {
            let slots_after = (self.m - pos - 1) as u64;
            if bit {
                remaining_n -= 1;
            } else if remaining_n > 0 {
                // skipping all masks that keep a lane here
                rank += binomial(slots_after, remaining_n - 1);
            }
            if remaining_n == 0 {
                break;
            }
        }
        Ok(rank as u32)
    }

    /// Decodes a LUT index back into the group mask.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] when `index` is out of range.
    pub fn decode(&self, index: u32) -> Result<&[bool], MvqError> {
        self.table.get(index as usize).map(|v| v.as_slice()).ok_or_else(|| {
            MvqError::InvalidConfig(format!(
                "mask index {index} out of range (C({},{}) = {})",
                self.m,
                self.keep_n,
                self.table.len()
            ))
        })
    }
}

fn enumerate(table: &mut Vec<Vec<bool>>, mask: &mut Vec<bool>, pos: usize, left: usize) {
    if left == 0 {
        table.push(mask.clone());
        return;
    }
    if mask.len() - pos < left {
        return;
    }
    // place a kept lane at `pos` first => lexicographically "kept first"
    mask[pos] = true;
    enumerate(table, mask, pos + 1, left - 1);
    mask[pos] = false;
    enumerate(table, mask, pos + 1, left);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomials() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(16, 4), 1820);
        assert_eq!(binomial(2, 1), 2);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(3, 5), 0);
    }

    #[test]
    fn lut_sizes_match_binomials() {
        assert_eq!(MaskLut::new(2, 4).unwrap().len(), 6);
        assert_eq!(MaskLut::new(4, 16).unwrap().len(), 1820);
        assert_eq!(MaskLut::new(1, 2).unwrap().len(), 2);
    }

    #[test]
    fn index_bits_match_paper_storage() {
        // 4:16 -> ceil(log2 1820) = 11 bits per 16 weights = 0.6875 b/w
        let lut = MaskLut::new(4, 16).unwrap();
        assert_eq!(lut.index_bits(), 11);
        assert!((lut.bits_per_weight() - 11.0 / 16.0).abs() < 1e-12);
        // 1:2 -> 1 bit per 2 weights = 0.5 b/w
        let lut = MaskLut::new(1, 2).unwrap();
        assert_eq!(lut.index_bits(), 1);
        assert_eq!(lut.bits_per_weight(), 0.5);
        // 2:4 -> ceil(log2 6) = 3 bits per 4 weights = 0.75 b/w; the paper's
        // "0.25 bit/w additional cost" of 2:4 over 1:2 (§6.2) follows.
        let lut = MaskLut::new(2, 4).unwrap();
        assert_eq!(lut.index_bits(), 3);
        assert!((lut.bits_per_weight() - 0.5 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn encode_decode_round_trip_all() {
        for (n, m) in [(1usize, 2usize), (2, 4), (4, 8), (4, 16)] {
            let lut = MaskLut::new(n, m).unwrap();
            for idx in 0..lut.len() as u32 {
                let mask = lut.decode(idx).unwrap().to_vec();
                assert_eq!(lut.encode(&mask).unwrap(), idx, "n={n} m={m} idx={idx}");
            }
        }
    }

    #[test]
    fn all_masks_distinct_and_valid() {
        let lut = MaskLut::new(2, 4).unwrap();
        let mut seen = std::collections::HashSet::new();
        for idx in 0..lut.len() as u32 {
            let mask = lut.decode(idx).unwrap();
            assert_eq!(mask.iter().filter(|&&b| b).count(), 2);
            assert!(seen.insert(mask.to_vec()), "duplicate mask");
        }
    }

    #[test]
    fn encode_validates() {
        let lut = MaskLut::new(2, 4).unwrap();
        assert!(lut.encode(&[true, true, true, false]).is_err());
        assert!(lut.encode(&[true, true]).is_err());
        assert!(lut.decode(6).is_err());
    }

    #[test]
    fn rejects_oversized_lut() {
        assert!(MaskLut::new(16, 32).is_err());
    }
}
