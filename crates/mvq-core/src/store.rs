//! Versioned artifact serialization and the content-addressed artifact
//! cache — the durable half of the compression pipeline.
//!
//! An in-memory [`crate::CompressedArtifact`] is only useful while the
//! process lives. This module gives every artifact kind a self-describing
//! binary form and a cache keyed by *what was compressed, how*:
//!
//! * [`Persist`] — `to_bytes` / `from_bytes` for [`CompressedArtifact`],
//!   [`ScalarQuantized`], [`LayerArtifact`] and [`ModelArtifacts`]. The
//!   encoding is hand-rolled (no external deps, consistent with the
//!   workspace's vendored-shim policy): a fixed header carrying magic,
//!   format version, a kind tag and an FNV-1a payload checksum, followed
//!   by a little-endian field layout per variant. Floats are stored as
//!   raw bit patterns, so decoding reconstructs values **bit-identically**
//!   — `from_bytes(to_bytes(a))` reconstructs 0-ULP equal to `a`.
//! * [`weight_hash`] — the content hash of a weight tensor (dims + f32
//!   bit patterns).
//! * [`CacheKey`] / [`ArtifactCache`] — a content-addressed store keyed by
//!   `(weight hash, PipelineSpec fingerprint, algorithm, kernel strategy,
//!   seed)`, with an in-memory map, an optional on-disk blob directory,
//!   hit/miss statistics, and loud rejection of corrupt blobs.
//!
//! ## Versioning rule
//!
//! [`FORMAT_VERSION`] must be bumped on **any** change to the byte
//! layout, and a decode test for the previous version must be kept (see
//! `tests/roundtrip.rs`). Decoders reject blobs from future versions with
//! a typed [`MvqError::Codec`] instead of misreading them. Enum tags
//! (artifact variants, grouping, kernels) are append-only: existing
//! values are never renumbered.

use std::collections::{hash_map, HashMap};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use mvq_tensor::Tensor;

use crate::baselines::pqf::PqfCompressed;
use crate::baselines::pvq::PvqResult;
use crate::baselines::vq_plain::DenseVq;
use crate::codebook::{Assignments, Codebook};
use crate::compress::CompressedMatrix;
use crate::error::MvqError;
use crate::kernels::KernelStrategy;
use crate::mask::NmMask;
use crate::pipeline::{
    canonical_name, grouping_from_tag, grouping_tag, CompressedArtifact, LayerArtifact,
    ModelArtifacts, PipelineSpec, ScalarQuantized,
};

/// First four bytes of every serialized artifact blob.
pub const MAGIC: [u8; 4] = *b"MVQA";

/// Current serialization format version. Bump on any layout change and
/// keep a decode test for the old version (see module docs).
pub const FORMAT_VERSION: u16 = 1;

/// Header size: magic (4) + version (2) + kind (1) + payload length (8) +
/// payload checksum (8).
const HEADER_LEN: usize = 23;

/// FNV-1a 64-bit — the workspace's stable, dependency-free hash. Used for
/// payload checksums, weight content hashes and spec fingerprints.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Standard FNV-1a offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Folds a little-endian u64 into the state.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

/// Content hash of a weight tensor: dims and the f32 bit patterns, so
/// tensors that differ only by `-0.0` vs `0.0` (or carry different NaN
/// payloads) hash differently — the cache must never alias weights whose
/// compression could diverge.
pub fn weight_hash(weight: &Tensor) -> u64 {
    let mut h = Fnv1a::new();
    h.update(b"mvq.weight.v1");
    h.update_u64(weight.rank() as u64);
    for &d in weight.dims() {
        h.update_u64(d as u64);
    }
    for &v in weight.data() {
        h.update(&v.to_bits().to_le_bytes());
    }
    h.finish()
}

// ---------------------------------------------------------------------
// primitive readers/writers
// ---------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_dims(out: &mut Vec<u8>, dims: &[usize]) {
    put_u8(out, dims.len() as u8);
    for &d in dims {
        put_u64(out, d as u64);
    }
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    put_dims(out, t.dims());
    for &v in t.data() {
        put_f32(out, v);
    }
}

fn put_opt_f32(out: &mut Vec<u8>, v: Option<f32>) {
    match v {
        None => put_u8(out, 0),
        Some(x) => {
            put_u8(out, 1);
            put_f32(out, x);
        }
    }
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => put_u8(out, 0),
        Some(x) => {
            put_u8(out, 1);
            put_u32(out, x);
        }
    }
}

/// Bounds-checked sequential reader over a decoded payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], MvqError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
            MvqError::Codec(format!(
                "payload truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            ))
        })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, MvqError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, MvqError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, MvqError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn usize(&mut self) -> Result<usize, MvqError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| MvqError::Codec(format!("length {v} overflows usize")))
    }

    fn f32(&mut self) -> Result<f32, MvqError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn str(&mut self) -> Result<String, MvqError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| MvqError::Codec("string field is not UTF-8".into()))
    }

    fn dims(&mut self) -> Result<Vec<usize>, MvqError> {
        let rank = self.u8()? as usize;
        let mut dims = Vec::with_capacity(rank);
        let mut numel: u128 = 1;
        for _ in 0..rank {
            let d = self.usize()?;
            numel = numel.saturating_mul(d as u128);
            if numel > u32::MAX as u128 {
                return Err(MvqError::Codec(format!(
                    "tensor of dims {dims:?}×{d} is implausibly large"
                )));
            }
            dims.push(d);
        }
        Ok(dims)
    }

    fn tensor(&mut self) -> Result<Tensor, MvqError> {
        let dims = self.dims()?;
        let numel: usize = dims.iter().product();
        // cap the pre-allocation (same guard as the assignment/permutation
        // readers): a malformed header must fail at the first short read,
        // not abort on a multi-GB reservation
        let mut data = Vec::with_capacity(numel.min(1 << 24));
        for _ in 0..numel {
            data.push(self.f32()?);
        }
        Tensor::from_vec(dims, data).map_err(|e| MvqError::Codec(format!("tensor field: {e}")))
    }

    fn opt_f32(&mut self) -> Result<Option<f32>, MvqError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f32()?)),
            t => Err(MvqError::Codec(format!("bad Option<f32> tag {t}"))),
        }
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, MvqError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            t => Err(MvqError::Codec(format!("bad Option<u32> tag {t}"))),
        }
    }

    fn finish(&self) -> Result<(), MvqError> {
        if self.pos != self.bytes.len() {
            return Err(MvqError::Codec(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// composite field codecs
// ---------------------------------------------------------------------

fn put_codebook(out: &mut Vec<u8>, cb: &Codebook) {
    put_tensor(out, cb.centers());
    put_opt_f32(out, cb.scale());
    put_opt_u32(out, cb.bits());
}

fn read_codebook(r: &mut Reader<'_>) -> Result<Codebook, MvqError> {
    let centers = r.tensor()?;
    let scale = r.opt_f32()?;
    let bits = r.opt_u32()?;
    Codebook::from_raw_parts(centers, scale, bits)
        .map_err(|e| MvqError::Codec(format!("codebook: {e}")))
}

fn put_assignments(out: &mut Vec<u8>, a: &Assignments) {
    put_u64(out, a.len() as u64);
    for &i in a.indices() {
        put_u32(out, i);
    }
}

fn read_assignments(r: &mut Reader<'_>, k: usize) -> Result<Assignments, MvqError> {
    let len = r.usize()?;
    let mut indices = Vec::with_capacity(len.min(1 << 24));
    for _ in 0..len {
        indices.push(r.u32()?);
    }
    Assignments::new(indices, k).map_err(|e| MvqError::Codec(format!("assignments: {e}")))
}

fn put_mask(out: &mut Vec<u8>, mask: &NmMask) {
    put_u64(out, mask.ng() as u64);
    put_u64(out, mask.d() as u64);
    put_u64(out, mask.keep_n() as u64);
    put_u64(out, mask.m() as u64);
    // pack bits LSB-first, 8 per byte
    let bits = mask.bits();
    let mut byte = 0u8;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !bits.len().is_multiple_of(8) {
        out.push(byte);
    }
}

fn read_mask(r: &mut Reader<'_>) -> Result<NmMask, MvqError> {
    let ng = r.usize()?;
    let d = r.usize()?;
    let keep_n = r.usize()?;
    let m = r.usize()?;
    let nbits =
        ng.checked_mul(d).ok_or_else(|| MvqError::Codec("mask dimensions overflow".into()))?;
    let packed = r.take(nbits.div_ceil(8))?;
    let bits: Vec<bool> = (0..nbits).map(|i| packed[i / 8] >> (i % 8) & 1 == 1).collect();
    NmMask::from_bits(ng, d, keep_n, m, bits).map_err(|e| MvqError::Codec(format!("mask: {e}")))
}

fn put_scalar(out: &mut Vec<u8>, s: &ScalarQuantized) {
    put_tensor(out, &s.result.quantized);
    put_f32(out, s.result.scale);
    put_u32(out, s.result.bits);
    put_f32(out, s.result.sse);
}

fn read_scalar(r: &mut Reader<'_>) -> Result<ScalarQuantized, MvqError> {
    let quantized = r.tensor()?;
    let scale = r.f32()?;
    let bits = r.u32()?;
    let sse = r.f32()?;
    if !(2..=16).contains(&bits) {
        return Err(MvqError::Codec(format!("scalar bits {bits} outside 2..=16")));
    }
    Ok(ScalarQuantized { result: PvqResult { quantized, scale, bits, sse } })
}

/// Artifact variant tags (append-only).
const TAG_MASKED: u8 = 0;
const TAG_DENSE: u8 = 1;
const TAG_PERMUTED: u8 = 2;
const TAG_SCALAR: u8 = 3;

fn put_artifact(out: &mut Vec<u8>, artifact: &CompressedArtifact) {
    match artifact {
        CompressedArtifact::Masked(m) => {
            put_u8(out, TAG_MASKED);
            put_codebook(out, m.codebook());
            put_mask(out, m.mask());
            put_assignments(out, m.assignments());
            put_dims(out, m.orig_dims());
            put_u8(out, grouping_tag(m.grouping()));
            put_opt_f32(out, m.sse());
        }
        CompressedArtifact::Dense(v) => {
            put_u8(out, TAG_DENSE);
            put_codebook(out, v.codebook());
            put_assignments(out, v.assignments());
            put_dims(out, v.orig_dims());
            put_u8(out, grouping_tag(v.grouping()));
            put_u64(out, v.d() as u64);
            put_f32(out, v.sse);
        }
        CompressedArtifact::Permuted(p) => {
            put_u8(out, TAG_PERMUTED);
            put_codebook(out, p.codebook());
            put_assignments(out, p.assignments());
            put_dims(out, p.orig_dims());
            put_u8(out, grouping_tag(p.grouping()));
            put_u64(out, p.d() as u64);
            put_f32(out, p.sse);
            put_u64(out, p.permutation().len() as u64);
            for &i in p.permutation() {
                put_u64(out, i as u64);
            }
        }
        CompressedArtifact::Scalar(s) => {
            put_u8(out, TAG_SCALAR);
            put_scalar(out, s);
        }
    }
}

fn read_artifact(r: &mut Reader<'_>) -> Result<CompressedArtifact, MvqError> {
    match r.u8()? {
        TAG_MASKED => {
            let codebook = read_codebook(r)?;
            let mask = read_mask(r)?;
            let assignments = read_assignments(r, codebook.k())?;
            let orig_dims = r.dims()?;
            let grouping = grouping_from_tag(r.u8()?)?;
            let sse = r.opt_f32()?;
            let numel: usize = orig_dims.iter().product();
            if mask.ng() * mask.d() != numel {
                return Err(MvqError::Codec(format!(
                    "mask [{} × {}] does not cover a tensor of dims {orig_dims:?}",
                    mask.ng(),
                    mask.d()
                )));
            }
            let mut cm =
                CompressedMatrix::from_parts(codebook, assignments, mask, orig_dims, grouping)
                    .map_err(|e| MvqError::Codec(format!("masked artifact: {e}")))?;
            if let Some(s) = sse {
                cm = cm.with_sse(s);
            }
            Ok(CompressedArtifact::Masked(cm))
        }
        TAG_DENSE => {
            let codebook = read_codebook(r)?;
            let assignments = read_assignments(r, codebook.k())?;
            let orig_dims = r.dims()?;
            let grouping = grouping_from_tag(r.u8()?)?;
            let d = r.usize()?;
            let sse = r.f32()?;
            DenseVq::from_parts(codebook, assignments, orig_dims, grouping, d, sse)
                .map(CompressedArtifact::Dense)
                .map_err(|e| MvqError::Codec(format!("dense artifact: {e}")))
        }
        TAG_PERMUTED => {
            let codebook = read_codebook(r)?;
            let assignments = read_assignments(r, codebook.k())?;
            let orig_dims = r.dims()?;
            let grouping = grouping_from_tag(r.u8()?)?;
            let d = r.usize()?;
            let sse = r.f32()?;
            let len = r.usize()?;
            let mut permutation = Vec::with_capacity(len.min(1 << 24));
            for _ in 0..len {
                permutation.push(r.usize()?);
            }
            PqfCompressed::from_parts(
                permutation,
                codebook,
                assignments,
                orig_dims,
                grouping,
                d,
                sse,
            )
            .map(CompressedArtifact::Permuted)
            .map_err(|e| MvqError::Codec(format!("permuted artifact: {e}")))
        }
        TAG_SCALAR => Ok(CompressedArtifact::Scalar(read_scalar(r)?)),
        other => Err(MvqError::Codec(format!("unknown artifact variant tag {other}"))),
    }
}

// ---------------------------------------------------------------------
// the Persist trait: header framing shared by all blob kinds
// ---------------------------------------------------------------------

/// Blob kind tags distinguishing the four top-level serializable types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum BlobKind {
    /// A single [`CompressedArtifact`].
    Artifact = 0,
    /// A standalone [`ScalarQuantized`].
    Scalar = 1,
    /// A [`LayerArtifact`] (conv index + artifact).
    Layer = 2,
    /// A whole-model [`ModelArtifacts`].
    Model = 3,
}

impl BlobKind {
    fn from_tag(tag: u8) -> Result<BlobKind, MvqError> {
        match tag {
            0 => Ok(BlobKind::Artifact),
            1 => Ok(BlobKind::Scalar),
            2 => Ok(BlobKind::Layer),
            3 => Ok(BlobKind::Model),
            other => Err(MvqError::Codec(format!("unknown blob kind tag {other}"))),
        }
    }
}

fn frame(kind: BlobKind, payload: Vec<u8>) -> Vec<u8> {
    let mut h = Fnv1a::new();
    h.update(&payload);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&h.finish().to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validates the header and returns the checksum-verified payload.
fn unframe(kind: BlobKind, bytes: &[u8]) -> Result<&[u8], MvqError> {
    if bytes.len() < HEADER_LEN {
        return Err(MvqError::Codec(format!(
            "blob of {} bytes is shorter than the {HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[0..4] != MAGIC {
        return Err(MvqError::Codec(format!(
            "bad magic {:02x?} (expected {MAGIC:02x?})",
            &bytes[0..4]
        )));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version > FORMAT_VERSION {
        return Err(MvqError::Codec(format!(
            "format version {version} is newer than supported {FORMAT_VERSION}"
        )));
    }
    if version == 0 {
        return Err(MvqError::Codec("format version 0 does not exist".into()));
    }
    let found = BlobKind::from_tag(bytes[6])?;
    if found != kind {
        return Err(MvqError::Codec(format!("blob holds a {found:?}, expected a {kind:?}")));
    }
    let payload_len = u64::from_le_bytes(bytes[7..15].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != payload_len {
        return Err(MvqError::Codec(format!(
            "payload is {} bytes but the header promises {payload_len}",
            payload.len()
        )));
    }
    let checksum = u64::from_le_bytes(bytes[15..23].try_into().expect("8 bytes"));
    let mut h = Fnv1a::new();
    h.update(payload);
    if h.finish() != checksum {
        return Err(MvqError::Codec("payload checksum mismatch (corrupt blob)".into()));
    }
    Ok(payload)
}

/// Decodes a verified payload, rejecting trailing bytes.
fn decode_payload<T>(
    payload: &[u8],
    read: impl FnOnce(&mut Reader<'_>) -> Result<T, MvqError>,
) -> Result<T, MvqError> {
    let mut r = Reader::new(payload);
    let value = read(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// Versioned, self-describing binary serialization.
///
/// `from_bytes(to_bytes(x))` reconstructs `x` with bit-identical floats;
/// see the module docs for the layout and versioning rule.
pub trait Persist: Sized {
    /// The blob kind tag this type serializes under.
    const KIND: BlobKind;

    /// Serializes to a framed, checksummed blob.
    fn to_bytes(&self) -> Vec<u8>;

    /// Deserializes a framed blob.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] for truncated/corrupt blobs, wrong
    /// magic or kind, unsupported future format versions, and any payload
    /// that fails the type's construction-time validation.
    fn from_bytes(bytes: &[u8]) -> Result<Self, MvqError>;
}

impl Persist for CompressedArtifact {
    const KIND: BlobKind = BlobKind::Artifact;

    fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_artifact(&mut payload, self);
        frame(Self::KIND, payload)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, MvqError> {
        decode_payload(unframe(Self::KIND, bytes)?, read_artifact)
    }
}

impl Persist for ScalarQuantized {
    const KIND: BlobKind = BlobKind::Scalar;

    fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_scalar(&mut payload, self);
        frame(Self::KIND, payload)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, MvqError> {
        decode_payload(unframe(Self::KIND, bytes)?, read_scalar)
    }
}

impl Persist for LayerArtifact {
    const KIND: BlobKind = BlobKind::Layer;

    fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.conv_index as u64);
        put_artifact(&mut payload, &self.artifact);
        frame(Self::KIND, payload)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, MvqError> {
        decode_payload(unframe(Self::KIND, bytes)?, |r| {
            let conv_index = r.usize()?;
            let artifact = read_artifact(r)?;
            Ok(LayerArtifact { conv_index, artifact })
        })
    }
}

impl Persist for ModelArtifacts {
    const KIND: BlobKind = BlobKind::Model;

    fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_str(&mut payload, self.algorithm);
        put_u64(&mut payload, self.layers.len() as u64);
        for layer in &self.layers {
            put_u64(&mut payload, layer.conv_index as u64);
            put_artifact(&mut payload, &layer.artifact);
        }
        put_u64(&mut payload, self.skipped.len() as u64);
        for &idx in &self.skipped {
            put_u64(&mut payload, idx as u64);
        }
        frame(Self::KIND, payload)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, MvqError> {
        decode_payload(unframe(Self::KIND, bytes)?, |r| {
            let algo = r.str()?;
            let algorithm = canonical_name(&algo)
                .ok_or_else(|| MvqError::Codec(format!("unknown algorithm `{algo}`")))?;
            let n_layers = r.usize()?;
            let mut layers = Vec::with_capacity(n_layers.min(1 << 16));
            for _ in 0..n_layers {
                let conv_index = r.usize()?;
                let artifact = read_artifact(r)?;
                layers.push(LayerArtifact { conv_index, artifact });
            }
            let n_skipped = r.usize()?;
            let mut skipped = Vec::with_capacity(n_skipped.min(1 << 16));
            for _ in 0..n_skipped {
                skipped.push(r.usize()?);
            }
            Ok(ModelArtifacts { algorithm, layers, skipped })
        })
    }
}

// ---------------------------------------------------------------------
// the content-addressed cache
// ---------------------------------------------------------------------

/// The content address of one compression result: *what* was compressed
/// (the weight hash), *how* (spec fingerprint + algorithm + kernel), and
/// with which RNG seed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical registry algorithm name.
    pub algo: &'static str,
    /// [`weight_hash`] of the input tensor.
    pub weight_hash: u64,
    /// [`PipelineSpec::fingerprint`] of the spec.
    pub spec_fingerprint: u64,
    /// Kernel strategy the spec dispatches to (also folded into the
    /// fingerprint; kept explicit so keys are debuggable).
    pub kernel: KernelStrategy,
    /// RNG seed the compression ran with.
    pub seed: u64,
}

impl CacheKey {
    /// Builds the key for compressing `weight` with `algo` under `spec`
    /// and `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] for unknown algorithm names.
    pub fn new(
        algo: &str,
        weight: &Tensor,
        spec: &PipelineSpec,
        seed: u64,
    ) -> Result<CacheKey, MvqError> {
        let algo = canonical_name(algo).ok_or_else(|| {
            MvqError::InvalidConfig(format!("unknown compressor `{algo}` for cache key"))
        })?;
        Ok(CacheKey {
            algo,
            weight_hash: weight_hash(weight),
            spec_fingerprint: spec.fingerprint(),
            kernel: spec.kernel,
            seed,
        })
    }

    /// Deterministic file name for the on-disk blob of this key.
    pub fn blob_name(&self) -> String {
        format!(
            "{}-{:016x}-{:016x}-{}-{:016x}.mvqa",
            self.algo,
            self.weight_hash,
            self.spec_fingerprint,
            self.kernel.name(),
            self.seed
        )
    }
}

/// Cache traffic counters plus occupancy gauges sampled at
/// [`ArtifactCache::stats`] time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Artifacts inserted.
    pub insertions: u64,
    /// Blobs rejected because decoding failed (corruption).
    pub corrupt_rejections: u64,
    /// Memory-resident blobs dropped to honor the memory byte budget.
    pub memory_evictions: u64,
    /// On-disk blobs deleted to honor the disk byte budget.
    pub disk_evictions: u64,
    /// Blobs resident in memory when the snapshot was taken.
    pub memory_len: usize,
    /// Blobs on disk when the snapshot was taken (disk-backed caches only).
    pub disk_len: usize,
    /// Encoded bytes resident in memory when the snapshot was taken.
    pub memory_bytes: u64,
    /// Encoded bytes on disk when the snapshot was taken.
    pub disk_bytes: u64,
}

/// Byte budgets bounding an [`ArtifactCache`]'s memory and disk
/// footprints. `None` means unbounded (the pre-budget behavior).
///
/// A budget is a **hard cap on encoded blob bytes**: every insert or
/// disk-promotion evicts least-recently-used entries until the footprint
/// is back under the cap before the operation returns. The settled
/// footprint therefore never exceeds the budget — during an insert it may
/// transiently overshoot by at most the incoming blob — and this holds
/// even when a single blob is larger than the whole budget (such a blob
/// is evicted immediately after insertion and the caller simply keeps
/// the returned artifact).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheBudget {
    /// Cap on encoded bytes held in memory (`None` = unbounded).
    pub memory_bytes: Option<u64>,
    /// Cap on encoded bytes persisted on disk (`None` = unbounded).
    pub disk_bytes: Option<u64>,
}

impl CacheBudget {
    /// No caps — the cache grows without bound, as before budgets existed.
    pub const UNBOUNDED: CacheBudget = CacheBudget { memory_bytes: None, disk_bytes: None };

    /// Caps the in-memory footprint at `bytes`.
    pub fn with_memory_bytes(mut self, bytes: u64) -> CacheBudget {
        self.memory_bytes = Some(bytes);
        self
    }

    /// Caps the on-disk footprint at `bytes`.
    pub fn with_disk_bytes(mut self, bytes: u64) -> CacheBudget {
        self.disk_bytes = Some(bytes);
        self
    }
}

/// A memory-resident blob and its LRU stamp.
struct MemEntry {
    bytes: Arc<Vec<u8>>,
    last_used: u64,
}

/// Accounting for one on-disk blob (keyed by file name in the ledger).
struct DiskEntry {
    bytes: u64,
    last_used: u64,
}

#[derive(Default)]
struct CacheInner {
    blobs: HashMap<CacheKey, MemEntry>,
    memory_bytes: u64,
    /// Ledger of on-disk blobs by file name, rebuilt by a directory scan
    /// at construction so a restarted cache knows its inherited usage.
    disk: HashMap<String, DiskEntry>,
    disk_bytes: u64,
    /// Monotonic logical clock stamping every touch; unique per entry,
    /// so LRU victim selection is deterministic.
    tick: u64,
    stats: CacheStats,
}

impl CacheInner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn touch_disk(&mut self, name: &str, bytes: u64, tick: u64) {
        match self.disk.entry(name.to_string()) {
            hash_map::Entry::Occupied(mut e) => {
                let old = e.get().bytes;
                self.disk_bytes = self.disk_bytes - old + bytes;
                *e.get_mut() = DiskEntry { bytes, last_used: tick };
            }
            hash_map::Entry::Vacant(v) => {
                self.disk_bytes += bytes;
                v.insert(DiskEntry { bytes, last_used: tick });
            }
        }
    }

    /// Refreshes the LRU stamp of an on-disk blob without changing its
    /// accounted size (used by memory hits, so a hot key's disk copy is
    /// not the next disk-eviction victim).
    fn bump_disk(&mut self, name: &str, tick: u64) {
        if let Some(e) = self.disk.get_mut(name) {
            e.last_used = tick;
        }
    }

    fn forget_disk(&mut self, name: &str) {
        if let Some(e) = self.disk.remove(name) {
            self.disk_bytes -= e.bytes;
        }
    }

    fn insert_memory(&mut self, key: &CacheKey, bytes: Arc<Vec<u8>>, tick: u64) {
        match self.blobs.entry(key.clone()) {
            hash_map::Entry::Occupied(mut e) => e.get_mut().last_used = tick,
            hash_map::Entry::Vacant(v) => {
                self.memory_bytes += bytes.len() as u64;
                v.insert(MemEntry { bytes, last_used: tick });
            }
        }
    }

    fn remove_memory(&mut self, key: &CacheKey) {
        if let Some(e) = self.blobs.remove(key) {
            self.memory_bytes -= e.bytes.len() as u64;
        }
    }

    /// Drops least-recently-used memory entries until under `cap`.
    ///
    /// Victim selection is a linear scan per eviction — deliberate: the
    /// cache holds at most a few thousand modest entries (one per
    /// compressed layer × config), where a scan beats maintaining a
    /// second ordered index. Revisit if caches grow by orders of
    /// magnitude.
    fn evict_memory_to(&mut self, cap: u64) {
        while self.memory_bytes > cap {
            let Some(victim) =
                self.blobs.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            else {
                break;
            };
            self.remove_memory(&victim);
            self.stats.memory_evictions += 1;
        }
    }
}

/// A content-addressed artifact store: an in-memory blob map, optionally
/// backed by an on-disk directory, shared across threads (`&self` methods
/// are thread-safe — the compression service's worker pool fans out over
/// one cache).
///
/// Artifacts are stored *encoded*; every `get` decodes through the same
/// [`Persist`] path a cold load from disk would take, so a cache hit is
/// guaranteed to be bit-identical to a decode of the durable form — the
/// cache cannot return state that would not survive a restart.
///
/// ## Byte budgets and LRU eviction
///
/// A [`CacheBudget`] caps the encoded bytes held in memory and on disk.
/// Both footprints are tracked exactly (disk usage is rebuilt by a
/// directory scan at construction, so budgets survive restarts), and the
/// least-recently-used entry is evicted first — memory eviction drops the
/// resident blob (a disk-backed copy still answers later lookups), disk
/// eviction deletes the blob file. Eviction is a cache phenomenon, never
/// an error: an evicted key simply misses and recompresses.
pub struct ArtifactCache {
    dir: Option<PathBuf>,
    budget: CacheBudget,
    inner: Mutex<CacheInner>,
}

impl ArtifactCache {
    /// A purely in-memory cache with no byte budget.
    pub fn in_memory() -> ArtifactCache {
        ArtifactCache::in_memory_with_budget(CacheBudget::UNBOUNDED)
    }

    /// A purely in-memory cache whose resident bytes honor `budget`
    /// (the disk half of the budget is ignored — there is no disk).
    pub fn in_memory_with_budget(budget: CacheBudget) -> ArtifactCache {
        ArtifactCache { dir: None, budget, inner: Mutex::new(CacheInner::default()) }
    }

    /// A cache persisting blobs under `dir` (created if absent), with no
    /// byte budget. Lookups fall back to disk on memory misses, so a new
    /// process reuses a previous run's artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when the directory cannot be created
    /// or scanned.
    pub fn with_dir<P: AsRef<Path>>(dir: P) -> Result<ArtifactCache, MvqError> {
        ArtifactCache::with_dir_and_budget(dir, CacheBudget::UNBOUNDED)
    }

    /// A disk-backed cache honoring `budget`. The directory is scanned at
    /// construction to rebuild the disk ledger (sizes plus a modification
    /// -time LRU order), and immediately pruned to the disk budget — a
    /// restart over an over-budget directory deletes the stalest blobs
    /// first.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when the directory cannot be created,
    /// scanned, or pruned.
    pub fn with_dir_and_budget<P: AsRef<Path>>(
        dir: P,
        budget: CacheBudget,
    ) -> Result<ArtifactCache, MvqError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| {
            MvqError::Codec(format!("cannot create cache dir {}: {e}", dir.display()))
        })?;
        let cache =
            ArtifactCache { dir: Some(dir), budget, inner: Mutex::new(CacheInner::default()) };
        cache.scan_disk()?;
        Ok(cache)
    }

    /// The backing directory, if this cache persists to disk.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The byte budget this cache enforces.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    /// Number of artifacts resident in **memory**. Disk-backed caches may
    /// hold more blobs on disk — see [`ArtifactCache::disk_len`].
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").blobs.len()
    }

    /// True when no artifact is resident in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of blobs on disk (0 for in-memory caches).
    pub fn disk_len(&self) -> usize {
        self.inner.lock().expect("cache lock").disk.len()
    }

    /// Encoded bytes currently resident in memory.
    pub fn memory_bytes(&self) -> u64 {
        self.inner.lock().expect("cache lock").memory_bytes
    }

    /// Encoded bytes currently on disk (0 for in-memory caches).
    pub fn disk_bytes(&self) -> u64 {
        self.inner.lock().expect("cache lock").disk_bytes
    }

    /// A snapshot of the traffic counters and occupancy gauges.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            memory_len: inner.blobs.len(),
            disk_len: inner.disk.len(),
            memory_bytes: inner.memory_bytes,
            disk_bytes: inner.disk_bytes,
            ..inner.stats
        }
    }

    /// Looks up `key`, decoding the stored blob on a hit.
    ///
    /// A disk hit promotes the blob into memory (subject to the memory
    /// budget) and refreshes its LRU stamp on both levels.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when a stored blob is corrupt — a
    /// poisoned entry is surfaced loudly (and counted in
    /// [`CacheStats::corrupt_rejections`]), never silently treated as a
    /// miss or returned as wrong data.
    pub fn get(&self, key: &CacheKey) -> Result<Option<CompressedArtifact>, MvqError> {
        let name = key.blob_name();
        let from_memory = {
            let mut inner = self.inner.lock().expect("cache lock");
            let cached = inner.blobs.get(key).map(|e| e.bytes.clone());
            if cached.is_some() {
                let tick = inner.next_tick();
                inner.blobs.get_mut(key).expect("entry present").last_used = tick;
                // the blob's disk copy is just as recently used: without
                // this, a hot key served from memory would keep a stale
                // disk stamp and be the first blob deleted under a disk
                // budget — an LRU inversion
                inner.bump_disk(&name, tick);
            }
            cached
        };
        let (bytes, from_disk) = match from_memory {
            Some(b) => (Some(b), false),
            None => (self.read_disk_blob(key)?.map(Arc::new), true),
        };
        let mut inner = self.inner.lock().expect("cache lock");
        match bytes {
            None => {
                inner.stats.misses += 1;
                // drop a stale ledger entry only if the file is truly
                // absent *now*: a concurrent put may have persisted this
                // key between our (lock-free) disk read and re-acquiring
                // the lock, and its ledger entry must survive
                if let Some(dir) = &self.dir {
                    // lint:allow(lock-scope) -- metadata-only existence probe; it must happen under this lock or the concurrent-put race described above comes back
                    if !dir.join(&name).exists() {
                        inner.forget_disk(&name);
                    }
                }
                Ok(None)
            }
            Some(bytes) => match CompressedArtifact::from_bytes(&bytes) {
                Ok(artifact) => {
                    inner.stats.hits += 1;
                    if from_disk {
                        let tick = inner.next_tick();
                        inner.touch_disk(&name, bytes.len() as u64, tick);
                        inner.insert_memory(key, bytes, tick);
                        if let Some(cap) = self.budget.memory_bytes {
                            inner.evict_memory_to(cap);
                        }
                    }
                    Ok(Some(artifact))
                }
                Err(e) => {
                    inner.stats.corrupt_rejections += 1;
                    inner.remove_memory(key);
                    Err(MvqError::Codec(format!("cache blob for {name} is corrupt: {e}")))
                }
            },
        }
    }

    /// Stores `artifact` under `key` (memory, and disk when backed), then
    /// evicts least-recently-used entries until both byte budgets hold.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when the disk write (or an eviction's
    /// file deletion) fails.
    pub fn put(&self, key: &CacheKey, artifact: &CompressedArtifact) -> Result<(), MvqError> {
        let bytes = Arc::new(artifact.to_bytes());
        let name = key.blob_name();
        if let Some(dir) = &self.dir {
            let path = dir.join(&name);
            let tmp = dir.join(format!("{name}.tmp"));
            std::fs::write(&tmp, bytes.as_slice())
                .and_then(|()| std::fs::rename(&tmp, &path))
                .map_err(|e| {
                    MvqError::Codec(format!("cannot persist blob {}: {e}", path.display()))
                })?;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.stats.insertions += 1;
        let tick = inner.next_tick();
        if self.dir.is_some() {
            inner.touch_disk(&name, bytes.len() as u64, tick);
            self.enforce_disk(&mut inner)?;
        }
        inner.insert_memory(key, bytes, tick);
        if let Some(cap) = self.budget.memory_bytes {
            inner.evict_memory_to(cap);
        }
        Ok(())
    }

    /// Rebuilds the disk ledger from the blob directory (sizes, LRU order
    /// from modification times, file-name tie-break) and prunes it to the
    /// disk budget.
    fn scan_disk(&self) -> Result<(), MvqError> {
        let Some(dir) = &self.dir else { return Ok(()) };
        let entries = std::fs::read_dir(dir).map_err(|e| {
            MvqError::Codec(format!("cannot scan cache dir {}: {e}", dir.display()))
        })?;
        let mut found: Vec<(String, u64, std::time::SystemTime)> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| {
                MvqError::Codec(format!("cannot scan cache dir {}: {e}", dir.display()))
            })?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".mvqa.tmp") {
                // an interrupted put stranded this partial blob; it is
                // unaddressable and would leak bytes outside the budget
                match std::fs::remove_file(entry.path()) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => {
                        return Err(MvqError::Codec(format!(
                            "cannot remove stale tmp blob {name}: {e}"
                        )));
                    }
                }
                continue;
            }
            if !name.ends_with(".mvqa") {
                continue; // foreign content is left alone
            }
            let meta = entry
                .metadata()
                .map_err(|e| MvqError::Codec(format!("cannot stat cache blob {name}: {e}")))?;
            if !meta.is_file() {
                continue;
            }
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            found.push((name, meta.len(), mtime));
        }
        // least-recently-written first; the name breaks mtime ties so the
        // inherited LRU order is deterministic
        found.sort_by(|a, b| (a.2, &a.0).cmp(&(b.2, &b.0)));
        let mut inner = self.inner.lock().expect("cache lock");
        for (name, bytes, _) in found {
            let tick = inner.next_tick();
            inner.touch_disk(&name, bytes, tick);
        }
        self.enforce_disk(&mut inner)
    }

    /// Deletes least-recently-used blob files until the disk budget holds.
    fn enforce_disk(&self, inner: &mut CacheInner) -> Result<(), MvqError> {
        let (Some(cap), Some(dir)) = (self.budget.disk_bytes, self.dir.as_ref()) else {
            return Ok(());
        };
        while inner.disk_bytes > cap {
            let Some(victim) =
                inner.disk.iter().min_by_key(|(_, e)| e.last_used).map(|(n, _)| n.clone())
            else {
                break;
            };
            inner.forget_disk(&victim);
            match std::fs::remove_file(dir.join(&victim)) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(MvqError::Codec(format!("cannot evict blob {victim}: {e}")));
                }
            }
            inner.stats.disk_evictions += 1;
        }
        Ok(())
    }

    /// `get`, falling back to `compute` + `put` on a miss.
    ///
    /// # Errors
    ///
    /// Propagates lookup, compute and store errors.
    pub fn get_or_compute<F>(
        &self,
        key: &CacheKey,
        compute: F,
    ) -> Result<(CompressedArtifact, bool), MvqError>
    where
        F: FnOnce() -> Result<CompressedArtifact, MvqError>,
    {
        if let Some(hit) = self.get(key)? {
            return Ok((hit, true));
        }
        let fresh = compute()?;
        self.put(key, &fresh)?;
        Ok((fresh, false))
    }

    fn read_disk_blob(&self, key: &CacheKey) -> Result<Option<Vec<u8>>, MvqError> {
        let Some(dir) = &self.dir else { return Ok(None) };
        let path = dir.join(key.blob_name());
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(MvqError::Codec(format!("cannot read blob {}: {e}", path.display()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::by_name;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn weight() -> Tensor {
        let mut rng = StdRng::seed_from_u64(11);
        mvq_tensor::kaiming_normal(vec![32, 16], 16, &mut rng)
    }

    fn artifact(algo: &str) -> CompressedArtifact {
        let spec = PipelineSpec { k: 8, swap_trials: 100, ..PipelineSpec::default() };
        by_name(algo, &spec)
            .unwrap()
            .compress_matrix(&weight(), &mut StdRng::seed_from_u64(5))
            .unwrap()
    }

    #[test]
    fn header_layout_is_stable() {
        let bytes = artifact("mvq").to_bytes();
        assert_eq!(&bytes[0..4], &MAGIC);
        assert_eq!(u16::from_le_bytes(bytes[4..6].try_into().unwrap()), FORMAT_VERSION);
        assert_eq!(bytes[6], BlobKind::Artifact as u8);
        let payload_len = u64::from_le_bytes(bytes[7..15].try_into().unwrap());
        assert_eq!(payload_len as usize, bytes.len() - HEADER_LEN);
    }

    #[test]
    fn round_trip_reconstruction_is_bit_identical() {
        for algo in ["mvq", "vq-a", "vq-c", "pqf", "pvq"] {
            let a = artifact(algo);
            let b = CompressedArtifact::from_bytes(&a.to_bytes()).unwrap();
            let ra = a.reconstruct().unwrap();
            let rb = b.reconstruct().unwrap();
            let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&ra), bits(&rb), "{algo}");
            assert_eq!(a.storage(), b.storage(), "{algo}");
        }
    }

    #[test]
    fn weight_hash_distinguishes_content_and_shape() {
        let w = weight();
        assert_eq!(weight_hash(&w), weight_hash(&w.clone()));
        let mut w2 = w.clone();
        w2.data_mut()[0] += 1.0;
        assert_ne!(weight_hash(&w), weight_hash(&w2));
        let reshaped = w.reshape(vec![16, 32]).unwrap();
        assert_ne!(weight_hash(&w), weight_hash(&reshaped));
        // -0.0 and 0.0 are different content
        let mut wz = w.clone();
        wz.data_mut()[0] = 0.0;
        let mut wn = w.clone();
        wn.data_mut()[0] = -0.0;
        assert_ne!(weight_hash(&wz), weight_hash(&wn));
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache = ArtifactCache::in_memory();
        let w = weight();
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let key = CacheKey::new("mvq", &w, &spec, 5).unwrap();
        assert!(cache.get(&key).unwrap().is_none());
        let a = artifact("mvq");
        cache.put(&key, &a).unwrap();
        assert!(cache.get(&key).unwrap().is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.corrupt_rejections, 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn memory_budget_evicts_lru_and_never_exceeds_cap() {
        let a = artifact("mvq");
        let blob_len = a.to_bytes().len() as u64;
        // room for exactly two blobs of this size
        let cap = 2 * blob_len;
        let cache =
            ArtifactCache::in_memory_with_budget(CacheBudget::default().with_memory_bytes(cap));
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let keys: Vec<CacheKey> =
            (0..3).map(|s| CacheKey::new("mvq", &weight(), &spec, s).unwrap()).collect();
        cache.put(&keys[0], &a).unwrap();
        cache.put(&keys[1], &a).unwrap();
        assert_eq!(cache.len(), 2);
        // touch key 0 so key 1 becomes the LRU victim
        assert!(cache.get(&keys[0]).unwrap().is_some());
        cache.put(&keys[2], &a).unwrap();
        assert!(cache.memory_bytes() <= cap, "budget exceeded");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().memory_evictions, 1);
        assert!(cache.get(&keys[0]).unwrap().is_some(), "recently used entry was evicted");
        assert!(cache.get(&keys[1]).unwrap().is_none(), "LRU entry survived");
        assert!(cache.get(&keys[2]).unwrap().is_some());
    }

    #[test]
    fn oversized_blob_is_evicted_immediately() {
        let a = artifact("mvq");
        let cap = a.to_bytes().len() as u64 - 1;
        let cache =
            ArtifactCache::in_memory_with_budget(CacheBudget::default().with_memory_bytes(cap));
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let key = CacheKey::new("mvq", &weight(), &spec, 0).unwrap();
        cache.put(&key, &a).unwrap();
        assert_eq!(cache.memory_bytes(), 0, "a blob larger than the budget must not stay");
        assert!(cache.get(&key).unwrap().is_none());
    }

    #[test]
    fn memory_hits_refresh_the_disk_lru_stamp() {
        // a key served from memory must not keep a stale disk stamp, or
        // the hottest blob would be the first one deleted under a disk
        // budget (LRU inversion)
        let dir = std::env::temp_dir().join(format!("mvq-store-bump-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = artifact("mvq");
        let blob_len = a.to_bytes().len() as u64;
        let budget = CacheBudget::default().with_disk_bytes(2 * blob_len + blob_len / 2);
        let cache = ArtifactCache::with_dir_and_budget(&dir, budget).unwrap();
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let keys: Vec<CacheKey> =
            (0..3).map(|s| CacheKey::new("mvq", &weight(), &spec, s).unwrap()).collect();
        cache.put(&keys[0], &a).unwrap();
        cache.put(&keys[1], &a).unwrap();
        // memory hit on key 0: its disk copy becomes the most recent
        assert!(cache.get(&keys[0]).unwrap().is_some());
        cache.put(&keys[2], &a).unwrap();
        assert!(dir.join(keys[0].blob_name()).exists(), "hot blob was the eviction victim");
        assert!(!dir.join(keys[1].blob_name()).exists(), "stale blob survived");
        assert_eq!(cache.stats().disk_evictions, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_scan_removes_orphaned_tmp_files() {
        // an interrupted put strands `<blob>.mvqa.tmp`; the scan must
        // delete it (unaddressable, outside the budget) and leave foreign
        // files alone
        let dir = std::env::temp_dir().join(format!("mvq-store-tmp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("stranded.mvqa.tmp"), b"partial").unwrap();
        std::fs::write(dir.join("notes.txt"), b"keep me").unwrap();
        let cache = ArtifactCache::with_dir(&dir).unwrap();
        assert!(!dir.join("stranded.mvqa.tmp").exists(), "tmp orphan survived the scan");
        assert!(dir.join("notes.txt").exists(), "foreign file was deleted");
        assert_eq!(cache.disk_len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_report_occupancy_gauges() {
        let cache = ArtifactCache::in_memory();
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let key = CacheKey::new("mvq", &weight(), &spec, 0).unwrap();
        let a = artifact("mvq");
        cache.put(&key, &a).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.memory_len, 1);
        assert_eq!(stats.memory_bytes, a.to_bytes().len() as u64);
        assert_eq!(stats.disk_len, 0);
        assert_eq!(stats.disk_bytes, 0);
    }

    #[test]
    fn cache_key_resolves_aliases() {
        let w = weight();
        let spec = PipelineSpec::default();
        let a = CacheKey::new("vq", &w, &spec, 0).unwrap();
        let b = CacheKey::new("vq-a", &w, &spec, 0).unwrap();
        assert_eq!(a, b);
        assert!(CacheKey::new("vqgan", &w, &spec, 0).is_err());
    }
}
