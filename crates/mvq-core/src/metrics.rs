//! Storage-cost and compression-ratio accounting (paper Eq. 7).
//!
//! `Comp.Ratio = NG·d·b_f / (b_a + b_m + b_c)` where
//! `b_a = ⌈log2 k⌉·NG` (assignments),
//! `b_m = NG·(d/M)·⌈log2 C(M,N)⌉` (LUT-encoded masks),
//! `b_c = k·d·q_c` (the codebook itself).

use crate::codebook::Codebook;
use crate::error::MvqError;
use crate::mask_lut::MaskLut;

/// Bit width of the uncompressed weights (`b_f`); the paper compares
/// against fp32 storage.
pub const FULL_PRECISION_BITS: u64 = 32;

/// Itemized storage of a compressed weight block, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageBreakdown {
    /// Uncompressed cost: `NG · d · b_f`.
    pub original_bits: u64,
    /// Assignment indices: `⌈log2 k⌉ · NG`.
    pub assignment_bits: u64,
    /// LUT-encoded masks: `NG · (d/M) · ⌈log2 C(M,N)⌉` (0 when no mask is
    /// stored, i.e. conventional VQ).
    pub mask_bits: u64,
    /// Codebook: `k · d · q_c`.
    pub codebook_bits: u64,
}

impl StorageBreakdown {
    /// Total compressed bits.
    pub fn compressed_bits(&self) -> u64 {
        self.assignment_bits + self.mask_bits + self.codebook_bits
    }

    /// The compression ratio of Eq. 7.
    pub fn ratio(&self) -> f64 {
        self.original_bits as f64 / self.compressed_bits().max(1) as f64
    }

    /// Average compressed bits per weight.
    pub fn bits_per_weight(&self) -> f64 {
        self.compressed_bits() as f64 * FULL_PRECISION_BITS as f64 / self.original_bits as f64
    }

    /// Merges two breakdowns (e.g. across layers of a model).
    pub fn merge(&self, other: &StorageBreakdown) -> StorageBreakdown {
        StorageBreakdown {
            original_bits: self.original_bits + other.original_bits,
            assignment_bits: self.assignment_bits + other.assignment_bits,
            mask_bits: self.mask_bits + other.mask_bits,
            codebook_bits: self.codebook_bits + other.codebook_bits,
        }
    }
}

/// Storage of an MVQ-compressed block of `ng` subvectors with codebook
/// `codebook` and N:M mask configuration `keep_n : m`.
///
/// # Errors
///
/// Propagates LUT-construction errors for degenerate N:M pairs.
pub fn mvq_compression_ratio(
    ng: usize,
    codebook: &Codebook,
    keep_n: usize,
    m: usize,
) -> Result<StorageBreakdown, MvqError> {
    let d = codebook.d();
    let lut = MaskLut::new(keep_n, m)?;
    let groups_per_subvector = (d / m) as u64;
    Ok(StorageBreakdown {
        original_bits: (ng * d) as u64 * FULL_PRECISION_BITS,
        assignment_bits: codebook.index_bits() as u64 * ng as u64,
        mask_bits: ng as u64 * groups_per_subvector * lut.index_bits() as u64,
        codebook_bits: codebook.storage_bits(),
    })
}

/// Storage of a conventional (maskless) VQ block — baselines A/B, PQF, BGD.
pub fn vq_compression_ratio(ng: usize, codebook: &Codebook) -> StorageBreakdown {
    StorageBreakdown {
        original_bits: (ng * codebook.d()) as u64 * FULL_PRECISION_BITS,
        assignment_bits: codebook.index_bits() as u64 * ng as u64,
        mask_bits: 0,
        codebook_bits: codebook.storage_bits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_tensor::Tensor;

    fn cb(k: usize, d: usize, bits: Option<u32>) -> Codebook {
        let mut c = Codebook::new(Tensor::full(vec![k, d], 0.5)).unwrap();
        if let Some(b) = bits {
            c.quantize(b).unwrap();
        }
        c
    }

    #[test]
    fn paper_configuration_reaches_about_22x() {
        // k=512, d=16, 4:16, int8 codebook, NG large enough that the
        // codebook amortizes: the paper operates at ~22-25x.
        let codebook = cb(512, 16, Some(8));
        let bd = mvq_compression_ratio(700_000, &codebook, 4, 16).unwrap();
        let r = bd.ratio();
        assert!((20.0..27.0).contains(&r), "ratio {r}");
    }

    #[test]
    fn assignment_and_mask_bits_formulas() {
        let codebook = cb(512, 16, Some(8));
        let bd = mvq_compression_ratio(1000, &codebook, 4, 16).unwrap();
        assert_eq!(bd.assignment_bits, 9 * 1000);
        // one 16-wide group per subvector, 11 bits each
        assert_eq!(bd.mask_bits, 1000 * 11);
        assert_eq!(bd.codebook_bits, 512 * 16 * 8);
        assert_eq!(bd.original_bits, 1000 * 16 * 32);
    }

    #[test]
    fn maskless_vq_has_no_mask_bits() {
        let codebook = cb(1024, 8, Some(8));
        let bd = vq_compression_ratio(2000, &codebook);
        assert_eq!(bd.mask_bits, 0);
        assert_eq!(bd.assignment_bits, 10 * 2000);
        // d=8, k=1024: 10 bits/8 weights = 1.25 b/w + codebook
        assert!(bd.ratio() < 32.0 / 1.25 + 1e-9);
    }

    #[test]
    fn float_codebook_costs_more() {
        let q = vq_compression_ratio(10_000, &cb(256, 8, Some(8)));
        let f = vq_compression_ratio(10_000, &cb(256, 8, None));
        assert!(q.ratio() > f.ratio());
    }

    #[test]
    fn merge_adds_components() {
        let a = mvq_compression_ratio(100, &cb(16, 8, Some(8)), 2, 4).unwrap();
        let b = mvq_compression_ratio(200, &cb(16, 8, Some(8)), 2, 4).unwrap();
        let m = a.merge(&b);
        assert_eq!(m.original_bits, a.original_bits + b.original_bits);
        assert_eq!(m.compressed_bits(), a.compressed_bits() + b.compressed_bits());
    }

    #[test]
    fn bits_per_weight_consistent_with_ratio() {
        let bd = mvq_compression_ratio(5000, &cb(256, 16, Some(8)), 4, 16).unwrap();
        let bpw = bd.bits_per_weight();
        assert!((FULL_PRECISION_BITS as f64 / bd.ratio() - bpw).abs() < 1e-9);
    }
}
