//! The N:M sparsity mask over a subvector matrix.

use mvq_tensor::Tensor;

use crate::error::MvqError;

/// A binary keep/prune mask aligned with a `[NG, d]` subvector matrix.
///
/// Invariant: within every consecutive group of `m` lanes of every
/// subvector, exactly `keep_n` entries are `true` (kept) — the paper's N:M
/// structure with N = `keep_n` kept out of every M = `m` weights
/// ("4:16 pruning" keeps 4 of 16 → 75 % sparsity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NmMask {
    ng: usize,
    d: usize,
    keep_n: usize,
    m: usize,
    bits: Vec<bool>,
}

impl NmMask {
    /// Builds a mask from raw bits, validating the N:M invariant.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] when the dimensions are
    /// inconsistent or any M-group does not keep exactly `keep_n` entries.
    pub fn from_bits(
        ng: usize,
        d: usize,
        keep_n: usize,
        m: usize,
        bits: Vec<bool>,
    ) -> Result<NmMask, MvqError> {
        validate_nm(d, keep_n, m)?;
        if bits.len() != ng * d {
            return Err(MvqError::InvalidConfig(format!(
                "mask bits {} != ng*d = {}",
                bits.len(),
                ng * d
            )));
        }
        for row in 0..ng {
            for g in 0..d / m {
                let start = row * d + g * m;
                let kept = bits[start..start + m].iter().filter(|&&b| b).count();
                if kept != keep_n {
                    return Err(MvqError::InvalidConfig(format!(
                        "subvector {row} group {g} keeps {kept}, expected {keep_n}"
                    )));
                }
            }
        }
        Ok(NmMask { ng, d, keep_n, m, bits })
    }

    /// Number of subvectors.
    pub fn ng(&self) -> usize {
        self.ng
    }

    /// Subvector length.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Kept entries per M-group (the paper's N).
    pub fn keep_n(&self) -> usize {
        self.keep_n
    }

    /// Group size (the paper's M).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Raw bits, row-major `[NG, d]`.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The mask row for subvector `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ng`.
    pub fn row(&self, j: usize) -> &[bool] {
        &self.bits[j * self.d..(j + 1) * self.d]
    }

    /// Fraction of pruned weights: `1 - N/M`.
    pub fn sparsity(&self) -> f32 {
        1.0 - self.keep_n as f32 / self.m as f32
    }

    /// Number of kept lanes per subvector: `Q = N/M × d` — the PE count of
    /// the paper's sparse tile (§5.3).
    pub fn kept_per_subvector(&self) -> usize {
        self.keep_n * self.d / self.m
    }

    /// The mask as a 0.0/1.0 tensor of dims `[NG, d]`.
    pub fn to_tensor(&self) -> Tensor {
        let data = self.bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        Tensor::from_vec(vec![self.ng, self.d], data).expect("bits sized ng*d")
    }

    /// Applies the mask to a same-shaped matrix (zeroes pruned lanes).
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::IncompatibleShape`] when dims differ.
    pub fn apply(&self, matrix: &Tensor) -> Result<Tensor, MvqError> {
        if matrix.dims() != [self.ng, self.d] {
            return Err(MvqError::IncompatibleShape {
                dims: matrix.dims().to_vec(),
                detail: format!("mask is [{}, {}]", self.ng, self.d),
            });
        }
        let data =
            matrix.data().iter().zip(&self.bits).map(|(&v, &b)| if b { v } else { 0.0 }).collect();
        Ok(Tensor::from_vec(vec![self.ng, self.d], data)?)
    }
}

pub(crate) fn validate_nm(d: usize, keep_n: usize, m: usize) -> Result<(), MvqError> {
    if m == 0 || keep_n == 0 {
        return Err(MvqError::InvalidConfig("N and M must be positive".into()));
    }
    if keep_n > m {
        return Err(MvqError::InvalidConfig(format!("N ({keep_n}) must be <= M ({m})")));
    }
    if !d.is_multiple_of(m) {
        return Err(MvqError::InvalidConfig(format!("d ({d}) must be a multiple of M ({m})")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_2of4() -> NmMask {
        // two subvectors of d=4, 2:4 keep pattern
        NmMask::from_bits(2, 4, 2, 4, vec![true, true, false, false, false, true, true, false])
            .unwrap()
    }

    #[test]
    fn accessors_and_sparsity() {
        let m = mask_2of4();
        assert_eq!(m.ng(), 2);
        assert_eq!(m.d(), 4);
        assert_eq!(m.keep_n(), 2);
        assert_eq!(m.m(), 4);
        assert_eq!(m.sparsity(), 0.5);
        assert_eq!(m.kept_per_subvector(), 2);
        assert_eq!(m.row(1), &[false, true, true, false]);
    }

    #[test]
    fn invariant_enforced() {
        // group keeps 3, not 2
        let bad = NmMask::from_bits(1, 4, 2, 4, vec![true, true, true, false]);
        assert!(bad.is_err());
        // wrong length
        let bad = NmMask::from_bits(2, 4, 2, 4, vec![true; 4]);
        assert!(bad.is_err());
        // d not multiple of m
        let bad = NmMask::from_bits(1, 6, 2, 4, vec![true; 6]);
        assert!(bad.is_err());
        // n > m
        let bad = NmMask::from_bits(1, 4, 5, 4, vec![true; 4]);
        assert!(bad.is_err());
    }

    #[test]
    fn apply_zeroes_pruned() {
        let m = mask_2of4();
        let x = Tensor::from_vec(vec![2, 4], (1..=8).map(|v| v as f32).collect()).unwrap();
        let y = m.apply(&x).unwrap();
        assert_eq!(y.data(), &[1.0, 2.0, 0.0, 0.0, 0.0, 6.0, 7.0, 0.0]);
        assert!(m.apply(&Tensor::zeros(vec![3, 4])).is_err());
    }

    #[test]
    fn tensor_form_matches_bits() {
        let m = mask_2of4();
        let t = m.to_tensor();
        assert_eq!(t.dims(), &[2, 4]);
        assert_eq!(t.sum(), 4.0);
    }

    #[test]
    fn multiple_groups_per_subvector() {
        // d=8, M=4: two groups per subvector
        let bits = vec![true, false, false, true, /* group 2 */ false, true, true, false];
        let m = NmMask::from_bits(1, 8, 2, 4, bits).unwrap();
        assert_eq!(m.kept_per_subvector(), 4);
    }
}
