//! Blob-file I/O for the disk tier: atomic persists, deletes,
//! quarantine, and the restart directory scan.
//!
//! Every function here is a free function over a directory path — none
//! takes a shard guard — so all disk I/O happens outside the cache's
//! critical sections by construction (the lock-scope lint keeps the
//! call sites honest).

use std::path::Path;

use crate::error::MvqError;

/// Suffix a corrupt blob's unique quarantine name ends in. The restart
/// scan skips quarantined files (they no longer end in `.mvqa`), so a
/// poisoned blob stops counting toward the disk budget and stops being
/// re-read, but stays on disk for post-mortem inspection.
pub(super) const QUARANTINE_SUFFIX: &str = ".corrupt";

/// Monotonic per-process counter making concurrent tmp names unique.
static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Atomically persists `bytes` as `dir/name`: writes to a uniquely
/// named `<name>.<pid>-<n>.mvqa.tmp` sibling, fsyncs it, then renames
/// over the final path. Two racing puts of the same key each write
/// their own tmp file, so the published blob is always one writer's
/// complete bytes — never an interleaving — and a crash strands only
/// tmp files, which the restart scan deletes.
///
/// The `sync_all` before the rename is load-bearing: without it, a
/// crash *after* the rename could publish a truncated or empty blob
/// under the final `.mvqa` name (the rename is a metadata operation
/// and may hit stable storage before the data blocks do), which would
/// then cost a quarantine cycle on every restart that reads it.
pub(super) fn persist_blob(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), MvqError> {
    let path = dir.join(name);
    let n = TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = dir.join(format!("{name}.{}-{n}.mvqa.tmp", std::process::id()));
    let write_synced = || -> std::io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut file, bytes)?;
        // flush data to stable storage *before* the rename publishes the
        // name; see the doc comment above
        file.sync_all()?;
        std::fs::rename(&tmp, &path)
    };
    write_synced()
        .map_err(|e| MvqError::Codec(format!("cannot persist blob {}: {e}", path.display())))
}

/// Reads `dir/name`, mapping a missing file to `None`.
pub(super) fn load_blob(dir: &Path, name: &str) -> Result<Option<Vec<u8>>, MvqError> {
    let path = dir.join(name);
    match std::fs::read(&path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(MvqError::Codec(format!("cannot read blob {}: {e}", path.display()))),
    }
}

/// Deletes `dir/name`, tolerating a file already gone.
pub(super) fn delete_blob(dir: &Path, name: &str) -> Result<(), MvqError> {
    match std::fs::remove_file(dir.join(name)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(MvqError::Codec(format!("cannot evict blob {name}: {e}"))),
    }
}

/// Moves a corrupt blob out of the addressable namespace by renaming it
/// to a uniquely named `<name>.<pid>-<n>.corrupt` sibling (pid +
/// counter, like tmp names — a fixed `.corrupt` name would let a second
/// corruption of the same key silently clobber the first quarantined
/// file, destroying post-mortem evidence); falls back to deleting the
/// blob when the rename fails (a blob that can be neither quarantined
/// nor removed would poison every future lookup).
pub(super) fn quarantine_blob(dir: &Path, name: &str) -> Result<(), MvqError> {
    let path = dir.join(name);
    let n = TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let quarantined = dir.join(format!("{name}.{}-{n}{QUARANTINE_SUFFIX}", std::process::id()));
    match std::fs::rename(&path, &quarantined) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(rename_err) => match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(remove_err) => Err(MvqError::Codec(format!(
                "cannot quarantine corrupt blob {name}: rename failed ({rename_err}), \
                 remove failed ({remove_err})"
            ))),
        },
    }
}

/// What [`scan_dir`] found: the blob list in replay order, plus how many
/// entries needed the mtime fallback (surfaced in
/// [`super::CacheStats::mtime_fallbacks`]).
pub(super) struct ScanReport {
    /// `(name, len)` pairs sorted least recently written first
    /// (modification time, file name as a deterministic tie-break), the
    /// order the restart admission replays them in.
    pub(super) blobs: Vec<(String, u64)>,
    /// Blobs whose mtime could not be read and were ordered as if written
    /// at scan time instead.
    pub(super) mtime_fallbacks: u64,
}

/// Scans `dir` for blob files, deleting stranded `.mvqa.tmp` files from
/// interrupted puts (unaddressable, and they would leak bytes outside
/// the budget) and skipping foreign content — including `.corrupt`
/// quarantined blobs.
pub(super) fn scan_dir(dir: &Path) -> Result<ScanReport, MvqError> {
    scan_dir_with(dir, |_, meta| meta.modified())
}

/// [`scan_dir`] with the per-blob mtime read injectable, so tests can
/// simulate filesystems whose timestamps are unreadable.
///
/// A blob whose mtime cannot be read is ordered at the scan-time `now` —
/// the *newest*, most conservative position. The old
/// `unwrap_or(UNIX_EPOCH)` fallback put it at the globally stalest
/// position instead, so restart pruning under a disk budget evicted
/// exactly the blobs it knew least about, regardless of their real age.
/// One `now` is captured for the whole scan (not per blob) so fallback
/// entries still order deterministically among themselves by name.
pub(super) fn scan_dir_with(
    dir: &Path,
    mtime: impl Fn(&str, &std::fs::Metadata) -> std::io::Result<std::time::SystemTime>,
) -> Result<ScanReport, MvqError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| MvqError::Codec(format!("cannot scan cache dir {}: {e}", dir.display())))?;
    let now = std::time::SystemTime::now();
    let mut fallbacks = 0u64;
    let mut found: Vec<(String, u64, std::time::SystemTime)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| {
            MvqError::Codec(format!("cannot scan cache dir {}: {e}", dir.display()))
        })?;
        // a non-UTF-8 file name can never have been written by this
        // cache (blob names are ASCII), and admitting it under a lossy
        // name would ledger bytes that `load_blob`/`delete_blob` can
        // never address — a permanent budget leak; skip it as foreign
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        if name.ends_with(".mvqa.tmp") {
            match std::fs::remove_file(entry.path()) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(MvqError::Codec(format!(
                        "cannot remove stale tmp blob {name}: {e}"
                    )));
                }
            }
            continue;
        }
        if !name.ends_with(".mvqa") {
            continue; // foreign content (and quarantined blobs) left alone
        }
        let meta = entry
            .metadata()
            .map_err(|e| MvqError::Codec(format!("cannot stat cache blob {name}: {e}")))?;
        if !meta.is_file() {
            continue;
        }
        let mtime = mtime(&name, &meta).unwrap_or_else(|_| {
            fallbacks += 1;
            now
        });
        found.push((name, meta.len(), mtime));
    }
    found.sort_by(|a, b| (a.2, &a.0).cmp(&(b.2, &b.0)));
    Ok(ScanReport {
        blobs: found.into_iter().map(|(name, len, _)| (name, len)).collect(),
        mtime_fallbacks: fallbacks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mvq-ledger-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn persisted_blob_round_trips_after_a_simulated_short_write() {
        // regression (durability): a crash mid-write used to be able to
        // publish a truncated blob under the final name; with the
        // write-tmp → fsync → rename sequence, an interrupted put leaves
        // only an unaddressable tmp file, and a completed put always
        // round-trips its full bytes
        let dir = tmp_dir("shortwrite");
        let payload = b"full blob bytes that must survive".to_vec();
        // simulate the crash: a short write stranded in a tmp sibling,
        // never renamed — exactly what an interrupted persist leaves
        std::fs::write(dir.join("key.mvqa.1-0.mvqa.tmp"), &payload[..5]).unwrap();
        assert_eq!(load_blob(&dir, "key.mvqa").unwrap(), None, "short write became addressable");
        // the completed persist publishes the full bytes
        persist_blob(&dir, "key.mvqa", &payload).unwrap();
        assert_eq!(load_blob(&dir, "key.mvqa").unwrap(), Some(payload.clone()));
        // the restart scan ledgers the published blob at its full length
        // and deletes the stranded tmp file
        let scanned = scan_dir(&dir).unwrap();
        assert_eq!(scanned.blobs, vec![("key.mvqa".to_string(), payload.len() as u64)]);
        assert_eq!(scanned.mtime_fallbacks, 0, "healthy blobs need no mtime fallback");
        assert!(!dir.join("key.mvqa.1-0.mvqa.tmp").exists(), "tmp orphan survived");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_quarantines_of_one_key_preserve_both_files() {
        // regression (evidence loss): the fixed `<name>.corrupt` target
        // let a second corruption of the same key silently clobber the
        // first quarantined file
        let dir = tmp_dir("quarantine");
        persist_blob(&dir, "key.mvqa", b"first corruption").unwrap();
        quarantine_blob(&dir, "key.mvqa").unwrap();
        persist_blob(&dir, "key.mvqa", b"second corruption").unwrap();
        quarantine_blob(&dir, "key.mvqa").unwrap();
        let quarantined: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(QUARANTINE_SUFFIX))
            .collect();
        assert_eq!(quarantined.len(), 2, "a quarantine clobbered its predecessor: {quarantined:?}");
        // neither is addressable or scanned back in
        assert_eq!(load_blob(&dir, "key.mvqa").unwrap(), None);
        assert!(scan_dir(&dir).unwrap().blobs.is_empty(), "quarantined file was scanned back in");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_mtime_orders_the_blob_newest_not_stalest() {
        // regression (satellite bugfix): `modified().unwrap_or(UNIX_EPOCH)`
        // made any blob with an unreadable mtime the globally *stalest*
        // entry, so restart pruning under a disk budget evicted it first
        // regardless of its real age. The fallback is now the scan-time
        // `now` — the newest, most conservative position — and counted.
        let dir = tmp_dir("mtimefail");
        persist_blob(&dir, "aaa-old.mvqa", b"genuinely old").unwrap();
        persist_blob(&dir, "bbb-unknowable.mvqa", b"mtime unreadable").unwrap();
        persist_blob(&dir, "ccc-new.mvqa", b"genuinely new").unwrap();
        // age the readable blobs so their order is unambiguous
        let base = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_000_000);
        std::fs::File::open(dir.join("aaa-old.mvqa")).unwrap().set_modified(base).unwrap();
        std::fs::File::open(dir.join("ccc-new.mvqa"))
            .unwrap()
            .set_modified(base + std::time::Duration::from_secs(60))
            .unwrap();
        let report = scan_dir_with(&dir, |name, meta| {
            if name.starts_with("bbb") {
                Err(std::io::Error::other("EIO: mtime unreadable"))
            } else {
                meta.modified()
            }
        })
        .unwrap();
        let names: Vec<&str> = report.blobs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["aaa-old.mvqa", "ccc-new.mvqa", "bbb-unknowable.mvqa"],
            "the unknowable blob must sort newest (last to be pruned), not stalest"
        );
        assert_eq!(report.mtime_fallbacks, 1, "the fallback must be counted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_mtime_blobs_scan_in_name_order() {
        // regression (satellite bugfix): under mtime ties (coarse-mtime
        // filesystems make them common) the replay order — and therefore
        // the restart-prune victim set — depended on directory iteration
        // order; ties now break by blob name so two identical restarts
        // prune identically
        let dir = tmp_dir("mtimetie");
        for name in ["zz.mvqa", "aa.mvqa", "mm.mvqa"] {
            persist_blob(&dir, name, b"tied").unwrap();
        }
        let tied = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(2_000_000);
        for name in ["zz.mvqa", "aa.mvqa", "mm.mvqa"] {
            std::fs::File::open(dir.join(name)).unwrap().set_modified(tied).unwrap();
        }
        let names: Vec<String> =
            scan_dir(&dir).unwrap().blobs.into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["aa.mvqa", "mm.mvqa", "zz.mvqa"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn scan_skips_non_utf8_names_instead_of_ledgering_lossy_ones() {
        // regression (restart scan): `to_string_lossy` admitted non-UTF-8
        // entries under a replacement-character name that load/delete
        // could never address, leaking their bytes from the budget forever
        use std::os::unix::ffi::OsStrExt;
        let dir = tmp_dir("nonutf8");
        persist_blob(&dir, "good.mvqa", b"addressable").unwrap();
        let evil = std::ffi::OsStr::from_bytes(b"evil\xFF.mvqa");
        std::fs::write(dir.join(evil), b"unaddressable").unwrap();
        let scanned = scan_dir(&dir).unwrap();
        assert_eq!(
            scanned.blobs,
            vec![("good.mvqa".to_string(), "addressable".len() as u64)],
            "non-UTF-8 entry was ledgered"
        );
        assert!(dir.join(evil).exists(), "foreign non-UTF-8 file was deleted");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
