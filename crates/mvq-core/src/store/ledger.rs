//! Blob-file I/O for the disk tier: atomic persists, deletes,
//! quarantine, and the restart directory scan.
//!
//! Every function here is a free function over a directory path — none
//! takes a shard guard — so all disk I/O happens outside the cache's
//! critical sections by construction (the lock-scope lint keeps the
//! call sites honest).

use std::path::Path;

use crate::error::MvqError;

/// Suffix a corrupt blob is renamed to when quarantined. The restart
/// scan skips quarantined files (they no longer end in `.mvqa`), so a
/// poisoned blob stops counting toward the disk budget and stops being
/// re-read, but stays on disk for post-mortem inspection.
pub(super) const QUARANTINE_SUFFIX: &str = ".corrupt";

/// Monotonic per-process counter making concurrent tmp names unique.
static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Atomically persists `bytes` as `dir/name`: writes to a uniquely
/// named `<name>.<pid>-<n>.mvqa.tmp` sibling, then renames over the
/// final path. Two racing puts of the same key each write their own tmp
/// file, so the published blob is always one writer's complete bytes —
/// never an interleaving — and a crash strands only tmp files, which
/// the restart scan deletes.
pub(super) fn persist_blob(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), MvqError> {
    let path = dir.join(name);
    let n = TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = dir.join(format!("{name}.{}-{n}.mvqa.tmp", std::process::id()));
    std::fs::write(&tmp, bytes)
        .and_then(|()| std::fs::rename(&tmp, &path))
        .map_err(|e| MvqError::Codec(format!("cannot persist blob {}: {e}", path.display())))
}

/// Reads `dir/name`, mapping a missing file to `None`.
pub(super) fn load_blob(dir: &Path, name: &str) -> Result<Option<Vec<u8>>, MvqError> {
    let path = dir.join(name);
    match std::fs::read(&path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(MvqError::Codec(format!("cannot read blob {}: {e}", path.display()))),
    }
}

/// Deletes `dir/name`, tolerating a file already gone.
pub(super) fn delete_blob(dir: &Path, name: &str) -> Result<(), MvqError> {
    match std::fs::remove_file(dir.join(name)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(MvqError::Codec(format!("cannot evict blob {name}: {e}"))),
    }
}

/// Moves a corrupt blob out of the addressable namespace by renaming it
/// to `<name>.corrupt`; falls back to deleting it when the rename fails
/// (a blob that can be neither quarantined nor removed would poison
/// every future lookup).
pub(super) fn quarantine_blob(dir: &Path, name: &str) -> Result<(), MvqError> {
    let path = dir.join(name);
    let quarantined = dir.join(format!("{name}{QUARANTINE_SUFFIX}"));
    match std::fs::rename(&path, &quarantined) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(rename_err) => match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(remove_err) => Err(MvqError::Codec(format!(
                "cannot quarantine corrupt blob {name}: rename failed ({rename_err}), \
                 remove failed ({remove_err})"
            ))),
        },
    }
}

/// Scans `dir` for blob files, deleting stranded `.mvqa.tmp` files from
/// interrupted puts (unaddressable, and they would leak bytes outside
/// the budget) and skipping foreign content — including `.corrupt`
/// quarantined blobs. Returns `(name, len)` pairs sorted least recently
/// written first (modification time, file name as a deterministic
/// tie-break), the order the restart admission replays them in.
pub(super) fn scan_dir(dir: &Path) -> Result<Vec<(String, u64)>, MvqError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| MvqError::Codec(format!("cannot scan cache dir {}: {e}", dir.display())))?;
    let mut found: Vec<(String, u64, std::time::SystemTime)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| {
            MvqError::Codec(format!("cannot scan cache dir {}: {e}", dir.display()))
        })?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".mvqa.tmp") {
            match std::fs::remove_file(entry.path()) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(MvqError::Codec(format!(
                        "cannot remove stale tmp blob {name}: {e}"
                    )));
                }
            }
            continue;
        }
        if !name.ends_with(".mvqa") {
            continue; // foreign content (and quarantined blobs) left alone
        }
        let meta = entry
            .metadata()
            .map_err(|e| MvqError::Codec(format!("cannot stat cache blob {name}: {e}")))?;
        if !meta.is_file() {
            continue;
        }
        let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
        found.push((name, meta.len(), mtime));
    }
    found.sort_by(|a, b| (a.2, &a.0).cmp(&(b.2, &b.0)));
    Ok(found.into_iter().map(|(name, len, _)| (name, len)).collect())
}
