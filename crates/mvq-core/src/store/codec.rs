//! The versioned binary codec: framing, checksums, and per-type field
//! layouts for every blob kind.
//!
//! The encoding is hand-rolled (no external deps, consistent with the
//! workspace's vendored-shim policy): a fixed header carrying magic,
//! format version, a kind tag and an FNV-1a payload checksum, followed
//! by a little-endian field layout per variant. Floats are stored as
//! raw bit patterns, so decoding reconstructs values **bit-identically**
//! — `from_bytes(to_bytes(a))` reconstructs 0-ULP equal to `a`.
//!
//! ## Versioning rule
//!
//! [`FORMAT_VERSION`] must be bumped on **any** change to the byte
//! layout, and a decode test for the previous version must be kept (see
//! `tests/roundtrip.rs`). Decoders reject blobs from future versions with
//! a typed [`MvqError::Codec`] instead of misreading them. Enum tags
//! (artifact variants, grouping, kernels) are append-only: existing
//! values are never renumbered.
//!
//! ## Fallible encoding
//!
//! Length fields are fixed-width (a `u8` tensor rank, `u32` string
//! lengths), so encoding is fallible at the [`Persist`] boundary: a
//! value whose lengths do not fit returns [`MvqError::Codec`] instead
//! of silently truncating the field and round-tripping garbage.

use mvq_tensor::Tensor;

use crate::baselines::pqf::PqfCompressed;
use crate::baselines::pvq::PvqResult;
use crate::baselines::vq_plain::DenseVq;
use crate::codebook::{Assignments, Codebook};
use crate::compress::CompressedMatrix;
use crate::error::MvqError;
use crate::mask::NmMask;
use crate::pipeline::{
    canonical_name, grouping_from_tag, grouping_tag, CompressedArtifact, LayerArtifact,
    ModelArtifacts, ScalarQuantized,
};

/// First four bytes of every serialized artifact blob.
pub const MAGIC: [u8; 4] = *b"MVQA";

/// Current serialization format version. Bump on any layout change and
/// keep a decode test for the old version (see module docs).
pub const FORMAT_VERSION: u16 = 1;

/// Header size: magic (4) + version (2) + kind (1) + payload length (8) +
/// payload checksum (8). Public so wire consumers (the `mvq-net`
/// protocol frames messages with this same codec) can size reads and
/// document the layout without restating the arithmetic.
pub const HEADER_LEN: usize = 23;

/// FNV-1a 64-bit — the workspace's stable, dependency-free hash. Used for
/// payload checksums, weight content hashes and spec fingerprints.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Standard FNV-1a offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Folds a little-endian u64 into the state.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

/// Content hash of a weight tensor: dims and the f32 bit patterns, so
/// tensors that differ only by `-0.0` vs `0.0` (or carry different NaN
/// payloads) hash differently — the cache must never alias weights whose
/// compression could diverge.
pub fn weight_hash(weight: &Tensor) -> u64 {
    let mut h = Fnv1a::new();
    h.update(b"mvq.weight.v1");
    h.update_u64(weight.rank() as u64);
    for &d in weight.dims() {
        h.update_u64(d as u64);
    }
    for &v in weight.data() {
        h.update(&v.to_bits().to_le_bytes());
    }
    h.finish()
}

// ---------------------------------------------------------------------
// primitive readers/writers
// ---------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}

/// The `u32` length prefix for a string field, rejecting strings whose
/// byte length the field cannot represent (they would decode as a
/// truncated prefix plus trailing garbage).
fn str_len(s: &str) -> Result<u32, MvqError> {
    u32::try_from(s.len()).map_err(|_| {
        MvqError::Codec(format!(
            "string of {} bytes exceeds the u32 length field of the v{FORMAT_VERSION} layout",
            s.len()
        ))
    })
}

/// The `u8` rank prefix for a dims field, rejecting tensors whose rank
/// the field cannot represent.
fn rank_u8(dims: &[usize]) -> Result<u8, MvqError> {
    u8::try_from(dims.len()).map_err(|_| {
        MvqError::Codec(format!(
            "tensor rank {} exceeds the u8 rank field of the v{FORMAT_VERSION} layout",
            dims.len()
        ))
    })
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), MvqError> {
    put_u32(out, str_len(s)?);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_dims(out: &mut Vec<u8>, dims: &[usize]) -> Result<(), MvqError> {
    put_u8(out, rank_u8(dims)?);
    for &d in dims {
        put_u64(out, d as u64);
    }
    Ok(())
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) -> Result<(), MvqError> {
    put_dims(out, t.dims())?;
    for &v in t.data() {
        put_f32(out, v);
    }
    Ok(())
}

fn put_opt_f32(out: &mut Vec<u8>, v: Option<f32>) {
    match v {
        None => put_u8(out, 0),
        Some(x) => {
            put_u8(out, 1);
            put_f32(out, x);
        }
    }
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => put_u8(out, 0),
        Some(x) => {
            put_u8(out, 1);
            put_u32(out, x);
        }
    }
}

/// Bounds-checked sequential reader over a decoded payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], MvqError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
            MvqError::Codec(format!(
                "payload truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            ))
        })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, MvqError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, MvqError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, MvqError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn usize(&mut self) -> Result<usize, MvqError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| MvqError::Codec(format!("length {v} overflows usize")))
    }

    fn f32(&mut self) -> Result<f32, MvqError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn str(&mut self) -> Result<String, MvqError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| MvqError::Codec("string field is not UTF-8".into()))
    }

    fn dims(&mut self) -> Result<Vec<usize>, MvqError> {
        let rank = self.u8()? as usize;
        let mut dims = Vec::with_capacity(rank);
        let mut numel: u128 = 1;
        for _ in 0..rank {
            let d = self.usize()?;
            numel = numel.saturating_mul(d as u128);
            if numel > u32::MAX as u128 {
                return Err(MvqError::Codec(format!(
                    "tensor of dims {dims:?}×{d} is implausibly large"
                )));
            }
            dims.push(d);
        }
        Ok(dims)
    }

    fn tensor(&mut self) -> Result<Tensor, MvqError> {
        let dims = self.dims()?;
        let numel: usize = dims.iter().product();
        // cap the pre-allocation (same guard as the assignment/permutation
        // readers): a malformed header must fail at the first short read,
        // not abort on a multi-GB reservation
        let mut data = Vec::with_capacity(numel.min(1 << 24));
        for _ in 0..numel {
            data.push(self.f32()?);
        }
        Tensor::from_vec(dims, data).map_err(|e| MvqError::Codec(format!("tensor field: {e}")))
    }

    fn opt_f32(&mut self) -> Result<Option<f32>, MvqError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f32()?)),
            t => Err(MvqError::Codec(format!("bad Option<f32> tag {t}"))),
        }
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, MvqError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            t => Err(MvqError::Codec(format!("bad Option<u32> tag {t}"))),
        }
    }

    fn finish(&self) -> Result<(), MvqError> {
        if self.pos != self.bytes.len() {
            return Err(MvqError::Codec(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// composite field codecs
// ---------------------------------------------------------------------

fn put_codebook(out: &mut Vec<u8>, cb: &Codebook) -> Result<(), MvqError> {
    put_tensor(out, cb.centers())?;
    put_opt_f32(out, cb.scale());
    put_opt_u32(out, cb.bits());
    Ok(())
}

fn read_codebook(r: &mut Reader<'_>) -> Result<Codebook, MvqError> {
    let centers = r.tensor()?;
    let scale = r.opt_f32()?;
    let bits = r.opt_u32()?;
    Codebook::from_raw_parts(centers, scale, bits)
        .map_err(|e| MvqError::Codec(format!("codebook: {e}")))
}

fn put_assignments(out: &mut Vec<u8>, a: &Assignments) {
    put_u64(out, a.len() as u64);
    for &i in a.indices() {
        put_u32(out, i);
    }
}

fn read_assignments(r: &mut Reader<'_>, k: usize) -> Result<Assignments, MvqError> {
    let len = r.usize()?;
    let mut indices = Vec::with_capacity(len.min(1 << 24));
    for _ in 0..len {
        indices.push(r.u32()?);
    }
    Assignments::new(indices, k).map_err(|e| MvqError::Codec(format!("assignments: {e}")))
}

fn put_mask(out: &mut Vec<u8>, mask: &NmMask) {
    put_u64(out, mask.ng() as u64);
    put_u64(out, mask.d() as u64);
    put_u64(out, mask.keep_n() as u64);
    put_u64(out, mask.m() as u64);
    // pack bits LSB-first, 8 per byte
    let bits = mask.bits();
    let mut byte = 0u8;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !bits.len().is_multiple_of(8) {
        out.push(byte);
    }
}

fn read_mask(r: &mut Reader<'_>) -> Result<NmMask, MvqError> {
    let ng = r.usize()?;
    let d = r.usize()?;
    let keep_n = r.usize()?;
    let m = r.usize()?;
    let nbits =
        ng.checked_mul(d).ok_or_else(|| MvqError::Codec("mask dimensions overflow".into()))?;
    let packed = r.take(nbits.div_ceil(8))?;
    let bits: Vec<bool> = (0..nbits).map(|i| packed[i / 8] >> (i % 8) & 1 == 1).collect();
    NmMask::from_bits(ng, d, keep_n, m, bits).map_err(|e| MvqError::Codec(format!("mask: {e}")))
}

fn put_scalar(out: &mut Vec<u8>, s: &ScalarQuantized) -> Result<(), MvqError> {
    put_tensor(out, &s.result.quantized)?;
    put_f32(out, s.result.scale);
    put_u32(out, s.result.bits);
    put_f32(out, s.result.sse);
    Ok(())
}

fn read_scalar(r: &mut Reader<'_>) -> Result<ScalarQuantized, MvqError> {
    let quantized = r.tensor()?;
    let scale = r.f32()?;
    let bits = r.u32()?;
    let sse = r.f32()?;
    if !(2..=16).contains(&bits) {
        return Err(MvqError::Codec(format!("scalar bits {bits} outside 2..=16")));
    }
    Ok(ScalarQuantized { result: PvqResult { quantized, scale, bits, sse } })
}

/// Artifact variant tags (append-only).
const TAG_MASKED: u8 = 0;
const TAG_DENSE: u8 = 1;
const TAG_PERMUTED: u8 = 2;
const TAG_SCALAR: u8 = 3;

fn put_artifact(out: &mut Vec<u8>, artifact: &CompressedArtifact) -> Result<(), MvqError> {
    match artifact {
        CompressedArtifact::Masked(m) => {
            put_u8(out, TAG_MASKED);
            put_codebook(out, m.codebook())?;
            put_mask(out, m.mask());
            put_assignments(out, m.assignments());
            put_dims(out, m.orig_dims())?;
            put_u8(out, grouping_tag(m.grouping()));
            put_opt_f32(out, m.sse());
        }
        CompressedArtifact::Dense(v) => {
            put_u8(out, TAG_DENSE);
            put_codebook(out, v.codebook())?;
            put_assignments(out, v.assignments());
            put_dims(out, v.orig_dims())?;
            put_u8(out, grouping_tag(v.grouping()));
            put_u64(out, v.d() as u64);
            put_f32(out, v.sse);
        }
        CompressedArtifact::Permuted(p) => {
            put_u8(out, TAG_PERMUTED);
            put_codebook(out, p.codebook())?;
            put_assignments(out, p.assignments());
            put_dims(out, p.orig_dims())?;
            put_u8(out, grouping_tag(p.grouping()));
            put_u64(out, p.d() as u64);
            put_f32(out, p.sse);
            put_u64(out, p.permutation().len() as u64);
            for &i in p.permutation() {
                put_u64(out, i as u64);
            }
        }
        CompressedArtifact::Scalar(s) => {
            put_u8(out, TAG_SCALAR);
            put_scalar(out, s)?;
        }
    }
    Ok(())
}

fn read_artifact(r: &mut Reader<'_>) -> Result<CompressedArtifact, MvqError> {
    match r.u8()? {
        TAG_MASKED => {
            let codebook = read_codebook(r)?;
            let mask = read_mask(r)?;
            let assignments = read_assignments(r, codebook.k())?;
            let orig_dims = r.dims()?;
            let grouping = grouping_from_tag(r.u8()?)?;
            let sse = r.opt_f32()?;
            let numel: usize = orig_dims.iter().product();
            if mask.ng() * mask.d() != numel {
                return Err(MvqError::Codec(format!(
                    "mask [{} × {}] does not cover a tensor of dims {orig_dims:?}",
                    mask.ng(),
                    mask.d()
                )));
            }
            let mut cm =
                CompressedMatrix::from_parts(codebook, assignments, mask, orig_dims, grouping)
                    .map_err(|e| MvqError::Codec(format!("masked artifact: {e}")))?;
            if let Some(s) = sse {
                cm = cm.with_sse(s);
            }
            Ok(CompressedArtifact::Masked(cm))
        }
        TAG_DENSE => {
            let codebook = read_codebook(r)?;
            let assignments = read_assignments(r, codebook.k())?;
            let orig_dims = r.dims()?;
            let grouping = grouping_from_tag(r.u8()?)?;
            let d = r.usize()?;
            let sse = r.f32()?;
            DenseVq::from_parts(codebook, assignments, orig_dims, grouping, d, sse)
                .map(CompressedArtifact::Dense)
                .map_err(|e| MvqError::Codec(format!("dense artifact: {e}")))
        }
        TAG_PERMUTED => {
            let codebook = read_codebook(r)?;
            let assignments = read_assignments(r, codebook.k())?;
            let orig_dims = r.dims()?;
            let grouping = grouping_from_tag(r.u8()?)?;
            let d = r.usize()?;
            let sse = r.f32()?;
            let len = r.usize()?;
            let mut permutation = Vec::with_capacity(len.min(1 << 24));
            for _ in 0..len {
                permutation.push(r.usize()?);
            }
            PqfCompressed::from_parts(
                permutation,
                codebook,
                assignments,
                orig_dims,
                grouping,
                d,
                sse,
            )
            .map(CompressedArtifact::Permuted)
            .map_err(|e| MvqError::Codec(format!("permuted artifact: {e}")))
        }
        TAG_SCALAR => Ok(CompressedArtifact::Scalar(read_scalar(r)?)),
        other => Err(MvqError::Codec(format!("unknown artifact variant tag {other}"))),
    }
}

// ---------------------------------------------------------------------
// the Persist trait: header framing shared by all blob kinds
// ---------------------------------------------------------------------

/// Blob kind tags distinguishing the top-level serializable types
/// (append-only, like every tag in this codec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum BlobKind {
    /// A single [`CompressedArtifact`].
    Artifact = 0,
    /// A standalone [`ScalarQuantized`].
    Scalar = 1,
    /// A [`LayerArtifact`] (conv index + artifact).
    Layer = 2,
    /// A whole-model [`ModelArtifacts`].
    Model = 3,
    /// An `mvq-net` wire request (the network protocol frames its
    /// messages with this same codec, so wire blobs and cache blobs
    /// share one format and one validator).
    WireRequest = 4,
    /// An `mvq-net` wire response header.
    WireResponse = 5,
    /// A streamed model's [`ModelIndex`]: per-layer blob references
    /// instead of inline artifacts (the layer blobs themselves are
    /// [`BlobKind::Layer`] under derived keys).
    ModelIndex = 6,
    /// An `mvq-net` live-stats request: a snapshot of the serving
    /// stack's metrics registry and recent completed traces.
    StatsRequest = 7,
    /// An `mvq-net` live-stats response carrying the snapshot.
    StatsResponse = 8,
}

impl BlobKind {
    fn from_tag(tag: u8) -> Result<BlobKind, MvqError> {
        match tag {
            0 => Ok(BlobKind::Artifact),
            1 => Ok(BlobKind::Scalar),
            2 => Ok(BlobKind::Layer),
            3 => Ok(BlobKind::Model),
            4 => Ok(BlobKind::WireRequest),
            5 => Ok(BlobKind::WireResponse),
            6 => Ok(BlobKind::ModelIndex),
            7 => Ok(BlobKind::StatsRequest),
            8 => Ok(BlobKind::StatsResponse),
            other => Err(MvqError::Codec(format!("unknown blob kind tag {other}"))),
        }
    }
}

fn frame(kind: BlobKind, payload: Vec<u8>) -> Vec<u8> {
    let mut h = Fnv1a::new();
    h.update(&payload);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&h.finish().to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validates the header and returns the checksum-verified payload.
fn unframe(kind: BlobKind, bytes: &[u8]) -> Result<&[u8], MvqError> {
    if bytes.len() < HEADER_LEN {
        return Err(MvqError::Codec(format!(
            "blob of {} bytes is shorter than the {HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[0..4] != MAGIC {
        return Err(MvqError::Codec(format!(
            "bad magic {:02x?} (expected {MAGIC:02x?})",
            &bytes[0..4]
        )));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version > FORMAT_VERSION {
        return Err(MvqError::Codec(format!(
            "format version {version} is newer than supported {FORMAT_VERSION}"
        )));
    }
    if version == 0 {
        return Err(MvqError::Codec("format version 0 does not exist".into()));
    }
    let found = BlobKind::from_tag(bytes[6])?;
    if found != kind {
        return Err(MvqError::Codec(format!("blob holds a {found:?}, expected a {kind:?}")));
    }
    let payload_len = u64::from_le_bytes(bytes[7..15].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != payload_len {
        return Err(MvqError::Codec(format!(
            "payload is {} bytes but the header promises {payload_len}",
            payload.len()
        )));
    }
    let checksum = u64::from_le_bytes(bytes[15..23].try_into().expect("8 bytes"));
    let mut h = Fnv1a::new();
    h.update(payload);
    if h.finish() != checksum {
        return Err(MvqError::Codec("payload checksum mismatch (corrupt blob)".into()));
    }
    Ok(payload)
}

/// Validates a framed blob's header and payload checksum **without
/// decoding the payload** — the admission check the zero-copy cache runs
/// once per blob, so hits can hand out shared bytes with no per-read
/// verification.
///
/// # Errors
///
/// Returns [`MvqError::Codec`] for truncated blobs, wrong magic or kind,
/// unsupported future format versions, and checksum mismatches.
pub fn validate_frame(kind: BlobKind, bytes: &[u8]) -> Result<(), MvqError> {
    unframe(kind, bytes).map(|_| ())
}

/// Frames a raw payload under `kind`: magic, format version, kind tag,
/// payload length, and FNV-1a payload checksum, exactly as the
/// [`Persist`] impls frame their encodings. This is the building block
/// for types whose payloads live outside this crate (the `mvq-net`
/// wire messages): they encode their own payload bytes and reuse the
/// store's framing, so one codec validates both cache and wire blobs.
pub fn frame_blob(kind: BlobKind, payload: Vec<u8>) -> Vec<u8> {
    frame(kind, payload)
}

/// Inverse of [`frame_blob`]: validates the header (magic, supported
/// version, expected `kind`, length, checksum) and returns the verified
/// payload slice.
///
/// # Errors
///
/// Returns [`MvqError::Codec`] for truncated blobs, wrong magic or kind,
/// unsupported future format versions, and checksum mismatches.
pub fn unframe_blob(kind: BlobKind, bytes: &[u8]) -> Result<&[u8], MvqError> {
    unframe(kind, bytes)
}

/// Decodes a verified payload, rejecting trailing bytes.
fn decode_payload<T>(
    payload: &[u8],
    read: impl FnOnce(&mut Reader<'_>) -> Result<T, MvqError>,
) -> Result<T, MvqError> {
    let mut r = Reader::new(payload);
    let value = read(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// Versioned, self-describing binary serialization.
///
/// `from_bytes(to_bytes(x))` reconstructs `x` with bit-identical floats;
/// see the module docs for the layout and versioning rule.
pub trait Persist: Sized {
    /// The blob kind tag this type serializes under.
    const KIND: BlobKind;

    /// Serializes to a framed, checksummed blob.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when a length does not fit its
    /// fixed-width field (a rank-256 tensor, a > 4 GiB string) — the
    /// v1 layout cannot represent such values, and truncating the
    /// length prefix would round-trip garbage.
    fn to_bytes(&self) -> Result<Vec<u8>, MvqError>;

    /// Deserializes a framed blob.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] for truncated/corrupt blobs, wrong
    /// magic or kind, unsupported future format versions, and any payload
    /// that fails the type's construction-time validation.
    fn from_bytes(bytes: &[u8]) -> Result<Self, MvqError>;
}

impl Persist for CompressedArtifact {
    const KIND: BlobKind = BlobKind::Artifact;

    fn to_bytes(&self) -> Result<Vec<u8>, MvqError> {
        let mut payload = Vec::new();
        put_artifact(&mut payload, self)?;
        Ok(frame(Self::KIND, payload))
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, MvqError> {
        decode_payload(unframe(Self::KIND, bytes)?, read_artifact)
    }
}

impl Persist for ScalarQuantized {
    const KIND: BlobKind = BlobKind::Scalar;

    fn to_bytes(&self) -> Result<Vec<u8>, MvqError> {
        let mut payload = Vec::new();
        put_scalar(&mut payload, self)?;
        Ok(frame(Self::KIND, payload))
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, MvqError> {
        decode_payload(unframe(Self::KIND, bytes)?, read_scalar)
    }
}

impl Persist for LayerArtifact {
    const KIND: BlobKind = BlobKind::Layer;

    fn to_bytes(&self) -> Result<Vec<u8>, MvqError> {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.conv_index as u64);
        put_artifact(&mut payload, &self.artifact)?;
        Ok(frame(Self::KIND, payload))
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, MvqError> {
        decode_payload(unframe(Self::KIND, bytes)?, |r| {
            let conv_index = r.usize()?;
            let artifact = read_artifact(r)?;
            Ok(LayerArtifact { conv_index, artifact })
        })
    }
}

impl Persist for ModelArtifacts {
    const KIND: BlobKind = BlobKind::Model;

    fn to_bytes(&self) -> Result<Vec<u8>, MvqError> {
        let mut payload = Vec::new();
        put_str(&mut payload, self.algorithm)?;
        put_u64(&mut payload, self.layers.len() as u64);
        for layer in &self.layers {
            put_u64(&mut payload, layer.conv_index as u64);
            put_artifact(&mut payload, &layer.artifact)?;
        }
        put_u64(&mut payload, self.skipped.len() as u64);
        for &idx in &self.skipped {
            put_u64(&mut payload, idx as u64);
        }
        Ok(frame(Self::KIND, payload))
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, MvqError> {
        decode_payload(unframe(Self::KIND, bytes)?, |r| {
            let algo = r.str()?;
            let algorithm = canonical_name(&algo)
                .ok_or_else(|| MvqError::Codec(format!("unknown algorithm `{algo}`")))?;
            let n_layers = r.usize()?;
            let mut layers = Vec::with_capacity(n_layers.min(1 << 16));
            for _ in 0..n_layers {
                let conv_index = r.usize()?;
                let artifact = read_artifact(r)?;
                layers.push(LayerArtifact { conv_index, artifact });
            }
            let n_skipped = r.usize()?;
            let mut skipped = Vec::with_capacity(n_skipped.min(1 << 16));
            for _ in 0..n_skipped {
                skipped.push(r.usize()?);
            }
            Ok(ModelArtifacts { algorithm, layers, skipped })
        })
    }
}

/// The durable index a streamed model compression leaves under its model
/// key ([`BlobKind::ModelIndex`]): the identity fields of the model's
/// [`super::CacheKey`] plus the conv indices whose layers were compressed
/// or skipped. The per-layer artifacts are **not** inline — each lives in
/// its own [`BlobKind::Layer`] blob under the derived
/// [`super::CacheKey::layer_key`], so a model's working set on disk and
/// in memory is bounded per layer, not per model.
///
/// The key fields are stored redundantly (the loader already knows the
/// key it fetched by) so an index blob is self-describing and the loader
/// can verify it answers for the key it was addressed under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelIndex {
    /// Canonical registry algorithm name.
    pub algorithm: &'static str,
    /// [`super::CacheKey::weight_hash`] of the model key (the streamed
    /// model hash, not a single tensor's).
    pub weight_hash: u64,
    /// [`super::CacheKey::spec_fingerprint`] of the model key.
    pub spec_fingerprint: u64,
    /// [`super::CacheKey::kernel`] of the model key.
    pub kernel: crate::kernels::KernelStrategy,
    /// [`super::CacheKey::seed`] of the model key.
    pub seed: u64,
    /// Conv indices with a compressed layer blob, ascending.
    pub layers: Vec<usize>,
    /// Conv indices skipped (depthwise / incompatible / all-zero),
    /// ascending.
    pub skipped: Vec<usize>,
}

impl Persist for ModelIndex {
    const KIND: BlobKind = BlobKind::ModelIndex;

    fn to_bytes(&self) -> Result<Vec<u8>, MvqError> {
        let mut payload = Vec::new();
        put_str(&mut payload, self.algorithm)?;
        put_u64(&mut payload, self.weight_hash);
        put_u64(&mut payload, self.spec_fingerprint);
        // the kernel travels by name (the append-only alternative to a
        // second numeric kernel-tag space in this codec)
        put_str(&mut payload, self.kernel.name())?;
        put_u64(&mut payload, self.seed);
        put_u64(&mut payload, self.layers.len() as u64);
        for &idx in &self.layers {
            put_u64(&mut payload, idx as u64);
        }
        put_u64(&mut payload, self.skipped.len() as u64);
        for &idx in &self.skipped {
            put_u64(&mut payload, idx as u64);
        }
        Ok(frame(Self::KIND, payload))
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, MvqError> {
        decode_payload(unframe(Self::KIND, bytes)?, |r| {
            let algo = r.str()?;
            let algorithm = canonical_name(&algo)
                .ok_or_else(|| MvqError::Codec(format!("unknown algorithm `{algo}`")))?;
            let weight_hash = r.u64()?;
            let spec_fingerprint = r.u64()?;
            let kernel_name = r.str()?;
            let kernel = kernel_name
                .parse::<crate::kernels::KernelStrategy>()
                .map_err(|e| MvqError::Codec(format!("model index kernel: {e}")))?;
            let seed = r.u64()?;
            let n_layers = r.usize()?;
            let mut layers = Vec::with_capacity(n_layers.min(1 << 16));
            for _ in 0..n_layers {
                layers.push(r.usize()?);
            }
            let n_skipped = r.usize()?;
            let mut skipped = Vec::with_capacity(n_skipped.min(1 << 16));
            for _ in 0..n_skipped {
                skipped.push(r.usize()?);
            }
            Ok(ModelIndex {
                algorithm,
                weight_hash,
                spec_fingerprint,
                kernel,
                seed,
                layers,
                skipped,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{by_name, PipelineSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn weight() -> Tensor {
        let mut rng = StdRng::seed_from_u64(11);
        mvq_tensor::kaiming_normal(vec![32, 16], 16, &mut rng)
    }

    fn artifact(algo: &str) -> CompressedArtifact {
        let spec = PipelineSpec { k: 8, swap_trials: 100, ..PipelineSpec::default() };
        by_name(algo, &spec)
            .unwrap()
            .compress_matrix(&weight(), &mut StdRng::seed_from_u64(5))
            .unwrap()
    }

    #[test]
    fn header_layout_is_stable() {
        let bytes = artifact("mvq").to_bytes().unwrap();
        assert_eq!(&bytes[0..4], &MAGIC);
        assert_eq!(u16::from_le_bytes(bytes[4..6].try_into().unwrap()), FORMAT_VERSION);
        assert_eq!(bytes[6], BlobKind::Artifact as u8);
        let payload_len = u64::from_le_bytes(bytes[7..15].try_into().unwrap());
        assert_eq!(payload_len as usize, bytes.len() - HEADER_LEN);
    }

    #[test]
    fn round_trip_reconstruction_is_bit_identical() {
        for algo in ["mvq", "vq-a", "vq-c", "pqf", "pvq"] {
            let a = artifact(algo);
            let b = CompressedArtifact::from_bytes(&a.to_bytes().unwrap()).unwrap();
            let ra = a.reconstruct().unwrap();
            let rb = b.reconstruct().unwrap();
            let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&ra), bits(&rb), "{algo}");
            assert_eq!(a.storage(), b.storage(), "{algo}");
        }
    }

    #[test]
    fn weight_hash_distinguishes_content_and_shape() {
        let w = weight();
        assert_eq!(weight_hash(&w), weight_hash(&w.clone()));
        let mut w2 = w.clone();
        w2.data_mut()[0] += 1.0;
        assert_ne!(weight_hash(&w), weight_hash(&w2));
        let reshaped = w.reshape(vec![16, 32]).unwrap();
        assert_ne!(weight_hash(&w), weight_hash(&reshaped));
        // -0.0 and 0.0 are different content
        let mut wz = w.clone();
        wz.data_mut()[0] = 0.0;
        let mut wn = w.clone();
        wn.data_mut()[0] = -0.0;
        assert_ne!(weight_hash(&wz), weight_hash(&wn));
    }

    #[test]
    fn rank_255_round_trips_rank_256_is_a_typed_error() {
        // the rank prefix is a u8: 255 is the last representable rank,
        // 256 used to truncate to 0 and encode garbage
        let ok = Tensor::from_vec(vec![1; 255], vec![1.0]).unwrap();
        let q =
            ScalarQuantized { result: PvqResult { quantized: ok, scale: 1.0, bits: 8, sse: 0.0 } };
        let back = ScalarQuantized::from_bytes(&q.to_bytes().unwrap()).unwrap();
        assert_eq!(back.result.quantized.dims().len(), 255);

        let too_deep = Tensor::from_vec(vec![1; 256], vec![1.0]).unwrap();
        let q = ScalarQuantized {
            result: PvqResult { quantized: too_deep, scale: 1.0, bits: 8, sse: 0.0 },
        };
        let err = q.to_bytes().unwrap_err();
        assert!(matches!(&err, MvqError::Codec(msg) if msg.contains("rank")), "{err}");
    }

    #[test]
    fn model_index_round_trips_under_its_own_kind() {
        let index = ModelIndex {
            algorithm: "mvq",
            weight_hash: 0xdead_beef_cafe_f00d,
            spec_fingerprint: 42,
            kernel: crate::kernels::KernelStrategy::Minibatch,
            seed: 7,
            layers: vec![0, 2, 5],
            skipped: vec![1, 3],
        };
        let bytes = index.to_bytes().unwrap();
        assert_eq!(bytes[6], BlobKind::ModelIndex as u8);
        assert!(validate_frame(BlobKind::ModelIndex, &bytes).is_ok());
        assert_eq!(ModelIndex::from_bytes(&bytes).unwrap(), index);
        // a model index must never answer an artifact (or layer) lookup
        assert!(validate_frame(BlobKind::Artifact, &bytes).is_err(), "wrong kind accepted");
        assert!(validate_frame(BlobKind::Layer, &bytes).is_err(), "wrong kind accepted");
    }

    #[test]
    fn validate_frame_accepts_intact_and_rejects_corrupt_blobs() {
        let bytes = artifact("mvq").to_bytes().unwrap();
        assert!(validate_frame(BlobKind::Artifact, &bytes).is_ok());
        assert!(validate_frame(BlobKind::Model, &bytes).is_err(), "wrong kind accepted");
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert!(validate_frame(BlobKind::Artifact, &corrupt).is_err(), "bad checksum accepted");
        assert!(validate_frame(BlobKind::Artifact, &bytes[..10]).is_err(), "truncation accepted");
    }
}
