//! Versioned artifact serialization and the sharded, zero-copy,
//! content-addressed artifact cache — the durable half of the
//! compression pipeline.
//!
//! An in-memory [`crate::CompressedArtifact`] is only useful while the
//! process lives. This module gives every artifact kind a self-describing
//! binary form (the `codec` submodule) and a cache keyed by *what was
//! compressed, how*:
//!
//! * [`Persist`] — `to_bytes` / `from_bytes` for [`CompressedArtifact`],
//!   `ScalarQuantized`, `LayerArtifact` and `ModelArtifacts`; see the
//!   `codec` module docs for the layout and versioning rule.
//! * [`weight_hash`] — the content hash of a weight tensor (dims + f32
//!   bit patterns).
//! * [`CacheKey`] / [`ArtifactCache`] — a content-addressed store keyed by
//!   `(weight hash, PipelineSpec fingerprint, algorithm, kernel strategy,
//!   seed)`.
//!
//! ## Sharding
//!
//! The cache is split into [`DEFAULT_SHARDS`] independent lock domains
//! (configurable per cache). A key is routed to its shard by FNV-1a hash
//! of its blob name, so the key, its disk-ledger entry, and its
//! remembered failures always live under the same lock, and concurrent
//! lookups of different keys contend only `1/N` of the time. Traffic
//! counters are kept per shard and merged on read by
//! [`ArtifactCache::stats`].
//!
//! ## Zero-copy hits
//!
//! Blobs are stored as shared `Arc<[u8]>` bytes, checksum-validated
//! **once at admission** ([`validate_frame`]). [`ArtifactCache::get_raw`]
//! returns a clone of the `Arc` — no decode, no byte copy — so a hit
//! costs a hash, one shard lock, and a reference-count bump. The classic
//! [`ArtifactCache::get`] decodes behind it and is still guaranteed
//! bit-identical to a cold load of the durable form.
//!
//! ## Byte budgets: reserve-then-insert
//!
//! A [`CacheBudget`] caps the encoded bytes in memory and on disk.
//! Footprints are cache-wide atomics: admission *reserves* the incoming
//! blob's bytes with a compare-and-swap that only succeeds while the
//! total stays under the cap, evicting the cache-wide least-recently-used
//! entry between attempts (one shard lock at a time, stamped by a global
//! logical clock, so victim selection is deterministic). A blob that can
//! never fit is refused — the caller keeps the returned artifact and the
//! cache simply does not retain it. The budget is therefore never
//! exceeded at any observable instant, and refusal is never an error.
//!
//! ## Negative caching
//!
//! A deterministic compression failure can be remembered per key
//! ([`ArtifactCache::note_failure`]) and recalled
//! ([`ArtifactCache::failure`]) so repeated requests for a known-bad key
//! fail fast instead of re-running the pipeline. Each shard remembers a
//! bounded number of failures (stalest dropped first), and a successful
//! `put` heals the key.
//!
//! ## Corruption
//!
//! A blob that fails validation is surfaced loudly (a typed
//! [`MvqError::Codec`], counted in `corrupt_rejections`) and **fully
//! expelled**: the memory entry and ledger entry are dropped and the
//! disk file is quarantined (renamed to `.corrupt`), so the next lookup
//! is a clean miss instead of a repeated error.

mod codec;
mod ledger;
mod shard;
mod stats;

pub use codec::{
    frame_blob, unframe_blob, validate_frame, weight_hash, BlobKind, Fnv1a, ModelIndex, Persist,
    FORMAT_VERSION, HEADER_LEN, MAGIC,
};
pub use stats::{CacheBudget, CacheStats};

use std::collections::hash_map;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mvq_obs::{names as metric, Registry};
use mvq_tensor::Tensor;

use shard::{DiskEntry, MemEntry, Shard};

use crate::error::MvqError;
use crate::kernels::KernelStrategy;
use crate::pipeline::{canonical_name, CompressedArtifact, PipelineSpec};

/// Lock domains a cache is split into unless the constructor says
/// otherwise: enough that 16 concurrent submitters rarely collide,
/// small enough that the merge-on-read stats scan stays trivial.
pub const DEFAULT_SHARDS: usize = 16;

/// The content address of one compression result: *what* was compressed
/// (the weight hash), *how* (spec fingerprint + algorithm + kernel), and
/// with which RNG seed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical registry algorithm name.
    pub algo: &'static str,
    /// [`weight_hash`] of the input tensor.
    pub weight_hash: u64,
    /// [`PipelineSpec::fingerprint`] of the spec.
    pub spec_fingerprint: u64,
    /// Kernel strategy the spec dispatches to (also folded into the
    /// fingerprint; kept explicit so keys are debuggable).
    pub kernel: KernelStrategy,
    /// RNG seed the compression ran with.
    pub seed: u64,
}

impl CacheKey {
    /// Builds the key for compressing `weight` with `algo` under `spec`
    /// and `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] for unknown algorithm names.
    pub fn new(
        algo: &str,
        weight: &Tensor,
        spec: &PipelineSpec,
        seed: u64,
    ) -> Result<CacheKey, MvqError> {
        let algo = canonical_name(algo).ok_or_else(|| {
            MvqError::InvalidConfig(format!("unknown compressor `{algo}` for cache key"))
        })?;
        Ok(CacheKey {
            algo,
            weight_hash: weight_hash(weight),
            spec_fingerprint: spec.fingerprint(),
            kernel: spec.kernel,
            seed,
        })
    }

    /// The derived key one streamed layer's blob is stored under: the
    /// model key with its weight hash replaced by a domain-separated hash
    /// of `(model weight hash, conv_index)`. Purely derived — the loader
    /// re-computes layer keys from the model key and the conv indices in
    /// the [`ModelIndex`], so no key material needs to be stored per
    /// layer — and collision-free against matrix-job keys (different
    /// domain) and against other layers of the same model (the index is
    /// folded in).
    pub fn layer_key(&self, conv_index: usize) -> CacheKey {
        let mut h = Fnv1a::new();
        h.update(b"mvq.stream.layerkey.v1");
        h.update_u64(self.weight_hash);
        h.update_u64(conv_index as u64);
        CacheKey { weight_hash: h.finish(), ..self.clone() }
    }

    /// Deterministic file name for the on-disk blob of this key.
    pub fn blob_name(&self) -> String {
        format!(
            "{}-{:016x}-{:016x}-{}-{:016x}.mvqa",
            self.algo,
            self.weight_hash,
            self.spec_fingerprint,
            self.kernel.name(),
            self.seed
        )
    }
}

/// A sharded, content-addressed artifact store: an in-memory blob map,
/// optionally backed by an on-disk directory, shared across threads
/// (`&self` methods are thread-safe — the compression service's worker
/// pool fans out over one cache).
///
/// Artifacts are stored *encoded* and validated once at admission;
/// [`ArtifactCache::get_raw`] hands back the shared bytes zero-copy,
/// and [`ArtifactCache::get`] decodes through the same [`Persist`] path
/// a cold load from disk would take, so a hit is guaranteed to be
/// bit-identical to a decode of the durable form — the cache cannot
/// return state that would not survive a restart.
///
/// See the [module docs](self) for the sharding, budget-reservation,
/// negative-caching and corruption-quarantine design.
pub struct ArtifactCache {
    dir: Option<PathBuf>,
    budget: CacheBudget,
    shards: Box<[Shard]>,
    /// Cache-wide logical clock; every touch gets a unique stamp, so
    /// LRU victim selection is deterministic across shards.
    clock: AtomicU64,
    /// Encoded bytes resident in memory (reservation total).
    memory_used: AtomicU64,
    /// Encoded bytes ledgered on disk (reservation total).
    disk_used: AtomicU64,
    /// The observability registry this cache records into. Created
    /// here and adopted by the service/network tiers above, so one
    /// serving stack shares one registry.
    metrics: Arc<Registry>,
}

impl ArtifactCache {
    /// A purely in-memory cache with no byte budget.
    pub fn in_memory() -> ArtifactCache {
        ArtifactCache::in_memory_with_budget(CacheBudget::UNBOUNDED)
    }

    /// A purely in-memory cache whose resident bytes honor `budget`
    /// (the disk half of the budget is ignored — there is no disk).
    pub fn in_memory_with_budget(budget: CacheBudget) -> ArtifactCache {
        ArtifactCache::in_memory_sharded(budget, DEFAULT_SHARDS)
    }

    /// An in-memory cache split into `shards` lock domains (clamped to
    /// at least 1). One shard reproduces the single-lock behavior.
    pub fn in_memory_sharded(budget: CacheBudget, shards: usize) -> ArtifactCache {
        ArtifactCache {
            dir: None,
            budget,
            shards: new_shards(shards),
            clock: AtomicU64::new(0),
            memory_used: AtomicU64::new(0),
            disk_used: AtomicU64::new(0),
            metrics: Registry::new(),
        }
    }

    /// A cache persisting blobs under `dir` (created if absent), with no
    /// byte budget. Lookups fall back to disk on memory misses, so a new
    /// process reuses a previous run's artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when the directory cannot be created
    /// or scanned.
    pub fn with_dir<P: AsRef<Path>>(dir: P) -> Result<ArtifactCache, MvqError> {
        ArtifactCache::with_dir_and_budget(dir, CacheBudget::UNBOUNDED)
    }

    /// A disk-backed cache honoring `budget`. The directory is scanned at
    /// construction to rebuild the disk ledger (sizes plus a modification
    /// -time LRU order), and immediately pruned to the disk budget — a
    /// restart over an over-budget directory deletes the stalest blobs
    /// first.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when the directory cannot be created,
    /// scanned, or pruned.
    pub fn with_dir_and_budget<P: AsRef<Path>>(
        dir: P,
        budget: CacheBudget,
    ) -> Result<ArtifactCache, MvqError> {
        ArtifactCache::with_dir_budget_and_shards(dir, budget, DEFAULT_SHARDS)
    }

    /// A disk-backed cache honoring `budget`, split into `shards` lock
    /// domains (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when the directory cannot be created,
    /// scanned, or pruned.
    pub fn with_dir_budget_and_shards<P: AsRef<Path>>(
        dir: P,
        budget: CacheBudget,
        shards: usize,
    ) -> Result<ArtifactCache, MvqError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| {
            MvqError::Codec(format!("cannot create cache dir {}: {e}", dir.display()))
        })?;
        let cache = ArtifactCache {
            dir: Some(dir),
            budget,
            shards: new_shards(shards),
            clock: AtomicU64::new(0),
            memory_used: AtomicU64::new(0),
            disk_used: AtomicU64::new(0),
            metrics: Registry::new(),
        };
        cache.scan_disk()?;
        Ok(cache)
    }

    /// The backing directory, if this cache persists to disk.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The byte budget this cache enforces.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    /// The observability registry this cache records into. The serve
    /// and net tiers adopt it so a whole serving stack reports through
    /// one registry; [`ArtifactCache::stats`] is a view over it.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Lock domains this cache is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of artifacts resident in **memory**. Disk-backed caches may
    /// hold more blobs on disk — see [`ArtifactCache::disk_len`].
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().blobs.len()).sum()
    }

    /// True when no artifact is resident in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of blobs on disk (0 for in-memory caches).
    pub fn disk_len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().disk.len()).sum()
    }

    /// Encoded bytes currently resident in memory (lock-free read of the
    /// reservation total).
    pub fn memory_bytes(&self) -> u64 {
        self.memory_used.load(Ordering::Relaxed)
    }

    /// Encoded bytes currently on disk (0 for in-memory caches).
    pub fn disk_bytes(&self) -> u64 {
        self.disk_used.load(Ordering::Relaxed)
    }

    /// A snapshot of the traffic counters and occupancy gauges, merged
    /// across shards (one shard lock at a time).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats {
            hits: self.metrics.counter(metric::STORE_CACHE_HITS).get(),
            misses: self.metrics.counter(metric::STORE_CACHE_MISSES).get(),
            insertions: self.metrics.counter(metric::STORE_CACHE_INSERTIONS).get(),
            corrupt_rejections: self.metrics.counter(metric::STORE_CACHE_CORRUPT_REJECTIONS).get(),
            memory_evictions: self.metrics.counter(metric::STORE_SHARD_EVICTIONS_MEMORY).get(),
            disk_evictions: self.metrics.counter(metric::STORE_SHARD_EVICTIONS_DISK).get(),
            negative_hits: self.metrics.counter(metric::STORE_CACHE_NEGATIVE_HITS).get(),
            mtime_fallbacks: self.metrics.counter(metric::STORE_CACHE_MTIME_FALLBACKS).get(),
            ..CacheStats::default()
        };
        for shard in self.shards.iter() {
            let inner = shard.lock();
            total.memory_len += inner.blobs.len();
            total.disk_len += inner.disk.len();
            total.negative_len += inner.negative_len();
        }
        total.memory_bytes = self.memory_bytes();
        total.disk_bytes = self.disk_bytes();
        total
    }

    /// Looks up `key`, returning the validated encoded bytes zero-copy
    /// on a hit (an `Arc` clone of the blob admitted earlier — no decode,
    /// no byte copy).
    ///
    /// A disk hit validates the blob's checksum once, promotes it into
    /// memory (subject to the memory budget) and refreshes its LRU stamp
    /// on both levels.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when a stored blob is corrupt — a
    /// poisoned entry is surfaced loudly (counted in
    /// [`CacheStats::corrupt_rejections`]) and expelled from memory,
    /// ledger and disk (quarantined as `.corrupt`), so the *next* lookup
    /// misses cleanly.
    pub fn get_raw(&self, key: &CacheKey) -> Result<Option<Arc<[u8]>>, MvqError> {
        self.get_raw_kind(key, BlobKind::Artifact)
    }

    /// [`ArtifactCache::get_raw`] for a non-default frame kind: the
    /// streaming model pipeline stores per-layer blobs
    /// ([`BlobKind::Layer`]) and the model index ([`BlobKind::ModelIndex`])
    /// under derived keys, and a disk promotion must validate the frame
    /// against the kind that was stored — a layer blob answering an
    /// artifact lookup is corruption, not a hit.
    ///
    /// # Errors
    ///
    /// As [`ArtifactCache::get_raw`].
    pub fn get_raw_kind(
        &self,
        key: &CacheKey,
        kind: BlobKind,
    ) -> Result<Option<Arc<[u8]>>, MvqError> {
        let name = key.blob_name();
        let from_memory = {
            let tick = self.tick();
            let mut inner = self.shard_for(&name).lock();
            let hit = inner.blobs.get_mut(key).map(|entry| {
                entry.last_used = tick;
                Arc::clone(&entry.bytes)
            });
            if hit.is_some() {
                self.metrics.counter(metric::STORE_CACHE_HITS).inc();
                // the blob's disk copy is just as recently used: without
                // this, a hot key served from memory would keep a stale
                // disk stamp and be the first blob deleted under a disk
                // budget — an LRU inversion
                inner.bump_disk(&name, tick);
            }
            hit
        };
        if let Some(bytes) = from_memory {
            return Ok(Some(bytes));
        }
        let Some(dir) = &self.dir else {
            self.metrics.counter(metric::STORE_CACHE_MISSES).inc();
            return Ok(None);
        };
        let Some(loaded) = ledger::load_blob(dir, &name)? else {
            let freed = {
                let mut inner = self.shard_for(&name).lock();
                self.metrics.counter(metric::STORE_CACHE_MISSES).inc();
                // drop a stale ledger entry only if the file is truly
                // absent *now*: a concurrent put may have persisted this
                // key between our (lock-free) disk read and re-acquiring
                // the lock, and its ledger entry must survive
                // lint:allow(lock-scope) -- metadata-only existence probe; it must happen under this lock or the concurrent-put race described above comes back
                if !dir.join(&name).exists() {
                    inner.forget_disk(&name)
                } else {
                    0
                }
            };
            if freed > 0 {
                self.disk_used.fetch_sub(freed, Ordering::Relaxed);
            }
            return Ok(None);
        };
        let bytes: Arc<[u8]> = loaded.into();
        // checksum once at admission; hits hand these bytes out unchecked
        if let Err(detail) = validate_frame(kind, &bytes) {
            return Err(self.reject_corrupt(key, &name, &detail));
        }
        let tick = self.tick();
        self.metrics.counter(metric::STORE_CACHE_HITS).inc();
        self.admit_disk(&name, bytes.len() as u64, tick)?;
        self.admit_memory(key, &name, Arc::clone(&bytes), tick, false);
        Ok(Some(bytes))
    }

    /// Looks up `key`, decoding the stored blob on a hit. Prefer
    /// [`ArtifactCache::get_raw`] on hot paths — decoding is the
    /// caller's concern there.
    ///
    /// # Errors
    ///
    /// As [`ArtifactCache::get_raw`], plus decode failures of a blob
    /// whose checksum validated (possible only for bytes admitted via
    /// [`ArtifactCache::put_raw`] with a well-formed frame around an
    /// undecodable payload) — handled identically to corruption.
    pub fn get(&self, key: &CacheKey) -> Result<Option<CompressedArtifact>, MvqError> {
        let Some(bytes) = self.get_raw(key)? else {
            return Ok(None);
        };
        match CompressedArtifact::from_bytes(&bytes) {
            Ok(artifact) => Ok(Some(artifact)),
            Err(detail) => Err(self.reject_corrupt(key, &key.blob_name(), &detail)),
        }
    }

    /// Stores `artifact` under `key` (memory, and disk when backed),
    /// reserving budget room first — see the module docs. A successful
    /// put forgets any remembered failure for `key`.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when encoding, the disk write, or an
    /// eviction's file deletion fails. A budget refusal is **not** an
    /// error — the artifact is simply not retained.
    pub fn put(&self, key: &CacheKey, artifact: &CompressedArtifact) -> Result<(), MvqError> {
        let bytes: Arc<[u8]> = artifact.to_bytes()?.into();
        self.insert_validated(key, bytes)
    }

    /// Stores already-encoded blob bytes under `key`, validating the
    /// frame once at this admission boundary. This is the zero-copy
    /// write half: the serve layer hands the same `Arc` to the cache and
    /// to every waiter.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when `bytes` is not a valid artifact
    /// frame, or on the same disk failures as [`ArtifactCache::put`].
    pub fn put_raw(&self, key: &CacheKey, bytes: Arc<[u8]>) -> Result<(), MvqError> {
        self.put_raw_kind(key, BlobKind::Artifact, bytes)
    }

    /// [`ArtifactCache::put_raw`] for a non-default frame kind — the
    /// write half of [`ArtifactCache::get_raw_kind`]. The frame is
    /// validated against `kind` once at this admission boundary.
    ///
    /// # Errors
    ///
    /// As [`ArtifactCache::put_raw`].
    pub fn put_raw_kind(
        &self,
        key: &CacheKey,
        kind: BlobKind,
        bytes: Arc<[u8]>,
    ) -> Result<(), MvqError> {
        validate_frame(kind, &bytes)?;
        self.insert_validated(key, bytes)
    }

    /// Remembers `error` as the deterministic outcome of compressing
    /// `key`, so repeated requests fail fast — see the module docs.
    pub fn note_failure(&self, key: &CacheKey, error: &MvqError) {
        let name = key.blob_name();
        let tick = self.tick();
        self.shard_for(&name).lock().note_failure(key, error.clone(), tick);
    }

    /// The remembered failure for `key`, if any (refreshes its LRU stamp
    /// and counts a [`CacheStats::negative_hits`]).
    pub fn failure(&self, key: &CacheKey) -> Option<MvqError> {
        let name = key.blob_name();
        let tick = self.tick();
        let remembered = self.shard_for(&name).lock().recall_failure(key, tick);
        if remembered.is_some() {
            self.metrics.counter(metric::STORE_CACHE_NEGATIVE_HITS).inc();
        }
        remembered
    }

    /// `get`, falling back to `compute` + `put` on a miss. A remembered
    /// failure short-circuits to the remembered error; a fresh compute
    /// failure is remembered.
    ///
    /// # Errors
    ///
    /// Propagates lookup, compute and store errors.
    pub fn get_or_compute<F>(
        &self,
        key: &CacheKey,
        compute: F,
    ) -> Result<(CompressedArtifact, bool), MvqError>
    where
        F: FnOnce() -> Result<CompressedArtifact, MvqError>,
    {
        if let Some(hit) = self.get(key)? {
            return Ok((hit, true));
        }
        if let Some(remembered) = self.failure(key) {
            return Err(remembered);
        }
        match compute() {
            Ok(fresh) => {
                self.put(key, &fresh)?;
                Ok((fresh, false))
            }
            Err(e) => {
                self.note_failure(key, &e);
                Err(e)
            }
        }
    }

    /// A unique, monotonically increasing LRU stamp.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The shard owning `name` (FNV-1a of the blob name, so CacheKey
    /// lookups and scanned file names route identically).
    fn shard_for(&self, name: &str) -> &Shard {
        let mut h = Fnv1a::new();
        h.update(name.as_bytes());
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Persists + ledgers + admits one validated blob (shared by `put`
    /// and `put_raw`).
    fn insert_validated(&self, key: &CacheKey, bytes: Arc<[u8]>) -> Result<(), MvqError> {
        let name = key.blob_name();
        let tick = self.tick();
        if let Some(dir) = &self.dir {
            ledger::persist_blob(dir, &name, &bytes)?;
            if !self.admit_disk(&name, bytes.len() as u64, tick)? {
                // the blob cannot fit the disk budget even after
                // evicting everything else; the file written above must
                // not outlive the refusal
                ledger::delete_blob(dir, &name)?;
            }
        }
        self.admit_memory(key, &name, bytes, tick, true);
        Ok(())
    }

    /// Ledgers `name`: bumps the stamp when already present, otherwise
    /// reserves disk budget (evicting LRU victims) and inserts. Returns
    /// `false` when the budget refuses the blob — the caller decides
    /// what happens to the file.
    fn admit_disk(&self, name: &str, len: u64, tick: u64) -> Result<bool, MvqError> {
        let already = {
            let mut inner = self.shard_for(name).lock();
            match inner.disk.get_mut(name) {
                Some(entry) => {
                    // same name ⇒ same key ⇒ same deterministic encoding:
                    // the accounted size cannot have changed
                    entry.last_used = tick;
                    true
                }
                None => false,
            }
        };
        if already {
            return Ok(true);
        }
        if !self.reserve_disk(len)? {
            return Ok(false);
        }
        let mut inner = self.shard_for(name).lock();
        match inner.disk.entry(name.to_string()) {
            hash_map::Entry::Occupied(mut e) => {
                // another thread ledgered this name between our probe and
                // re-lock; release the duplicate reservation
                e.get_mut().last_used = tick;
                self.disk_used.fetch_sub(len, Ordering::Relaxed);
            }
            hash_map::Entry::Vacant(v) => {
                v.insert(DiskEntry { bytes: len, last_used: tick });
            }
        }
        Ok(true)
    }

    /// Makes `key` memory-resident: bumps the stamp when already
    /// resident, otherwise reserves memory budget (evicting LRU victims)
    /// and inserts; a refused blob is simply not retained. `insertion`
    /// marks caller-initiated puts (counts the insertion, heals the
    /// negative cache) as opposed to disk promotions.
    fn admit_memory(
        &self,
        key: &CacheKey,
        name: &str,
        bytes: Arc<[u8]>,
        tick: u64,
        insertion: bool,
    ) {
        let len = bytes.len() as u64;
        let resident = {
            let mut inner = self.shard_for(name).lock();
            if insertion {
                self.metrics.counter(metric::STORE_CACHE_INSERTIONS).inc();
                inner.clear_failure(key);
            }
            match inner.blobs.get_mut(key) {
                Some(entry) => {
                    entry.last_used = tick;
                    true
                }
                None => false,
            }
        };
        if resident || !self.reserve_memory(len) {
            return;
        }
        let mut inner = self.shard_for(name).lock();
        match inner.blobs.entry(key.clone()) {
            hash_map::Entry::Occupied(mut e) => {
                // another thread admitted this key between our probe and
                // re-lock; release the duplicate reservation
                e.get_mut().last_used = tick;
                self.memory_used.fetch_sub(len, Ordering::Relaxed);
            }
            hash_map::Entry::Vacant(v) => {
                v.insert(MemEntry { bytes, last_used: tick });
            }
        }
    }

    /// Reserves `len` bytes against the memory budget via CAS, evicting
    /// cache-wide LRU entries between attempts. Returns `false` (nothing
    /// reserved) when the blob can never fit or nothing is left to evict.
    fn reserve_memory(&self, len: u64) -> bool {
        let Some(cap) = self.budget.memory_bytes else {
            self.memory_used.fetch_add(len, Ordering::Relaxed);
            return true;
        };
        if len > cap {
            return false;
        }
        loop {
            let used = self.memory_used.load(Ordering::Relaxed);
            if used + len <= cap {
                if self
                    .memory_used
                    .compare_exchange(used, used + len, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    return true;
                }
                continue;
            }
            if !self.evict_one_memory_lru() {
                return false;
            }
        }
    }

    /// Reserves `len` bytes against the disk budget via CAS, evicting
    /// cache-wide LRU blobs (deleting their files) between attempts.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when an eviction's file deletion
    /// fails.
    fn reserve_disk(&self, len: u64) -> Result<bool, MvqError> {
        let Some(cap) = self.budget.disk_bytes else {
            self.disk_used.fetch_add(len, Ordering::Relaxed);
            return Ok(true);
        };
        if len > cap {
            return Ok(false);
        }
        loop {
            let used = self.disk_used.load(Ordering::Relaxed);
            if used + len <= cap {
                if self
                    .disk_used
                    .compare_exchange(used, used + len, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    return Ok(true);
                }
                continue;
            }
            if !self.evict_one_disk_lru()? {
                return Ok(false);
            }
        }
    }

    /// Evicts the cache-wide least-recently-used memory entry (victim
    /// scan takes one shard lock at a time — never two at once). Returns
    /// `false` only when every shard is empty.
    ///
    /// Victim selection is a linear scan per eviction — deliberate: the
    /// cache holds at most a few thousand modest entries (one per
    /// compressed layer × config), where a scan beats maintaining a
    /// second ordered index. Revisit if caches grow by orders of
    /// magnitude.
    fn evict_one_memory_lru(&self) -> bool {
        let mut victim: Option<(usize, CacheKey, u64)> = None;
        for (idx, s) in self.shards.iter().enumerate() {
            let inner = s.lock();
            if let Some((key, entry)) = inner.blobs.iter().min_by_key(|(_, e)| e.last_used) {
                if victim.as_ref().is_none_or(|(_, _, stamp)| entry.last_used < *stamp) {
                    victim = Some((idx, key.clone(), entry.last_used));
                }
            }
        }
        let Some((idx, key, _)) = victim else { return false };
        let freed = {
            let mut inner = self.shards[idx].lock();
            let freed = inner.remove_memory(&key);
            if freed > 0 {
                self.metrics.counter(metric::STORE_SHARD_EVICTIONS_MEMORY).inc();
            }
            freed
        };
        if freed > 0 {
            self.memory_used.fetch_sub(freed, Ordering::Relaxed);
        }
        // freed == 0 means a racing thread evicted the victim first and
        // already released its bytes; either way progress was made, so
        // the reservation loop retries
        true
    }

    /// Evicts the cache-wide least-recently-used disk blob (forgets the
    /// ledger entry, then deletes the file outside the lock). Returns
    /// `false` only when the ledger is empty.
    fn evict_one_disk_lru(&self) -> Result<bool, MvqError> {
        let Some(dir) = &self.dir else { return Ok(false) };
        let mut victim: Option<(usize, String, u64)> = None;
        for (idx, s) in self.shards.iter().enumerate() {
            let inner = s.lock();
            if let Some((name, entry)) = inner.disk.iter().min_by_key(|(_, e)| e.last_used) {
                if victim.as_ref().is_none_or(|(_, _, stamp)| entry.last_used < *stamp) {
                    victim = Some((idx, name.clone(), entry.last_used));
                }
            }
        }
        let Some((idx, name, _)) = victim else { return Ok(false) };
        let freed = {
            let mut inner = self.shards[idx].lock();
            let freed = inner.forget_disk(&name);
            if freed > 0 {
                self.metrics.counter(metric::STORE_SHARD_EVICTIONS_DISK).inc();
            }
            freed
        };
        if freed > 0 {
            self.disk_used.fetch_sub(freed, Ordering::Relaxed);
            ledger::delete_blob(dir, &name)?;
        }
        Ok(true)
    }

    /// Expels a corrupt blob everywhere it is held — memory, ledger,
    /// and disk (quarantined as `.corrupt` so the bytes survive for
    /// post-mortem inspection) — and builds the loud, typed error.
    fn reject_corrupt(&self, key: &CacheKey, name: &str, detail: &MvqError) -> MvqError {
        let (mem_freed, disk_freed) = {
            let mut inner = self.shard_for(name).lock();
            self.metrics.counter(metric::STORE_CACHE_CORRUPT_REJECTIONS).inc();
            (inner.remove_memory(key), inner.forget_disk(name))
        };
        if mem_freed > 0 {
            self.memory_used.fetch_sub(mem_freed, Ordering::Relaxed);
        }
        if disk_freed > 0 {
            self.disk_used.fetch_sub(disk_freed, Ordering::Relaxed);
        }
        let mut message = format!("cache blob for {name} is corrupt: {detail}");
        if let Some(dir) = &self.dir {
            if let Err(e) = ledger::quarantine_blob(dir, name) {
                message.push_str(&format!("; {e}"));
            }
        }
        MvqError::Codec(message)
    }

    /// Rebuilds the disk ledger from the blob directory, replaying the
    /// scan oldest-first through the same budget admission as a live
    /// put — a restart over an over-budget directory deletes the stalest
    /// blobs first, and an individually over-budget blob is removed.
    fn scan_disk(&self) -> Result<(), MvqError> {
        let Some(dir) = &self.dir else { return Ok(()) };
        let report = ledger::scan_dir(dir)?;
        if report.mtime_fallbacks > 0 {
            self.metrics.counter(metric::STORE_CACHE_MTIME_FALLBACKS).add(report.mtime_fallbacks);
        }
        for (name, len) in report.blobs {
            let tick = self.tick();
            if !self.admit_disk(&name, len, tick)? {
                // larger than the whole disk budget: it can never be
                // served within budget, so it does not survive the scan
                ledger::delete_blob(dir, &name)?;
            }
        }
        Ok(())
    }
}

/// Allocates `n` fresh shards (clamped to at least one).
fn new_shards(n: usize) -> Box<[Shard]> {
    (0..n.max(1)).map(|_| Shard::default()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::by_name;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn weight() -> Tensor {
        let mut rng = StdRng::seed_from_u64(11);
        mvq_tensor::kaiming_normal(vec![32, 16], 16, &mut rng)
    }

    fn artifact(algo: &str) -> CompressedArtifact {
        let spec = PipelineSpec { k: 8, swap_trials: 100, ..PipelineSpec::default() };
        by_name(algo, &spec)
            .unwrap()
            .compress_matrix(&weight(), &mut StdRng::seed_from_u64(5))
            .unwrap()
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache = ArtifactCache::in_memory();
        let w = weight();
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let key = CacheKey::new("mvq", &w, &spec, 5).unwrap();
        assert!(cache.get(&key).unwrap().is_none());
        let a = artifact("mvq");
        cache.put(&key, &a).unwrap();
        assert!(cache.get(&key).unwrap().is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.corrupt_rejections, 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn raw_hits_share_one_allocation() {
        // the zero-copy contract: every hit returns a clone of the same
        // Arc the admission created, not a fresh buffer
        let cache = ArtifactCache::in_memory();
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let key = CacheKey::new("mvq", &weight(), &spec, 5).unwrap();
        cache.put(&key, &artifact("mvq")).unwrap();
        let first = cache.get_raw(&key).unwrap().unwrap();
        let second = cache.get_raw(&key).unwrap().unwrap();
        assert!(Arc::ptr_eq(&first, &second), "hits copied the blob");
        let decoded = CompressedArtifact::from_bytes(&first).unwrap();
        assert_eq!(decoded.storage(), artifact("mvq").storage());
    }

    #[test]
    fn memory_budget_evicts_lru_and_never_exceeds_cap() {
        let a = artifact("mvq");
        let blob_len = a.to_bytes().unwrap().len() as u64;
        // room for exactly two blobs of this size
        let cap = 2 * blob_len;
        let cache =
            ArtifactCache::in_memory_with_budget(CacheBudget::default().with_memory_bytes(cap));
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let keys: Vec<CacheKey> =
            (0..3).map(|s| CacheKey::new("mvq", &weight(), &spec, s).unwrap()).collect();
        cache.put(&keys[0], &a).unwrap();
        cache.put(&keys[1], &a).unwrap();
        assert_eq!(cache.len(), 2);
        // touch key 0 so key 1 becomes the LRU victim
        assert!(cache.get(&keys[0]).unwrap().is_some());
        cache.put(&keys[2], &a).unwrap();
        assert!(cache.memory_bytes() <= cap, "budget exceeded");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().memory_evictions, 1);
        assert!(cache.get(&keys[0]).unwrap().is_some(), "recently used entry was evicted");
        assert!(cache.get(&keys[1]).unwrap().is_none(), "LRU entry survived");
        assert!(cache.get(&keys[2]).unwrap().is_some());
    }

    #[test]
    fn oversized_blob_is_refused_not_retained() {
        let a = artifact("mvq");
        let cap = a.to_bytes().unwrap().len() as u64 - 1;
        let cache =
            ArtifactCache::in_memory_with_budget(CacheBudget::default().with_memory_bytes(cap));
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let key = CacheKey::new("mvq", &weight(), &spec, 0).unwrap();
        cache.put(&key, &a).unwrap();
        assert_eq!(cache.memory_bytes(), 0, "a blob larger than the budget must not stay");
        assert!(cache.get(&key).unwrap().is_none());
    }

    #[test]
    fn memory_hits_refresh_the_disk_lru_stamp() {
        // a key served from memory must not keep a stale disk stamp, or
        // the hottest blob would be the first one deleted under a disk
        // budget (LRU inversion)
        let dir = std::env::temp_dir().join(format!("mvq-store-bump-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = artifact("mvq");
        let blob_len = a.to_bytes().unwrap().len() as u64;
        let budget = CacheBudget::default().with_disk_bytes(2 * blob_len + blob_len / 2);
        let cache = ArtifactCache::with_dir_and_budget(&dir, budget).unwrap();
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let keys: Vec<CacheKey> =
            (0..3).map(|s| CacheKey::new("mvq", &weight(), &spec, s).unwrap()).collect();
        cache.put(&keys[0], &a).unwrap();
        cache.put(&keys[1], &a).unwrap();
        // memory hit on key 0: its disk copy becomes the most recent
        assert!(cache.get(&keys[0]).unwrap().is_some());
        cache.put(&keys[2], &a).unwrap();
        assert!(dir.join(keys[0].blob_name()).exists(), "hot blob was the eviction victim");
        assert!(!dir.join(keys[1].blob_name()).exists(), "stale blob survived");
        assert_eq!(cache.stats().disk_evictions, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_scan_removes_orphaned_tmp_files() {
        // an interrupted put strands `<blob>.<pid>-<n>.mvqa.tmp`; the
        // scan must delete it (unaddressable, outside the budget) and
        // leave foreign files alone
        let dir = std::env::temp_dir().join(format!("mvq-store-tmp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("stranded.7-3.mvqa.tmp"), b"partial").unwrap();
        std::fs::write(dir.join("notes.txt"), b"keep me").unwrap();
        let cache = ArtifactCache::with_dir(&dir).unwrap();
        assert!(!dir.join("stranded.7-3.mvqa.tmp").exists(), "tmp orphan survived the scan");
        assert!(dir.join("notes.txt").exists(), "foreign file was deleted");
        assert_eq!(cache.disk_len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_prune_under_mtime_ties_is_deterministic_by_name() {
        // satellite regression: with tied mtimes (coarse-mtime
        // filesystems make ties common) the restart scan used to replay
        // blobs in directory-iteration order, so the pruned set under a
        // disk budget could differ between two identical restarts; ties
        // now break by blob name, pinning the victim set
        let dir = std::env::temp_dir().join(format!("mvq-store-tie-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = artifact("mvq");
        let blob_len = a.to_bytes().unwrap().len() as u64;
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let keys: Vec<CacheKey> =
            (0..4).map(|s| CacheKey::new("mvq", &weight(), &spec, s).unwrap()).collect();
        {
            let cache = ArtifactCache::with_dir(&dir).unwrap();
            for key in &keys {
                cache.put(key, &a).unwrap();
            }
        }
        // force the tie: every blob carries the same mtime
        let tied = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(3_000_000);
        let mut names: Vec<String> = keys.iter().map(|k| k.blob_name()).collect();
        for name in &names {
            std::fs::File::open(dir.join(name)).unwrap().set_modified(tied).unwrap();
        }
        names.sort();
        // room for exactly two blobs: the replay admits in name order and
        // evicts LRU-first, so the two lexicographically-smallest names
        // are pruned and the two largest survive — deterministically
        let budget = CacheBudget::default().with_disk_bytes(2 * blob_len);
        let cache = ArtifactCache::with_dir_and_budget(&dir, budget).unwrap();
        assert_eq!(cache.disk_len(), 2);
        assert!(!dir.join(&names[0]).exists(), "{} must be pruned", names[0]);
        assert!(!dir.join(&names[1]).exists(), "{} must be pruned", names[1]);
        assert!(dir.join(&names[2]).exists(), "{} must survive", names[2]);
        assert!(dir.join(&names[3]).exists(), "{} must survive", names[3]);
        assert_eq!(cache.stats().mtime_fallbacks, 0, "readable mtimes need no fallback");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_blob_errors_once_then_misses_cleanly() {
        // regression: the corrupt path used to remove only the memory
        // entry, leaving the poisoned file on disk and in the ledger —
        // it kept counting toward the disk budget and every future
        // lookup re-read and re-failed it
        let dir = std::env::temp_dir().join(format!("mvq-store-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let key = CacheKey::new("mvq", &weight(), &spec, 5).unwrap();
        let name = key.blob_name();
        {
            let cache = ArtifactCache::with_dir(&dir).unwrap();
            cache.put(&key, &artifact("mvq")).unwrap();
        }
        // flip payload bytes on disk, then restart so memory is cold
        let path = dir.join(&name);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let cache = ArtifactCache::with_dir(&dir).unwrap();
        assert_eq!(cache.disk_len(), 1);
        let err = cache.get(&key).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        // fully expelled: ledger entry gone, file quarantined, budget freed
        assert_eq!(cache.disk_len(), 0);
        assert_eq!(cache.disk_bytes(), 0);
        assert!(!path.exists(), "corrupt blob still addressable");
        let quarantined = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                let n = e.as_ref().unwrap().file_name();
                let n = n.to_string_lossy();
                n.starts_with(&name) && n.ends_with(".corrupt")
            })
            .count();
        assert_eq!(quarantined, 1, "blob was not quarantined");
        // second lookup: a clean miss, not a repeated error
        assert!(cache.get(&key).unwrap().is_none());
        let stats = cache.stats();
        assert_eq!(stats.corrupt_rejections, 1);
        assert_eq!(stats.misses, 1);
        // a fresh put heals the key
        cache.put(&key, &artifact("mvq")).unwrap();
        assert!(cache.get(&key).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn negative_cache_remembers_failures_until_a_put_heals() {
        let cache = ArtifactCache::in_memory();
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let key = CacheKey::new("mvq", &weight(), &spec, 9).unwrap();
        assert!(cache.failure(&key).is_none());
        let boom = MvqError::InvalidConfig("k larger than points".into());
        cache.note_failure(&key, &boom);
        assert_eq!(cache.failure(&key), Some(boom));
        let stats = cache.stats();
        assert_eq!(stats.negative_hits, 1);
        assert_eq!(stats.negative_len, 1);
        cache.put(&key, &artifact("mvq")).unwrap();
        assert!(cache.failure(&key).is_none(), "put did not heal the negative entry");
        assert_eq!(cache.stats().negative_len, 0);
    }

    #[test]
    fn get_or_compute_short_circuits_remembered_failures() {
        let cache = ArtifactCache::in_memory();
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let key = CacheKey::new("mvq", &weight(), &spec, 9).unwrap();
        let err = cache
            .get_or_compute(&key, || Err(MvqError::InvalidConfig("deterministic".into())))
            .unwrap_err();
        assert!(matches!(err, MvqError::InvalidConfig(_)));
        // second call must not invoke compute at all
        let err = cache
            .get_or_compute(&key, || panic!("compute re-ran for a known-failing key"))
            .unwrap_err();
        assert!(matches!(err, MvqError::InvalidConfig(_)));
        assert_eq!(cache.stats().negative_hits, 1);
    }

    #[test]
    fn stats_report_occupancy_gauges() {
        let cache = ArtifactCache::in_memory();
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let key = CacheKey::new("mvq", &weight(), &spec, 0).unwrap();
        let a = artifact("mvq");
        cache.put(&key, &a).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.memory_len, 1);
        assert_eq!(stats.memory_bytes, a.to_bytes().unwrap().len() as u64);
        assert_eq!(stats.disk_len, 0);
        assert_eq!(stats.disk_bytes, 0);
    }

    #[test]
    fn single_shard_cache_matches_the_classic_behavior() {
        let cache = ArtifactCache::in_memory_sharded(CacheBudget::UNBOUNDED, 1);
        assert_eq!(cache.shard_count(), 1);
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
        let key = CacheKey::new("mvq", &weight(), &spec, 0).unwrap();
        cache.put(&key, &artifact("mvq")).unwrap();
        assert!(cache.get(&key).unwrap().is_some());
        // a zero request clamps to one shard instead of dividing by zero
        assert_eq!(ArtifactCache::in_memory_sharded(CacheBudget::UNBOUNDED, 0).shard_count(), 1);
    }

    #[test]
    fn cache_key_resolves_aliases() {
        let w = weight();
        let spec = PipelineSpec::default();
        let a = CacheKey::new("vq", &w, &spec, 0).unwrap();
        let b = CacheKey::new("vq-a", &w, &spec, 0).unwrap();
        assert_eq!(a, b);
        assert!(CacheKey::new("vqgan", &w, &spec, 0).is_err());
    }
}
