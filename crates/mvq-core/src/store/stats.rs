//! Cache traffic counters, occupancy gauges, and byte budgets.

/// Cache traffic counters plus occupancy gauges sampled at
/// [`super::ArtifactCache::stats`] time.
///
/// Since the observability layer landed this is a **view over the
/// cache's `mvq_obs::Registry`**: the counters are read from the
/// registry's `store.*` metrics (recorded exactly-once at the same
/// call sites that used to bump per-shard counters), the occupancy
/// gauges are sampled shard by shard under each shard's lock, and the
/// byte gauges come from the cache-wide atomic totals the budget
/// reservations maintain. The fields and their values are unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Artifacts inserted.
    pub insertions: u64,
    /// Blobs rejected because validation or decoding failed (corruption).
    pub corrupt_rejections: u64,
    /// Memory-resident blobs dropped to honor the memory byte budget.
    pub memory_evictions: u64,
    /// On-disk blobs deleted to honor the disk byte budget.
    pub disk_evictions: u64,
    /// Lookups of a known-failing key answered by the negative cache.
    pub negative_hits: u64,
    /// Restart-scan blobs whose mtime could not be read and were ordered
    /// as if written at scan time (newest — the conservative fallback)
    /// instead of stalest.
    pub mtime_fallbacks: u64,
    /// Blobs resident in memory when the snapshot was taken.
    pub memory_len: usize,
    /// Blobs on disk when the snapshot was taken (disk-backed caches only).
    pub disk_len: usize,
    /// Known-failing keys remembered when the snapshot was taken.
    pub negative_len: usize,
    /// Encoded bytes resident in memory when the snapshot was taken.
    pub memory_bytes: u64,
    /// Encoded bytes on disk when the snapshot was taken.
    pub disk_bytes: u64,
}

/// Byte budgets bounding an [`super::ArtifactCache`]'s memory and disk
/// footprints. `None` means unbounded (the pre-budget behavior).
///
/// A budget is a **hard cap on encoded blob bytes**: admission reserves
/// the incoming blob's bytes against a cache-wide atomic total before
/// the blob becomes resident, evicting least-recently-used entries until
/// the reservation fits. The footprint therefore never exceeds the
/// budget — not even transiently, at any observable instant — and a blob
/// larger than the whole budget is simply refused (the caller keeps the
/// returned artifact; refusal is a cache phenomenon, never an error).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheBudget {
    /// Cap on encoded bytes held in memory (`None` = unbounded).
    pub memory_bytes: Option<u64>,
    /// Cap on encoded bytes persisted on disk (`None` = unbounded).
    pub disk_bytes: Option<u64>,
}

impl CacheBudget {
    /// No caps — the cache grows without bound, as before budgets existed.
    pub const UNBOUNDED: CacheBudget = CacheBudget { memory_bytes: None, disk_bytes: None };

    /// Caps the in-memory footprint at `bytes`.
    pub fn with_memory_bytes(mut self, bytes: u64) -> CacheBudget {
        self.memory_bytes = Some(bytes);
        self
    }

    /// Caps the on-disk footprint at `bytes`.
    pub fn with_disk_bytes(mut self, bytes: u64) -> CacheBudget {
        self.disk_bytes = Some(bytes);
        self
    }
}
