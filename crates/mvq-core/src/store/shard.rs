//! One lock domain of the sharded cache: its slice of the memory map,
//! disk ledger, and negative-result cache. Traffic counters live on
//! the cache-wide `mvq_obs::Registry` (they are atomics, not shard
//! state); the owning cache bumps them at the same call sites the
//! per-shard counters used to occupy, so accounting stays exactly-once.
//!
//! A shard never does disk I/O and never takes another shard's lock —
//! every method here is pure bookkeeping under one `Mutex`, so the
//! widest critical section in the cache is a few map operations.

use std::collections::{hash_map, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};

use super::CacheKey;
use crate::error::MvqError;

/// Most known-failing keys one shard remembers; the stalest entry is
/// dropped past this. Failures are tiny (an error string), but an
/// adversarial request stream must not grow the map without bound.
pub(super) const NEGATIVE_CAP: usize = 64;

/// A memory-resident blob and its LRU stamp. The bytes are shared: a
/// hit clones the `Arc`, never the blob.
pub(super) struct MemEntry {
    pub(super) bytes: Arc<[u8]>,
    pub(super) last_used: u64,
}

/// Accounting for one on-disk blob (keyed by file name in the ledger).
pub(super) struct DiskEntry {
    pub(super) bytes: u64,
    pub(super) last_used: u64,
}

/// A remembered compression failure and its LRU stamp.
struct NegativeEntry {
    error: MvqError,
    last_used: u64,
}

/// The mutable state of one shard.
#[derive(Default)]
pub(super) struct ShardInner {
    pub(super) blobs: HashMap<CacheKey, MemEntry>,
    /// This shard's slice of the on-disk ledger, keyed by file name.
    pub(super) disk: HashMap<String, DiskEntry>,
    /// Known-failing keys: a deterministic compression failure is
    /// remembered so repeated bad requests fail fast instead of
    /// re-running the whole pipeline. A successful `put` heals the key.
    negative: HashMap<CacheKey, NegativeEntry>,
}

impl ShardInner {
    /// Refreshes the LRU stamp of an on-disk blob without changing its
    /// accounted size (used by memory hits, so a hot key's disk copy is
    /// not the next disk-eviction victim).
    pub(super) fn bump_disk(&mut self, name: &str, tick: u64) {
        if let Some(e) = self.disk.get_mut(name) {
            e.last_used = tick;
        }
    }

    /// Drops a ledger entry, returning the bytes it accounted for (0 if
    /// absent). The caller owns the cache-wide total.
    pub(super) fn forget_disk(&mut self, name: &str) -> u64 {
        self.disk.remove(name).map_or(0, |e| e.bytes)
    }

    /// Drops a memory entry, returning the bytes it held (0 if absent).
    pub(super) fn remove_memory(&mut self, key: &CacheKey) -> u64 {
        self.blobs.remove(key).map_or(0, |e| e.bytes.len() as u64)
    }

    /// Remembers `error` as the deterministic outcome for `key`,
    /// dropping the stalest remembered failure past [`NEGATIVE_CAP`].
    pub(super) fn note_failure(&mut self, key: &CacheKey, error: MvqError, tick: u64) {
        match self.negative.entry(key.clone()) {
            hash_map::Entry::Occupied(mut e) => {
                *e.get_mut() = NegativeEntry { error, last_used: tick };
            }
            hash_map::Entry::Vacant(v) => {
                v.insert(NegativeEntry { error, last_used: tick });
            }
        }
        while self.negative.len() > NEGATIVE_CAP {
            let Some(victim) =
                self.negative.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            else {
                break;
            };
            self.negative.remove(&victim);
        }
    }

    /// The remembered failure for `key`, if any, refreshing its stamp.
    /// The caller counts the fast-path answer (`store.cache.negative_hits`).
    pub(super) fn recall_failure(&mut self, key: &CacheKey, tick: u64) -> Option<MvqError> {
        let entry = self.negative.get_mut(key)?;
        entry.last_used = tick;
        Some(entry.error.clone())
    }

    /// Forgets a remembered failure (a successful store heals the key).
    pub(super) fn clear_failure(&mut self, key: &CacheKey) {
        self.negative.remove(key);
    }

    /// Known-failing keys currently remembered.
    pub(super) fn negative_len(&self) -> usize {
        self.negative.len()
    }
}

/// One lock domain. Keys are routed here by FNV-1a hash of their blob
/// name, so a key, its disk file, and its remembered failures always
/// live under the same lock.
#[derive(Default)]
pub(super) struct Shard {
    inner: Mutex<ShardInner>,
}

impl Shard {
    /// Locks this shard's state.
    pub(super) fn lock(&self) -> MutexGuard<'_, ShardInner> {
        self.inner.lock().expect("cache lock")
    }
}
