//! The compression baselines the paper compares against.
//!
//! * [`vq_plain`] — conventional vector quantization: the ablation's cases
//!   A (dense weights, common k-means, dense reconstruction), B (sparse
//!   weights, common k-means, dense reconstruction) and C (sparse weights,
//!   common k-means, sparse reconstruction) from Fig. 12;
//! * [`pqf`] — "Permute, Quantize, Fine-tune" (Martinez et al., CVPR '21):
//!   a permutation search that regroups weights into easier-to-quantize
//!   subvectors before ordinary k-means;
//! * [`bgd`] — "Bit Goes Down" (Stock et al., ICLR '20): k-means weighted
//!   by per-subvector importance derived from activation statistics;
//! * [`pvq`] — uniform scalar quantization at a given bit width, the
//!   "pruning vs quantization" comparison point (Kuzmin et al., 2023);
//! * [`dkm`] — differentiable (attention) k-means (Cho et al., ICLR '22),
//!   the soft-assignment clustering the paper cites as related work.

pub mod bgd;
pub mod dkm;
pub mod pqf;
pub mod pvq;
pub mod vq_plain;

pub use bgd::bgd_compress;
pub use dkm::{dkm_cluster, dkm_compress, DkmConfig};
pub use pqf::{pqf_compress, PqfCompressed};
#[allow(deprecated)]
pub use pvq::pvq_quantize_model;
pub use pvq::{pvq_compress_model, pvq_quantize, PvqResult};
pub use vq_plain::{vq_case_a, vq_case_b, vq_case_c, DenseVq};
